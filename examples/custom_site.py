#!/usr/bin/env python
"""Model your own site and tune transfers on it.

The calibrated ANL scenarios are presets; everything underneath is public
API.  This example builds a custom testbed from scratch — a 100 Gb/s DTN
with 32 cores, a transatlantic CUBIC path with 75 ms RTT, and a noisy
shared path — then compares the tuners on it under a mid-transfer load
change.

Usage:  python examples/custom_site.py
"""

from repro import (
    CUBIC,
    Engine,
    EngineConfig,
    ExternalLoad,
    HostSpec,
    Link,
    LoadSchedule,
    NmTuner,
    Path,
    StaticTuner,
    TcpModel,
    Topology,
)
from repro.analysis.stats import steady_state_mean, time_to_steady_state
from repro.experiments.runner import make_session
from repro.units import MB, gbps_to_mbps

# --- 1. describe the site --------------------------------------------------

DTN = HostSpec(
    name="my-dtn",
    cores=32,
    core_copy_rate_mbps=2000.0,   # modern cores push ~2 GB/s each
    cs_coeff=0.06,
    dgemm_thread_weight=0.4,
)

NIC = Link(name="dtn-nic", capacity_mbps=gbps_to_mbps(100.0))
TRANSATLANTIC = Link(name="ta-wan", capacity_mbps=gbps_to_mbps(100.0))

ATLANTIC_PATH = Path(
    name="us-eu",
    links=(NIC, TRANSATLANTIC),
    rtt_ms=75.0,
    loss_rate=2e-5,
    loss_per_stream=1e-7,
    tcp=TcpModel(cc=CUBIC, wmax_bytes=16 * MB, slow_start_tau=4.0),
)


def build_topology() -> Topology:
    topo = Topology()
    topo.add_path(ATLANTIC_PATH)
    return topo


# --- 2. run a transfer under a load change ---------------------------------


def run(tuner, seed: int = 0):
    session = make_session(
        "main", "us-eu", tuner, duration_s=2400.0, tune_np=True, max_nc=256,
    )
    engine = Engine(
        topology=build_topology(),
        host=DTN,
        sessions=[session],
        # Quiet for 20 min, then someone launches an analysis campaign.
        schedule=LoadSchedule(
            [(0.0, ExternalLoad()), (1200.0, ExternalLoad(ext_cmp=32))]
        ),
        config=EngineConfig(seed=seed),
    )
    return engine.run()["main"]


def main() -> None:
    print(f"Site: {DTN.name}, {DTN.cores} cores, "
          f"{NIC.capacity_mbps:.0f} MB/s NIC")
    print(f"Path: {ATLANTIC_PATH.name}, RTT {ATLANTIC_PATH.rtt_ms:.0f} ms, "
          f"{ATLANTIC_PATH.tcp.cc.name} congestion control")
    print(f"Per-stream TCP cap: ~{ATLANTIC_PATH.stream_cap_mbps(8):.0f} MB/s "
          "=> parallel streams are essential\n")

    default = run(StaticTuner())
    tuned = run(NmTuner())

    for label, trace in (("default", default), ("nm-tuner", tuned)):
        quiet = trace.mean_observed(from_time=600.0, to_time=1200.0)
        busy = trace.mean_observed(from_time=1800.0)
        print(
            f"{label:>9}: quiet phase {quiet:7.0f} MB/s | "
            f"busy phase {busy:7.0f} MB/s"
        )

    print(
        f"\nnm-tuner reached steady state after "
        f"{time_to_steady_state(tuned, tail_fraction=0.3):.0f} s; final "
        f"(nc, np) = {tuned.epochs[-1].params}"
    )
    print(
        f"steady-state gain over default: "
        f"{steady_state_mean(tuned, tail_fraction=0.25) / steady_state_mean(default, tail_fraction=0.25):.1f}x"
    )


if __name__ == "__main__":
    main()
