#!/usr/bin/env python
"""Race every implemented method on the paper's hardest condition.

Thirteen online strategies — the paper's four (default, cd, cs, nm), its two
related-work heuristics (heur1, heur2), and this library's extensions
(Hooke-Jeeves, SPSA, golden-section, a discounted-UCB bandit, and the
analytical/empirical model-based baselines) — all tune the same transfer
under heavy source compute load, scored against the offline-oracle
static setting.

Usage:  python examples/method_zoo.py
"""

from repro import (
    ANL_UC,
    AimdTuner,
    BanditTuner,
    CdTuner,
    CsTuner,
    ExternalLoad,
    GssTuner,
    HackerModelTuner,
    Heur1Tuner,
    Heur2Tuner,
    HjTuner,
    NewtonModelTuner,
    NmTuner,
    SpsaTuner,
    StaticTuner,
    run_single,
)
from repro.analysis.convergence import regret_fraction
from repro.analysis.stats import steady_state_mean
from repro.experiments.oracle import oracle_static_nc
from repro.experiments.report import ascii_chart, render_table
from repro.experiments.scenarios import PATH_ANL_UC

LOAD = ExternalLoad(ext_cmp=16)
DURATION_S = 1800.0


def methods():
    path = PATH_ANL_UC
    return {
        "default": StaticTuner(),
        "cd-tuner": CdTuner(),
        "cs-tuner": CsTuner(seed=0),
        "nm-tuner": NmTuner(),
        "hj-tuner": HjTuner(),
        "spsa": SpsaTuner(seed=0),
        "gss": GssTuner(),
        "bandit": BanditTuner(seed=0),
        "heur1": Heur1Tuner(),
        "heur2": Heur2Tuner(),
        "aimd": AimdTuner(),
        "hacker-model": HackerModelTuner(
            rtt_s=path.rtt_s,
            loss_rate=path.effective_loss(16),
            capacity_mbps=path.bottleneck_capacity_mbps,
        ),
        "newton-model": NewtonModelTuner(),
    }


def main() -> None:
    oracle = oracle_static_nc(ANL_UC, load=LOAD, duration_s=180.0)
    print(
        f"offline oracle: static nc={oracle.params[0]} -> "
        f"{oracle.throughput_mbps:.0f} MB/s "
        f"(found with {oracle.evaluations} calibration transfers)\n"
    )

    traces = {}
    rows = []
    for name, tuner in methods().items():
        trace = run_single(ANL_UC, tuner, load=LOAD,
                           duration_s=DURATION_S, seed=0)
        traces[name] = trace
        rows.append(
            [
                name,
                steady_state_mean(trace),
                f"{100 * regret_fraction(trace, oracle.throughput_mbps):.0f}%",
            ]
        )
    rows.sort(key=lambda r: -float(r[1]))
    print(
        render_table(
            ["method", "steady MB/s", "regret vs oracle"],
            rows,
            title=f"All methods, ANL->UChicago, {LOAD}",
        )
    )

    print()
    top = [r[0] for r in rows[:3] if r[0] != "default"][:2]
    print(
        ascii_chart(
            {
                name: traces[name].epoch_observed().tolist()
                for name in [*top, "default"]
            },
            title="observed throughput per epoch (top 2 methods vs default)",
        )
    )


if __name__ == "__main__":
    main()
