#!/usr/bin/env python
"""Disk-to-disk transfers over a lots-of-small-files dataset (extension).

The paper's evaluation is memory-to-memory; its future work item (1) asks
for "disk-to-disk optimization over sets of transfers with different file
sizes".  This example runs that scenario on the substrate: a 200k-file
dataset with lognormal sizes, a parallel file system at the source, and
the GridFTP *pipelining* depth (pp) as the third knob next to nc and np.

It shows (a) how badly a shallow pipeline hurts small-file workloads,
(b) how the disk bends the (nc, np) response surface into a ridge, and
(c) how much of that ridge nm-tuner climbs.

Usage:  python examples/disk_to_disk.py
"""

from repro import ANL_TACC, NmTuner, StaticTuner
from repro.analysis.stats import steady_state_mean
from repro.experiments.report import render_table
from repro.experiments.runner import make_session
from repro.gridftp.diskio import DiskSpec, FileSet, disk_rate_cap_mbps
from repro.sim.engine import Engine, EngineConfig
from repro.units import MB

#: Source parallel file system (GPFS-ish): fast streaming, costly opens.
PFS = DiskSpec(
    streaming_rate_mbps=1200.0,
    per_file_overhead_s=0.02,
    parallel_scaling=0.5,
    max_parallel_accessors=16,
)

#: 200k files averaging 4 MB — the classic "lots of small files" dataset.
DATASET = FileSet(n_files=200_000, mean_bytes=4 * MB, sigma=1.2)

RTT_S = ANL_TACC.path("anl-tacc").rtt_s


def run(tuner, pp: int, seed: int = 0, duration_s: float = 1800.0):
    session = make_session(
        "main", "anl-tacc", tuner, duration_s=duration_s, tune_np=True,
    )
    # Fixed pipelining: the session's pp defaults to the given constant.
    session.disk_cap_fn = lambda nc, np_, _pp: disk_rate_cap_mbps(
        PFS, DATASET, nc, np_, pp=pp, rtt_s=RTT_S
    )
    engine = Engine(
        topology=ANL_TACC.build_topology(),
        host=ANL_TACC.host,
        sessions=[session],
        config=EngineConfig(seed=seed),
    )
    return engine.run()["main"]


def main() -> None:
    print(
        f"Dataset: {DATASET.n_files} files, mean "
        f"{DATASET.mean_bytes / MB:.0f} MB, total "
        f"{DATASET.total_bytes / 1e12:.2f} TB\n"
    )

    # (a) The pipelining cliff, at the Globus default (nc=2, np=8).
    rows = []
    for pp in (1, 4, 16, 64):
        cap = disk_rate_cap_mbps(PFS, DATASET, 2, 8, pp=pp, rtt_s=RTT_S)
        rows.append([pp, cap])
    print(
        render_table(
            ["pipeline depth", "disk-side cap MB/s"],
            rows,
            title="(a) per-file overhead vs pipelining (nc=2, np=8)",
        )
    )

    # (b) The static response surface: unlike the memory-to-memory case,
    # disk striping rewards processes (nc) while the per-core budget
    # punishes threads (np) — a curved ridge.
    grid_rows = []
    best = (0.0, (0, 0))
    for nc in (2, 4, 8, 12, 16):
        row: list[object] = [nc]
        for np_ in (2, 8, 16):
            mbps = steady_state_mean(
                run(StaticTuner(params=(nc, np_)), pp=16, seed=2, duration_s=240.0),
                tail_fraction=0.75,
            )
            row.append(mbps)
            if mbps > best[0]:
                best = (mbps, (nc, np_))
        grid_rows.append(row)
    print(
        render_table(
            ["nc \\ np", "np=2", "np=8", "np=16"],
            grid_rows,
            title="\n(b) static sweep: disk-to-disk steady MB/s, pp=16",
        )
    )

    # (c) Direct search on that ridge.
    default = run(StaticTuner(), pp=16)
    tuned = run(NmTuner(), pp=16, seed=1)
    print(
        render_table(
            ["policy", "steady MB/s", "final (nc, np)"],
            [
                ["default (2, 8)", steady_state_mean(default),
                 str(default.epochs[-1].params)],
                ["nm-tuner", steady_state_mean(tuned),
                 str(tuned.epochs[-1].params)],
                ["static optimum", best[0], str(best[1])],
            ],
            title="\n(c) tuning on the disk substrate, ANL->TACC",
        )
    )
    print(
        "\nThe disk substrate bends the response surface into a ridge "
        "(striping\nrewards more processes, the per-core budget punishes "
        "more threads), which\nis harder for direct search than the "
        "memory-to-memory bowl: nm-tuner\nrecovers part of the "
        "static-sweep optimum.  Extending the tuners to\nhandle such "
        "ridges is exactly the paper's future work item (1)."
    )

    # (d) Full 3-D tuning: pipelining as a third direct-search dimension.
    tuned3 = run_3d(NmTuner(), seed=1)
    print(
        render_table(
            ["policy", "steady MB/s", "final (nc, np, pp)"],
            [
                ["default (2, 8, pp=4)",
                 steady_state_mean(run(StaticTuner(), pp=4)),
                 "(2, 8, 4)"],
                ["nm-tuner 3-D", steady_state_mean(tuned3),
                 str(tuned3.epochs[-1].params)],
            ],
            title="\n(d) tuning nc, np AND pipelining depth (3-D nm-tuner)",
        )
    )


def run_3d(tuner, seed: int = 0, duration_s: float = 1800.0):
    """Tune (nc, np, pp) jointly: the session maps dim 2 to pipelining."""
    from repro.core.params import full_transfer_space
    from repro.gridftp.transfer import TransferSpec
    from repro.sim.session import ParamMap, TransferSession
    import math

    space = full_transfer_space(max_nc=64, max_np=16, max_pp=64)
    spec = TransferSpec(name="main", path_name="anl-tacc",
                        total_bytes=math.inf, max_duration_s=duration_s,
                        epoch_s=30.0)
    session = TransferSession(
        spec, tuner, space, (2, 8, 4), param_map=ParamMap.nc_np_pp(),
        restart_each_epoch=True,
        disk_cap_fn=lambda nc, np_, pp: disk_rate_cap_mbps(
            PFS, DATASET, nc, np_, pp=pp, rtt_s=RTT_S
        ),
    )
    engine = Engine(
        topology=ANL_TACC.build_topology(), host=ANL_TACC.host,
        sessions=[session], config=EngineConfig(seed=seed),
    )
    return engine.run()["main"]


if __name__ == "__main__":
    main()
