#!/usr/bin/env python
"""A tuned transfer surviving an injected mid-run blackout.

The resilience layer (:mod:`repro.faults`) injects a deterministic fault
campaign — here a 4-epoch network blackout in the middle of an nm-tuner
run — and the recovery machinery handles it:

* the retry policy relaunches the tool with exponential backoff;
* the circuit breaker trips after two consecutive dead epochs, pins the
  session to the safe Globus default (nc=2, np=8), and probes its way
  back once the blackout lifts;
* the tuner never sees a faulted epoch's throughput, so its search state
  survives the outage instead of chasing zeros.

Usage:  python examples/fault_survival.py
"""

from repro import ANL_UC, CircuitBreaker, FaultSchedule, NmTuner, RetryPolicy
from repro.experiments.runner import run_single

DURATION_S = 1800.0
BLACKOUT_EPOCH = 20
BLACKOUT_LEN = 4


def run(with_breaker: bool, seed: int = 1):
    return run_single(
        ANL_UC,
        NmTuner(),
        duration_s=DURATION_S,
        seed=seed,
        fault_schedule=FaultSchedule.blackout(
            BLACKOUT_EPOCH, duration=BLACKOUT_LEN
        ),
        retry_policy=RetryPolicy(base_backoff_s=2.0),
        breaker=(
            CircuitBreaker(failure_threshold=2, cooldown_epochs=2)
            if with_breaker
            else None
        ),
    )


def main() -> None:
    retries = run(with_breaker=False)
    breaker = run(with_breaker=True)

    last = BLACKOUT_EPOCH + BLACKOUT_LEN - 1
    print(
        f"blackout: epochs {BLACKOUT_EPOCH}-{last} "
        f"({BLACKOUT_LEN * 30:.0f} s dark mid-transfer)"
    )
    faulted = [e.index for e in breaker.epochs if e.faulted]
    print(f"faulted epochs recorded: {faulted}")

    print("\nbreaker timeline around the blackout:")
    for e in breaker.epochs:
        if BLACKOUT_EPOCH - 2 <= e.index <= last + 5:
            marker = "FAULT" if e.faulted else "     "
            fed = "-> tuner" if e.tuned else "(withheld)"
            print(
                f"  epoch {e.index:2d}  {marker}  breaker={e.breaker:9s} "
                f"nc={e.params[0]:3d}  {e.observed:7.1f} MB/s  {fed}"
            )

    mr = retries.total_bytes / 1e6 / DURATION_S
    mb = breaker.total_bytes / 1e6 / DURATION_S
    print(f"\nmean throughput, retries alone : {mr:7.1f} MB/s")
    print(f"mean throughput, with breaker  : {mb:7.1f} MB/s")

    tail = [e.observed for e in breaker.epochs if e.index > last + 3]
    head = [e.observed for e in breaker.epochs if e.index < BLACKOUT_EPOCH]
    recovery = sum(tail) / len(tail) / (sum(head) / len(head))
    print(f"post-blackout recovery         : {100 * recovery:.0f}% of "
          "pre-blackout throughput — the transfer survived")


if __name__ == "__main__":
    main()
