#!/usr/bin/env python
"""Compare all four methods of the paper across external-load conditions.

Reproduces the headline of the paper's Fig. 5 as a table: the Globus
default against cd-tuner (coordinate descent), cs-tuner (compass search)
and nm-tuner (Nelder-Mead), on ANL→UChicago under five source-side loads.

Usage:  python examples/adaptive_vs_default.py [--fast]
"""

import sys

from repro import ANL_UC, run_single, standard_tuners
from repro.analysis.stats import steady_state_mean
from repro.experiments.figures import FIG5_LOADS
from repro.experiments.report import render_table


def main(fast: bool = False) -> None:
    duration = 600.0 if fast else 1800.0
    tuners = standard_tuners(seed=0)

    rows = []
    for load_label, load in FIG5_LOADS.items():
        row: list[object] = [load_label]
        base = None
        for name, tuner in tuners.items():
            trace = run_single(
                ANL_UC, tuner, load=load, duration_s=duration, seed=0
            )
            mbps = steady_state_mean(trace)
            if name == "default":
                base = mbps
            row.append(mbps)
        assert base is not None
        row.append(f"{max(row[2:]) / base:.1f}x")  # best adaptive vs default
        rows.append(row)

    print(
        render_table(
            ["load", "default", "cd-tuner", "cs-tuner", "nm-tuner", "gain"],
            rows,
            title=(
                f"Steady-state observed throughput (MB/s), ANL->UChicago, "
                f"{duration:.0f} s transfers"
            ),
        )
    )
    print(
        "\nReading the table: external compute load (cmp*) collapses the "
        "default's\nthroughput because its 2 processes lose the CPU-share "
        "fight against the\ndgemm jobs; the adaptive tuners raise "
        "concurrency until the transfer\nclaws its share back."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
