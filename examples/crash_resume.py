#!/usr/bin/env python
"""Crash-safe checkpoint/resume: kill a journaled run, resume it bit-identically.

The checkpoint subsystem (:mod:`repro.checkpoint`) writes an append-only
epoch journal during a run.  Tuners are opaque generators and cannot be
pickled, so resume does not deserialize the tuner — it *replays* the
journaled observations through a fresh tuner, verifying along the way
that every replayed proposal matches what the journal recorded.  A
resumed simulation run is therefore **bit-identical** to one that was
never interrupted.

This script demonstrates all three legs:

1. run a journaled transfer, then "crash" it by truncating the journal
   mid-run (exactly what a SIGKILL leaves on disk);
2. resume from the journal and show the trace equals the uninterrupted
   reference, epoch for epoch;
3. warm-start a fresh run from the best journaled configuration and show
   it reaches steady state in one control epoch instead of re-climbing.

Usage:  python examples/crash_resume.py
"""

import tempfile
from pathlib import Path

from repro import read_journal, resume_run, run_journaled, warm_start_x0
from repro.checkpoint import trim_to_last_snapshot

DURATION_S = 1800.0
CUT_AT_EPOCH = 20


def crash(path: Path, n_epochs: int) -> None:
    """Truncate the journal as a SIGKILL mid-run would: keep the first
    ``n_epochs`` epochs and their snapshots, tear the next record."""
    raw = path.read_bytes().splitlines(keepends=True)
    kept, seen = [], 0
    for line in raw:
        if b'"kind":"epoch"' in line:
            if seen == n_epochs:
                kept.append(line[: len(line) // 2])  # torn mid-write
                break
            seen += 1
        kept.append(line)
    path.write_bytes(b"".join(kept))


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-crash-"))
    first = tmp / "first-run.jnl"
    reference = run_journaled(
        first, scenario="anl-uc", tuner="nm", seed=1, duration_s=DURATION_S
    )
    print(f"reference run: {len(reference.epochs)} epochs journaled "
          f"to {first.name}")

    crashed = tmp / "crashed.jnl"
    crashed.write_bytes(first.read_bytes())
    crash(crashed, CUT_AT_EPOCH)
    trim_to_last_snapshot(crashed)
    j = read_journal(crashed)
    print(f"crash at epoch {CUT_AT_EPOCH}: journal holds "
          f"{len(j.snapshot_epochs)} complete epochs, not ended")

    resumed = resume_run(crashed)
    same = (resumed.epochs == reference.epochs
            and resumed.steps == reference.steps)
    print(f"resumed run: {len(resumed.epochs)} epochs; bit-identical to "
          f"the uninterrupted reference: {same}")
    assert same

    best = warm_start_x0(first)
    warm_path = tmp / "warm.jnl"
    warm = run_journaled(
        warm_path, scenario="anl-uc", tuner="nm", seed=2,
        duration_s=DURATION_S, warm_start_from=first,
    )
    print(f"\nwarm start: best journaled configuration nc={best[0]}")
    print(f"  cold first-epoch nc: {reference.epochs[0].params[0]}  "
          f"({reference.epochs[0].observed:.0f} MB/s)")
    print(f"  warm first-epoch nc: {warm.epochs[0].params[0]}  "
          f"({warm.epochs[0].observed:.0f} MB/s)")


if __name__ == "__main__":
    main()
