#!/usr/bin/env python
"""Two tuned transfers sharing one source endpoint (paper §IV-D, Fig. 11).

Starts simultaneous ANL→UChicago and ANL→TACC transfers out of the same
40 Gb/s source NIC and compares two policies:

* **independent** — each transfer runs its own nm-tuner and treats the
  other as external load (the paper's Fig. 11 setup, where the UChicago
  transfer grabs most of the NIC);
* **joint** — the paper's proposed remedy: a single direct-search instance
  optimizes both transfers' (nc, np) against their combined throughput
  (implemented by :class:`repro.JointTuner`).

Usage:  python examples/shared_endpoint.py
"""

from repro import ANL_UC, NmTuner, run_joint, run_pair
from repro.experiments.report import render_table

DURATION_S = 1800.0


def summarize(label: str, traces: dict) -> list[object]:
    half = DURATION_S / 2
    uc = traces["xfer-a"].mean_observed(from_time=half)
    tacc = traces["xfer-b"].mean_observed(from_time=half)
    return [label, uc, tacc, uc + tacc, f"{100 * uc / (uc + tacc):.0f}%"]


def main() -> None:
    independent = run_pair(
        ANL_UC,
        NmTuner(),
        NmTuner(),
        path_a="anl-uc",
        path_b="anl-tacc",
        duration_s=DURATION_S,
        seed=0,
    )
    joint = run_joint(
        ANL_UC,
        NmTuner(),
        path_a="anl-uc",
        path_b="anl-tacc",
        duration_s=DURATION_S,
        seed=0,
    )

    print(
        render_table(
            ["policy", "anl-uc MB/s", "anl-tacc MB/s", "total", "UC share"],
            [
                summarize("independent (Fig. 11)", independent),
                summarize("joint (extension)", joint),
            ],
            title="Simultaneous transfers from one endpoint (steady state)",
        )
    )

    nc_uc = independent["xfer-a"].epoch_param(0)
    nc_tacc = independent["xfer-b"].epoch_param(0)
    print("\nindependent tuning, adopted concurrency per epoch:")
    print("  anl-uc  :", " ".join(str(int(v)) for v in nc_uc[:30]))
    print("  anl-tacc:", " ".join(str(int(v)) for v in nc_tacc[:30]))
    print(
        "\nEach tuner sees the other transfer only as 'external load'; the "
        "UChicago\ntransfer, whose path supports 2x the bandwidth, ends up "
        "claiming the\nlarger share of the shared NIC — exactly the "
        "interaction Fig. 11 shows."
    )


if __name__ == "__main__":
    main()
