#!/usr/bin/env python
"""Quickstart: tune a WAN transfer's parallel streams with direct search.

Runs a 30-minute memory-to-memory transfer on the calibrated ANL→UChicago
scenario twice — once with the Globus default settings (nc=2, np=8) and
once under nm-tuner control — while 16 dgemm jobs hammer the source CPUs,
then prints what each achieved.

Usage:  python examples/quickstart.py
"""

from repro import ANL_UC, ExternalLoad, NmTuner, StaticTuner, run_single
from repro.analysis.stats import improvement_factor, steady_state_mean

LOAD = ExternalLoad(ext_cmp=16)  # 16 dgemm copies on the source host
DURATION_S = 1800.0


def main() -> None:
    print(f"Scenario: {ANL_UC.name}  (40 Gb/s path, source: {ANL_UC.host.name})")
    print(f"External load: {LOAD}\n")

    default = run_single(
        ANL_UC, StaticTuner(), load=LOAD, duration_s=DURATION_S, seed=1
    )
    tuned = run_single(
        ANL_UC, NmTuner(), load=LOAD, duration_s=DURATION_S, seed=1
    )

    print(f"default (nc=2, np=8): {steady_state_mean(default):7.0f} MB/s")
    print(f"nm-tuner (adaptive) : {steady_state_mean(tuned):7.0f} MB/s")
    print(f"improvement         : {improvement_factor(tuned, default):7.1f}x\n")

    nc = tuned.epoch_param(0)
    print("concurrency adopted by nm-tuner, one value per 30 s epoch:")
    print("  " + " ".join(str(int(v)) for v in nc))
    print(
        f"\nbytes moved: default {default.total_bytes / 1e9:.0f} GB, "
        f"tuned {tuned.total_bytes / 1e9:.0f} GB over {DURATION_S:.0f} s"
    )


if __name__ == "__main__":
    main()
