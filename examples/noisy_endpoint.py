#!/usr/bin/env python
"""Tuning on a realistically messy endpoint, and exporting the run.

Combines several library extensions in one scenario:

* a random workload — Poisson compute-job arrivals on the source host
  (:mod:`repro.endpoint.workload`) instead of the paper's fixed levels;
* a CUSUM change detector inside nm-tuner
  (:mod:`repro.core.monitor`) instead of the noise-happy Δc rule;
* trace export to JSON and CSV (:mod:`repro.sim.traceio`) for offline
  analysis.

Usage:  python examples/noisy_endpoint.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import ANL_UC, CusumMonitor, NmTuner, StaticTuner
from repro.analysis.stats import steady_state_mean
from repro.endpoint.workload import PoissonJobMix
from repro.experiments.report import ascii_chart
from repro.experiments.runner import make_session
from repro.sim.engine import Engine, EngineConfig
from repro.sim.traceio import epochs_to_csv, save_trace

DURATION_S = 3600.0


def run(tuner, schedule, seed=0):
    session = make_session("main", "anl-uc", tuner, duration_s=DURATION_S)
    engine = Engine(
        topology=ANL_UC.build_topology(),
        host=ANL_UC.host,
        sessions=[session],
        schedule=schedule,
        config=EngineConfig(seed=seed),
    )
    return engine.run()["main"]


def main(outdir: str | None = None) -> None:
    workload = PoissonJobMix(
        arrival_per_hour=30.0, mean_duration_s=900.0, max_jobs=48
    )
    schedule = workload.schedule(DURATION_S, np.random.default_rng(42))
    changes = len(schedule.change_times)
    print(
        f"workload: Poisson dgemm jobs, {changes} load changes over "
        f"{DURATION_S / 60:.0f} minutes\n"
    )

    default = run(StaticTuner(), schedule)
    tuned = run(
        NmTuner(monitor=CusumMonitor(k_pct=3.0, h_pct=12.0)), schedule
    )

    print(f"default : {steady_state_mean(default, tail_fraction=0.9):7.0f} MB/s")
    print(f"nm+CUSUM: {steady_state_mean(tuned, tail_fraction=0.9):7.0f} MB/s\n")
    print(
        ascii_chart(
            {
                "nm+CUSUM": tuned.epoch_observed().tolist(),
                "default": default.epoch_observed().tolist(),
            },
            title="observed MB/s per epoch under random compute load",
        )
    )

    target = Path(outdir) if outdir else Path(tempfile.mkdtemp())
    target.mkdir(parents=True, exist_ok=True)
    save_trace(tuned, target / "nm_cusum.json")
    epochs_to_csv(tuned, target / "nm_cusum_epochs.csv")
    print(f"\ntrace exported to {target}/nm_cusum.json and .csv")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
