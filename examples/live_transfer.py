#!/usr/bin/env python
"""Tune a *real* running tool, not the simulator.

Uses the deployment adapter (:mod:`repro.live`): cd-tuner drives actual
OS processes — the bundled byte-pump stand-in for `globus-url-copy` —
through short wall-clock control epochs, measuring real bytes moved.
Swap `BYTE_PUMP` for your mover's command template to tune a real
transfer, e.g.::

    SubprocessEpochRunner(
        "globus-url-copy -p {np} ftp://src/dev/zero ftp://dst/dev/null",
        parse_bytes=parse_gridftp_perf_marker,
    )

Usage:  python examples/live_transfer.py   (runs ~8 seconds of real time)
"""

from repro import CdTuner, ParamSpace, SubprocessEpochRunner, tune_live
from repro.live import BYTE_PUMP

SPACE = ParamSpace(("nc",), (1,), (8,))


def main() -> None:
    runner = SubprocessEpochRunner(
        BYTE_PUMP, parse_bytes=lambda out: float(out.strip() or 0)
    )
    print("driving real processes; one line per 1-second control epoch:")
    result = tune_live(
        CdTuner(eps_pct=5.0),
        SPACE,
        (1,),
        runner,
        epoch_s=1.0,
        max_epochs=8,
        fixed_np=4,
        on_epoch=lambda e: print(
            f"  epoch {e.index}: nc={e.params[0]}  "
            f"{e.throughput_mbps:6.1f} MB/s  ({e.bytes_moved / 1e6:.1f} MB)"
        ),
    )
    print(f"\nmoved {result.total_bytes / 1e6:.1f} MB at "
          f"{result.mean_throughput_mbps:.1f} MB/s mean; final "
          f"nc={result.epochs[-1].params[0]}")


if __name__ == "__main__":
    main()
