"""Replay-based tuner-state reconstruction, across every registered tuner.

The property under test is the heart of resume: for ANY journal prefix,
a fresh driver replayed through the journaled epochs must propose
exactly the parameters the uninterrupted run used next — including
across faulted, observation-lost, and breaker-governed epochs, where
the proposal is NOT simply ``driver.current``.  The ground-truth epoch
sequence is produced by the real live control loop under a deterministic
epoch runner and a fault campaign.
"""

import pytest

from repro.checkpoint.replay import ReplayMismatchError, replay_epochs
from repro.core.params import concurrency_space
from repro.core.registry import TUNER_FACTORIES, make_tuner, tuner_names
from repro.faults import (
    BLACKOUT,
    OBS_LOSS,
    SESSION_ABORT,
    STREAM_CRASH,
    CircuitBreaker,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)
from repro.live import tune_live

SPACE = concurrency_space(max_nc=64)
X0 = (2,)
N_EPOCHS = 18


def _runner(nc: int, np_: int, duration_s: float) -> float:
    """Deterministic unimodal objective: peaks at nc=24, MB-scale."""
    rate_mbps = 80.0 * min(nc, 24) - 40.0 * max(0, nc - 24)
    return max(rate_mbps, 1.0) * 1e6 * duration_s


def _campaign() -> FaultSchedule:
    """Faults of every replay-relevant flavor inside the run."""
    return FaultSchedule([
        FaultEvent(kind=STREAM_CRASH, epoch=3, duration=1, at_fraction=0.5),
        FaultEvent(kind=OBS_LOSS, epoch=6, duration=2),
        FaultEvent(kind=BLACKOUT, epoch=9, duration=3),  # opens the breaker
        FaultEvent(kind=SESSION_ABORT, epoch=14, duration=1),
    ])


def _ground_truth(name: str):
    """Run the live loop to completion; return its epoch records."""
    result = tune_live(
        make_tuner(name, seed=7), SPACE, X0, _runner,
        epoch_s=30.0, max_epochs=N_EPOCHS, sleep=lambda s: None,
        fault_schedule=_campaign(),
        retry_policy=RetryPolicy(),
        breaker=CircuitBreaker(failure_threshold=3, cooldown_epochs=2),
    )
    return [e.to_record(i * 30.0) for i, e in enumerate(result.epochs)]


@pytest.mark.parametrize("name", tuner_names())
class TestReplayMatchesUninterruptedRun:
    def test_every_prefix_predicts_the_next_params(self, name):
        records = _ground_truth(name)
        assert len(records) == N_EPOCHS
        for k in range(len(records)):
            result = replay_epochs(
                make_tuner(name, seed=7), SPACE, X0, records[:k],
                retry_policy=RetryPolicy(),
                breaker=CircuitBreaker(failure_threshold=3,
                                       cooldown_epochs=2),
            )
            assert result.params == records[k].params, (
                f"{name}: prefix of {k} epochs proposes {result.params}, "
                f"uninterrupted run used {records[k].params}"
            )

    def test_full_replay_verifies_and_counts(self, name):
        records = _ground_truth(name)
        result = replay_epochs(
            make_tuner(name, seed=7), SPACE, X0, records,
            retry_policy=RetryPolicy(),
            breaker=CircuitBreaker(failure_threshold=3, cooldown_epochs=2),
        )
        assert result.epochs_replayed == N_EPOCHS
        # The journaled count is pre-dispatch, so the replayed total can
        # only meet or exceed the last record's.
        assert result.retry_state.total_retries >= records[-1].retries

    def test_campaign_hits_every_fault_flavor(self, name):
        # Guard: the ground truth must actually exercise faulted,
        # obs-lost, and breaker-open epochs, else the property above
        # proves less than it claims.
        records = _ground_truth(name)
        assert any(r.faulted for r in records)
        assert any(r.fault == OBS_LOSS for r in records)
        assert any(r.breaker == "open" for r in records)
        assert any(not r.tuned for r in records)


class TestReplayRejectsWrongConfiguration:
    def test_wrong_seed_is_detected(self):
        records = _ground_truth("cs")
        with pytest.raises(ReplayMismatchError):
            replay_epochs(
                make_tuner("cs", seed=8), SPACE, X0, records,
                retry_policy=RetryPolicy(),
                breaker=CircuitBreaker(failure_threshold=3,
                                       cooldown_epochs=2),
            )

    def test_wrong_tuner_is_detected(self):
        records = _ground_truth("cd")
        with pytest.raises(ReplayMismatchError):
            replay_epochs(
                make_tuner("gss", seed=7), SPACE, X0, records,
                retry_policy=RetryPolicy(),
                breaker=CircuitBreaker(failure_threshold=3,
                                       cooldown_epochs=2),
            )

    def test_missing_breaker_is_detected(self):
        records = _ground_truth("nm")
        with pytest.raises(ReplayMismatchError):
            replay_epochs(make_tuner("nm", seed=7), SPACE, X0, records,
                          retry_policy=RetryPolicy())

    def test_mismatch_error_names_epoch_and_field(self):
        records = _ground_truth("cd")
        try:
            replay_epochs(
                make_tuner("gss", seed=7), SPACE, X0, records,
                retry_policy=RetryPolicy(),
                breaker=CircuitBreaker(failure_threshold=3,
                                       cooldown_epochs=2),
            )
        except ReplayMismatchError as exc:
            assert exc.field == "params"
            assert exc.epoch >= 0
        else:  # pragma: no cover - guarded by the test above
            pytest.fail("expected a mismatch")


def test_registry_covers_the_expected_tuners():
    # The replay property is only as strong as the registry's coverage:
    # every tuner the CLI can run must be here.
    assert set(TUNER_FACTORIES) >= {
        "default", "cd", "cs", "nm", "gss", "hj", "spsa", "aimd", "mimd",
        "bandit", "heur1", "heur2",
    }


def test_make_tuner_unknown_name():
    with pytest.raises(KeyError, match="unknown tuner"):
        make_tuner("nope")
