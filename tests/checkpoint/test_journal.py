"""Unit tests for the crash-safe epoch journal: framing, torn-tail
tolerance, corruption detection, and the parsed-journal accessors."""

import json

import pytest

from repro.checkpoint.journal import (
    JOURNAL_FORMAT,
    Journal,
    JournalWriter,
    read_journal,
    trim_to_last_snapshot,
)
from repro.sim.trace import EpochRecord, StepRecord
from repro.sim.traceio import CorruptTraceError


def _epoch(index, params=(2,), observed=100.0, **kw) -> EpochRecord:
    return EpochRecord(
        index=index, start=index * 30.0, duration=30.0, params=params,
        observed=observed, best_case=observed, bytes_moved=observed * 30e6,
        **kw,
    )


def _write_sample(path) -> None:
    with JournalWriter(path) as w:
        w.write_header({"run": {"tuner": "nm", "seed": 0}})
        w.write_epoch("main", _epoch(0), [
            StepRecord(time=0.0, rate=90.0, restarting=True,
                       bytes_moved=0.0),
        ])
        w.write_snapshot({"format": 1, "tick": 30})
        w.write_epoch("main", _epoch(1, observed=120.0))
        w.write_snapshot({"format": 1, "tick": 60})
        w.write_section("fig1", {"blocks": {"Fig 1": "table"}})
        w.write_end()


class TestFraming:
    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "j.jnl"
        _write_sample(path)
        lines = path.read_bytes().splitlines()
        assert len(lines) == 7
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_file_ends_with_newline(self, tmp_path):
        path = tmp_path / "j.jnl"
        _write_sample(path)
        assert path.read_bytes().endswith(b"\n")

    def test_records_need_a_kind(self, tmp_path):
        with JournalWriter(tmp_path / "j.jnl") as w:
            with pytest.raises(ValueError, match="kind"):
                w.write({"data": 1})

    def test_append_mode_extends_existing_journal(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_header({"run": {}})
            w.write_epoch("main", _epoch(0))
        with JournalWriter(path) as w:
            w.write_epoch("main", _epoch(1))
        j = read_journal(path)
        assert [e.record.index for e in j.epochs] == [0, 1]


class TestReadJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jnl"
        _write_sample(path)
        j = read_journal(path)
        assert j.header == {"format": JOURNAL_FORMAT,
                            "run": {"tuner": "nm", "seed": 0}}
        assert [e.record.index for e in j.epochs] == [0, 1]
        assert j.epochs[0].steps[0].rate == 90.0
        assert j.epochs[1].record.observed == 120.0
        assert j.snapshot == {"format": 1, "tick": 60}
        assert j.sections == {"fig1": {"blocks": {"Fig 1": "table"}}}
        assert j.ended and not j.truncated

    def test_snapshot_epochs_stop_at_last_snapshot(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_epoch("main", _epoch(0))
            w.write_snapshot({"tick": 30})
            w.write_epoch("main", _epoch(1))  # closed after the snapshot
        j = read_journal(path)
        assert len(j.epochs) == 2
        assert [e.record.index for e in j.snapshot_epochs] == [0]
        assert [e.record.index for e in j.snapshot_epochs_for("main")] == [0]

    def test_sessions_in_first_seen_order(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_epoch("b", _epoch(0))
            w.write_epoch("a", _epoch(0))
            w.write_epoch("b", _epoch(1))
        j = read_journal(path)
        assert j.sessions() == ["b", "a"]
        assert [e.record.index for e in j.epochs_for("b")] == [0, 1]

    def test_unknown_kinds_are_skipped(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write({"kind": "future-extension", "x": 1})
            w.write_epoch("main", _epoch(0))
        j = read_journal(path)
        assert len(j.epochs) == 1


class TestTornTail:
    """A crash mid-append costs exactly the record being written."""

    def test_unterminated_final_line_is_dropped_with_warning(self, tmp_path):
        path = tmp_path / "j.jnl"
        _write_sample(path)
        with open(path, "ab") as f:
            f.write(b'{"kind":"epoch","session":"main"')  # torn write
        with pytest.warns(UserWarning, match="torn|unterminated"):
            j = read_journal(path)
        assert j.truncated
        assert len(j.epochs) == 2  # the torn record is gone, nothing else

    def test_parseable_but_unterminated_tail_is_still_dropped(self, tmp_path):
        # No trailing newline means the write may not have finished even
        # if the bytes happen to parse.
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_epoch("main", _epoch(0))
        with open(path, "ab") as f:
            f.write(b'{"kind":"end"}')  # no newline
        with pytest.warns(UserWarning, match="unterminated"):
            j = read_journal(path)
        assert j.truncated and not j.ended

    def test_reopening_after_a_torn_tail_does_not_corrupt(self, tmp_path):
        # Appending after an unterminated line must not concatenate the
        # new record onto the partial one (that would turn a recoverable
        # crash artifact into mid-file corruption).
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_epoch("main", _epoch(0))
        with open(path, "ab") as f:
            f.write(b'{"kind":"epo')
        with JournalWriter(path) as w:
            w.write_epoch("main", _epoch(1))
        j = read_journal(path)  # no warning, no corruption
        assert [e.record.index for e in j.epochs] == [0, 1]
        assert not j.truncated

    def test_trim_to_last_snapshot_drops_dead_records(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_header({"run": {}})
            w.write_epoch("main", _epoch(0))
            w.write_snapshot({"tick": 30})
            w.write_epoch("main", _epoch(1))  # snapshot never landed
        with open(path, "ab") as f:
            f.write(b'{"kind":"snapsh')  # ... and a torn tail
        dropped = trim_to_last_snapshot(path)
        assert dropped > 0
        j = read_journal(path)
        assert [e.record.index for e in j.epochs] == [0]
        assert j.snapshot == {"tick": 30}
        assert not j.truncated

    def test_trim_without_snapshot_keeps_only_the_header(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_header({"run": {}})
            w.write_epoch("main", _epoch(0))
        trim_to_last_snapshot(path)
        j = read_journal(path)
        assert j.header is not None
        assert j.epochs == []

    def test_torn_final_snapshot_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_epoch("main", _epoch(0))
            w.write_snapshot({"tick": 30})
            w.write_epoch("main", _epoch(1))
        with open(path, "ab") as f:
            f.write(b'{"kind":"snapshot","state":{"tick":')
        with pytest.warns(UserWarning):
            j = read_journal(path)
        assert j.snapshot == {"tick": 30}
        assert [e.record.index for e in j.snapshot_epochs] == [0]


class TestCorruption:
    """Damage before the final record is not a crash artifact."""

    def test_mid_file_garbage_raises_with_offset(self, tmp_path):
        path = tmp_path / "j.jnl"
        _write_sample(path)
        raw = path.read_bytes().splitlines(keepends=True)
        offset = len(raw[0]) + len(raw[1])
        raw[2] = b"@@not json@@\n"
        path.write_bytes(b"".join(raw))
        with pytest.raises(CorruptTraceError) as exc:
            read_journal(path)
        assert exc.value.offset == offset
        assert str(path) in str(exc.value)

    def test_mid_file_non_record_json_raises(self, tmp_path):
        path = tmp_path / "j.jnl"
        _write_sample(path)
        raw = path.read_bytes().splitlines(keepends=True)
        raw[1] = b'[1, 2, 3]\n'  # valid JSON, not a journal record
        path.write_bytes(b"".join(raw))
        with pytest.raises(CorruptTraceError):
            read_journal(path)

    def test_unsupported_format_raises(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write({"kind": "header", "format": 999})
            w.write_epoch("main", _epoch(0))
        with pytest.raises(CorruptTraceError, match="format"):
            read_journal(path)


class TestBestParams:
    def test_best_params_is_max_observed_tuned_epoch(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_epoch("main", _epoch(0, params=(2,), observed=100.0))
            w.write_epoch("main", _epoch(1, params=(8,), observed=300.0))
            # Higher observed but not fed to the tuner: must not win.
            w.write_epoch("main", _epoch(2, params=(64,), observed=900.0,
                                         tuned=False))
        j = read_journal(path)
        assert j.best_params() == (8,)
        assert j.best_params("main") == (8,)

    def test_best_params_none_without_tuned_epochs(self, tmp_path):
        path = tmp_path / "j.jnl"
        with JournalWriter(path) as w:
            w.write_epoch("main", _epoch(0, faulted=True, fault="blackout",
                                         tuned=False))
        assert read_journal(path).best_params() is None
        assert Journal().best_params() is None
