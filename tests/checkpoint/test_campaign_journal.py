"""Campaign journaling: completed figure units survive a crash and are
skipped on resume.  The real units are hours-scale, so these tests run
the campaign machinery over stub units."""

import pytest

import repro.experiments.campaign as campaign_mod
from repro.checkpoint import read_journal
from repro.experiments.campaign import CampaignScale, run_campaign

SCALE = CampaignScale(duration_s=120.0, fig1_duration_s=90.0,
                      fig1_reps=1, seed=0)


@pytest.fixture
def stub_units(monkeypatch):
    """Three tiny units; the middle one can be armed to crash."""
    calls = []
    state = {"crash_on": None}

    def unit(name):
        def run(scale):
            if name == state["crash_on"]:
                raise KeyboardInterrupt
            calls.append(name)
            return {f"Sect {name}": f"block {name} @{scale.seed}"}

        return run

    units = [("u1", unit("u1")), ("u2", unit("u2")), ("u3", unit("u3"))]
    monkeypatch.setattr(campaign_mod, "CAMPAIGN_UNITS", units)
    return calls, state


class TestCampaignJournal:
    def test_crash_then_resume_skips_completed_units(self, tmp_path,
                                                     stub_units):
        calls, state = stub_units
        path = tmp_path / "camp.jnl"
        state["crash_on"] = "u2"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(SCALE, journal_path=path)
        assert calls == ["u1"]
        assert sorted(read_journal(path).sections) == ["u1"]

        state["crash_on"] = None
        result = run_campaign(SCALE, journal_path=path)
        assert result.resumed_units == ["u1"]
        assert calls == ["u1", "u2", "u3"]  # u1 not recomputed
        assert result.sections == {
            "Sect u1": "block u1 @0",
            "Sect u2": "block u2 @0",
            "Sect u3": "block u3 @0",
        }
        assert read_journal(path).ended

    def test_journaled_equals_unjournaled(self, tmp_path, stub_units):
        ref = run_campaign(SCALE)
        res = run_campaign(SCALE, journal_path=tmp_path / "camp.jnl")
        assert res.sections == ref.sections
        assert res.resumed_units == []

    def test_scale_mismatch_is_refused(self, tmp_path, stub_units):
        path = tmp_path / "camp.jnl"
        run_campaign(SCALE, journal_path=path)
        other = CampaignScale(duration_s=240.0, fig1_duration_s=90.0,
                              fig1_reps=1, seed=0)
        with pytest.raises(ValueError, match="scale"):
            run_campaign(other, journal_path=path)

    def test_journal_without_campaign_header_is_refused(self, tmp_path,
                                                        stub_units):
        from repro.checkpoint import JournalWriter

        path = tmp_path / "other.jnl"
        with JournalWriter(path) as w:
            w.write_header({"run": {}})
        with pytest.raises(ValueError, match="campaign header"):
            run_campaign(SCALE, journal_path=path)


class TestCampaignTimings:
    def test_sections_record_elapsed_and_resume_restores_it(
        self, tmp_path, stub_units
    ):
        path = tmp_path / "camp.jnl"
        res = run_campaign(SCALE, journal_path=path)
        assert set(res.unit_seconds) == {"u1", "u2", "u3"}
        journal = read_journal(path)
        for name in ("u1", "u2", "u3"):
            assert journal.sections[name]["elapsed_s"] >= 0.0
        resumed = run_campaign(SCALE, journal_path=path)
        assert resumed.unit_seconds == {
            name: journal.sections[name]["elapsed_s"]
            for name in ("u1", "u2", "u3")
        }

    def test_journal_predating_timings_still_resumes(self, tmp_path,
                                                     stub_units):
        from dataclasses import asdict

        from repro.checkpoint import JournalWriter

        path = tmp_path / "camp.jnl"
        with JournalWriter(path) as w:
            w.write_header({"campaign": asdict(SCALE)})
            # Old-format section record: no elapsed_s.
            w.write_section("u1", {"blocks": {"Sect u1": "block u1 @0"}})
        res = run_campaign(SCALE, journal_path=path)
        assert res.resumed_units == ["u1"]
        assert "u1" not in res.unit_seconds  # nothing recorded to restore
        assert {"u2", "u3"} <= set(res.unit_seconds)
