"""Resume end to end: a killed journaled run, continued, must be
bit-identical to the same run uninterrupted — sim traces down to the
step records, live runs down to the parameter trajectory."""

import json

import pytest

from repro.checkpoint import (
    JournalWriter,
    read_journal,
    resume_live_state,
    resume_run,
    run_journaled,
    trace_from_journal,
    warm_start_x0,
)
from repro.core.params import concurrency_space
from repro.core.registry import make_tuner
from repro.experiments.runner import make_session, run_single
from repro.experiments.scenarios import ANL_UC, SCENARIOS
from repro.faults import (
    OBS_LOSS,
    STREAM_CRASH,
    CircuitBreaker,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)
from repro.live import tune_live
from repro.sim.engine import Engine, EngineConfig, JointController

DURATION = 600.0


def _campaign():
    return FaultSchedule([
        FaultEvent(kind=STREAM_CRASH, epoch=3, duration=2),
        FaultEvent(kind=OBS_LOSS, epoch=8, duration=1),
    ])


def _reference(tuner_name: str, seed: int):
    return run_single(
        SCENARIOS["anl-uc"], make_tuner(tuner_name, seed),
        duration_s=DURATION, seed=seed,
        fault_schedule=_campaign(), retry_policy=RetryPolicy(),
        breaker=CircuitBreaker(),
    )


def _journaled(path, tuner_name: str, seed: int):
    return run_journaled(
        path, scenario="anl-uc", tuner=tuner_name, seed=seed,
        duration_s=DURATION,
        fault_schedule=_campaign(), retry_policy=RetryPolicy(),
        breaker=CircuitBreaker(),
    )


def _truncate_after(path, n_epochs: int) -> None:
    """Keep the journal up to (and including) the n-th epoch's snapshot —
    the on-disk state of a process killed right after it."""
    kept, seen = [], 0
    with open(path, "rb") as f:
        for line in f.read().splitlines(keepends=True):
            rec = json.loads(line)
            if rec["kind"] == "end":
                continue
            kept.append(line)
            if rec["kind"] == "epoch":
                seen += 1
            if seen == n_epochs and rec["kind"] == "snapshot":
                break
    with open(path, "wb") as f:
        f.writelines(kept)


class TestSimResumeBitIdentity:
    @pytest.mark.parametrize("tuner_name", ["nm", "cs", "bandit"])
    @pytest.mark.parametrize("cut", [1, 7, 13])
    def test_kill_and_resume_equals_uninterrupted(self, tmp_path,
                                                  tuner_name, cut):
        ref = _reference(tuner_name, seed=11)
        path = tmp_path / "run.jnl"
        _journaled(path, tuner_name, seed=11)
        _truncate_after(path, cut)
        resumed = resume_run(path)
        assert resumed.epochs == ref.epochs
        assert resumed.steps == ref.steps
        assert read_journal(path).ended

    def test_journaled_run_equals_plain_run(self, tmp_path):
        ref = _reference("nm", seed=2)
        trace = _journaled(tmp_path / "run.jnl", "nm", seed=2)
        assert trace.epochs == ref.epochs
        assert trace.steps == ref.steps

    def test_resume_after_torn_final_record(self, tmp_path):
        ref = _reference("nm", seed=2)
        path = tmp_path / "run.jnl"
        _journaled(path, "nm", seed=2)
        _truncate_after(path, 6)
        with open(path, "ab") as f:
            f.write(b'{"kind":"epoch","session":"ma')  # crash mid-write
        with pytest.warns(UserWarning):
            resumed = resume_run(path)
        assert resumed.epochs == ref.epochs

    def test_resume_with_header_only_runs_from_scratch(self, tmp_path):
        ref = _reference("nm", seed=2)
        path = tmp_path / "run.jnl"
        _journaled(path, "nm", seed=2)
        with open(path, "rb") as f:
            header = f.read().splitlines(keepends=True)[0]
        path.write_bytes(header)
        resumed = resume_run(path)
        assert resumed.epochs == ref.epochs

    def test_resume_of_finished_journal_reconstructs(self, tmp_path):
        path = tmp_path / "run.jnl"
        trace = _journaled(path, "nm", seed=2)
        again = resume_run(path)
        assert again.epochs == trace.epochs
        assert again.steps == trace.steps


class TestJournalGuards:
    def test_run_journaled_refuses_existing_journal(self, tmp_path):
        path = tmp_path / "run.jnl"
        _journaled(path, "nm", seed=0)
        with pytest.raises(FileExistsError, match="resume"):
            _journaled(path, "nm", seed=0)

    def test_resume_requires_a_run_header(self, tmp_path):
        path = tmp_path / "bare.jnl"
        with JournalWriter(path) as w:
            w.write_snapshot({"tick": 0})
        with pytest.raises(ValueError, match="header"):
            resume_run(path)

    def test_unknown_scenario_in_header(self, tmp_path):
        path = tmp_path / "run.jnl"
        _journaled(path, "nm", seed=0)
        raw = path.read_text().splitlines()
        header = json.loads(raw[0])
        header["run"]["scenario"] = "mars-base"
        raw[0] = json.dumps(header)
        path.write_text("\n".join(raw) + "\n")
        _truncate_after(path, 2)
        with pytest.raises(ValueError, match="scenario"):
            resume_run(path)

    def test_journaling_joint_sessions_is_refused(self, tmp_path):
        scenario = ANL_UC
        sessions = [
            make_session("a", "anl-uc", make_tuner("nm"),
                         duration_s=DURATION),
        ]
        controller = JointController.__new__(JointController)
        with JournalWriter(tmp_path / "j.jnl") as w:
            with pytest.raises(ValueError, match="jointly"):
                Engine(
                    topology=scenario.build_topology(),
                    host=scenario.host,
                    sessions=sessions,
                    controllers=[controller],
                    config=EngineConfig(seed=0),
                    journal=w,
                )


class TestWarmStart:
    def test_warm_start_seeds_from_best_journaled_epoch(self, tmp_path):
        first = tmp_path / "first.jnl"
        _journaled(first, "nm", seed=5)
        best = warm_start_x0(first)
        assert best is not None and best[0] > 2  # climbed off the default
        second = tmp_path / "second.jnl"
        run_journaled(
            second, scenario="anl-uc", tuner="nm", seed=5,
            duration_s=DURATION, warm_start_from=first,
        )
        warm_trace = trace_from_journal(second)
        assert warm_trace.epochs[0].params == best

    def test_warm_start_from_journal_without_tuned_epochs(self, tmp_path):
        path = tmp_path / "empty.jnl"
        with JournalWriter(path) as w:
            w.write_header({"run": {}})
        assert warm_start_x0(path) is None
        # run_journaled falls back to the default start
        out = tmp_path / "out.jnl"
        run_journaled(out, scenario="anl-uc", tuner="nm",
                      duration_s=DURATION, warm_start_from=path)
        assert trace_from_journal(out).epochs[0].params == (2,)


class TestLiveResume:
    def _runner(self, nc, np_, duration_s):
        rate_mbps = 60.0 * min(nc, 20) - 30.0 * max(0, nc - 20)
        return max(rate_mbps, 1.0) * 1e6 * duration_s

    def _run(self, journal=None, resume=None, breaker=None):
        return tune_live(
            make_tuner("nm", 7), concurrency_space(max_nc=64), (2,),
            self._runner, epoch_s=30.0, max_epochs=14,
            sleep=lambda s: None,
            fault_schedule=FaultSchedule(
                [FaultEvent(kind=STREAM_CRASH, epoch=4, duration=1)]
            ),
            retry_policy=RetryPolicy(),
            breaker=breaker if breaker is not None else CircuitBreaker(),
            journal=journal, resume=resume,
        )

    def test_live_kill_resume_matches_uninterrupted(self, tmp_path):
        ref = self._run()
        path = tmp_path / "live.jnl"
        with JournalWriter(path) as w:
            self._run(journal=w)
        _truncate_after(path, 6)
        breaker = CircuitBreaker()
        state = resume_live_state(
            path, make_tuner("nm", 7), concurrency_space(max_nc=64), (2,),
            retry_policy=RetryPolicy(), breaker=breaker,
        )
        with JournalWriter(path) as w:
            resumed = self._run(journal=w, resume=state, breaker=breaker)
        assert resumed.epochs == ref.epochs
        assert resumed.params_trajectory() == ref.params_trajectory()
        assert read_journal(path).ended

    def test_live_resume_requires_live_snapshot(self, tmp_path):
        path = tmp_path / "sim.jnl"
        _journaled(path, "nm", seed=0)
        with pytest.raises(ValueError, match="live"):
            resume_live_state(
                path, make_tuner("nm", 0), concurrency_space(max_nc=64),
                (2,),
            )
