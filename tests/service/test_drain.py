"""Graceful-shutdown helpers: signals, in-flight gauge, wait_for."""

import signal
import threading

from repro.service.drain import GracefulSignals, InFlightGauge, wait_for


class TestGracefulSignals:
    def test_sigterm_sets_the_event_and_records_the_signal(self):
        with GracefulSignals() as gs:
            assert not gs.triggered.is_set()
            signal.raise_signal(signal.SIGTERM)
            assert gs.triggered.is_set()
            assert gs.signum == signal.SIGTERM

    def test_sigint_also_drains_instead_of_raising(self):
        with GracefulSignals() as gs:
            signal.raise_signal(signal.SIGINT)  # no KeyboardInterrupt
            assert gs.signum == signal.SIGINT

    def test_on_signal_callback_fires(self):
        seen = []
        with GracefulSignals(on_signal=seen.append):
            signal.raise_signal(signal.SIGTERM)
        assert seen == [signal.SIGTERM]

    def test_previous_handlers_are_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with GracefulSignals():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before

    def test_nesting_restores_in_order(self):
        before = signal.getsignal(signal.SIGTERM)
        with GracefulSignals():
            inner_handler = signal.getsignal(signal.SIGTERM)
            with GracefulSignals():
                signal.raise_signal(signal.SIGTERM)
            assert signal.getsignal(signal.SIGTERM) == inner_handler
        assert signal.getsignal(signal.SIGTERM) == before

    def test_install_off_main_thread_is_a_noop(self):
        before = signal.getsignal(signal.SIGTERM)
        done = threading.Event()

        def off_main():
            gs = GracefulSignals().install()
            gs.restore()
            done.set()

        t = threading.Thread(target=off_main)
        t.start()
        t.join(5.0)
        assert done.is_set()
        assert signal.getsignal(signal.SIGTERM) == before


class TestInFlightGauge:
    def test_counts_and_peak(self):
        gauge = InFlightGauge()
        assert gauge.count == 0
        with gauge:
            with gauge:
                assert gauge.count == 2
        assert gauge.count == 0
        assert gauge.peak == 2

    def test_wait_idle_immediate_when_empty(self):
        assert InFlightGauge().wait_idle(0.01)

    def test_wait_idle_blocks_until_exit(self):
        gauge = InFlightGauge()
        gauge.enter()
        assert not gauge.wait_idle(0.05)  # a wedged handler times out
        released = threading.Event()

        def release():
            gauge.exit()
            released.set()

        t = threading.Timer(0.05, release)
        t.start()
        assert gauge.wait_idle(5.0)
        t.join()
        assert released.is_set()

    def test_exit_never_goes_negative(self):
        gauge = InFlightGauge()
        gauge.exit()
        assert gauge.count == 0
        assert gauge.wait_idle(0.01)


class TestWaitFor:
    def test_true_predicate_returns_fast(self):
        assert wait_for(lambda: True, timeout_s=1.0)

    def test_timeout_returns_false(self):
        assert not wait_for(lambda: False, timeout_s=0.05, poll_s=0.01)

    def test_flips_mid_wait(self):
        flag = threading.Event()
        threading.Timer(0.05, flag.set).start()
        assert wait_for(flag.is_set, timeout_s=5.0, poll_s=0.01)
