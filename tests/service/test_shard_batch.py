"""Batched fleet shards: vectorized windows bit-identical to the scalar loop.

Every test here drives *twin shards* — one batched, one scalar — from
the same seed and asserts the strongest equivalence the substrate
offers: identical epoch records AND identical step traces, tenant by
tenant.  The batched path is an optimization, never a semantic.
"""

from repro.experiments.scenarios import SCENARIOS
from repro.service.shard import FleetShard
from repro.service.tenant import COMPLETED, Tenant, TenantChaos, TenantSpec

EPOCH_S = 5.0


def _shard(batch: bool, *, seed: int = 1) -> FleetShard:
    return FleetShard(SCENARIOS["anl-uc"], seed=seed, dt=1.0,
                      epoch_s=EPOCH_S, batch=batch)


def _tenant(name: str, *, epochs: int = 4, tuner: str = "cd",
            seed: int = 0, chaos: TenantChaos | None = None) -> Tenant:
    spec = TenantSpec(tenant=name, scenario="anl-uc", tuner=tuner,
                      seed=seed, epochs=epochs, supervised=True)
    return Tenant(spec, chaos=chaos)


def _attach_all(shard: FleetShard, tenants: list[Tenant]):
    """Attach and keep the substrate sessions (the shard reaps them on
    completion; the step traces must survive for comparison)."""
    sessions = {}
    for t in tenants:
        shard.attach(t)
        sessions[t.name] = shard.session(t.name)
    return sessions


def _drive(shard: FleetShard, max_rounds: int = 100) -> None:
    for _ in range(max_rounds):
        shard.step_epoch()
        if not shard.active:
            return
    raise AssertionError("shard did not settle")


def _assert_twins_equal(tenants_a, sessions_a, tenants_b, sessions_b):
    for x, y in zip(tenants_a, tenants_b):
        assert x.records == y.records, f"epoch records diverge: {x.name}"
        assert (sessions_a[x.name].trace.steps
                == sessions_b[y.name].trace.steps), (
            f"step traces diverge: {x.name}")
        assert x.state == y.state
        assert x.restarts == y.restarts


def _twin_storm(make_tenants, *, seed: int = 1):
    batched, scalar = _shard(True, seed=seed), _shard(False, seed=seed)
    ta, tb = make_tenants(), make_tenants()
    sa, sb = _attach_all(batched, ta), _attach_all(scalar, tb)
    _drive(batched)
    _drive(scalar)
    _assert_twins_equal(ta, sa, tb, sb)
    return batched, ta


class TestBatchedWindowEquivalence:
    def test_homogeneous_population_fully_batched(self):
        shard, tenants = _twin_storm(lambda: [
            _tenant(f"h{i}", epochs=4, seed=i) for i in range(8)
        ])
        assert all(t.state == COMPLETED for t in tenants)
        occ = shard.occupancy()
        assert occ.fallback == 0
        assert occ.batched > 0
        assert shard.fallback_reasons() == {}

    def test_heterogeneous_tuners_and_staggered_budgets(self):
        """Different tuners and epoch budgets per lane: lane membership
        shrinks as tenants finish, and every rebinned window stays
        bit-identical."""
        shard, _ = _twin_storm(lambda: [
            _tenant(f"t{i}", epochs=3 + (i % 3) * 2,
                    tuner=("cd", "nm", "spsa")[i % 3], seed=i)
            for i in range(8)
        ])
        # The population narrows 8 -> 5 -> 2 as budgets expire; each
        # width must have run at least one span.
        widths = shard.lane_widths()
        assert set(widths) == {8, 5, 2}
        assert shard.occupancy().fallback == 0

    def test_mid_storm_supervised_restart_rebinds_lanes(self):
        """A tenant crash at epoch 2 exercises the supervisor inside a
        batched storm — the restarted lane's replayed dispatch and the
        surviving lanes' windows all stay bit-identical."""
        shard, tenants = _twin_storm(lambda: [
            _tenant(f"c{i}", epochs=5, seed=i,
                    chaos=TenantChaos(crash_epochs=(2,)) if i == 3
                    else None)
            for i in range(8)
        ])
        assert tenants[3].restarts == 1
        assert all(t.state == COMPLETED for t in tenants)
        # The crash lives in the dispatch, not the window: every
        # window still vectorizes.
        assert shard.occupancy().fallback == 0


class TestMixedShardFallback:
    def test_blackout_falls_back_then_rebins(self):
        """An active fault schedule blocks the whole window (lanes are
        coupled through the allocation); once the schedule is inert the
        shard rebins to batched windows — bit-identical throughout."""
        batched, scalar = _shard(True), _shard(False)
        ta = [_tenant(f"b{i}", epochs=5, seed=i) for i in range(8)]
        tb = [_tenant(f"b{i}", epochs=5, seed=i) for i in range(8)]
        sa, sb = _attach_all(batched, ta), _attach_all(scalar, tb)
        for rnd in range(100):
            if rnd == 2:
                batched.inject_blackout(1)
                scalar.inject_blackout(1)
            batched.step_epoch()
            scalar.step_epoch()
            if not batched.active and not scalar.active:
                break
        _assert_twins_equal(ta, sa, tb, sb)
        occ = batched.occupancy()
        assert occ.fallback == 8
        assert occ.batched > 0
        assert batched.fallback_reasons() == {"fault schedule": 8}

    def test_blackout_restart_crash_storm(self):
        """The kitchen sink: blackout round, a supervised crash, and
        staggered budgets in one shard."""
        batched, scalar = _shard(True, seed=3), _shard(False, seed=3)

        def mk():
            return [
                _tenant(f"m{i}", epochs=3 + (i % 2) * 3,
                        tuner=("cd", "nm")[i % 2], seed=i,
                        chaos=TenantChaos(crash_epochs=(1,)) if i == 0
                        else None)
                for i in range(6)
            ]

        ta, tb = mk(), mk()
        sa, sb = _attach_all(batched, ta), _attach_all(scalar, tb)
        for rnd in range(100):
            if rnd == 3:
                batched.inject_blackout(2)
                scalar.inject_blackout(2)
            batched.step_epoch()
            scalar.step_epoch()
            if not batched.active and not scalar.active:
                break
        _assert_twins_equal(ta, sa, tb, sb)
        assert ta[0].restarts == 1
        occ = batched.occupancy()
        assert occ.fallback > 0 and occ.batched > 0
        assert set(batched.fallback_reasons()) == {"fault schedule"}


class TestFallbackReasonDedup:
    def test_multi_window_blocker_counts_each_lane_once(self):
        """A tenant blocked across several consecutive windows tallies
        once per (tenant, reason) — the tally answers "how many lanes
        ever fell back", not "for how many windows"."""
        shard = _shard(True)
        tenants = [_tenant(f"d{i}", epochs=6, seed=i) for i in range(8)]
        _attach_all(shard, tenants)
        shard.step_epoch()
        shard.inject_blackout(3)  # blocks the next three windows
        _drive(shard)
        occ = shard.occupancy()
        assert occ.fallback == 24  # 8 lanes x 3 scalar windows
        assert shard.fallback_reasons() == {"fault schedule": 8}


class TestCrossShardFusion:
    def _fleet(self, *, fusion: bool, batch: bool = True):
        from repro.service import FleetService

        names = ["anl-uc", "anl-tacc"]
        fleet = FleetService(
            {n: SCENARIOS[n] for n in names}, seed=2, dt=1.0,
            epoch_s=EPOCH_S, batch=batch, fusion=fusion,
        )
        i = 0
        for n in names:
            for tuner in ("cd", "nm"):
                i += 1
                fleet.submit({"tenant": f"f{i}", "scenario": n,
                              "tuner": tuner, "seed": i,
                              "epochs": 3 + (i % 2)})
        fleet.drive()
        return fleet

    def test_fused_fleet_is_bit_identical_to_unfused_and_scalar(self):
        fused = self._fleet(fusion=True)
        plain = self._fleet(fusion=False)
        scalar = self._fleet(fusion=False, batch=False)
        for name in fused.tenants:
            a = fused.tenants[name].records
            assert a == plain.tenants[name].records, name
            assert a == scalar.tenants[name].records, name

    def test_fusion_surfaces_in_status_and_metrics(self):
        fleet = self._fleet(fusion=True)
        doc = fleet.status()
        fusion = doc["fusion"]
        assert fusion["enabled"] is True
        assert fusion["rounds"] > 0
        assert fusion["chains"] > 0
        assert fusion["rows"] >= fusion["chains"]
        # Chains stacked rows from both shards at least once.
        assert any(int(w) > 1 for w in fusion["widths"])
        assert set(fusion["phase_s"]) == {"span", "close", "dispatch"}
        for name in ("anl-uc", "anl-tacc"):
            block = doc["batch"][name]
            assert block["fused_epochs"] > 0
            assert block["occupancy"]["fallback"] == 0
        text = fleet.prometheus()
        assert 'repro_fleet_epochs_total' in text
        assert 'path="fused"' in text

    def test_singleton_fleet_never_fuses(self):
        from repro.service import FleetService

        fleet = FleetService({"anl-uc": SCENARIOS["anl-uc"]}, seed=2,
                             dt=1.0, epoch_s=EPOCH_S, fusion=True)
        fleet.submit({"tenant": "solo", "scenario": "anl-uc",
                      "tuner": "cd", "seed": 0, "epochs": 2})
        fleet.drive()
        doc = fleet.status()
        assert doc["fusion"]["rounds"] == 0
        assert doc["batch"]["anl-uc"]["fused_epochs"] == 0
        assert doc["batch"]["anl-uc"]["occupancy"]["batched"] > 0

    def test_blocked_shard_drops_out_of_fusion_then_rejoins(self):
        """A blackout on one shard routes that shard to the scalar
        window while the other keeps batching; trajectories match the
        never-fused twins throughout."""
        from repro.service import FleetService

        def build(fusion):
            names = ["anl-uc", "anl-tacc"]
            fleet = FleetService({n: SCENARIOS[n] for n in names},
                                 seed=4, dt=1.0, epoch_s=EPOCH_S,
                                 batch=fusion, fusion=fusion)
            for i, n in enumerate(names):
                for j in range(3):
                    fleet.submit({"tenant": f"x{i}{j}", "scenario": n,
                                  "tuner": "cd", "seed": 10 * i + j,
                                  "epochs": 5})
            for rnd in range(100):
                if rnd == 1:
                    fleet.inject_blackout("anl-uc", 1)
                fleet.pump()
                if not fleet.active_count():
                    break
            return fleet

        fused = build(True)
        scalar = build(False)
        for name in fused.tenants:
            assert (fused.tenants[name].records
                    == scalar.tenants[name].records), name
        doc = fused.status()
        assert doc["batch"]["anl-uc"]["fallback_reasons"] == {
            "fault schedule": 3}
        # The blacked-out shard still fused before and after the block.
        assert doc["batch"]["anl-uc"]["fused_epochs"] > 0


class TestOccupancySurface:
    def test_scalar_shard_reports_pure_fallback(self):
        shard = _shard(False)
        tenants = [_tenant(f"s{i}", epochs=2, seed=i) for i in range(3)]
        _attach_all(shard, tenants)
        _drive(shard)
        occ = shard.occupancy()
        assert occ.batched == 0
        assert occ.fallback > 0
        assert shard.lane_widths() == {}

    def test_dispatch_groups_label_active_tenants(self):
        shard = _shard(True)
        shard.attach(_tenant("g1", epochs=4, seed=0))
        shard.attach(_tenant("g2", epochs=4, seed=1))
        shard.step_epoch()
        groups = shard.dispatch_groups()
        assert sum(groups.values()) == 2
        assert len(groups) == 1  # same tuner/np/nc spec -> one group

    def test_fleet_status_exposes_batch_block(self):
        from repro.service import FleetService

        fleet = FleetService({"anl-uc": SCENARIOS["anl-uc"]}, seed=1,
                             dt=1.0, epoch_s=EPOCH_S)
        fleet.submit({"tenant": "s1", "scenario": "anl-uc", "tuner": "cd",
                      "seed": 0, "epochs": 2})
        fleet.drive()
        doc = fleet.status()
        assert doc["shards"] == {"anl-uc": 0}
        block = doc["batch"]["anl-uc"]
        assert block["enabled"] is True
        occ = block["occupancy"]
        assert occ["batched"] > 0 and occ["fallback"] == 0
        assert block["fallback_reasons"] == {}
        assert set(block["lane_widths"]) == {"1"}
        assert block["dispatch_groups"] == {}
