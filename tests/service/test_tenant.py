"""Tenant spec and runtime: validation, round-trips, lifecycle."""

import pytest

from repro.service.tenant import (
    CANCELLED,
    COMPLETED,
    QUEUED,
    TERMINAL_STATES,
    Tenant,
    TenantChaos,
    TenantSpec,
)


class TestTenantSpec:
    def test_round_trips_through_dict(self):
        spec = TenantSpec(tenant="t1", scenario="anl-tacc", tuner="nm",
                          seed=7, epochs=12, tune_np=True, max_nc=64,
                          x0=(4, 8), op_deadline_s=1.5)
        clone = TenantSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown tenant spec"):
            TenantSpec.from_dict({"tenant": "t", "color": "red"})

    def test_from_dict_coerces_x0_to_tuple(self):
        spec = TenantSpec.from_dict({"tenant": "t", "x0": [4]})
        assert spec.x0 == (4,)

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(tenant="")
        with pytest.raises(ValueError):
            TenantSpec(tenant="t", epochs=0)
        with pytest.raises(ValueError):
            TenantSpec(tenant="t", tuner="no-such-tuner")

    def test_space_follows_tune_np(self):
        nc_only = TenantSpec(tenant="t", fixed_np=16)
        space, pmap = nc_only.space_and_map()
        assert space.ndim == 1
        assert (pmap.nc((4,)), pmap.np((4,))) == (4, 16)
        joint = TenantSpec(tenant="t", tune_np=True)
        space2, pmap2 = joint.space_and_map()
        assert space2.ndim == 2
        assert (pmap2.nc((4, 8)), pmap2.np((4, 8))) == (4, 8)

    def test_pinned_start_is_the_globus_default(self):
        assert TenantSpec(tenant="t").pinned_start() == (2,)
        assert TenantSpec(tenant="t", tune_np=True).pinned_start() == (2, 8)

    def test_explicit_x0_wins(self):
        assert TenantSpec(tenant="t", x0=(9,)).start_point() == (9,)


class TestTenantRuntime:
    def test_live_tenant_builds_a_driver(self):
        tenant = Tenant(TenantSpec(tenant="t", tuner="cd"))
        assert tenant.state == QUEUED
        assert tenant.driver is not None
        assert tenant.restart_each_epoch  # paper tuners relaunch
        assert tenant.driver.current == tenant.x0

    def test_degraded_tenant_is_pinned_without_a_driver(self):
        tenant = Tenant(TenantSpec(tenant="t"), degraded=True)
        assert tenant.driver is None
        assert not tenant.restart_each_epoch  # set-and-hold
        assert tenant.x0 == (2,)

    def test_static_tuner_does_not_restart_each_epoch(self):
        tenant = Tenant(TenantSpec(tenant="t", tuner="default"))
        assert not tenant.restart_each_epoch

    def test_finish_is_idempotent_and_keeps_the_first_reason(self):
        tenant = Tenant(TenantSpec(tenant="t"))
        tenant.finish(COMPLETED, "budget")
        tenant.finish(CANCELLED, "late-cancel")
        assert tenant.state == COMPLETED
        assert tenant.reason == "budget"
        assert tenant.terminal

    def test_finish_rejects_non_terminal_states(self):
        tenant = Tenant(TenantSpec(tenant="t"))
        with pytest.raises(ValueError):
            tenant.finish(QUEUED, "nope")

    def test_status_document_shape(self):
        tenant = Tenant(TenantSpec(tenant="t", epochs=5),
                        chaos=TenantChaos(crash_epochs=(1,)))
        doc = tenant.status()
        assert doc["tenant"] == "t"
        assert doc["state"] == QUEUED
        assert doc["epochs_budget"] == 5
        assert doc["epochs_done"] == 0
        assert doc["last_params"] is None
        assert doc["updates_dropped"] == 0

    def test_terminal_states_all_carry_through(self):
        for state in TERMINAL_STATES:
            tenant = Tenant(TenantSpec(tenant="t"))
            tenant.finish(state, f"because-{state}")
            assert tenant.terminal
            assert tenant.status()["reason"] == f"because-{state}"
