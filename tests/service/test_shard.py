"""The fleet shard: shared substrate, epoch sink, robustness ladder."""

import pytest

from repro.core.registry import make_tuner
from repro.experiments.scenarios import SCENARIOS
from repro.obs.metrics import MetricsRegistry
from repro.service.shard import FleetShard
from repro.service.tenant import (
    CANCELLED,
    COMPLETED,
    FAILED,
    RUNNING,
    Tenant,
    TenantChaos,
    TenantSpec,
)
from repro.sim.engine import Engine, EngineConfig
from repro.sim.session import TransferSession

EPOCH_S = 5.0


def _shard(*, seed: int = 1, metrics=None) -> FleetShard:
    return FleetShard(SCENARIOS["anl-uc"], seed=seed, dt=1.0,
                      epoch_s=EPOCH_S, metrics=metrics)


def _tenant(name: str = "t1", *, epochs: int = 4, tuner: str = "cd",
            seed: int = 0, chaos: TenantChaos | None = None,
            supervised: bool = True, degraded: bool = False) -> Tenant:
    spec = TenantSpec(tenant=name, scenario="anl-uc", tuner=tuner,
                      seed=seed, epochs=epochs, supervised=supervised)
    return Tenant(spec, degraded=degraded, chaos=chaos)


def _drive(shard: FleetShard, max_rounds: int = 100) -> list[Tenant]:
    done: list[Tenant] = []
    for _ in range(max_rounds):
        done.extend(shard.step_epoch())
        if not shard.active:
            return done
    raise AssertionError("shard did not settle")


def _reference_records(*, name: str, epochs: int, tuner: str,
                       tuner_seed: int, engine_seed: int):
    """The same tenant run as a classic driver-owned session on its own
    engine — the ground truth the sink-driven path must match."""
    import math

    from repro.endpoint.load import ExternalLoad, LoadSchedule
    from repro.gridftp.transfer import TransferSpec

    scenario = SCENARIOS["anl-uc"]
    spec = TenantSpec(tenant=name, tuner=tuner, seed=tuner_seed,
                      epochs=epochs)
    space, pmap = spec.space_and_map()
    session = TransferSession(
        TransferSpec(name=name, path_name=scenario.main_path,
                     total_bytes=math.inf,
                     max_duration_s=epochs * EPOCH_S, epoch_s=EPOCH_S),
        make_tuner(tuner, tuner_seed), space, spec.start_point(),
        param_map=pmap,
    )
    engine = Engine(
        topology=scenario.build_topology(), host=scenario.host,
        sessions=[session],
        schedule=LoadSchedule.constant(ExternalLoad()),
        config=EngineConfig(dt=1.0, seed=engine_seed),
    )
    engine.run()
    return list(session.trace.epochs)


class TestShardLifecycle:
    def test_tenant_completes_with_full_records(self):
        shard = _shard()
        tenant = _tenant(epochs=3)
        shard.attach(tenant)
        assert tenant.state == RUNNING
        done = _drive(shard)
        assert done == [tenant]
        assert tenant.state == COMPLETED
        assert tenant.reason == "epoch-budget-reached"
        assert [r.index for r in tenant.records] == [0, 1, 2]

    def test_duplicate_attach_rejected(self):
        shard = _shard()
        shard.attach(_tenant("dup"))
        with pytest.raises(ValueError, match="already on this shard"):
            shard.attach(_tenant("dup"))

    def test_sink_tenant_matches_a_driver_owned_session(self):
        """The engine-refactor crux: a sink-driven fleet tenant produces
        the bit-identical epoch trajectory of a classic driver session
        on the same substrate seed."""
        shard = _shard(seed=1)
        tenant = _tenant("solo", epochs=5)
        shard.attach(tenant)
        _drive(shard)
        reference = _reference_records(name="solo", epochs=5, tuner="cd",
                                       tuner_seed=0, engine_seed=1)
        assert tenant.records == reference

    def test_degraded_tenant_holds_the_safe_default(self):
        shard = _shard()
        tenant = _tenant("pinned", epochs=3, degraded=True)
        shard.attach(tenant)
        _drive(shard)
        assert tenant.state == COMPLETED
        assert all(r.params == (2,) for r in tenant.records)

    def test_cancel_marks_the_session_and_reaps(self):
        shard = _shard()
        tenant = _tenant("c", epochs=50)
        shard.attach(tenant)
        shard.step_epoch()
        tenant.finish(CANCELLED, "cancel-requested")
        shard.cancel("c")
        done = _drive(shard)
        assert done == [tenant]
        assert tenant.state == CANCELLED
        assert tenant.reason == "cancel-requested"

    def test_latency_histogram_is_recorded(self):
        metrics = MetricsRegistry()
        shard = _shard(metrics=metrics)
        shard.attach(_tenant(epochs=2))
        _drive(shard)
        fam = metrics.collect()["repro_fleet_epoch_latency_seconds"]
        hist = next(iter(fam.values()))
        assert hist.count >= 1


class TestRobustnessLadder:
    def test_poisoned_observation_is_quarantined(self):
        shard = _shard()
        tenant = _tenant("p", epochs=4,
                         chaos=TenantChaos(poison_epochs=(1,)))
        shard.attach(tenant)
        _drive(shard)
        assert tenant.state == COMPLETED
        assert tenant.quarantined == 1
        assert tenant.skipped == {1}

    def test_unsupervised_crash_fails_the_tenant(self):
        shard = _shard()
        tenant = _tenant("u", epochs=6, supervised=False,
                         chaos=TenantChaos(crash_epochs=(1,)))
        shard.attach(tenant)
        _drive(shard)
        assert tenant.state == FAILED
        assert tenant.reason == "tuner-crash: InjectedCrash"

    def test_supervised_crash_restarts_bit_identically(self):
        """The acceptance-storm invariant: a crashed-and-restarted
        supervised tenant's records equal its crash-free twin's."""
        crashed_shard = _shard(seed=1)
        crashed = _tenant("twin", epochs=6,
                          chaos=TenantChaos(crash_epochs=(1, 3)))
        crashed_shard.attach(crashed)
        _drive(crashed_shard)

        clean_shard = _shard(seed=1)
        clean = _tenant("twin", epochs=6)
        clean_shard.attach(clean)
        _drive(clean_shard)

        assert crashed.state == COMPLETED
        assert crashed.restarts == 2
        assert crashed.records == clean.records

    def test_restart_failure_fails_the_tenant(self, monkeypatch):
        shard = _shard()
        tenant = _tenant("rf", epochs=6,
                         chaos=TenantChaos(crash_epochs=(1,)))
        shard.attach(tenant)

        def broken_restart(t):
            raise RuntimeError("supervisor down")

        monkeypatch.setattr(shard.supervisor, "restart", broken_restart)
        _drive(shard)
        assert tenant.state == FAILED
        assert tenant.reason.startswith("restart-failed:")

    def test_dispatch_error_backstop_isolates_the_shard(self, monkeypatch):
        shard = _shard()
        bad = _tenant("bad", epochs=50)
        good = _tenant("good", epochs=3)
        shard.attach(bad)
        shard.attach(good)

        orig = shard._dispatch

        def exploding(tenant, rec):
            if tenant.name == "bad":
                raise RuntimeError("sink bug")
            return orig(tenant, rec)

        monkeypatch.setattr(shard, "_dispatch", exploding)
        _drive(shard)
        assert bad.state == FAILED
        assert bad.reason == "dispatch-error: RuntimeError"
        assert good.state == COMPLETED  # isolation: the shard survived

    def test_blackout_faults_epochs_without_failing_tenants(self):
        shard = _shard()
        tenant = _tenant("b", epochs=5)
        shard.attach(tenant)
        shard.step_epoch()
        shard.inject_blackout(duration_epochs=1)
        _drive(shard)
        assert tenant.state == COMPLETED
        assert tenant.faulted_epochs >= 1
        assert len(tenant.records) == 5

    def test_steer_override_adopted_after_the_tuner_observes(self):
        shard = _shard()
        tenant = _tenant("s", epochs=5)
        shard.attach(tenant)
        shard.step_epoch()
        tenant.steer_override = (37,)
        shard.step_epoch()  # the steered proposal governs epoch 2
        _drive(shard)
        assert tenant.steered
        assert tenant.records[2].params == (37,)
