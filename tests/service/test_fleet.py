"""The fleet service: submit/observe/steer/cancel, pump rounds, drain."""

import pytest

from repro.checkpoint.journal import read_journal
from repro.experiments.scenarios import SCENARIOS
from repro.service import FleetService
from repro.service.admission import REASON_DRAINING
from repro.service.tenant import (
    CANCELLED,
    COMPLETED,
    DRAINED,
    QUEUED,
    SHED,
    TenantChaos,
)


def _fleet(**kw) -> FleetService:
    kw.setdefault("scenarios", {"anl-uc": SCENARIOS["anl-uc"]})
    kw.setdefault("epoch_s", 5.0)
    kw.setdefault("dt", 1.0)
    return FleetService(**kw)


def _spec(name: str, **kw) -> dict:
    kw.setdefault("tenant", name)
    kw.setdefault("scenario", "anl-uc")
    kw.setdefault("epochs", 3)
    return kw


class TestSubmit:
    def test_admit_run_complete(self):
        fleet = _fleet()
        doc = fleet.submit(_spec("t1"))
        assert doc["admitted"] and not doc["degraded"]
        fleet.drive()
        status = fleet.observe("t1")
        assert status["state"] == COMPLETED
        assert status["epochs_done"] == 3
        assert status["reason"] == "epoch-budget-reached"

    def test_unknown_scenario_is_an_error(self):
        fleet = _fleet()
        with pytest.raises(ValueError, match="unknown scenario"):
            fleet.submit(_spec("t1", scenario="mars-base"))

    def test_duplicate_tenant_is_shed_with_reason(self):
        fleet = _fleet()
        fleet.submit(_spec("t1"))
        doc = fleet.submit(_spec("t1"))
        assert not doc["admitted"]
        assert doc["reason"] == "duplicate-tenant"
        # The original decision stays on file.
        assert fleet.decisions["t1"]["admitted"]

    def test_queueing_beyond_capacity(self):
        fleet = _fleet(capacity=1, queue_limit=4)
        assert fleet.submit(_spec("a"))["admitted"]
        assert fleet.submit(_spec("b"))["queued"]
        assert fleet.observe("b")["state"] == QUEUED
        fleet.drive()
        assert fleet.observe("a")["state"] == COMPLETED
        assert fleet.observe("b")["state"] == COMPLETED

    def test_shed_beyond_the_queue(self):
        fleet = _fleet(capacity=1, queue_limit=0)
        fleet.submit(_spec("a"))
        doc = fleet.submit(_spec("b"))
        assert doc["reason"] == "queue-full"
        assert fleet.observe("b")["state"] == SHED
        assert fleet.observe("b")["reason"] == "queue-full"

    def test_observe_unknown_raises(self):
        with pytest.raises(KeyError):
            _fleet().observe("ghost")

    def test_sustained_overload_degrades_late_admits(self):
        fleet = _fleet(capacity=1, queue_limit=0)
        fleet.submit(_spec("a", epochs=30))
        for _ in range(2):  # two shedding rounds trip the breaker
            fleet.submit(_spec(f"x{fleet.round}"))
            fleet.pump()
        assert fleet.admission.degrading
        fleet.cancel("a")
        fleet.pump()  # reap the cancelled tenant, free capacity
        doc = fleet.submit(_spec("late"))
        assert doc["admitted"] and doc["degraded"]
        tenant = fleet.tenants["late"]
        assert tenant.degraded and tenant.driver is None
        fleet.drive()
        assert all(r.params == (2,) for r in tenant.records)


class TestSteerAndCancel:
    def test_steer_overrides_the_next_clean_epoch(self):
        fleet = _fleet()
        fleet.submit(_spec("t1", epochs=5))
        fleet.pump()
        doc = fleet.steer("t1", (37,))
        assert doc["params"] == [37]
        fleet.drive()
        tenant = fleet.tenants["t1"]
        assert tenant.steered
        assert any(r.params == (37,) for r in tenant.records)

    def test_steer_clamps_to_the_domain(self):
        fleet = _fleet()
        fleet.submit(_spec("t1", epochs=4))
        doc = fleet.steer("t1", (10**9,))
        assert doc["params"][0] <= 512

    def test_steer_rejects_degraded_and_terminal(self):
        fleet = _fleet(capacity=1, queue_limit=0)
        fleet.submit(_spec("a", epochs=30))
        for _ in range(2):
            fleet.submit(_spec(f"x{fleet.round}"))
            fleet.pump()
        fleet.cancel("a")
        fleet.pump()
        fleet.submit(_spec("pinned"))
        with pytest.raises(ValueError, match="degraded-pinned"):
            fleet.steer("pinned", (8,))
        with pytest.raises(ValueError):
            fleet.steer("a", (8,))  # terminal
        with pytest.raises(KeyError):
            fleet.steer("ghost", (8,))

    def test_cancel_running(self):
        fleet = _fleet()
        fleet.submit(_spec("t1", epochs=50))
        fleet.pump()
        doc = fleet.cancel("t1")
        assert doc["state"] == CANCELLED
        fleet.drive()
        assert fleet.observe("t1")["state"] == CANCELLED
        assert fleet.observe("t1")["reason"] == "cancel-requested"

    def test_cancel_queued_before_admit(self):
        fleet = _fleet(capacity=1, queue_limit=4)
        fleet.submit(_spec("a", epochs=4))
        fleet.submit(_spec("b"))
        doc = fleet.cancel("b")
        assert doc["state"] == CANCELLED
        fleet.drive()
        assert fleet.observe("b")["state"] == SHED
        assert fleet.observe("b")["reason"] == "cancelled"

    def test_cancel_unknown_raises(self):
        with pytest.raises(KeyError):
            _fleet().cancel("ghost")

    def test_cancel_terminal_is_a_noop(self):
        fleet = _fleet()
        fleet.submit(_spec("t1"))
        fleet.drive()
        assert fleet.cancel("t1")["state"] == COMPLETED


class TestDrain:
    def test_drain_sheds_queue_and_drains_active(self):
        fleet = _fleet(capacity=1, queue_limit=4)
        fleet.submit(_spec("run", epochs=50))
        fleet.submit(_spec("wait"))
        fleet.pump()
        result = fleet.drain()
        assert result == {"drained": 1, "shed": 1}
        assert fleet.observe("run")["state"] == DRAINED
        assert fleet.observe("run")["reason"] == "service-drained"
        assert fleet.observe("wait")["state"] == SHED
        assert fleet.observe("wait")["reason"] == REASON_DRAINING

    def test_drain_is_idempotent_and_closes_admission(self):
        fleet = _fleet()
        fleet.submit(_spec("t1"))
        fleet.drive()
        fleet.drain()
        assert fleet.drain() == {"drained": 0, "shed": 0}
        doc = fleet.submit(_spec("late"))
        assert doc["reason"] == REASON_DRAINING
        with pytest.raises(RuntimeError):
            fleet.pump()

    def test_mid_epoch_drain_finishes_the_epoch(self):
        fleet = _fleet()
        fleet.submit(_spec("t1", epochs=4))
        fleet.pump()
        shard = fleet.shards["anl-uc"]
        shard.engine.step_once()  # leave the session mid-epoch
        assert shard.mid_epoch()
        fleet.drain()
        tenant = fleet.tenants["t1"]
        assert tenant.state == DRAINED
        # The in-flight epoch was finished, not torn.
        assert all(r.duration == 5.0 for r in tenant.records)


class TestJournalAndStatus:
    def test_journal_records_epochs_and_sections(self, tmp_path):
        path = tmp_path / "fleet.jnl"
        fleet = _fleet(journal_path=path)
        fleet.submit(_spec("t1", epochs=2))
        fleet.drive()
        fleet.drain()
        journal = read_journal(path)
        assert journal.ended
        assert journal.header["service"] == "fleet"
        assert {e.session for e in journal.epochs} == {"t1"}
        assert "admit" in journal.sections and "drain" in journal.sections

    def test_status_document(self):
        fleet = _fleet()
        fleet.submit(_spec("t1", epochs=2))
        fleet.drive()
        doc = fleet.status()
        assert doc["states"] == {COMPLETED: 1}
        assert doc["active"] == 0
        assert doc["breaker"] == "closed"
        # The final epoch is harvested at reap (never dispatched), so a
        # 2-epoch tenant leaves one sink-latency observation.
        assert doc["epoch_latency"]["count"] >= 1
        assert doc["epoch_latency"]["p99_s"] >= 0.0
        assert doc["shards"] == {"anl-uc": 0}

    def test_prometheus_exposition(self):
        fleet = _fleet()
        fleet.submit(_spec("t1", epochs=2))
        fleet.submit(_spec("t1"))  # duplicate -> shed counter
        fleet.drive()
        text = fleet.prometheus()
        assert "repro_fleet_tenants_total" in text
        assert 'repro_fleet_admitted_total{mode="normal"}' in text
        assert 'repro_fleet_shed_total{reason="duplicate-tenant"}' in text

    def test_restart_metric_and_supervision_through_the_fleet(self):
        fleet = _fleet()
        fleet.submit(_spec("t1", epochs=4),
                     chaos=TenantChaos(crash_epochs=(1,)))
        fleet.drive()
        assert fleet.observe("t1")["state"] == COMPLETED
        assert fleet.observe("t1")["restarts"] == 1
        assert "repro_fleet_restarts_total" in fleet.prometheus()

    def test_blackout_through_the_fleet(self):
        fleet = _fleet()
        fleet.submit(_spec("t1", epochs=4))
        fleet.pump()
        fleet.inject_blackout("anl-uc", 1)
        fleet.drive()
        assert fleet.observe("t1")["state"] == COMPLETED
        assert fleet.observe("t1")["faulted_epochs"] >= 1

    def test_needs_at_least_one_scenario(self):
        with pytest.raises(ValueError):
            FleetService({})
