"""Backpressure primitives: op deadlines and the bounded update ring."""

import threading
import time

import pytest

from repro.service import BoundedRing, OpDeadlineError, OpGuard


class TestOpGuard:
    def test_no_deadline_runs_inline(self):
        guard = OpGuard(None)
        ident = guard.call("who", threading.get_ident)
        assert ident == threading.get_ident()

    def test_deadline_returns_the_result(self):
        assert OpGuard(5.0).call("op", lambda: 42) == 42

    def test_deadline_overrun_raises(self):
        guard = OpGuard(0.05)
        with pytest.raises(OpDeadlineError) as err:
            guard.call("wedged-tuner", lambda: time.sleep(2.0))
        assert err.value.op == "wedged-tuner"
        assert err.value.deadline_s == 0.05

    def test_deadline_error_is_a_timeout(self):
        assert issubclass(OpDeadlineError, TimeoutError)

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            OpGuard(5.0).call("boom", lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            OpGuard(None).call("boom", lambda: 1 / 0)

    def test_nested_guard_runs_inline_on_the_pool(self):
        """A guarded call that itself guards must not deadlock on a
        saturated pool — the inner call runs inline."""
        inner = OpGuard(1.0)
        outer = OpGuard(5.0)

        def nested():
            worker = threading.get_ident()
            return worker == inner.call("inner", threading.get_ident)

        assert outer.call("outer", nested)

    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError):
            OpGuard(0.0)
        with pytest.raises(ValueError):
            OpGuard(-1.0)


class TestBoundedRing:
    def test_push_and_drain_fifo(self):
        ring = BoundedRing(4)
        for i in range(3):
            ring.push(i)
        assert len(ring) == 3
        assert ring.drain() == [0, 1, 2]
        assert len(ring) == 0

    def test_overflow_drops_the_oldest_and_counts(self):
        ring = BoundedRing(2)
        for i in range(5):
            ring.push(i)
        assert ring.drain() == [3, 4]
        assert ring.dropped == 3
        assert ring.pushed == 5

    def test_latest_does_not_consume(self):
        ring = BoundedRing(3)
        assert ring.latest() is None
        ring.push("a")
        ring.push("b")
        assert ring.latest() == "b"
        assert ring.drain() == ["a", "b"]

    def test_producer_never_blocks_under_a_stalled_consumer(self):
        ring = BoundedRing(8)
        t0 = time.monotonic()
        for i in range(10_000):  # no consumer at all
            ring.push(i)
        assert time.monotonic() - t0 < 2.0
        assert ring.dropped == 10_000 - 8

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BoundedRing(0)
