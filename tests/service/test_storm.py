"""The acceptance storm: crashes, bursts, and a shard blackout at once.

The ISSUE's gate for the fleet service: a seeded storm — admission
burst beyond capacity, injected tuner crashes, poisoned observations,
and a shard blackout — must end with zero unhandled exceptions, every
accepted tenant completed (or shed with a recorded reason), and every
supervised restart bit-identical: the crashed fleet's epochs AND
engine steps equal a twin fleet's that never crashed.
"""

import pytest

from repro.experiments.scenarios import SCENARIOS
from repro.service import FleetService
from repro.service.tenant import (
    COMPLETED,
    FAILED,
    SHED,
    TERMINAL_STATES,
    TenantChaos,
)


def _storm_fleet(*, capacity: int, queue_limit: int,
                 epoch_s: float = 5.0) -> FleetService:
    return FleetService(
        {name: SCENARIOS[name] for name in ("anl-uc", "anl-tacc")},
        capacity=capacity, queue_limit=queue_limit,
        epoch_s=epoch_s, dt=1.0, seed=0,
    )


def _storm_specs(n: int, *, epochs: int):
    """n tenant specs cycling scenarios and tuners, deterministic."""
    scenarios = ("anl-uc", "anl-tacc")
    tuners = ("cd", "nm", "spsa")
    return [
        {
            "tenant": f"tenant-{i:03d}",
            "scenario": scenarios[i % 2],
            "tuner": tuners[i % 3],
            "seed": i,
            "epochs": epochs,
        }
        for i in range(n)
    ]


def _chaos_for(i: int, *, epochs: int, crashes: bool) -> TenantChaos | None:
    """20% of tenants crash mid-run; every 7th gets one poisoned epoch.
    Poison stays in the twin (it changes what the tuner sees); crashes
    are what the twin omits (restarts must be invisible)."""
    crash = (i % 5 == 0) and crashes
    poison = i % 7 == 3
    if not crash and not poison:
        return None
    # The final epoch is harvested at reap (never dispatched), so a
    # crash there would be a no-op: keep crashes within 1..epochs-2.
    return TenantChaos(
        crash_epochs=(1 + i % max(1, epochs - 2),) if crash else (),
        poison_epochs=(2,) if poison else (),
    )


def _run_storm(*, n: int, capacity: int, queue_limit: int, epochs: int,
               crashes: bool, blackout_round: int,
               epoch_s: float = 5.0, late_waves: int = 0,
               late_per_round: int = 4):
    """Submit the burst, inject the blackout, drive to quiescence.
    ``late_waves`` rounds of extra arrivals sustain the overload so the
    admission breaker sees consecutive shedding rounds.  Returns
    (fleet, sessions): sessions captured at admit time so their step
    traces survive the reap."""
    fleet = _storm_fleet(capacity=capacity, queue_limit=queue_limit,
                         epoch_s=epoch_s)
    sessions = {}

    def capture():
        for shard in fleet.shards.values():
            for name, session in shard._sessions.items():
                sessions.setdefault(name, session)

    for i, spec in enumerate(_storm_specs(n, epochs=epochs)):
        fleet.submit(spec, chaos=_chaos_for(i, epochs=epochs,
                                            crashes=crashes))
    capture()
    rounds = 0
    while fleet.active_count() or fleet.admission.queued():
        fleet.pump()
        capture()
        rounds += 1
        if rounds <= late_waves:
            for j in range(late_per_round):
                fleet.submit({
                    "tenant": f"late-{rounds:02d}-{j}",
                    "scenario": "anl-uc", "epochs": epochs,
                })
        if rounds == blackout_round:
            fleet.inject_blackout("anl-uc", 1)
        assert rounds < 10_000, "storm did not settle"
    return fleet, sessions


def _audit(fleet: FleetService, n: int) -> dict:
    """The storm's universal postconditions; returns state counts."""
    states: dict[str, int] = {}
    for i in range(n):
        name = f"tenant-{i:03d}"
        doc = fleet.observe(name)
        state = doc["state"]
        states[state] = states.get(state, 0) + 1
        assert state in TERMINAL_STATES, f"{name} still {state}"
        if state != COMPLETED:
            assert doc["reason"], f"{name} {state} without a reason"
        if state == COMPLETED:
            assert doc["epochs_done"] == doc["epochs_budget"]
    assert states.get(FAILED, 0) == 0, "supervised restarts must succeed"
    return states


class TestQuickStorm:
    """The CI-sized storm: 20 tenants, ~3x burst, crashes, blackout."""

    N = 20
    CAPACITY = 4
    QUEUE = 8
    EPOCHS = 4

    def _run(self, *, crashes: bool):
        return _run_storm(n=self.N, capacity=self.CAPACITY,
                          queue_limit=self.QUEUE, epochs=self.EPOCHS,
                          crashes=crashes, blackout_round=2)

    def test_storm_settles_with_reasons_everywhere(self):
        fleet, _ = self._run(crashes=True)
        states = _audit(fleet, self.N)
        assert states.get(SHED, 0) >= self.N - self.CAPACITY - self.QUEUE
        assert states.get(COMPLETED, 0) >= self.CAPACITY
        assert fleet.supervisor.restarts > 0
        # Shed decisions carry machine-readable reasons.
        for doc in fleet.decisions.values():
            if not doc["admitted"] and not doc["queued"]:
                assert doc["reason"]

    def test_crashed_fleet_is_bit_identical_to_its_twin(self):
        """Supervised restarts are invisible: the crashed fleet's
        per-tenant epochs AND engine steps equal the crash-free twin's."""
        crashed_fleet, crashed_sessions = self._run(crashes=True)
        twin_fleet, twin_sessions = self._run(crashes=False)
        assert crashed_fleet.supervisor.restarts > 0
        assert twin_fleet.supervisor.restarts == 0
        for i in range(self.N):
            name = f"tenant-{i:03d}"
            a = crashed_fleet.observe(name)
            b = twin_fleet.observe(name)
            assert a["state"] == b["state"], name
            ta = crashed_fleet.tenants.get(name)
            tb = twin_fleet.tenants.get(name)
            if ta is None:
                continue  # shed in both (same admission trajectory)
            assert ta.records == tb.records, f"{name}: epochs diverged"
            sa = crashed_sessions.get(name)
            sb = twin_sessions.get(name)
            if sa is not None and sb is not None:
                assert sa.trace.steps == sb.trace.steps, (
                    f"{name}: engine steps diverged"
                )


@pytest.mark.slow
class TestAcceptanceStorm:
    """The full ISSUE gate: a 200-tenant seeded storm."""

    N = 200
    CAPACITY = 48
    QUEUE = 64
    EPOCHS = 4

    def test_200_tenant_storm(self):
        fleet, sessions = _run_storm(
            n=self.N, capacity=self.CAPACITY, queue_limit=self.QUEUE,
            epochs=self.EPOCHS, crashes=True, blackout_round=2,
            epoch_s=2.0, late_waves=3,
        )
        states = _audit(fleet, self.N)
        # The 3x burst sheds the overflow with reasons...
        assert states.get(SHED, 0) >= self.N - self.CAPACITY - self.QUEUE
        # ...crashes were absorbed by supervised restarts...
        assert fleet.supervisor.restarts >= 8
        # ...the blackout faulted epochs without failing tenants...
        faulted = sum(t.faulted_epochs for t in fleet.tenants.values())
        assert faulted > 0
        # ...the late arrival waves were shed (or queued) with recorded
        # terminal states, never dropped on the floor...
        late = [k for k in fleet.decisions if k.startswith("late-")]
        assert late
        for name in late:
            doc = fleet.observe(name)
            assert doc["state"] in TERMINAL_STATES
            if doc["state"] != COMPLETED:
                assert doc["reason"]
        # ...and sustained overload tripped the admission breaker
        # (consecutive shedding rounds >> capacity).
        text = fleet.prometheus()
        assert "repro_fleet_breaker_transitions_total" in text
        # Restart bit-identity, sampled against per-tenant twins: every
        # crashed tenant's records replay to the same driver state.
        from repro.service.supervisor import rebuild_driver

        crashed = [t for t in fleet.tenants.values() if t.restarts > 0]
        assert crashed
        for tenant in crashed[:10]:
            rebuilt = rebuild_driver(tenant.spec, tenant.records,
                                     tenant.skipped,
                                     steered=tenant.steered)
            assert rebuilt.current is not None
