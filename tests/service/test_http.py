"""The HTTP front end: FleetServer endpoints and FleetClient mapping."""

import pytest

from repro.experiments.scenarios import SCENARIOS
from repro.service import (
    FleetApiError,
    FleetClient,
    FleetServer,
    FleetService,
)
from repro.service.tenant import CANCELLED, COMPLETED


def _fleet(**kw) -> FleetService:
    kw.setdefault("scenarios", {"anl-uc": SCENARIOS["anl-uc"]})
    kw.setdefault("epoch_s", 5.0)
    kw.setdefault("dt", 1.0)
    return FleetService(**kw)


@pytest.fixture()
def served():
    fleet = _fleet()
    with FleetServer(fleet) as server:
        yield FleetClient(server.url), server


class TestEndpoints:
    def test_submit_observe_complete(self, served):
        client, _ = served
        doc = client.submit({"tenant": "t1", "epochs": 3})
        assert doc["admitted"]
        final = client.wait_terminal("t1", timeout_s=60.0)
        assert final["state"] == COMPLETED
        assert final["epochs_done"] == 3

    def test_submit_with_chaos_restarts(self, served):
        client, _ = served
        client.submit({"tenant": "c1", "epochs": 4},
                      chaos={"crash_epochs": [1]})
        final = client.wait_terminal("c1", timeout_s=60.0)
        assert final["state"] == COMPLETED
        assert final["restarts"] == 1

    def test_bad_spec_is_a_400(self, served):
        client, _ = served
        with pytest.raises(FleetApiError) as err:
            client.submit({"tenant": "t", "tuner": "nope"})
        assert err.value.status == 400
        with pytest.raises(FleetApiError) as err:
            client.submit({"tenant": "t", "shoe_size": 44})
        assert err.value.status == 400

    def test_unknown_tenant_is_a_404(self, served):
        client, _ = served
        for call in (lambda: client.observe("ghost"),
                     lambda: client.cancel("ghost"),
                     lambda: client.steer("ghost", (4,))):
            with pytest.raises(FleetApiError) as err:
                call()
            assert err.value.status == 404

    def test_steer_terminal_is_a_409(self, served):
        client, _ = served
        client.submit({"tenant": "t1", "epochs": 2})
        client.wait_terminal("t1", timeout_s=60.0)
        with pytest.raises(FleetApiError) as err:
            client.steer("t1", (4,))
        assert err.value.status == 409

    def test_cancel_round_trip(self, served):
        client, _ = served
        client.submit({"tenant": "t1", "epochs": 1000})
        doc = client.cancel("t1")
        assert doc["state"] == CANCELLED

    def test_status_metrics_health(self, served):
        client, _ = served
        client.submit({"tenant": "t1", "epochs": 2})
        client.wait_terminal("t1", timeout_s=60.0)
        status = client.status()
        assert status["drained"] is False
        assert status["states"].get(COMPLETED) == 1
        assert "repro_fleet_admitted_total" in client.metrics_text()
        assert client.health() == {"status": "ok"}

    def test_unknown_path_is_a_404(self, served):
        client, _ = served
        with pytest.raises(FleetApiError) as err:
            client._request("GET", "/v2/everything")
        assert err.value.status == 404

    def test_wait_terminal_times_out(self, served):
        client, _ = served
        client.submit({"tenant": "slow", "epochs": 100000})
        with pytest.raises(TimeoutError):
            client.wait_terminal("slow", timeout_s=0.2, poll_s=0.05)


class TestDrainProtocol:
    def test_post_drain_drains_and_reports(self):
        fleet = _fleet()
        server = FleetServer(fleet).start()
        try:
            client = FleetClient(server.url)
            client.submit({"tenant": "t1", "epochs": 2})
            assert client.drain() == {"status": "draining"}
        finally:
            server.drain_and_stop()
        assert fleet.drained
        # Every admitted tenant ended in a terminal state with a reason.
        doc = fleet.observe("t1")
        assert doc["state"] in (COMPLETED, "drained")
        assert doc["reason"]

    def test_context_manager_drains_on_exit(self):
        fleet = _fleet()
        with FleetServer(fleet) as server:
            FleetClient(server.url).submit({"tenant": "t1", "epochs": 2})
        assert fleet.drained

    def test_pace_validation(self):
        with pytest.raises(ValueError):
            FleetServer(_fleet(), pace_s=-1.0)
