"""Admission control: token bucket, bounded queue, overload breaker."""

import pytest

from repro.faults.breaker import CLOSED, OPEN
from repro.service import AdmissionController, TokenBucket
from repro.service.admission import (
    REASON_DRAINING,
    REASON_QUEUE_FULL,
)
from repro.service.tenant import TenantSpec


def _spec(name: str) -> TenantSpec:
    return TenantSpec(tenant=name, epochs=2)


class TestTokenBucket:
    def test_unlimited_when_rate_is_none(self):
        bucket = TokenBucket(None)
        assert all(bucket.try_take(0.0) for _ in range(100))

    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)   # burst exhausted
        assert not bucket.try_take(0.5)   # half a token accrued
        assert bucket.try_take(1.5)       # 1.5 tokens accrued by now
        assert not bucket.try_take(1.5)

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            assert bucket.try_take(1000.0)
        assert not bucket.try_take(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmission:
    def test_admits_up_to_capacity_then_queues(self):
        adm = AdmissionController(capacity=2, queue_limit=2)
        d1 = adm.submit(_spec("a"), 0.0)
        d2 = adm.submit(_spec("b"), 0.0)
        d3 = adm.submit(_spec("c"), 0.0)
        assert d1.admitted and d2.admitted
        assert d3.queued and not d3.admitted
        assert adm.running == 2 and adm.queued() == 1

    def test_sheds_with_reason_beyond_the_queue_bound(self):
        adm = AdmissionController(capacity=1, queue_limit=1)
        adm.submit(_spec("a"), 0.0)
        adm.submit(_spec("b"), 0.0)
        d = adm.submit(_spec("c"), 0.0)
        assert not d.admitted and not d.queued
        assert d.reason == REASON_QUEUE_FULL

    def test_release_then_promote_frees_capacity(self):
        adm = AdmissionController(capacity=1, queue_limit=4)
        adm.submit(_spec("a"), 0.0)
        adm.submit(_spec("b"), 0.0)
        assert adm.promote(0.0) == []     # still at capacity
        adm.release()
        promoted = adm.promote(0.0)
        assert [s.tenant for s, _ in promoted] == ["b"]
        assert adm.running == 1 and adm.queued() == 0

    def test_rate_limit_queues_at_burst_exhaustion(self):
        adm = AdmissionController(capacity=10, queue_limit=10,
                                  admit_rate=1.0, burst=1.0)
        assert adm.submit(_spec("a"), 0.0).admitted
        assert adm.submit(_spec("b"), 0.0).queued  # no token left
        assert adm.promote(0.5) == []
        assert [s.tenant for s, _ in adm.promote(1.0)] == ["b"]

    def test_sustained_shedding_opens_the_breaker_and_degrades(self):
        adm = AdmissionController(capacity=1, queue_limit=0)
        adm.submit(_spec("a"), 0.0)
        assert not adm.degrading
        for _ in range(2):  # default failure_threshold=2
            assert adm.submit(_spec("x"), 0.0).reason == REASON_QUEUE_FULL
            adm.end_round()
        assert adm.breaker.state == OPEN
        assert adm.degrading
        adm.release()
        d = adm.submit(_spec("late"), 0.0)
        assert d.admitted and d.degraded  # pinned to the safe default

    def test_calm_rounds_close_the_breaker_again(self):
        adm = AdmissionController(capacity=1, queue_limit=0)
        adm.submit(_spec("a"), 0.0)
        for _ in range(2):
            adm.submit(_spec("x"), 0.0)
            adm.end_round()
        assert adm.degrading
        # cooldown_epochs=3 calm rounds, then a clean half-open probe.
        for _ in range(4):
            adm.end_round()
        assert adm.breaker.state == CLOSED
        assert not adm.degrading
        adm.release()
        d = adm.submit(_spec("calm"), 0.0)
        assert d.admitted and not d.degraded

    def test_drain_sheds_the_queue_and_closes_admission(self):
        adm = AdmissionController(capacity=1, queue_limit=4)
        adm.submit(_spec("a"), 0.0)
        adm.submit(_spec("b"), 0.0)
        adm.submit(_spec("c"), 0.0)
        dropped = adm.drain()
        assert [s.tenant for s in dropped] == ["b", "c"]
        assert adm.queued() == 0
        d = adm.submit(_spec("late"), 0.0)
        assert d.reason == REASON_DRAINING

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=-1)
