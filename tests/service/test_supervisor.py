"""Supervised restarts: journal-rebuilt drivers hold bit-identical state."""

import pytest

from repro.core.registry import make_tuner
from repro.service.supervisor import (
    Supervisor,
    TenantRestartError,
    rebuild_driver,
)
from repro.service.tenant import Tenant, TenantSpec
from repro.sim.trace import EpochRecord


def _rec(index: int, params: tuple[int, ...], observed: float,
         *, tuned: bool = True) -> EpochRecord:
    return EpochRecord(
        index=index, start=30.0 * index, duration=30.0, params=params,
        observed=observed, best_case=observed * 1.1, bytes_moved=1e9,
        faulted=not tuned, fault=None if tuned else "blackout",
        retries=0, breaker="closed", tuned=tuned,
    )


def _journal(spec: TenantSpec, observations: list[float]):
    """Drive a fresh driver through ``observations`` the way the shard
    journals them; returns (records, reference_driver)."""
    tuner = make_tuner(spec.tuner, spec.seed)
    space, _ = spec.space_and_map()
    driver = tuner.start(spec.start_point(), space)
    records = []
    for i, obs in enumerate(observations):
        params = driver.current
        records.append(_rec(i, params, obs))
        driver.observe(obs)
    return records, driver


class TestRebuildDriver:
    @pytest.mark.parametrize("tuner", ["cd", "nm", "spsa"])
    def test_plain_history_matches_the_uninterrupted_driver(self, tuner):
        spec = TenantSpec(tenant="t", tuner=tuner, seed=3)
        obs = [50.0, 80.0, 70.0, 95.0, 90.0, 60.0]
        records, reference = _journal(spec, obs)
        rebuilt = rebuild_driver(spec, records, set())
        assert rebuilt.current == reference.current
        # ... and the two stay in lock-step on further observations.
        for nxt in [88.0, 91.0, 40.0]:
            assert rebuilt.observe(nxt) == reference.observe(nxt)
            assert rebuilt.current == reference.current

    def test_skipped_epochs_are_withheld_again(self):
        spec = TenantSpec(tenant="t", tuner="cd", seed=0)
        tuner = make_tuner(spec.tuner, spec.seed)
        space, _ = spec.space_and_map()
        reference = tuner.start(spec.start_point(), space)
        records = []
        skipped = {1}
        for i, obs in enumerate([50.0, float("nan"), 75.0]):
            records.append(_rec(i, reference.current, obs))
            if i not in skipped:
                reference.observe(obs)
        rebuilt = rebuild_driver(spec, records, skipped)
        assert rebuilt.current == reference.current

    def test_untuned_epochs_never_feed_the_tuner(self):
        spec = TenantSpec(tenant="t", tuner="cd", seed=0)
        records, reference = _journal(spec, [50.0, 80.0])
        # A faulted epoch in the middle: tuned=False, never observed.
        records.insert(1, _rec(99, records[0].params, 0.0, tuned=False))
        rebuilt = rebuild_driver(spec, records, set(), steered=True)
        assert rebuilt.current == reference.current

    def test_corrupt_plain_history_fails_verification(self):
        spec = TenantSpec(tenant="t", tuner="cd", seed=0)
        records, _ = _journal(spec, [50.0, 80.0, 70.0])
        bad = records[:1] + [_rec(1, (499,), 80.0)] + records[2:]
        with pytest.raises(Exception):
            rebuild_driver(spec, bad, set())


class TestSupervisor:
    def test_restart_replaces_the_driver_and_counts(self):
        spec = TenantSpec(tenant="t", tuner="cd", seed=1)
        tenant = Tenant(spec)
        obs = [40.0, 90.0, 85.0]
        records, reference = _journal(spec, obs)
        tenant.records = list(records)
        for o in obs:
            tenant.driver.observe(o)
        broken = tenant.driver
        sup = Supervisor()
        driver = sup.restart(tenant)
        assert driver is tenant.driver and driver is not broken
        assert driver.current == reference.current
        assert tenant.restarts == 1
        assert sup.restarts == 1

    def test_restart_failure_is_wrapped(self):
        spec = TenantSpec(tenant="t", tuner="cd", seed=0)
        tenant = Tenant(spec)
        tenant.records = [_rec(0, (499,), 50.0)]  # never proposed by cd
        with pytest.raises(TenantRestartError, match="restart replay"):
            Supervisor().restart(tenant)
