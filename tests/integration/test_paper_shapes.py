"""Integration tests: the paper's qualitative results must hold end-to-end.

Each test runs the calibrated scenarios through the full engine and checks
the *shape* claims of the evaluation section — who wins, roughly by what
factor, and how the critical point moves.  Absolute MB/s values are
substrate-dependent and asserted only loosely.
"""

import pytest

from repro.analysis.stats import improvement_factor, steady_state_mean
from repro.core.base import StaticTuner
from repro.core.cd_tuner import CdTuner
from repro.core.cs_tuner import CsTuner
from repro.core.heuristics import Heur2Tuner
from repro.core.nm_tuner import NmTuner
from repro.endpoint.load import ExternalLoad
from repro.experiments.figures import varying_load_schedule
from repro.experiments.runner import run_joint, run_pair, run_single
from repro.experiments.scenarios import ANL_TACC, ANL_UC


def _sweep(scenario, nc_values, load, *, fixed_np=1, duration=240.0, seed=3):
    out = {}
    for nc in nc_values:
        t = run_single(scenario, StaticTuner(), load=load, x0=(nc,),
                       fixed_np=fixed_np, duration_s=duration, seed=seed)
        out[nc] = steady_state_mean(t, tail_fraction=0.75)
    return out


class TestFig1Surface:
    """Fig. 1 / §III-A observations 1-3."""

    NC = [1, 4, 16, 64, 128, 256, 512]

    def test_unimodal_with_critical_point_at_64_no_load(self):
        curve = _sweep(ANL_UC, self.NC, None)
        peak = max(curve, key=curve.get)
        assert peak == 64
        # Monotone rise before, fall after (observation 1).
        assert curve[1] < curve[4] < curve[16] < curve[64]
        assert curve[64] > curve[256] > curve[512]

    def test_critical_point_shifts_right_under_transfer_load(self):
        # "when the external traffic rises to 64 streams, the critical
        # point increases" (§III-A observation 2).
        free = _sweep(ANL_UC, self.NC, None)
        loaded = _sweep(ANL_UC, self.NC, ExternalLoad(ext_tfr=64))
        assert max(loaded, key=loaded.get) > max(free, key=free.get)

    def test_peak_throughput_drops_under_load(self):
        free = _sweep(ANL_UC, self.NC, None)
        loaded = _sweep(ANL_UC, self.NC, ExternalLoad(ext_cmp=16, ext_tfr=16))
        assert max(loaded.values()) < 0.9 * max(free.values())


class TestFig5Improvements:
    """Fig. 5: adaptive concurrency beats the Globus default."""

    def _run(self, tuner, load, seed=0, duration=1800.0):
        return run_single(ANL_UC, tuner, load=load, duration_s=duration,
                          fixed_np=8, seed=seed)

    def test_tuners_beat_default_without_load(self):
        base = self._run(StaticTuner(), None)
        for tuner in (CdTuner(), CsTuner(seed=0), NmTuner()):
            tuned = self._run(tuner, None)
            assert improvement_factor(tuned, base) > 1.15

    def test_large_improvement_under_compute_load(self):
        # Paper: 7x (cmp=16) and 10x (cmp=64) for cs/nm.  Our substrate's
        # default fares relatively better (see EXPERIMENTS.md), so the
        # asserted floors are looser; the ordering and "multiples, not
        # percent" scale of the win is the reproduced shape.
        for cmp_, min_factor in ((16, 2.0), (64, 3.0)):
            load = ExternalLoad(ext_cmp=cmp_)
            base = self._run(StaticTuner(), load)
            tuned = self._run(NmTuner(), load)
            assert improvement_factor(tuned, base) > min_factor

    def test_improvement_under_transfer_load(self):
        # Paper: ~2x for ext.tfr in {16, 64}.
        for tfr in (16, 64):
            load = ExternalLoad(ext_tfr=tfr)
            base = self._run(StaticTuner(), load)
            tuned = self._run(CsTuner(seed=1), load)
            assert improvement_factor(tuned, base) > 1.3

    def test_cd_improves_but_lags_under_compute_load(self):
        # Paper: cd only ~2x where cs/nm reach 7x (cmp=16).
        load = ExternalLoad(ext_cmp=16)
        base = self._run(StaticTuner(), load)
        cd = self._run(CdTuner(), load)
        nm = self._run(NmTuner(), load)
        f_cd = improvement_factor(cd, base)
        f_nm = improvement_factor(nm, base)
        assert f_cd > 1.5
        assert f_nm > f_cd

    def test_adapted_nc_grows_with_compute_load(self):
        # Fig. 6: nc ends near 5-10 with no load, 25+ under cmp load.
        free = self._run(NmTuner(), None)
        loaded = self._run(NmTuner(), ExternalLoad(ext_cmp=16))
        tail = len(free.epochs) // 2
        nc_free = float(free.epoch_param(0)[tail:].mean())
        nc_loaded = float(loaded.epoch_param(0)[tail:].mean())
        assert nc_loaded > 2 * nc_free


class TestFig7Overhead:
    """Fig. 5 vs Fig. 7: restart overhead."""

    def test_best_case_exceeds_observed_for_tuners(self):
        t = run_single(ANL_UC, NmTuner(), duration_s=1200.0, seed=0)
        obs = steady_state_mean(t)
        best = steady_state_mean(t, best_case=True)
        assert best > obs
        # Paper: ~17% overhead without load; allow a broad band.
        overhead = 1 - obs / best
        assert 0.05 < overhead < 0.35

    def test_overhead_grows_with_compute_load(self):
        t_free = run_single(ANL_UC, NmTuner(), duration_s=1200.0, seed=0)
        t_cmp = run_single(ANL_UC, NmTuner(), load=ExternalLoad(ext_cmp=64),
                           duration_s=1200.0, seed=0)
        ov_free = 1 - steady_state_mean(t_free) / steady_state_mean(
            t_free, best_case=True)
        ov_cmp = 1 - steady_state_mean(t_cmp) / steady_state_mean(
            t_cmp, best_case=True)
        assert ov_cmp > ov_free

    def test_default_has_negligible_steady_overhead(self):
        t = run_single(ANL_UC, StaticTuner(), duration_s=1200.0, seed=0)
        obs = steady_state_mean(t)
        best = steady_state_mean(t, best_case=True)
        assert obs == pytest.approx(best, rel=0.02)


class TestTaccNoLoad:
    """§IV-A text: on ANL→TACC without load, tuning adds little."""

    def test_default_reaches_most_of_tuned_throughput(self):
        base = run_single(ANL_TACC, StaticTuner(), duration_s=1800.0, seed=0)
        tuned = run_single(ANL_TACC, NmTuner(), duration_s=1800.0, seed=0)
        assert improvement_factor(tuned, base) < 1.5

    def test_default_observed_near_1900(self):
        base = run_single(ANL_TACC, StaticTuner(), duration_s=900.0, seed=0)
        assert steady_state_mean(base) == pytest.approx(1900.0, rel=0.15)


class TestVaryingLoad:
    """Figs. 8-9: adaptation to a load switch at t=1000 s."""

    def test_tuner_recovers_after_load_drop(self):
        sched = varying_load_schedule(1000.0)
        t = run_single(ANL_TACC, CsTuner(seed=2), load=sched,
                       duration_s=1800.0, tune_np=True, seed=2)
        before = t.mean_observed(from_time=600.0, to_time=1000.0)
        after = t.mean_observed(from_time=1400.0)
        assert after > before

    def test_tuners_beat_default_in_both_phases(self):
        sched = varying_load_schedule(1000.0)
        base = run_single(ANL_TACC, StaticTuner(), load=sched,
                          duration_s=1800.0, tune_np=True, seed=1)
        for tuner in (CsTuner(seed=1), NmTuner()):
            tuned = run_single(ANL_TACC, tuner, load=sched,
                               duration_s=1800.0, tune_np=True, seed=1)
            assert tuned.mean_observed(
                from_time=300.0, to_time=1000.0
            ) > base.mean_observed(from_time=300.0, to_time=1000.0)
            assert tuned.mean_observed(from_time=1300.0) > base.mean_observed(
                from_time=1300.0
            )


class TestFig10Heuristics:
    """Fig. 10: nm ~ heur2 >> heur1 ramp; heur2 stuck above critical."""

    def test_heur2_cannot_recover_from_high_start(self):
        # Start way above the critical point on the TACC path.
        high = (100, 16)
        h2 = run_single(ANL_TACC, Heur2Tuner(), x0=high, duration_s=900.0,
                        tune_np=True, seed=0)
        nm = run_single(ANL_TACC, NmTuner(), x0=high, duration_s=900.0,
                        tune_np=True, seed=0)
        assert steady_state_mean(nm) > 1.3 * steady_state_mean(h2)
        # heur2 never reduced nc below its start.
        assert min(h2.epoch_param(0)) >= 100

    def test_nm_and_heur2_ramp_faster_than_heur1(self):
        from repro.core.heuristics import Heur1Tuner

        sched = varying_load_schedule(1000.0)
        early = {}
        for name, tuner in (
            ("heur1", Heur1Tuner()),
            ("heur2", Heur2Tuner()),
            ("nm", NmTuner()),
        ):
            t = run_single(ANL_TACC, tuner, load=sched, duration_s=600.0,
                           tune_np=True, seed=4)
            early[name] = t.mean_observed(from_time=120.0, to_time=600.0)
        assert early["heur2"] > early["heur1"]
        assert early["nm"] > early["heur1"]


class TestFig11Simultaneous:
    """Fig. 11: two independently tuned transfers sharing the ANL NIC."""

    def test_both_transfers_make_progress_and_uc_wins(self):
        traces = run_pair(
            ANL_UC, NmTuner(), NmTuner(), path_a="anl-uc",
            path_b="anl-tacc", duration_s=1800.0, seed=0,
        )
        uc = traces["xfer-a"].mean_observed(from_time=900.0)
        tacc = traces["xfer-b"].mean_observed(from_time=900.0)
        assert uc > 0 and tacc > 0
        # The UChicago transfer claims the larger share (its path supports
        # 2x the bandwidth).
        assert uc > tacc

    def test_combined_rate_bounded_by_nic(self):
        traces = run_pair(
            ANL_UC, CsTuner(seed=0), CsTuner(seed=1), path_a="anl-uc",
            path_b="anl-tacc", duration_s=1200.0, seed=0,
        )
        total = sum(tr.mean_observed(from_time=600.0) for tr in traces.values())
        assert total <= 5000.0


class TestJointTuningExtension:
    def test_joint_tuning_runs_and_moves_both(self):
        traces = run_joint(
            ANL_UC, NmTuner(), path_a="anl-uc", path_b="anl-tacc",
            duration_s=1200.0, seed=0,
        )
        assert len(set(traces["xfer-a"].epoch_param(0))) > 1
        assert len(set(traces["xfer-b"].epoch_param(0))) > 1

    def test_joint_tuning_competitive_with_independent(self):
        joint = run_joint(ANL_UC, NmTuner(), path_a="anl-uc",
                          path_b="anl-tacc", duration_s=1800.0, seed=0)
        indep = run_pair(ANL_UC, NmTuner(), NmTuner(), path_a="anl-uc",
                         path_b="anl-tacc", duration_s=1800.0, seed=0)
        joint_total = sum(
            t.mean_observed(from_time=900.0) for t in joint.values()
        )
        indep_total = sum(
            t.mean_observed(from_time=900.0) for t in indep.values()
        )
        assert joint_total > 0.5 * indep_total


class TestThreeDimensionalTuning:
    """Extension: pipelining depth as a third direct-search dimension."""

    def test_nm_tunes_nc_np_pp_jointly(self):
        import math

        from repro.core.params import full_transfer_space
        from repro.gridftp.diskio import DiskSpec, FileSet, disk_rate_cap_mbps
        from repro.gridftp.transfer import TransferSpec
        from repro.sim.engine import Engine, EngineConfig
        from repro.sim.session import ParamMap, TransferSession
        from repro.units import MB

        disk = DiskSpec(streaming_rate_mbps=1200.0, per_file_overhead_s=0.02,
                        parallel_scaling=0.5)
        files = FileSet(n_files=200_000, mean_bytes=4 * MB, sigma=1.0)
        rtt = ANL_TACC.path("anl-tacc").rtt_s

        def build(tuner, x0):
            spec = TransferSpec(name="main", path_name="anl-tacc",
                                total_bytes=math.inf, max_duration_s=1500.0,
                                epoch_s=30.0)
            return TransferSession(
                spec, tuner, full_transfer_space(64, 16, 64), x0,
                param_map=ParamMap.nc_np_pp(),
                restart_each_epoch=tuner.restarts_every_epoch,
                disk_cap_fn=lambda nc, np_, pp: disk_rate_cap_mbps(
                    disk, files, nc, np_, pp=pp, rtt_s=rtt
                ),
            )

        def run(tuner, x0):
            engine = Engine(
                topology=ANL_TACC.build_topology(), host=ANL_TACC.host,
                sessions=[build(tuner, x0)], config=EngineConfig(seed=1),
            )
            return engine.run()["main"]

        base = run(StaticTuner(), (2, 8, 4))
        tuned = run(NmTuner(), (2, 8, 4))
        assert steady_state_mean(tuned) > steady_state_mean(base)
        # The tuner moved in the pipelining dimension too.
        assert len(set(tuned.epoch_param(2))) > 1
