"""Crash-safety of a *batched* campaign under a real SIGKILL.

A child process runs a journaled campaign with the batch engine on
(``batch=4``); the parent SIGKILLs it between units (slowed journal
writes make the window wide), resumes from the journal in-process, and
asserts the assembled report is identical to an uninterrupted serial
(batch-off) campaign — journal resume, the batch lane axis, and the
scalar reference must all agree on every section.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.checkpoint import read_journal
from repro.experiments.campaign import CampaignScale, run_campaign

SCALE_KW = dict(duration_s=300.0, fig1_duration_s=120.0, fig1_reps=1,
                seed=2)

CHILD_SCRIPT = """
import sys, time
import repro.checkpoint.journal as journal_mod
from repro.experiments.campaign import CampaignScale, run_campaign


class SlowDiskWriter(journal_mod.JournalWriter):
    def write(self, record):
        super().write(record)
        time.sleep(0.5)


journal_mod.JournalWriter = SlowDiskWriter
run_campaign(
    CampaignScale(**{scale_kw!r}), journal_path=sys.argv[1], batch=4,
    cache=False,
)
"""


def _count_sections(path) -> int:
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return 0
    return sum(
        1 for line in raw.split(b"\n")
        if line.startswith(b'{"kind":"section"')
    )


@pytest.mark.slow
def test_sigkill_mid_batch_campaign_then_resume_is_identical(tmp_path):
    journal_path = tmp_path / "campaign.jnl"
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT.format(scale_kw=SCALE_KW),
         str(journal_path)],
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if _count_sections(journal_path) >= 2:
                break
            if child.poll() is not None:
                pytest.fail(
                    f"child exited early with {child.returncode} before "
                    "two units were journaled"
                )
            time.sleep(0.02)
        else:
            pytest.fail("journal never reached two section records")
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30.0)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup
            child.kill()
            child.wait()

    journal = read_journal(journal_path)
    assert not journal.ended, "child finished before the kill"
    done = set(journal.sections)
    assert done, "no unit survived the kill"

    scale = CampaignScale(**SCALE_KW)
    resumed = run_campaign(scale, journal_path=journal_path, batch=4,
                           cache=False)
    assert set(resumed.resumed_units) == done
    # Resumed units were restored, not recomputed — no occupancy entry.
    assert not (set(resumed.resumed_units) & set(resumed.unit_batch))

    reference = run_campaign(scale, batch=0, cache=False)
    assert resumed.sections == reference.sections
    assert list(resumed.sections) == list(reference.sections)
    assert read_journal(journal_path).ended
