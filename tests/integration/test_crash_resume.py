"""Crash-safety under a real SIGKILL.

A child process runs a journaled simulation campaign; the parent
SIGKILLs it mid-run (no atexit, no cleanup — the journal is all that
survives), resumes from the journal in-process, and asserts the final
trace is bit-identical to an uninterrupted reference run.  The child
slows the journal writes down (a slow disk, in effect) so the kill
reliably lands mid-run; everything else is the production code path.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.checkpoint import read_journal, resume_run
from repro.core.registry import make_tuner
from repro.experiments.runner import run_single
from repro.experiments.scenarios import SCENARIOS
from repro.faults import (
    STREAM_CRASH,
    CircuitBreaker,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)

SEED = 13
TUNER = "cs"
DURATION = 1800.0

CHILD_SCRIPT = """
import sys, time
import repro.checkpoint.resume as resume_mod
from repro.checkpoint.journal import JournalWriter
from repro.faults import (STREAM_CRASH, CircuitBreaker, FaultEvent,
                          FaultSchedule, RetryPolicy)


class SlowDiskWriter(JournalWriter):
    def write(self, record):
        super().write(record)
        time.sleep(0.05)


resume_mod.JournalWriter = SlowDiskWriter
resume_mod.run_journaled(
    sys.argv[1], scenario="anl-uc", tuner={tuner!r}, seed={seed},
    duration_s={duration},
    fault_schedule=FaultSchedule(
        [FaultEvent(kind=STREAM_CRASH, epoch=5, duration=2)]
    ),
    retry_policy=RetryPolicy(), breaker=CircuitBreaker(),
)
"""


def _count_epochs(path) -> int:
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return 0
    return sum(
        1 for line in raw.split(b"\n")
        if line.startswith(b'{"kind":"epoch"')
    )


@pytest.mark.slow
def test_sigkill_mid_run_then_resume_is_bit_identical(tmp_path):
    journal_path = tmp_path / "killed.jnl"
    child = subprocess.Popen(
        [sys.executable, "-c",
         CHILD_SCRIPT.format(tuner=TUNER, seed=SEED, duration=DURATION),
         str(journal_path)],
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if _count_epochs(journal_path) >= 8:
                break
            if child.poll() is not None:
                pytest.fail(
                    f"child exited early with {child.returncode} before "
                    "the journal reached 8 epochs"
                )
            time.sleep(0.02)
        else:
            pytest.fail("journal never reached 8 epochs")
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30.0)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup
            child.kill()
            child.wait()

    journal = read_journal(journal_path)
    assert not journal.ended, "child finished before the kill"
    # The kill may land between an epoch record and its snapshot, in
    # which case the last epoch is re-run on resume rather than replayed.
    assert len(journal.snapshot_epochs) >= 7
    killed_at = len(journal.epochs)

    resumed = resume_run(journal_path)

    reference = run_single(
        SCENARIOS["anl-uc"], make_tuner(TUNER, SEED),
        duration_s=DURATION, seed=SEED,
        fault_schedule=FaultSchedule(
            [FaultEvent(kind=STREAM_CRASH, epoch=5, duration=2)]
        ),
        retry_policy=RetryPolicy(), breaker=CircuitBreaker(),
    )
    assert len(reference.epochs) > killed_at, "kill landed after the end"
    assert resumed.epochs == reference.epochs
    assert resumed.steps == reference.steps

    final = read_journal(journal_path)
    assert final.ended
    assert len(final.epochs) == len(reference.epochs)
    # The journal alone reconstructs the full trace.
    rebuilt = [e.record for e in final.epochs_for("main")]
    assert rebuilt == reference.epochs
