"""Event-stream determinism across a real SIGKILL.

A child process runs a journaled, fault-injected simulation; the parent
SIGKILLs it mid-run, then resumes in-process with the event bus
attached.  The reconstructed prefix (from the surviving journal's
snapshot-covered epochs) concatenated with the live events of the
resumed remainder must equal — ordered, float-exact — the stream an
uninterrupted reference run publishes.  This is the observability twin
of the bit-identical-trace crash test.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.checkpoint import read_journal, resume_run
from repro.core.registry import make_tuner
from repro.experiments.runner import run_single
from repro.experiments.scenarios import SCENARIOS
from repro.faults import (
    BLACKOUT,
    CircuitBreaker,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)
from repro.obs import Instrumentation, events_from_records

SEED = 13
TUNER = "cs"
DURATION = 1800.0

REPLAYABLE = ("epoch-end", "fault-injected", "breaker-transition")

CHILD_SCRIPT = """
import sys, time
import repro.checkpoint.resume as resume_mod
from repro.checkpoint.journal import JournalWriter
from repro.faults import (BLACKOUT, CircuitBreaker, FaultEvent,
                          FaultSchedule, RetryPolicy)


class SlowDiskWriter(JournalWriter):
    def write(self, record):
        super().write(record)
        time.sleep(0.05)


resume_mod.JournalWriter = SlowDiskWriter
resume_mod.run_journaled(
    sys.argv[1], scenario="anl-uc", tuner={tuner!r}, seed={seed},
    duration_s={duration},
    fault_schedule=FaultSchedule(
        [FaultEvent(kind=BLACKOUT, epoch=5, duration=3)]
    ),
    retry_policy=RetryPolicy(),
    breaker=CircuitBreaker(failure_threshold=2, cooldown_epochs=3),
)
"""


def _fault_kit():
    return dict(
        fault_schedule=FaultSchedule(
            [FaultEvent(kind=BLACKOUT, epoch=5, duration=3)]
        ),
        retry_policy=RetryPolicy(),
        breaker=CircuitBreaker(failure_threshold=2, cooldown_epochs=3),
    )


def _count_epochs(path) -> int:
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return 0
    return sum(
        1 for line in raw.split(b"\n")
        if line.startswith(b'{"kind":"epoch"')
    )


def _capture(run) -> list:
    inst = Instrumentation.on()
    sub = inst.bus.subscribe(maxlen=100_000, kinds=REPLAYABLE)
    run(inst)
    return sub.drain()


def test_fast_path_publishes_the_reference_event_stream():
    """The cached/batched engine must emit the identical (ordered,
    float-exact) replayable event stream as ``fast_path=False`` — the
    observability twin of the bit-identical-trace equivalence tests in
    ``tests/sim/test_fast_path.py``."""
    def run(fast_path):
        return _capture(lambda o: run_single(
            SCENARIOS["anl-uc"], make_tuner(TUNER, SEED),
            duration_s=DURATION, seed=SEED, obs=o, fast_path=fast_path,
            **_fault_kit(),
        ))

    fast, reference = run(True), run(False)
    assert any(e.kind == "breaker-transition" for e in reference)
    assert fast == reference


@pytest.mark.slow
def test_sigkill_then_resume_replays_the_identical_event_stream(tmp_path):
    journal_path = tmp_path / "killed.jnl"
    child = subprocess.Popen(
        [sys.executable, "-c",
         CHILD_SCRIPT.format(tuner=TUNER, seed=SEED, duration=DURATION),
         str(journal_path)],
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            # Land the kill after the fault burst has driven the breaker
            # through open (epochs 5-7), so transition events straddle
            # the kill point.
            if _count_epochs(journal_path) >= 9:
                break
            if child.poll() is not None:
                pytest.fail(
                    f"child exited early with {child.returncode} before "
                    "the journal reached 9 epochs"
                )
            time.sleep(0.02)
        else:
            pytest.fail("journal never reached 9 epochs")
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30.0)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup
            child.kill()
            child.wait()

    journal = read_journal(journal_path)
    assert not journal.ended, "child finished before the kill"
    killed_at = len(journal.epochs)

    prefix = events_from_records(
        "main",
        [je.record for je in journal.snapshot_epochs_for("main")],
    )
    resumed_live = _capture(lambda o: resume_run(journal_path, obs=o))

    reference = _capture(lambda o: run_single(
        SCENARIOS["anl-uc"], make_tuner(TUNER, SEED),
        duration_s=DURATION, seed=SEED, obs=o, **_fault_kit(),
    ))

    ends = [e for e in reference if e.kind == "epoch-end"]
    assert len(ends) > killed_at, "kill landed after the end"
    assert any(e.kind == "breaker-transition" for e in reference), (
        "campaign never exercised the breaker"
    )
    assert prefix + resumed_live == reference
