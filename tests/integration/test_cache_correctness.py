"""Cache correctness end to end: a cold campaign, then a warm rerun.

The CI ``cache-correctness`` job runs exactly this: the same quick
campaign twice against one cache directory.  The second pass must
produce a byte-identical report (cached traces are bit-identical to
simulated ones) and come back at least 5x faster (every unit's
simulations are served from disk).
"""

import time

import pytest

from repro.cache import RunCache
from repro.experiments.campaign import (
    CAMPAIGN_UNITS,
    CampaignScale,
    run_campaign,
)


@pytest.mark.slow
class TestColdWarmCampaign:
    def test_warm_rerun_is_identical_and_5x_faster(self, tmp_path):
        store = RunCache(tmp_path / "campaign-cache")
        scale = CampaignScale.quick()

        t0 = time.perf_counter()
        cold = run_campaign(scale, cache=store)
        cold_s = time.perf_counter() - t0

        entries_after_cold = store.stats().entries
        assert entries_after_cold > 0

        # Best of three warm passes: the warm rerun is short enough
        # (~0.1 s) that one scheduler hiccup on a loaded box would sink
        # the ratio; the minimum is the honest cache-serving cost.
        warm_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            warm = run_campaign(scale, cache=store)
            warm_s = min(warm_s, time.perf_counter() - t0)

        assert warm.document() == cold.document()
        assert warm.sections == cold.sections
        # No new entries: every run was served, none re-simulated.
        assert store.stats().entries == entries_after_cold
        assert cold_s >= 5 * warm_s, (
            f"warm rerun not >=5x faster: cold {cold_s:.2f}s, "
            f"warm {warm_s:.2f}s"
        )

    def test_warm_rerun_matches_journaled_resume(self, tmp_path):
        # Cache and journal compose: a journaled campaign that resumes
        # from a complete journal must agree with a cache-served rerun.
        store = RunCache(tmp_path / "cache")
        journal = tmp_path / "campaign.jnl"
        scale = CampaignScale.quick()
        journaled = run_campaign(scale, journal_path=journal, cache=store)
        resumed = run_campaign(scale, journal_path=journal, cache=store)
        cached = run_campaign(scale, cache=store)
        assert resumed.document() == journaled.document()
        # Every unit was restored from the journal, none recomputed.
        assert resumed.resumed_units == [n for n, _ in CAMPAIGN_UNITS]
        assert cached.document() == journaled.document()
