"""``run_batch`` / ``run_many`` semantics: identity, cache sharing,
ambient width, occupancy accounting, and the lazy replicate seeds that
make batch and serial replicates draw identical noise."""

import pickle

import numpy as np
import pytest

from repro.cache import RunCache
from repro.core.registry import make_tuner
from repro.experiments.batch import (
    DEFAULT_BATCH,
    DEFAULT_FALLBACK_WARN,
    ENV_BATCH,
    ENV_BATCH_WARN,
    BatchOccupancy,
    SingleRunSpec,
    batching,
    occupancy,
    resolve_batch,
    resolve_fallback_warn,
    run_batch,
    run_many,
)
from repro.experiments.parallel import ReplicateSeeds, replicate_seeds
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC
from repro.sim.rng import RngStreams

DURATION = 240.0
SEED = 9


def _specs(n=4, **kw):
    kw.setdefault("duration_s", DURATION)
    return [
        SingleRunSpec(ANL_UC, make_tuner("cd", SEED + i),
                      seed=SEED + i, **kw)
        for i in range(n)
    ]


def assert_bit_identical(ref, got):
    assert got.epochs == ref.epochs
    assert got.steps == ref.steps


# -- width resolution and the ambient scope ----------------------------------


def test_resolve_batch_consults_environment(monkeypatch):
    monkeypatch.delenv(ENV_BATCH, raising=False)
    assert resolve_batch(None) == 0
    assert resolve_batch(16) == 16
    monkeypatch.setenv(ENV_BATCH, "8")
    assert resolve_batch(None) == 8
    assert resolve_batch(0) == 0  # explicit off beats the environment
    monkeypatch.setenv(ENV_BATCH, "")
    assert resolve_batch(None) == 0
    monkeypatch.setenv(ENV_BATCH, "nope")
    with pytest.raises(ValueError):
        resolve_batch(None)
    with pytest.raises(ValueError):
        resolve_batch(-1)


def test_resolve_fallback_warn_consults_environment(monkeypatch):
    monkeypatch.delenv(ENV_BATCH_WARN, raising=False)
    assert resolve_fallback_warn(None) == DEFAULT_FALLBACK_WARN
    assert resolve_fallback_warn(0.25) == 0.25
    assert resolve_fallback_warn(1.5) == 1.5  # >= 1.0 disables, not an error
    monkeypatch.setenv(ENV_BATCH_WARN, "0.05")
    assert resolve_fallback_warn(None) == 0.05
    assert resolve_fallback_warn(0.5) == 0.5  # explicit beats environment
    monkeypatch.setenv(ENV_BATCH_WARN, "")
    assert resolve_fallback_warn(None) == DEFAULT_FALLBACK_WARN
    monkeypatch.setenv(ENV_BATCH_WARN, "lots")
    with pytest.raises(ValueError):
        resolve_fallback_warn(None)
    with pytest.raises(ValueError):
        resolve_fallback_warn(-0.1)


def test_batching_scope_exports_and_restores(monkeypatch):
    monkeypatch.delenv(ENV_BATCH, raising=False)
    with batching(6) as width:
        assert width == 6
        assert resolve_batch(None) == 6
        with batching(None) as inherited:  # None leaves ambient in force
            assert inherited == 6
        with batching(0):
            assert resolve_batch(None) == 0
    assert resolve_batch(None) == 0


# -- identity and accounting -------------------------------------------------


def test_run_batch_matches_run_single_and_charges_occupancy():
    specs = _specs(5)
    before = occupancy()
    got = run_batch(specs, batch=2, cache=False)
    delta = occupancy() - before
    assert delta == BatchOccupancy(batched=5, fallback=0, cached=0,
                                   chunks=3)
    for spec, trace in zip(specs, got):
        assert_bit_identical(
            run_single(spec.scenario, spec.tuner, duration_s=DURATION,
                       seed=spec.seed, cache=False),
            trace,
        )


def test_width_off_is_the_scalar_loop_and_charges_nothing():
    specs = _specs(2)
    before = occupancy()
    off = run_batch(specs, batch=0, cache=False)
    assert occupancy() == before  # batching never requested, no counters
    on = run_batch(specs, batch=2, cache=False)
    for a, b in zip(off, on):
        assert_bit_identical(a, b)


def test_empty_spec_list_is_a_noop():
    assert run_batch([], batch=8, cache=False) == []


def test_run_many_composes_jobs_and_batch():
    specs = _specs(6)
    serial = run_many(specs, jobs=1, batch=0, cache=False)
    fanned = run_many(specs, jobs=2, batch=2, cache=False)
    for a, b in zip(serial, fanned):
        assert_bit_identical(a, b)


# -- cache integration -------------------------------------------------------


def test_batch_and_scalar_share_cache_entries(tmp_path):
    store = RunCache(tmp_path)
    specs = _specs(3)
    cold = run_batch(specs, batch=4, cache=store)
    hits = sum(1 for _, hit in store.key_log if hit)
    assert hits == 0
    before = occupancy()
    warm = run_batch(specs, batch=4, cache=store)
    delta = occupancy() - before
    assert delta == BatchOccupancy(batched=0, fallback=0, cached=3,
                                   chunks=0)
    for a, b in zip(cold, warm):
        assert_bit_identical(a, b)
    # The scalar runner hits the batch-written entry: shared keys.
    log_start = len(store.key_log)
    scalar = run_single(specs[0].scenario, specs[0].tuner,
                        duration_s=DURATION, seed=specs[0].seed,
                        cache=store)
    assert [hit for _, hit in store.key_log[log_start:]] == [True]
    assert_bit_identical(cold[0], scalar)


def test_scalar_warms_cache_for_batch(tmp_path):
    store = RunCache(tmp_path)
    spec = _specs(1)[0]
    ref = run_single(spec.scenario, spec.tuner, duration_s=DURATION,
                     seed=spec.seed, cache=store)
    before = occupancy()
    got = run_batch([spec], batch=4, cache=store)
    assert (occupancy() - before).cached == 1
    assert_bit_identical(ref, got[0])


# -- lazy replicate seeds ----------------------------------------------------


def test_replicate_seeds_is_a_lazy_sequence():
    rs = replicate_seeds(7, 3)
    assert isinstance(rs, ReplicateSeeds)
    assert list(rs) == [7, 8, 9]
    assert len(rs) == 3
    assert rs[0] == 7 and rs[-1] == 9
    assert rs[1:] == [8, 9]
    assert rs == [7, 8, 9] and rs == replicate_seeds(7, 3)
    assert rs != replicate_seeds(7, 4)
    assert hash(rs) == hash(replicate_seeds(7, 3))
    assert repr(rs) == "ReplicateSeeds(7, 3)"
    with pytest.raises(IndexError):
        rs[3]
    with pytest.raises(ValueError):
        replicate_seeds(7, 0)
    assert list(pickle.loads(pickle.dumps(rs))) == [7, 8, 9]


def test_stream_split_is_pinned_per_seed():
    """Regression: per-seed streams are derived from fixed SeedSequence
    children, so touching one stream first must not perturb another —
    the property that lets a B-lane batch (which touches lanes' streams
    in a different interleaving than B serial runs) draw identical
    noise sequences."""
    for seed in replicate_seeds(7, 3):
        plain = RngStreams(seed).throughput_noise.normal(size=8)
        perturbed = RngStreams(seed)
        perturbed.restart_jitter.normal()  # a different stream, first
        perturbed.tuner.integers(0, 10)
        np.testing.assert_array_equal(
            perturbed.throughput_noise.normal(size=8), plain
        )


def test_batch_over_replicate_seeds_matches_serial():
    seeds = replicate_seeds(SEED, 4)
    specs = [
        SingleRunSpec(ANL_UC, make_tuner("cs", seed), duration_s=DURATION,
                      seed=seed)
        for seed in seeds
    ]
    batched = run_batch(specs, batch=DEFAULT_BATCH, cache=False)
    for seed, trace in zip(seeds, batched):
        assert_bit_identical(
            run_single(ANL_UC, make_tuner("cs", seed),
                       duration_s=DURATION, seed=seed, cache=False),
            trace,
        )
