"""Unit tests for multi-seed replication utilities."""

import pytest

from repro.experiments.replicate import Replicates, compare, replicate, win_rate


class TestReplicate:
    def test_runs_experiment_per_seed(self):
        calls = []

        def exp(seed):
            calls.append(seed)
            return float(seed * 2)

        r = replicate(exp, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert r.values == (2.0, 4.0, 6.0)
        assert r.mean == 4.0

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: 1.0, [])

    def test_std_single_sample_is_zero(self):
        r = replicate(lambda s: 5.0, [0])
        assert r.std == 0.0

    def test_confidence_interval_contains_mean(self):
        r = replicate(lambda s: float(s), [1, 2, 3, 4, 5])
        lo, hi = r.confidence_interval()
        assert lo < r.mean < hi

    def test_ci_validation(self):
        r = replicate(lambda s: 1.0, [0, 1])
        with pytest.raises(ValueError):
            r.confidence_interval(z=0.0)

    def test_box_stats(self):
        r = replicate(lambda s: float(s), [1, 2, 3, 4, 5])
        assert r.box().median == 3.0

    def test_replicates_shape_validation(self):
        with pytest.raises(ValueError):
            Replicates(values=(1.0,), seeds=(1, 2))
        with pytest.raises(ValueError):
            Replicates(values=(), seeds=())


class TestCompareAndWinRate:
    def test_compare_uses_common_seeds(self):
        out = compare(
            {"a": lambda s: float(s), "b": lambda s: float(-s)},
            [1, 2],
        )
        assert out["a"].seeds == out["b"].seeds == (1, 2)

    def test_win_rate(self):
        a = Replicates(values=(3.0, 1.0, 5.0), seeds=(0, 1, 2))
        b = Replicates(values=(2.0, 2.0, 2.0), seeds=(0, 1, 2))
        assert win_rate(a, b) == pytest.approx(2 / 3)

    def test_win_rate_requires_pairing(self):
        a = Replicates(values=(1.0,), seeds=(0,))
        b = Replicates(values=(1.0,), seeds=(1,))
        with pytest.raises(ValueError):
            win_rate(a, b)


def _double(seed):
    """Module-level so it pickles across the process boundary."""
    return float(seed * 2)


class TestReplicateJobs:
    def test_parallel_equals_serial(self):
        a = replicate(_double, [3, 1, 4], jobs=1)
        b = replicate(_double, [3, 1, 4], jobs=2)
        assert a.values == b.values == (6.0, 2.0, 8.0)
        assert a.seeds == b.seeds == (3, 1, 4)

    def test_compare_passes_jobs_through(self):
        out = compare({"a": _double}, [1, 2], jobs=2)
        assert out["a"].values == (2.0, 4.0)
