"""Structural tests for the figure entry points (small-scale runs)."""

import numpy as np
import pytest

from repro.endpoint.load import ExternalLoad
from repro.experiments import figures


class TestFig1:
    def test_result_structure(self):
        res = figures.fig1(
            nc_values=[2, 8, 32], reps=2, duration_s=120.0, seed=0
        )
        assert res.nc_values == [2, 8, 32]
        assert set(res.stats) == {"no-load", "high-load"}
        for label in res.stats:
            assert set(res.stats[label]) == {2, 8, 32}
            s = res.stats[label][8]
            assert s.minimum <= s.median <= s.maximum

    def test_critical_point_picks_max_median(self):
        res = figures.fig1(
            nc_values=[2, 8, 32],
            loads={"no-load": ExternalLoad()},
            reps=1, duration_s=120.0, seed=0,
        )
        by_nc = res.stats["no-load"]
        assert by_nc[res.critical_point("no-load")].median == max(
            s.median for s in by_nc.values()
        )


class TestFig5Result:
    @pytest.fixture(scope="class")
    def res(self):
        return figures.fig5(
            loads={"none": ExternalLoad(), "cmp16": ExternalLoad(ext_cmp=16)},
            duration_s=240.0, seed=0,
        )

    def test_traces_cover_grid(self, res):
        assert set(res.traces) == {"none", "cmp16"}
        for load in res.traces:
            assert set(res.traces[load]) == {
                "default", "cd-tuner", "cs-tuner", "nm-tuner",
            }

    def test_accessors_consistent(self, res):
        obs = res.steady_observed("none", "default")
        best = res.steady_best_case("none", "default")
        assert 0 < obs <= best + 1e-9
        assert res.improvement_over_default("none", "default") == 1.0
        assert 0 <= res.overhead_pct("none", "nm-tuner") < 100

    def test_nc_trajectory_shape(self, res):
        nc = res.nc_trajectory("cmp16", "nm-tuner")
        assert nc.shape == (8,)  # 240 s / 30 s epochs
        assert (nc >= 1).all()


class TestVaryingLoadResult:
    def test_fig8_structure(self):
        res = figures.fig8(duration_s=300.0, switch_at_s=150.0, seed=0)
        assert set(res.traces) == {"default", "cs-tuner", "nm-tuner"}
        for tuner in res.traces:
            assert res.phase_mean(tuner, 0) > 0
            assert res.phase_mean(tuner, 1) > 0
        assert res.improvement("default", 0) == pytest.approx(1.0)
        assert res.trajectory("nm-tuner", 1).shape == (10,)

    def test_fig10_includes_heuristics(self):
        res = figures.fig10(duration_s=240.0, switch_at_s=120.0, seed=0)
        assert {"heur1", "heur2", "nm-tuner", "default"} == set(res.traces)


class TestFig11Result:
    def test_structure_and_share(self):
        res = figures.fig11(tuner="cs", duration_s=300.0, seed=0)
        assert set(res.traces) == {"anl-uc", "anl-tacc"}
        share = res.share_of_uc(from_time=150.0)
        assert 0.0 < share < 1.0

    def test_rejects_unknown_tuner(self):
        with pytest.raises(ValueError):
            figures.fig11(tuner="zz", duration_s=120.0)


class TestVaryingSchedule:
    def test_schedule_switch_point(self):
        sched = figures.varying_load_schedule(777.0)
        assert sched.at(776.9) == ExternalLoad(ext_cmp=16, ext_tfr=64)
        assert sched.at(777.0) == ExternalLoad(ext_cmp=16, ext_tfr=16)


class TestFigureJobs:
    """`jobs` fans cells over processes without changing any trace."""

    def test_fig5_parallel_equals_serial(self):
        kw = dict(loads={"none": ExternalLoad()}, duration_s=180.0, seed=3)
        a = figures.fig5(jobs=1, **kw)
        b = figures.fig5(jobs=2, **kw)
        assert a.traces.keys() == b.traces.keys()
        for load in a.traces:
            for tuner in a.traces[load]:
                ta, tb = a.traces[load][tuner], b.traces[load][tuner]
                assert tb.epochs == ta.epochs
                assert tb.steps == ta.steps

    def test_fig1_parallel_equals_serial(self):
        kw = dict(nc_values=[2, 8], reps=2, duration_s=120.0, seed=5)
        a = figures.fig1(jobs=1, **kw)
        b = figures.fig1(jobs=2, **kw)
        assert a.stats == b.stats

    def test_fig8_parallel_equals_serial(self):
        kw = dict(duration_s=200.0, switch_at_s=100.0, seed=1)
        a = figures.fig8(jobs=1, **kw)
        b = figures.fig8(jobs=2, **kw)
        for tuner in a.traces:
            assert b.traces[tuner].epochs == a.traces[tuner].epochs
