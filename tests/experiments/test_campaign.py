"""Tests for the full-evaluation campaign runner."""

import pytest

from repro.experiments.campaign import CampaignResult, CampaignScale, run_campaign


class TestCampaignScale:
    def test_full_matches_paper_setup(self):
        s = CampaignScale.full()
        assert s.duration_s == 1800.0
        assert s.fig1_reps == 5

    def test_quick_is_smaller(self):
        q = CampaignScale.quick()
        assert q.duration_s < CampaignScale.full().duration_s

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignScale(duration_s=30.0)
        with pytest.raises(ValueError):
            CampaignScale(fig1_reps=0)


class TestCampaignRun:
    @pytest.fixture(scope="class")
    def result(self):
        # One tiny campaign shared by all assertions in this class.
        return run_campaign(
            CampaignScale(duration_s=300.0, fig1_duration_s=120.0,
                          fig1_reps=1, seed=0)
        )

    def test_covers_every_figure(self, result):
        titles = " ".join(result.sections)
        for token in ("Fig 1", "Figs 5-7", "Fig 6", "ANL→TACC", "Fig 8",
                      "Fig 9", "Fig 10", "Fig 11"):
            assert token in titles

    def test_document_assembles_all_sections(self, result):
        doc = result.document()
        assert doc.startswith("# Campaign report")
        for name in result.sections:
            assert f"## {name}" in doc

    def test_sections_are_nonempty_tables(self, result):
        for name, block in result.sections.items():
            assert len(block.splitlines()) >= 3, name


def test_empty_result_document():
    doc = CampaignResult().document()
    assert doc.startswith("# Campaign report")


class TestCampaignParallel:
    SCALE = CampaignScale(duration_s=300.0, fig1_duration_s=120.0,
                          fig1_reps=1, seed=0)

    @pytest.fixture(scope="class")
    def serial(self):
        return run_campaign(self.SCALE)

    def test_parallel_report_is_identical(self, serial):
        par = run_campaign(self.SCALE, jobs=2)
        assert par.sections == serial.sections
        # Merge order (the report layout) must match too.
        assert list(par.sections) == list(serial.sections)

    def test_unit_seconds_and_obs_gauge(self):
        from repro.experiments.campaign import CAMPAIGN_UNITS
        from repro.obs import Instrumentation

        obs = Instrumentation.on()
        res = run_campaign(self.SCALE, jobs=2, obs=obs)
        assert set(res.unit_seconds) == {name for name, _ in CAMPAIGN_UNITS}
        assert all(v >= 0.0 for v in res.unit_seconds.values())
        prom = obs.metrics.render_prometheus()
        assert "repro_campaign_unit_seconds" in prom
        assert 'unit="fig1"' in prom

    def test_parallel_journaled_equals_serial(self, tmp_path, serial):
        res = run_campaign(self.SCALE, jobs=2,
                           journal_path=tmp_path / "camp.jnl")
        assert res.sections == serial.sections
        assert res.resumed_units == []


class TestCampaignBatch:
    SCALE = CampaignScale(duration_s=300.0, fig1_duration_s=120.0,
                          fig1_reps=1, seed=0)

    @pytest.fixture(scope="class")
    def serial(self):
        return run_campaign(self.SCALE)

    def test_batched_report_is_identical(self, serial):
        from repro.experiments.batch import BatchOccupancy
        from repro.experiments.campaign import CAMPAIGN_UNITS

        batched = run_campaign(self.SCALE, batch=4)
        assert batched.sections == serial.sections
        assert list(batched.sections) == list(serial.sections)
        # Occupancy lands: every unit accounted, aggregate is the sum,
        # nothing fell back on the stock campaign, and the unbatched
        # run charged nothing.
        assert set(batched.unit_batch) == {n for n, _ in CAMPAIGN_UNITS}
        total = BatchOccupancy()
        for occ in batched.unit_batch.values():
            total = total + occ
        assert batched.batch == total
        assert batched.batch.batched > 0
        assert batched.batch.fallback == 0
        assert batched.batch.runs_per_chunk > 1.0
        assert serial.batch == BatchOccupancy()
        # Nothing fell back, so there is nothing to explain.
        assert batched.fallback_reasons == {}

    def test_batch_composes_with_jobs(self, serial):
        both = run_campaign(self.SCALE, jobs=2, batch=4)
        assert both.sections == serial.sections
        assert both.batch.batched > 0

    def test_journal_records_batch_occupancy(self, tmp_path, serial):
        from repro.checkpoint import read_journal

        path = tmp_path / "camp.jnl"
        res = run_campaign(self.SCALE, batch=4, journal_path=path)
        assert res.sections == serial.sections
        journal = read_journal(path)
        per_unit = {
            name: record["batch"]
            for name, record in journal.sections.items()
        }
        assert set(per_unit) == set(res.unit_batch)
        for name, (batched, fallback, cached, chunks) in per_unit.items():
            occ = res.unit_batch[name]
            assert (batched, fallback, cached, chunks) == (
                occ.batched, occ.fallback, occ.cached, occ.chunks)
        # The per-reason fallback tally is journaled alongside.
        for record in journal.sections.values():
            assert record["fallback_reasons"] == {}


class TestReasonAccounting:
    """Regression: the campaign reason aggregates fold each
    (unit, reason) cell exactly once.  The old code ``update``-ed a
    running counter on every ``account`` call, so re-accounting a unit
    (journal merge replay, shard-merged rerun) doubled its reasons."""

    def test_fold_units_is_idempotent_per_unit(self):
        from repro.experiments.campaign import _fold_units

        per_unit = {"fig1": {"fault schedule": 2},
                    "fig2": {"fault schedule": 1, "finite-bytes": 3}}
        want = {"fault schedule": 3, "finite-bytes": 3}
        assert _fold_units(per_unit) == want
        # Re-accounting fig1 overwrites its cell; the fold is stable.
        per_unit["fig1"] = {"fault schedule": 2}
        assert _fold_units(per_unit) == want

    def test_result_aggregates_are_the_per_unit_fold(self):
        from repro.experiments.campaign import _fold_units

        res = run_campaign(
            CampaignScale(duration_s=300.0, fig1_duration_s=120.0,
                          fig1_reps=1, seed=0),
            batch=4,
        )
        assert res.fallback_reasons == _fold_units(res.unit_fallback_reasons)
        assert res.dispatch_reasons == _fold_units(res.unit_dispatch_reasons)
        assert sum(res.fallback_reasons.values()) == res.batch.fallback
        # The stock campaign is dispatch-clean on cd/cs lanes; nm and
        # instrumented lanes keep the ladder with advisory reasons.
        for reasons in res.unit_dispatch_reasons.values():
            assert all(r.startswith("dispatch:") for r in reasons)
        assert set(res.phase_s) <= {"span", "close", "dispatch"}
