"""Tests for the full-evaluation campaign runner."""

import pytest

from repro.experiments.campaign import CampaignResult, CampaignScale, run_campaign


class TestCampaignScale:
    def test_full_matches_paper_setup(self):
        s = CampaignScale.full()
        assert s.duration_s == 1800.0
        assert s.fig1_reps == 5

    def test_quick_is_smaller(self):
        q = CampaignScale.quick()
        assert q.duration_s < CampaignScale.full().duration_s

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignScale(duration_s=30.0)
        with pytest.raises(ValueError):
            CampaignScale(fig1_reps=0)


class TestCampaignRun:
    @pytest.fixture(scope="class")
    def result(self):
        # One tiny campaign shared by all assertions in this class.
        return run_campaign(
            CampaignScale(duration_s=300.0, fig1_duration_s=120.0,
                          fig1_reps=1, seed=0)
        )

    def test_covers_every_figure(self, result):
        titles = " ".join(result.sections)
        for token in ("Fig 1", "Figs 5-7", "Fig 6", "ANL→TACC", "Fig 8",
                      "Fig 9", "Fig 10", "Fig 11"):
            assert token in titles

    def test_document_assembles_all_sections(self, result):
        doc = result.document()
        assert doc.startswith("# Campaign report")
        for name in result.sections:
            assert f"## {name}" in doc

    def test_sections_are_nonempty_tables(self, result):
        for name, block in result.sections.items():
            assert len(block.splitlines()) >= 3, name


def test_empty_result_document():
    doc = CampaignResult().document()
    assert doc.startswith("# Campaign report")
