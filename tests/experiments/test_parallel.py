"""Process-pool fan-out: ordering, determinism, and failure semantics."""

import os

import pytest

from repro.experiments.parallel import (
    pool_imap,
    pool_map,
    replicate_seeds,
    resolve_jobs,
)


def _square(x):
    return x * x


def _maybe_fail(x):
    if x == 3:
        raise ValueError("boom on 3")
    return x


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4

    def test_zero_and_none_mean_all_cpus(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)


class TestPoolMap:
    def test_serial_matches_map(self):
        assert pool_map(_square, range(7), jobs=1) == [
            x * x for x in range(7)
        ]

    def test_parallel_preserves_input_order(self):
        assert pool_map(_square, range(9), jobs=3) == [
            x * x for x in range(9)
        ]

    def test_parallel_equals_serial(self):
        items = [5, 3, 8, 1, 1, 0]
        assert (pool_map(_square, items, jobs=2)
                == pool_map(_square, items, jobs=1))

    def test_empty_and_single_item(self):
        assert pool_map(_square, [], jobs=4) == []
        assert pool_map(_square, [6], jobs=4) == [36]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom on 3"):
            pool_map(_maybe_fail, [1, 2, 3, 4], jobs=2)
        with pytest.raises(ValueError, match="boom on 3"):
            pool_map(_maybe_fail, [1, 2, 3, 4], jobs=1)

    @pytest.mark.slow
    def test_spawn_context(self):
        # spawn re-imports the module in the worker: the strictest
        # start method, and the macOS/Windows default.
        assert pool_map(_square, [2, 4], jobs=2, mp_context="spawn") == [
            4, 16,
        ]


class TestPoolImap:
    def test_streams_in_input_order(self):
        assert list(pool_imap(_square, range(8), jobs=3)) == [
            x * x for x in range(8)
        ]

    def test_serial_is_lazy(self):
        calls = []

        def probe(x):
            calls.append(x)
            return x

        gen = pool_imap(probe, [1, 2, 3], jobs=1)
        assert calls == []
        assert next(gen) == 1
        assert calls == [1]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom on 3"):
            list(pool_imap(_maybe_fail, [1, 2, 3], jobs=2))


class TestReplicateSeeds:
    def test_derivation_is_positional(self):
        assert list(replicate_seeds(40, 3)) == [40, 41, 42]

    def test_rejects_zero_reps(self):
        with pytest.raises(ValueError, match="reps"):
            replicate_seeds(0, 0)
