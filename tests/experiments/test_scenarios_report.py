"""Unit tests for scenarios, runner plumbing, and report rendering."""

import pytest

from repro.core.base import StaticTuner
from repro.experiments.report import (
    downsample,
    render_comparison,
    render_series,
    render_table,
)
from repro.experiments.runner import make_session, run_single
from repro.experiments.scenarios import (
    ANL_TACC,
    ANL_UC,
    default_start,
    standard_tuners,
)
from repro.units import gbps_to_mbps


class TestScenarios:
    def test_link_capacities_match_testbed(self):
        # 40 Gb/s to UChicago, 20 Gb/s to TACC.
        uc = ANL_UC.path("anl-uc")
        tacc = ANL_TACC.path("anl-tacc")
        assert uc.bottleneck_capacity_mbps == gbps_to_mbps(40.0)
        assert tacc.bottleneck_capacity_mbps == gbps_to_mbps(20.0)

    def test_tacc_rtt_is_33ms(self):
        assert ANL_TACC.path("anl-tacc").rtt_ms == 33.0

    def test_paths_share_source_nic(self):
        topo = ANL_UC.build_topology()
        assert topo.shared_links("anl-uc", "anl-tacc") == {"anl-nic"}

    def test_fresh_topology_each_call(self):
        assert ANL_UC.build_topology() is not ANL_UC.build_topology()

    def test_unknown_path_raises(self):
        with pytest.raises(KeyError):
            ANL_UC.path("nowhere")

    def test_standard_tuners_names(self):
        assert set(standard_tuners()) == {
            "default", "cd-tuner", "cs-tuner", "nm-tuner",
        }

    def test_default_start(self):
        assert default_start(1) == (2,)
        assert default_start(2) == (2, 8)
        with pytest.raises(ValueError):
            default_start(3)


class TestRunnerPlumbing:
    def test_make_session_static_does_not_restart(self):
        s = make_session("x", "anl-uc", StaticTuner(), duration_s=60.0)
        assert not s.restart_each_epoch

    def test_make_session_adaptive_restarts(self):
        from repro.core.nm_tuner import NmTuner

        s = make_session("x", "anl-uc", NmTuner(), duration_s=60.0)
        assert s.restart_each_epoch

    def test_run_single_returns_epochs(self):
        t = run_single(ANL_UC, StaticTuner(), duration_s=90.0, seed=0)
        assert len(t.epochs) == 3
        assert t.epochs[0].params == (2,)

    def test_run_single_2d(self):
        t = run_single(ANL_UC, StaticTuner(), duration_s=60.0, tune_np=True)
        assert t.epochs[0].params == (2, 8)


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4567.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "4567" in lines[-1]

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_series(self):
        out = render_series(
            [0.0, 30.0], {"default": [1.0, 2.0], "nm": [3.0, 4.0]},
            title="fig",
        )
        assert out.startswith("fig")
        assert "default" in out and "nm" in out

    def test_render_series_length_check(self):
        with pytest.raises(ValueError):
            render_series([0.0], {"x": [1.0, 2.0]})

    def test_render_comparison(self):
        out = render_comparison([("peak MB/s", 4000, 3900.0)])
        assert "paper" in out and "measured" in out

    def test_downsample(self):
        vals = list(range(100))
        ds = downsample(vals, 10)
        assert len(ds) == 10
        assert ds[0] == 0 and ds[-1] == 99
        assert downsample([1, 2], 10) == [1, 2]
        with pytest.raises(ValueError):
            downsample(vals, 1)


class TestAsciiChart:
    def test_renders_with_legend_and_range(self):
        from repro.experiments.report import ascii_chart

        out = ascii_chart(
            {"a": [0.0, 50.0, 100.0], "b": [100.0, 50.0, 0.0]},
            height=5, width=20, title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "100" in lines[1]
        assert "*=a" in lines[-1] and "o=b" in lines[-1]

    def test_flat_series_does_not_divide_by_zero(self):
        from repro.experiments.report import ascii_chart

        out = ascii_chart({"flat": [5.0] * 10}, height=4, width=12)
        assert "*" in out

    def test_validation(self):
        from repro.experiments.report import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart({}, height=5, width=20)
        with pytest.raises(ValueError):
            ascii_chart({"a": [1.0]}, height=2, width=20)
        with pytest.raises(ValueError):
            ascii_chart({"a": []}, height=5, width=20)
        with pytest.raises(ValueError):
            ascii_chart(
                {str(i): [1.0, 2.0] for i in range(9)}, height=5, width=20
            )
