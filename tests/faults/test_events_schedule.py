"""Unit tests for the fault vocabulary and deterministic schedules."""

import pytest

from repro.faults import (
    BLACKOUT,
    HARD_KINDS,
    LINK_DEGRADE,
    LOAD_SPIKE,
    OBS_LOSS,
    SESSION_ABORT,
    STREAM_CRASH,
    FaultEvent,
    FaultSchedule,
)


class TestFaultEvent:
    def test_window_and_activity(self):
        e = FaultEvent(BLACKOUT, epoch=3, duration=2)
        assert e.last_epoch == 4
        assert not e.active_at(2)
        assert e.active_at(3)
        assert e.active_at(4)
        assert not e.active_at(5)

    def test_hard_classification(self):
        assert FaultEvent(SESSION_ABORT, 0).hard
        assert FaultEvent(STREAM_CRASH, 0).hard
        assert FaultEvent(BLACKOUT, 0).hard
        assert not FaultEvent(LINK_DEGRADE, 0, severity=0.5).hard
        assert not FaultEvent(OBS_LOSS, 0).hard

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor-strike", 0)
        with pytest.raises(ValueError):
            FaultEvent(BLACKOUT, epoch=-1)
        with pytest.raises(ValueError):
            FaultEvent(BLACKOUT, 0, duration=0)
        with pytest.raises(ValueError):
            FaultEvent(LINK_DEGRADE, 0, severity=1.5)
        with pytest.raises(ValueError):
            FaultEvent(LOAD_SPIKE, 0, severity=-0.1)
        with pytest.raises(ValueError):
            FaultEvent(STREAM_CRASH, 0, at_fraction=1.0)


class TestFaultSchedule:
    def test_hard_fault_priority_abort_beats_crash_beats_blackout(self):
        sched = FaultSchedule((
            FaultEvent(BLACKOUT, 5),
            FaultEvent(SESSION_ABORT, 5),
            FaultEvent(STREAM_CRASH, 5, at_fraction=0.5),
        ))
        hard = sched.hard_fault_at(5)
        assert hard is not None and hard.kind == SESSION_ABORT
        assert HARD_KINDS[0] == SESSION_ABORT

    def test_rate_factor_compounds_soft_faults(self):
        sched = FaultSchedule.degradation(2, 3, severity=0.5).merge(
            FaultSchedule.load_spike(3, 1, severity=1.0)
        )
        assert sched.rate_factor(1) == 1.0
        assert sched.rate_factor(2) == pytest.approx(0.5)
        assert sched.rate_factor(3) == pytest.approx(0.25)
        assert sched.rate_factor(4) == pytest.approx(0.5)

    def test_observation_loss_query(self):
        sched = FaultSchedule((FaultEvent(OBS_LOSS, 7),))
        assert sched.observation_lost(7)
        assert not sched.observation_lost(6)
        assert sched.fault_epochs() == ()  # obs-loss is not a hard fault

    def test_merge_and_shift(self):
        a = FaultSchedule.blackout(2)
        b = FaultSchedule.abort(9)
        merged = a.merge(b).shifted(10)
        assert merged.fault_epochs() == (12, 19)

    def test_events_sorted_regardless_of_construction_order(self):
        fwd = FaultSchedule((FaultEvent(BLACKOUT, 1), FaultEvent(BLACKOUT, 8)))
        rev = FaultSchedule((FaultEvent(BLACKOUT, 8), FaultEvent(BLACKOUT, 1)))
        assert fwd == rev

    def test_bernoulli_is_seed_deterministic(self):
        a = FaultSchedule.bernoulli(42, 200, fault_rate=0.2)
        b = FaultSchedule.bernoulli(42, 200, fault_rate=0.2)
        c = FaultSchedule.bernoulli(43, 200, fault_rate=0.2)
        assert a == b
        assert a != c

    def test_bernoulli_rate_is_respected(self):
        sched = FaultSchedule.bernoulli(
            0, 2000, fault_rate=0.2, kinds=(BLACKOUT,)
        )
        rate = len(sched.fault_epochs()) / 2000
        assert rate == pytest.approx(0.2, abs=0.03)

    def test_bernoulli_extremes(self):
        assert FaultSchedule.bernoulli(0, 50, fault_rate=0.0).events == ()
        full = FaultSchedule.bernoulli(0, 50, fault_rate=1.0, kinds=(BLACKOUT,))
        assert full.fault_epochs() == tuple(range(50))

    def test_bursts_are_contiguous_windows(self):
        sched = FaultSchedule.bursts(1, n_epochs=60, n_bursts=3, burst_len=4)
        epochs = sched.fault_epochs()
        assert len(sched.events) == 3
        for e in sched.events:
            assert e.duration == 4
            assert set(range(e.epoch, e.epoch + 4)) <= set(epochs)
            assert e.last_epoch < 60

    def test_builders_validate(self):
        with pytest.raises(ValueError):
            FaultSchedule.bernoulli(0, -1, fault_rate=0.5)
        with pytest.raises(ValueError):
            FaultSchedule.bernoulli(0, 10, fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultSchedule.bernoulli(0, 10, fault_rate=0.5, kinds=())
        with pytest.raises(ValueError):
            FaultSchedule.bursts(0, 60, 3, burst_len=0)
        with pytest.raises(ValueError):
            FaultSchedule.blackout(0).shifted(-1)
