"""Fault campaigns on the live path: tune_live resilience and the
hardened subprocess runner."""

import os
import signal
import time

import pytest

from repro.core import NmTuner, StaticTuner
from repro.core.params import concurrency_space
from repro.faults import (
    BLACKOUT,
    OBS_LOSS,
    CircuitBreaker,
    EpochFault,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)
from repro.live import (
    BYTE_PUMP_PROGRESS,
    SubprocessEpochRunner,
    parse_last_count,
    tune_live,
)

SPACE = concurrency_space(max_nc=32)
NO_SLEEP = lambda s: None  # noqa: E731


def _deterministic_runner(calls=None):
    def run_epoch(nc, np_, duration_s):
        if calls is not None:
            calls.append((nc, np_, duration_s))
        return nc * 1e6 * duration_s

    return run_epoch


class TestTuneLiveFaults:
    def test_blackout_skips_the_runner_and_zeroes_the_epoch(self):
        calls = []
        res = tune_live(
            StaticTuner(), SPACE, (4,), _deterministic_runner(calls),
            epoch_s=10.0, max_epochs=4,
            fault_schedule=FaultSchedule.blackout(1, duration=2),
            sleep=NO_SLEEP,
        )
        assert [c is not None for c in calls]
        assert len(calls) == 2  # epochs 0 and 3 only
        by_index = {e.index: e for e in res.epochs}
        for i in (1, 2):
            assert by_index[i].faulted
            assert by_index[i].fault == BLACKOUT
            assert by_index[i].bytes_moved == 0.0
            assert not by_index[i].tuned

    def test_stream_crash_credits_partial_bytes(self):
        sched = FaultSchedule(
            (FaultEvent("stream-crash", 1, at_fraction=0.5),)
        )
        res = tune_live(
            StaticTuner(), SPACE, (4,), _deterministic_runner(),
            epoch_s=10.0, max_epochs=3, fault_schedule=sched,
            sleep=NO_SLEEP,
        )
        crash = res.epochs[1]
        assert crash.faulted
        assert crash.bytes_moved == pytest.approx(4 * 1e6 * 5.0)
        assert not crash.tuned

    def test_obs_loss_runs_but_withholds_the_measurement(self):
        observed = []

        class Spy(StaticTuner):
            def propose(self, x0, space):
                x = space.fbnd(x0)
                while True:
                    f = yield x
                    observed.append(f)

        sched = FaultSchedule((FaultEvent(OBS_LOSS, 1),))
        res = tune_live(
            Spy(), SPACE, (4,), _deterministic_runner(),
            epoch_s=10.0, max_epochs=3, fault_schedule=sched,
            sleep=NO_SLEEP,
        )
        lost = res.epochs[1]
        assert not lost.faulted and lost.fault == OBS_LOSS
        assert lost.bytes_moved > 0
        assert not lost.tuned
        assert len(observed) == 2  # epochs 0 and 2

    def test_raising_run_epoch_does_not_crash_the_loop(self):
        def flaky(nc, np_, duration_s):
            if len(seen) == 1:
                seen.append("boom")
                raise RuntimeError("tool exploded")
            seen.append("ok")
            return 1e6

        seen = []
        res = tune_live(StaticTuner(), SPACE, (2,), flaky,
                        epoch_s=5.0, max_epochs=3, sleep=NO_SLEEP)
        assert len(res.epochs) == 3
        bad = res.epochs[1]
        assert bad.faulted and bad.fault == "epoch-fault"
        assert bad.bytes_moved == 0.0
        assert not bad.tuned
        assert res.epochs[2].tuned  # the loop recovered

    def test_epoch_fault_partial_bytes_are_credited(self):
        def dying(nc, np_, duration_s):
            raise EpochFault("died", kind="launch-failure",
                             partial_bytes=7e6)

        res = tune_live(StaticTuner(), SPACE, (2,), dying,
                        epoch_s=5.0, max_epochs=1, sleep=NO_SLEEP)
        assert res.epochs[0].bytes_moved == 7e6
        assert res.epochs[0].fault == "launch-failure"

    def test_backoff_served_through_sleep_and_escalating(self):
        slept = []
        res = tune_live(
            StaticTuner(), SPACE, (2,), _deterministic_runner(),
            epoch_s=10.0, max_epochs=4,
            fault_schedule=FaultSchedule.blackout(0, duration=3),
            retry_policy=RetryPolicy(base_backoff_s=1.0, backoff_factor=2.0,
                                     jitter_frac=0.0),
            sleep=lambda s: slept.append(s),
        )
        backoffs = [s for s in slept if s != 10.0]
        assert backoffs == [1.0, 2.0, 4.0]
        assert res.epochs[-1].retries == 3

    def test_abort_without_budget_fails_the_run(self):
        res = tune_live(
            StaticTuner(), SPACE, (2,), _deterministic_runner(),
            epoch_s=10.0, max_epochs=6,
            fault_schedule=FaultSchedule.abort(2),
            retry_policy=RetryPolicy(max_retries_per_session=0,
                                     jitter_frac=0.0),
            sleep=NO_SLEEP,
        )
        assert res.failed
        assert len(res.epochs) == 3
        assert res.epochs[-1].fault == "session-abort"

    def test_breaker_pins_fallback_params_and_suppresses_tuner(self):
        res = tune_live(
            NmTuner(), SPACE, (16,), _deterministic_runner(),
            epoch_s=10.0, max_epochs=10,
            fault_schedule=FaultSchedule.blackout(2, duration=2),
            retry_policy=RetryPolicy(jitter_frac=0.0),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_epochs=2),
            sleep=NO_SLEEP,
        )
        open_epochs = [e for e in res.epochs if e.breaker == "open"]
        assert open_epochs, "breaker never opened"
        for e in open_epochs:
            assert e.params[0] == 2  # safe default nc
            assert not e.tuned
        # after cooldown the run returns to tuned epochs
        assert res.epochs[-1].breaker in ("closed", "half-open")

    def test_campaign_replays_identically_with_fake_runner(self):
        def once():
            return tune_live(
                NmTuner(), SPACE, (8,), _deterministic_runner(),
                epoch_s=10.0, max_epochs=12,
                fault_schedule=FaultSchedule.bursts(
                    5, n_epochs=12, n_bursts=2, burst_len=2
                ),
                retry_policy=RetryPolicy(jitter_frac=0.0),
                breaker=CircuitBreaker(failure_threshold=2,
                                       cooldown_epochs=1),
                sleep=NO_SLEEP,
            )

        a, b = once(), once()
        assert a.epochs == b.epochs
        assert a.failed == b.failed

    def test_total_bytes_stop_condition_still_respected(self):
        res = tune_live(StaticTuner(), SPACE, (4,), _deterministic_runner(),
                        epoch_s=10.0, total_bytes=50e6, sleep=NO_SLEEP)
        assert res.total_bytes == pytest.approx(50e6)


class TestParseLastCount:
    def test_takes_last_parseable_line(self):
        assert parse_last_count("100\n200\n300\n") == 300.0

    def test_skips_truncated_final_line(self):
        assert parse_last_count("1024\n2048\n30") == 30.0
        assert parse_last_count("1024\n2048\ngarbage") == 2048.0

    def test_empty_output_is_zero(self):
        assert parse_last_count("") == 0.0
        assert parse_last_count("\n \n") == 0.0


class TestSubprocessRunnerHardening:
    def test_child_killed_mid_epoch_partial_bytes_counted_and_reaped(self):
        procs = []

        def kill_after_delay(copy, proc):
            procs.append(proc)
            time.sleep(0.6)
            os.kill(proc.pid, signal.SIGKILL)

        runner = SubprocessEpochRunner(
            BYTE_PUMP_PROGRESS, parse_bytes=parse_last_count,
            on_launch=kill_after_delay,
        )
        total = runner(1, 2, 2.0)
        # the progress lines before SIGKILL credit the partial epoch
        assert total > 0
        assert procs[0].returncode == -signal.SIGKILL
        assert procs[0].poll() is not None  # reaped

    def test_run_completes_when_one_of_two_children_dies(self):
        procs = []

        def kill_first(copy, proc):
            procs.append(proc)
            if copy == 0:
                time.sleep(0.4)
                proc.kill()

        runner = SubprocessEpochRunner(
            BYTE_PUMP_PROGRESS, parse_bytes=parse_last_count,
            on_launch=kill_first,
        )
        total = runner(2, 2, 1.2)
        assert total > 0
        assert all(p.returncode is not None for p in procs)
        assert procs[0].returncode == -signal.SIGKILL

    def test_launch_retry_recovers_from_transient_failure(self, tmp_path):
        exe = tmp_path / "flaky"
        slept = []

        def sleep_and_heal(s):
            slept.append(s)
            exe.write_text("#!/bin/sh\necho 100\n")
            exe.chmod(0o755)

        runner = SubprocessEpochRunner(
            str(exe), parse_bytes=float,
            launch_retries=2, launch_backoff_s=0.1, sleep=sleep_and_heal,
        )
        assert runner(1, 1, 0.5) == 100.0
        assert slept == [0.1]

    def test_exhausted_launch_retries_raise_epoch_fault(self, tmp_path):
        runner = SubprocessEpochRunner(
            str(tmp_path / "definitely-missing"), parse_bytes=float,
            launch_retries=1, launch_backoff_s=0.0, sleep=NO_SLEEP,
        )
        with pytest.raises(EpochFault) as exc_info:
            runner(1, 1, 0.5)
        assert exc_info.value.kind == "launch-failure"
        assert exc_info.value.partial_bytes == 0.0

    def test_partial_bytes_from_copies_launched_before_the_failure(
        self, tmp_path
    ):
        good = tmp_path / "exe0"
        good.write_text("#!/bin/sh\necho 50\n")
        good.chmod(0o755)
        runner = SubprocessEpochRunner(
            str(tmp_path / "exe{copy}"), parse_bytes=float,
        )
        with pytest.raises(EpochFault) as exc_info:
            runner(2, 1, 0.5)
        assert exc_info.value.partial_bytes == 50.0

    def test_unparseable_output_of_dead_child_counts_zero(self, tmp_path):
        exe = tmp_path / "crasher"
        exe.write_text("#!/bin/sh\necho not-a-number\nexit 3\n")
        exe.chmod(0o755)
        runner = SubprocessEpochRunner(str(exe), parse_bytes=float)
        assert runner(1, 1, 0.5) == 0.0

    def test_unparseable_output_of_healthy_child_still_raises(self, tmp_path):
        exe = tmp_path / "weird"
        exe.write_text("#!/bin/sh\necho not-a-number\nexit 0\n")
        exe.chmod(0o755)
        runner = SubprocessEpochRunner(str(exe), parse_bytes=float)
        with pytest.raises(ValueError):
            runner(1, 1, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SubprocessEpochRunner("x", parse_bytes=float, launch_retries=-1)
        with pytest.raises(ValueError):
            SubprocessEpochRunner("x", parse_bytes=float,
                                  launch_backoff_s=-1.0)


class TestLiveCampaignWithBytePump:
    def test_fault_retry_breaker_transitions_replay_identically(self):
        def once():
            runner = SubprocessEpochRunner(
                BYTE_PUMP_PROGRESS, parse_bytes=parse_last_count,
            )
            return tune_live(
                NmTuner(), SPACE, (2,), runner,
                epoch_s=0.4, max_epochs=8,
                fault_schedule=FaultSchedule.blackout(1, duration=2),
                retry_policy=RetryPolicy(base_backoff_s=0.01,
                                         jitter_frac=0.0),
                breaker=CircuitBreaker(failure_threshold=2,
                                       cooldown_epochs=2),
                sleep=NO_SLEEP,
            )

        a, b = once(), once()
        assert a.transitions() == b.transitions()
        assert [e.retries for e in a.epochs] == [e.retries for e in b.epochs]
        assert any(e.breaker == "open" for e in a.epochs)
        # real bytes moved, outside the blackout
        assert a.total_bytes > 0
