"""The shared corruption fuzzer, and the durability claims it checks.

One damage model (:func:`repro.faults.corrupt_bytes`) drives three
suites: fuzzer properties, cache entries (every corruption degrades to
a miss or an intact hit — never wrong data), and the checkpoint
journal's torn-tail tolerance.
"""

import hashlib
import json
import warnings

import numpy as np
import pytest

from repro.cache import RunCache
from repro.faults import CORRUPTION_KINDS, corrupt_bytes


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


SAMPLES = [
    b"",
    b"x",
    b'{"format": 2, "key": "abc", "payload": {"v": 1.5}}',
    bytes(range(256)) * 4,
]


class TestFuzzerProperties:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    @pytest.mark.parametrize("data", SAMPLES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_never_byte_equal(self, kind, data, seed):
        rng = np.random.default_rng(seed)
        assert corrupt_bytes(data, kind=kind, rng=rng) != data

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_deterministic_given_seed(self, kind):
        data = SAMPLES[2]
        a = corrupt_bytes(data, kind=kind,
                          rng=np.random.default_rng(42))
        b = corrupt_bytes(data, kind=kind,
                          rng=np.random.default_rng(42))
        assert a == b

    def test_truncate_shortens(self):
        data = b"0123456789"
        out = corrupt_bytes(data, kind="truncate",
                            rng=np.random.default_rng(0))
        assert len(out) < len(data)
        assert data.startswith(out)

    def test_garbage_appends(self):
        data = b"0123"
        out = corrupt_bytes(data, kind="garbage",
                            rng=np.random.default_rng(0))
        assert out.startswith(data)
        assert len(out) > len(data)

    def test_flip_preserves_length(self):
        data = b"0123456789"
        out = corrupt_bytes(data, kind="flip",
                            rng=np.random.default_rng(0))
        assert len(out) == len(data)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption kind"):
            corrupt_bytes(b"x", kind="meteor",
                          rng=np.random.default_rng(0))


class TestCacheEntryCorruption:
    """Property: for every kind and many seeds, a corrupted entry file
    yields a miss or the original payload — never wrong data, never an
    exception."""

    PAYLOAD = {"traces": {"main": [1.0, 2.5, 3.25]}, "n": 7}

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_corrupted_entry_never_serves_wrong_data(self, tmp_path, kind):
        for seed in range(20):
            store = RunCache(tmp_path / f"c-{kind}-{seed}")
            key = _key(f"{kind}-{seed}")
            path = store.put(key, self.PAYLOAD)
            rng = np.random.default_rng(seed)
            path.write_bytes(
                corrupt_bytes(path.read_bytes(), kind=kind, rng=rng)
            )
            got = store.get(key)
            assert got is None or got == self.PAYLOAD

    def test_payload_checksum_catches_json_preserving_flips(self, tmp_path):
        """A flip that keeps the document valid JSON but changes a
        payload value must be caught by the checksum, not served."""
        store = RunCache(tmp_path / "sum")
        key = _key("sum")
        path = store.put(key, {"value": 1111})
        head, tail = path.read_text().split("\n", 1)
        payload = json.loads(tail)
        payload["value"] = 1119  # one flipped bit: 1111 ^ 8
        path.write_text(
            head + "\n" + json.dumps(payload, sort_keys=True) + "\n"
        )
        assert store.get(key) is None


class TestJournalTornTail:
    def _journal(self, tmp_path):
        from repro.checkpoint.journal import JournalWriter

        path = tmp_path / "run.jnl"
        with JournalWriter(path) as writer:
            writer.write_header({"campaign": {"seed": 0}})
            writer.write_section("fig1", {"blocks": {"a": "text"}})
            writer.write_section("fig2", {"blocks": {"b": "text"}})
        return path

    def _read(self, path):
        from repro.checkpoint.journal import read_journal

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return read_journal(path)

    def test_truncated_tail_drops_only_the_torn_record(self, tmp_path):
        path = self._journal(tmp_path)
        data = path.read_bytes()
        rng = np.random.default_rng(0)
        # Cut inside the final record: keep everything up to the last
        # newline-terminated line, then append a torn fragment.
        head, _, tail = data.rstrip(b"\n").rpartition(b"\n")
        torn = corrupt_bytes(tail, kind="truncate", rng=rng)
        path.write_bytes(head + b"\n" + torn)
        journal = self._read(path)
        assert journal.truncated
        assert "fig1" in journal.sections

    def test_garbage_tail_is_dropped(self, tmp_path):
        path = self._journal(tmp_path)
        rng = np.random.default_rng(1)
        extra = corrupt_bytes(b"", kind="garbage", rng=rng)
        with path.open("ab") as f:
            f.write(extra)
        journal = self._read(path)
        assert journal.truncated
        assert set(journal.sections) == {"fig1", "fig2"}

    def test_mid_file_damage_raises_not_resumes(self, tmp_path):
        from repro.sim.traceio import CorruptTraceError

        path = self._journal(tmp_path)
        lines = path.read_bytes().split(b"\n")
        lines[1] = b'{"broken'  # a non-final record
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(CorruptTraceError):
            self._read(path)

    def test_writer_heals_a_torn_tail_on_reopen(self, tmp_path):
        from repro.checkpoint.journal import JournalWriter

        path = self._journal(tmp_path)
        with path.open("ab") as f:
            f.write(b'{"kind": "section", "torn')
        with JournalWriter(path) as writer:  # _drop_torn_tail on open
            writer.write_section("fig3", {"blocks": {"c": "text"}})
        journal = self._read(path)
        assert not journal.truncated
        assert set(journal.sections) == {"fig1", "fig2", "fig3"}
