"""Unit tests for the retry policy and circuit breaker state machines."""

import numpy as np
import pytest

from repro.faults import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    SAFE_DEFAULT_NC,
    SAFE_DEFAULT_NP,
    CircuitBreaker,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_clamped(self):
        pol = RetryPolicy(base_backoff_s=1.0, backoff_factor=2.0,
                          max_backoff_s=30.0, jitter_frac=0.0)
        assert [pol.backoff_s(k) for k in range(6)] == [1, 2, 4, 8, 16, 30]

    def test_jitter_bounds(self):
        pol = RetryPolicy(base_backoff_s=10.0, jitter_frac=0.2)
        rng = np.random.default_rng(0)
        for _ in range(200):
            d = pol.backoff_s(0, rng=rng)
            assert 8.0 <= d <= 12.0

    def test_predrawn_u_bypasses_rng(self):
        pol = RetryPolicy(base_backoff_s=10.0, jitter_frac=0.5)
        assert pol.backoff_s(0, u=1.0) == pytest.approx(15.0)
        assert pol.backoff_s(0, u=-1.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            pol.backoff_s(0, u=2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries_per_epoch=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=5.0, max_backoff_s=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=1.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(-1)


class TestRetryState:
    def test_epoch_budget_refills_each_epoch(self):
        st = RetryPolicy(max_retries_per_epoch=2, jitter_frac=0.0).start()
        assert st.can_retry()
        st.record_failure()
        st.record_failure()
        assert not st.can_retry()
        st.next_epoch()
        assert st.can_retry()

    def test_session_budget_never_refills(self):
        st = RetryPolicy(max_retries_per_epoch=10,
                         max_retries_per_session=2,
                         jitter_frac=0.0).start()
        st.record_failure()
        st.next_epoch()
        st.record_failure()
        st.next_epoch()
        assert not st.can_retry()
        with pytest.raises(RuntimeError):
            st.record_failure()

    def test_backoff_escalates_across_consecutive_failed_epochs(self):
        st = RetryPolicy(base_backoff_s=1.0, backoff_factor=2.0,
                         jitter_frac=0.0).start()
        delays = []
        for _ in range(3):
            st.next_epoch()
            delays.append(st.record_failure())
        assert delays == [1.0, 2.0, 4.0]
        st.record_success()
        st.next_epoch()
        assert st.record_failure() == 1.0  # streak reset by clean epoch


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        br = CircuitBreaker(failure_threshold=3, cooldown_epochs=2)
        br.record_epoch(True)
        br.record_epoch(True)
        assert br.state == CLOSED
        br.record_epoch(True)
        assert br.state == OPEN
        assert br.is_open and br.suppresses_tuner
        assert br.opens == 1

    def test_clean_epoch_resets_the_count(self):
        br = CircuitBreaker(failure_threshold=2)
        br.record_epoch(True)
        br.record_epoch(False)
        br.record_epoch(True)
        assert br.state == CLOSED

    def test_cooldown_then_half_open_then_close_on_clean_probe(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_epochs=2)
        br.record_epoch(True)
        assert br.state == OPEN
        br.record_epoch(True)   # cooldown epoch 1 (faults don't extend it)
        assert br.state == OPEN
        br.record_epoch(False)  # cooldown epoch 2
        assert br.state == HALF_OPEN
        br.record_epoch(False)  # clean probe
        assert br.state == CLOSED
        assert br.consecutive_failures == 0

    def test_faulted_probe_reopens(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_epochs=1)
        br.record_epoch(True)
        br.record_epoch(True)
        assert br.state == HALF_OPEN
        br.record_epoch(True)
        assert br.state == OPEN
        assert br.opens == 2

    def test_reset_restores_fresh_closed(self):
        br = CircuitBreaker(failure_threshold=1)
        br.record_epoch(True)
        br.reset()
        assert br.state == CLOSED
        assert br.opens == 0

    def test_fallback_defaults_are_the_globus_large_file_settings(self):
        br = CircuitBreaker()
        assert (br.fallback_nc, br.fallback_np) == (2, 8)
        assert (SAFE_DEFAULT_NC, SAFE_DEFAULT_NP) == (2, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_epochs=0)
        with pytest.raises(ValueError):
            CircuitBreaker(fallback_nc=0)


class TestBreakerConcurrency:
    """The half-open probe claim: exactly one racing thread wins."""

    def _half_open(self) -> CircuitBreaker:
        br = CircuitBreaker(failure_threshold=1, cooldown_epochs=1)
        br.record_epoch(True)   # trip
        br.record_epoch(False)  # cooldown over -> half-open
        assert br.state == HALF_OPEN
        return br

    def test_acquire_probe_claims_once(self):
        br = self._half_open()
        assert br.acquire_probe()
        assert not br.acquire_probe()  # already claimed this cooldown

    def test_acquire_probe_refused_outside_half_open(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_epochs=1)
        assert not br.acquire_probe()  # closed
        br.record_epoch(True)
        assert not br.acquire_probe()  # open

    def test_record_epoch_releases_the_claim(self):
        br = self._half_open()
        assert br.acquire_probe()
        br.record_epoch(True)   # faulted probe -> open again
        br.record_epoch(False)  # cooldown over -> half-open again
        assert br.acquire_probe()  # a new cooldown, a new claim

    def test_reset_and_restore_release_the_claim(self):
        br = self._half_open()
        assert br.acquire_probe()
        snap = br.snapshot()
        br.restore(snap)
        assert br.acquire_probe()
        br.reset()
        br.record_epoch(True)
        br.record_epoch(False)
        assert br.acquire_probe()

    def test_exactly_one_probe_per_cooldown_under_racing_threads(self):
        """Regression: many threads observing HALF_OPEN at once must
        produce exactly one probe per cooldown, every cooldown."""
        import threading

        br = CircuitBreaker(failure_threshold=1, cooldown_epochs=1)
        cooldowns = 20
        threads_per_round = 16
        for _ in range(cooldowns):
            br.record_epoch(True)   # trip
            br.record_epoch(False)  # -> half-open
            assert br.state == HALF_OPEN
            wins: list[bool] = []
            lock = threading.Lock()
            barrier = threading.Barrier(threads_per_round)

            def contend():
                barrier.wait()
                got = br.acquire_probe()
                with lock:
                    wins.append(got)

            ts = [threading.Thread(target=contend)
                  for _ in range(threads_per_round)]
            for t in ts:
                t.start()
            for t in ts:
                t.join()
            assert sum(wins) == 1, "exactly one probe claim per cooldown"
            br.record_epoch(False)  # the winner's probe closes it
            assert br.state == CLOSED

    def test_breaker_pickles_without_its_lock(self):
        import pickle

        br = self._half_open()
        assert br.acquire_probe()
        clone = pickle.loads(pickle.dumps(br))
        assert clone.state == HALF_OPEN
        assert clone.acquire_probe()  # the claim is per-process

    def test_on_transition_fires_outside_the_lock(self):
        """A callback that re-enters the breaker must not deadlock."""
        br = CircuitBreaker(failure_threshold=1, cooldown_epochs=1)
        seen: list[tuple[str, str]] = []

        def cb(old, new):
            seen.append((old, new))
            br.acquire_probe()  # re-entry: must not deadlock

        br.on_transition = cb
        br.record_epoch(True)
        br.record_epoch(False)
        assert seen == [(CLOSED, OPEN), (OPEN, HALF_OPEN)]
