"""Fault campaigns on the simulation path: determinism, tuner guarding,
breaker value, abort semantics."""

import math

import pytest

from repro.core import JointTuner, NmTuner, StaticTuner, Tuner
from repro.core.params import concurrency_space
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC
from repro.faults import (
    BLACKOUT,
    OBS_LOSS,
    OPEN,
    CircuitBreaker,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)
from repro.gridftp.transfer import TransferSpec
from repro.sim.engine import Engine, EngineConfig, JointController
from repro.sim.session import ParamMap, TransferSession
from repro.sim.traceio import trace_to_dict


class SpyTuner(Tuner):
    """Static proposals; records every throughput it is fed."""

    name = "spy"
    restarts_every_epoch = True

    def __init__(self):
        self.seen: list[float] = []

    def propose(self, x0, space):
        while True:
            f = yield x0
            self.seen.append(f)


def _campaign_run(seed, *, tuner=None, breaker=None, duration_s=600.0,
                  schedule=None, retry_policy=None):
    n_epochs = int(duration_s // 30)
    if schedule is None:
        schedule = FaultSchedule.bursts(
            seed, n_epochs=n_epochs, n_bursts=2, burst_len=3
        )
    return run_single(
        ANL_UC,
        tuner if tuner is not None else NmTuner(),
        duration_s=duration_s,
        seed=seed,
        fault_schedule=schedule,
        retry_policy=retry_policy,
        breaker=breaker,
    )


class TestCampaignDeterminism:
    def test_identical_traces_including_fault_retry_breaker_fields(self):
        kw = dict(
            breaker=CircuitBreaker(failure_threshold=2, cooldown_epochs=2),
            retry_policy=RetryPolicy(base_backoff_s=2.0),
        )
        a = trace_to_dict(_campaign_run(3, **kw))
        b = trace_to_dict(_campaign_run(3, **kw))
        assert a == b
        assert any(e["faulted"] for e in a["epochs"])
        assert any(e["breaker"] == "open" for e in a["epochs"])
        assert any(e["retries"] > 0 for e in a["epochs"])

    def test_fault_epochs_land_exactly_where_scheduled(self):
        sched = FaultSchedule.blackout(4, duration=2)
        trace = _campaign_run(0, schedule=sched,
                              retry_policy=RetryPolicy(jitter_frac=0.0))
        marked = [e.index for e in trace.epochs if e.faulted]
        assert marked == [4, 5]
        for e in trace.epochs:
            if e.index in (4, 5):
                assert e.fault == BLACKOUT
                assert e.observed == pytest.approx(0.0, abs=1e-9)


class TestTunerGuard:
    def test_tuner_never_sees_faulted_or_lost_epochs(self):
        spy = SpyTuner()
        sched = FaultSchedule.blackout(2, duration=2).merge(
            FaultSchedule((FaultEvent(OBS_LOSS, 6),))
        )
        trace = _campaign_run(1, tuner=spy, schedule=sched,
                              retry_policy=RetryPolicy(jitter_frac=0.0),
                              duration_s=300.0)
        n_epochs = len(trace.epochs)
        fed = [e.index for e in trace.epochs if e.tuned]
        # blackout epochs 2-3 and obs-loss epoch 6 are withheld; the last
        # epoch closes after the run so it is never dispatched.
        assert set(fed) == set(range(n_epochs)) - {2, 3, 6}
        assert len(spy.seen) == len(fed) - 1
        clean = {
            e.observed for e in trace.epochs if e.tuned
        }
        for f in spy.seen:
            assert f in clean
        faulted_values = {e.observed for e in trace.epochs if not e.tuned}
        assert not faulted_values & set(spy.seen)

    def test_breaker_open_epochs_do_not_feed_the_tuner(self):
        spy = SpyTuner()
        sched = FaultSchedule.blackout(2, duration=2)
        trace = _campaign_run(
            0, tuner=spy, schedule=sched, duration_s=450.0,
            retry_policy=RetryPolicy(jitter_frac=0.0),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_epochs=3),
        )
        open_epochs = [e.index for e in trace.epochs if e.breaker == "open"]
        assert open_epochs == [4, 5, 6]  # trips after epochs 2+3 fault
        for e in trace.epochs:
            if e.breaker == "open":
                assert not e.tuned
                assert e.observed not in spy.seen


class TestBreakerValue:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_breaker_beats_retries_alone_at_20pct_fault_rate(self, seed):
        """Acceptance: under a 20%-fault-rate bursty campaign the circuit
        breaker strictly improves mean throughput over retries alone."""
        duration = 1800.0
        sched = FaultSchedule.bursts(seed, n_epochs=60, n_bursts=3,
                                     burst_len=4)
        assert len(sched.fault_epochs()) / 60 >= 0.15
        pol = RetryPolicy(base_backoff_s=2.0)
        retries = run_single(ANL_UC, NmTuner(), duration_s=duration,
                             seed=seed, fault_schedule=sched,
                             retry_policy=pol)
        breaker = run_single(
            ANL_UC, NmTuner(), duration_s=duration, seed=seed,
            fault_schedule=sched, retry_policy=pol,
            breaker=CircuitBreaker(failure_threshold=2, cooldown_epochs=2),
        )
        assert breaker.total_bytes > retries.total_bytes

    def test_breaker_serves_fallback_params_while_open(self):
        sched = FaultSchedule.blackout(2, duration=3)
        br = CircuitBreaker(failure_threshold=2, cooldown_epochs=2,
                            fallback_nc=2, fallback_np=8)
        trace = _campaign_run(0, schedule=sched, duration_s=450.0,
                              retry_policy=RetryPolicy(jitter_frac=0.0),
                              breaker=br)
        for e in trace.epochs:
            if e.breaker == "open":
                assert e.params[0] == 2  # nc pinned at the safe default
        assert br.opens >= 1


class TestAbortAndRetries:
    def test_abort_with_budget_continues(self):
        sched = FaultSchedule.abort(3)
        trace = _campaign_run(
            0, schedule=sched, duration_s=300.0,
            retry_policy=RetryPolicy(max_retries_per_session=5,
                                     jitter_frac=0.0),
        )
        assert len(trace.epochs) == 10  # ran to the full duration
        assert trace.epochs[3].faulted

    def test_abort_without_budget_fails_the_session(self):
        sched = FaultSchedule.abort(3)
        trace = _campaign_run(
            0, schedule=sched, duration_s=300.0,
            retry_policy=RetryPolicy(max_retries_per_session=0,
                                     jitter_frac=0.0),
        )
        # the session ends at the abort epoch instead of running out the
        # clock
        assert len(trace.epochs) == 4
        assert trace.epochs[-1].fault == "session-abort"

    def test_retries_accumulate_in_the_trace(self):
        sched = FaultSchedule.blackout(1).merge(FaultSchedule.blackout(5))
        trace = _campaign_run(0, schedule=sched, duration_s=300.0,
                              retry_policy=RetryPolicy(jitter_frac=0.0))
        assert trace.epochs[-1].retries == 2

    def test_backoff_costs_throughput(self):
        sched = FaultSchedule.blackout(3, duration=2)
        cheap = _campaign_run(
            0, tuner=StaticTuner(), schedule=sched, duration_s=600.0,
            retry_policy=RetryPolicy(base_backoff_s=0.0, max_backoff_s=0.0,
                                     jitter_frac=0.0),
        )
        dear = _campaign_run(
            0, tuner=StaticTuner(), schedule=sched, duration_s=600.0,
            retry_policy=RetryPolicy(base_backoff_s=20.0, max_backoff_s=20.0,
                                     jitter_frac=0.0),
        )
        assert dear.total_bytes < cheap.total_bytes


class TestEngineGuards:
    def test_controller_sessions_reject_fault_machinery(self):
        spec = TransferSpec(name="a", path_name=ANL_UC.main_path,
                            total_bytes=math.inf, max_duration_s=120.0,
                            epoch_s=30.0)
        space = concurrency_space(max_nc=32)
        session = TransferSession(
            spec, None, space, (2,), param_map=ParamMap.nc_only(fixed_np=8),
            fault_schedule=FaultSchedule.blackout(1),
        )
        joint = JointTuner(inner=StaticTuner(), subspaces=[space],
                           labels=["a"])
        controller = JointController(joint, ["a"], (2,))
        with pytest.raises(ValueError, match="fault"):
            Engine(
                topology=ANL_UC.build_topology(),
                host=ANL_UC.host,
                sessions=[session],
                controllers=[controller],
                config=EngineConfig(seed=0),
            )
