"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_tuner, parse_load
from repro.core.base import StaticTuner
from repro.core.nm_tuner import NmTuner


class TestParseLoad:
    def test_none(self):
        load = parse_load("none")
        assert load.ext_cmp == 0 and load.ext_tfr == 0

    def test_cmp_only(self):
        assert parse_load("cmp16").ext_cmp == 16

    def test_tfr_only(self):
        assert parse_load("tfr64").ext_tfr == 64

    def test_combined(self):
        load = parse_load("cmp16+tfr64")
        assert (load.ext_cmp, load.ext_tfr) == (16, 64)

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            parse_load("lots")


class TestMakeTuner:
    def test_known_names(self):
        assert isinstance(make_tuner("default", 0), StaticTuner)
        assert isinstance(make_tuner("nm", 0), NmTuner)
        for name in ("cd", "cs", "hj", "spsa", "gss", "heur1", "heur2"):
            assert make_tuner(name, 0).name  # constructs fine

    def test_unknown_name(self):
        with pytest.raises(SystemExit):
            make_tuner("bogus", 0)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "anl-uc"
        assert args.tuner == "nm"
        assert args.duration == 1800.0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "mars"])


class TestCommands:
    def test_run_prints_summary(self, capsys):
        rc = main(["run", "--tuner", "cd", "--duration", "120",
                   "--load", "none"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "steady observed" in out
        assert "nc per epoch" in out

    def test_run_tune_np_prints_both_trajectories(self, capsys):
        rc = main(["run", "--tuner", "nm", "--duration", "120",
                   "--tune-np"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "np per epoch" in out

    def test_sweep(self, capsys):
        rc = main(["sweep", "--nc", "2,8", "--duration", "90"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "static response surface" in out

    def test_oracle(self, capsys):
        rc = main(["oracle", "--duration", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "oracle static nc" in out

    def test_figure_fig11(self, capsys):
        rc = main(["figure", "fig11", "--duration", "300"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "UC share" in out

    def test_figure_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_bad_tuner_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--tuner", "bogus", "--duration", "60"])


class TestJournalCommands:
    def _run_journaled(self, tmp_path, capsys):
        journal = tmp_path / "run.jnl"
        rc = main(["run", "--tuner", "nm", "--duration", "150",
                   "--journal", str(journal)])
        capsys.readouterr()
        assert rc == 0
        return journal

    def test_run_journal_then_resume(self, tmp_path, capsys):
        journal = self._run_journaled(tmp_path, capsys)
        assert journal.exists()
        rc = main(["resume", str(journal)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "already complete" in out
        assert "steady observed" in out

    def test_resume_continues_a_truncated_journal(self, tmp_path, capsys):
        journal = self._run_journaled(tmp_path, capsys)
        # keep header + first epoch + snapshot: a "killed" run
        lines = journal.read_bytes().splitlines(keepends=True)
        journal.write_bytes(b"".join(lines[:3]))
        rc = main(["resume", str(journal)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resuming" in out

    def test_run_refuses_existing_journal(self, tmp_path, capsys):
        journal = self._run_journaled(tmp_path, capsys)
        with pytest.raises(SystemExit, match="resume"):
            main(["run", "--duration", "150", "--journal", str(journal)])

    def test_resume_missing_journal_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no journal"):
            main(["resume", str(tmp_path / "nope.jnl")])

    def test_warm_start_requires_journal(self, tmp_path, capsys):
        first = self._run_journaled(tmp_path, capsys)
        with pytest.raises(SystemExit, match="journal"):
            main(["run", "--duration", "150", "--warm-start", str(first)])

    def test_warm_start_run(self, tmp_path, capsys):
        first = self._run_journaled(tmp_path, capsys)
        rc = main(["run", "--tuner", "nm", "--duration", "150",
                   "--journal", str(tmp_path / "second.jnl"),
                   "--warm-start", str(first)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "steady observed" in out

    def test_trace_out_writes_loadable_trace(self, tmp_path, capsys):
        from repro.sim.traceio import load_trace

        out_path = tmp_path / "trace.json"
        rc = main(["run", "--tuner", "cd", "--duration", "150",
                   "--trace-out", str(out_path)])
        capsys.readouterr()
        assert rc == 0
        assert load_trace(out_path).epochs


class TestInfo:
    def test_lists_tuners_scenarios_and_load_profiles(self, capsys):
        rc = main(["info"])
        out = capsys.readouterr().out
        assert rc == 0
        from repro.core.registry import tuner_names

        for name in tuner_names():
            assert name in out
        assert "anl-uc" in out and "anl-tacc" in out
        assert "cmp16" in out and "tfr64" in out
        # One-line docs came along.
        assert "Nelder-Mead" in out
        assert "ESnet" in out


class TestTop:
    def _journal(self, tmp_path, capsys):
        journal = tmp_path / "run.jnl"
        rc = main(["run", "--tuner", "nm", "--duration", "150",
                   "--journal", str(journal)])
        capsys.readouterr()
        assert rc == 0
        return journal

    def test_renders_a_completed_journal(self, tmp_path, capsys):
        journal = self._journal(tmp_path, capsys)
        rc = main(["top", str(journal)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[complete]" in out
        assert "breaker closed" in out
        assert "tuner=nm" in out

    def test_renders_an_in_progress_journal(self, tmp_path, capsys):
        journal = self._journal(tmp_path, capsys)
        # Strip the end record: the run looks live.
        lines = journal.read_bytes().splitlines(keepends=True)
        journal.write_bytes(b"".join(
            ln for ln in lines if not ln.startswith(b'{"kind":"end"')
        ))
        rc = main(["top", str(journal)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[LIVE]" in out

    def test_renders_a_saved_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        rc = main(["run", "--tuner", "cd", "--duration", "150",
                   "--trace-out", str(trace_path)])
        capsys.readouterr()
        assert rc == 0
        rc = main(["top", str(trace_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[complete]" in out
        assert "nc=" in out

    def test_follow_is_bounded_by_frames(self, tmp_path, capsys):
        journal = self._journal(tmp_path, capsys)
        rc = main(["top", str(journal), "--follow", "--frames", "1",
                   "--interval", "0.01"])
        assert rc == 0

    def test_missing_path_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no journal or trace"):
            main(["top", str(tmp_path / "nope.jnl")])


class TestObservabilityFlags:
    def test_run_writes_events_and_metrics(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.prom"
        rc = main(["run", "--tuner", "nm", "--duration", "150",
                   "--events", str(events),
                   "--metrics-out", str(metrics)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "events written" in out and "metrics written" in out

        from repro.obs import read_event_log

        log = read_event_log(events)
        kinds = {e.kind for e in log}
        assert {"epoch-start", "epoch-end", "tuner-proposal",
                "tuner-accept"} <= kinds
        text = metrics.read_text()
        assert "# TYPE repro_epochs_total counter" in text
        assert "repro_span_seconds" in text

    def test_resume_reconstructs_the_full_stream(self, tmp_path, capsys):
        journal = tmp_path / "run.jnl"
        ev_full = tmp_path / "full.jsonl"
        rc = main(["run", "--tuner", "nm", "--duration", "150",
                   "--journal", str(journal),
                   "--events", str(ev_full)])
        capsys.readouterr()
        assert rc == 0

        ev_resumed = tmp_path / "resumed.jsonl"
        rc = main(["resume", str(journal), "--events", str(ev_resumed)])
        capsys.readouterr()
        assert rc == 0

        from repro.obs import read_event_log

        replayable = ("epoch-end", "fault-injected", "breaker-transition")
        full = [e for e in read_event_log(ev_full)
                if e.kind in replayable]
        resumed = [e for e in read_event_log(ev_resumed)
                   if e.kind in replayable]
        assert resumed == full


class TestReplicateFlags:
    def test_run_reps_prints_table_and_ci(self, capsys):
        rc = main(["run", "--tuner", "cd", "--duration", "120",
                   "--reps", "3", "--jobs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 replicates" in out
        assert "95% CI" in out
        # one row per derived seed
        for seed in ("0", "1", "2"):
            assert seed in out

    def test_reps_parallel_equals_serial(self, capsys):
        main(["run", "--tuner", "cd", "--duration", "120", "--reps", "2"])
        serial = capsys.readouterr().out
        main(["run", "--tuner", "cd", "--duration", "120", "--reps", "2",
              "--jobs", "2"])
        assert capsys.readouterr().out == serial

    def test_reps_zero_rejected(self):
        with pytest.raises(SystemExit, match="reps"):
            main(["run", "--reps", "0"])

    @pytest.mark.parametrize("flag", [
        ("--journal", "j.jnl"), ("--warm-start", "w.jnl"),
        ("--trace-out", "t.json"), ("--events", "e.jsonl"),
        ("--metrics-out", "m.prom"),
    ])
    def test_reps_refuses_per_run_artifacts(self, flag):
        with pytest.raises(SystemExit, match="incompatible"):
            main(["run", "--reps", "2", *flag])


class TestCampaignJobsAndTimings:
    def test_campaign_jobs_journal_then_info_timings(self, tmp_path,
                                                     capsys):
        import repro.experiments.campaign as campaign_mod

        journal = tmp_path / "camp.jnl"
        # The real quick campaign is seconds-scale thanks to the fast
        # path, but trim to one unit to keep the CLI test snappy.
        units = campaign_mod.CAMPAIGN_UNITS
        try:
            campaign_mod.CAMPAIGN_UNITS = units[3:4]  # fig8 only
            rc = main(["campaign", "--quick", "--jobs", "2",
                       "--journal", str(journal)])
        finally:
            campaign_mod.CAMPAIGN_UNITS = units
        assert rc == 0
        assert "Fig 8" in capsys.readouterr().out

        rc = main(["info", "--timings", str(journal)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig8" in out
        assert "recorded total" in out

    def test_info_timings_missing_journal_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no journal"):
            main(["info", "--timings", str(tmp_path / "nope.jnl")])


class TestCampaignFallbackWarning:
    @staticmethod
    def _canned_result():
        from repro.experiments.batch import BatchOccupancy
        from repro.experiments.campaign import CampaignResult

        return CampaignResult(
            sections={"Fig X": "rows"},
            batch=BatchOccupancy(batched=5, fallback=5, chunks=2),
            fallback_reasons={"fault schedule": 4,
                              "finite-bytes transfer": 1},
        )

    def test_reasons_tally_and_threshold_warning(self, monkeypatch,
                                                 capsys):
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "run_campaign",
                            lambda *a, **kw: self._canned_result())
        monkeypatch.delenv("REPRO_BATCH_WARN", raising=False)
        rc = main(["campaign", "--quick", "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert ("fallback reasons: fault schedule: 4, "
                "finite-bytes transfer: 1") in out
        assert "warning: 50% of simulated runs" in out
        assert "threshold 10%" in out

    def test_flag_raises_threshold_past_the_rate(self, monkeypatch,
                                                 capsys):
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "run_campaign",
                            lambda *a, **kw: self._canned_result())
        rc = main(["campaign", "--quick", "--no-cache",
                   "--batch-fallback-warn", "0.9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fallback reasons:" in out  # the tally always prints
        assert "warning:" not in out

    def test_threshold_of_one_disables_the_warning(self, monkeypatch,
                                                   capsys):
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "run_campaign",
                            lambda *a, **kw: self._canned_result())
        rc = main(["campaign", "--quick", "--no-cache",
                   "--batch-fallback-warn", "1.0"])
        assert rc == 0
        assert "warning:" not in capsys.readouterr().out

    def test_negative_threshold_exits(self, monkeypatch):
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "run_campaign",
                            lambda *a, **kw: self._canned_result())
        with pytest.raises(SystemExit, match=">= 0"):
            main(["campaign", "--quick", "--no-cache",
                  "--batch-fallback-warn", "-0.2"])

    def test_info_timings_refuses_non_campaign_journal(self, tmp_path):
        from repro.checkpoint import JournalWriter

        path = tmp_path / "run.jnl"
        with JournalWriter(path) as w:
            w.write_header({"run": {}})
        with pytest.raises(SystemExit, match="section records"):
            main(["info", "--timings", str(path)])


class TestFleetCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8760
        assert args.scenarios is None
        assert args.capacity == 64 and args.queue_limit == 128
        assert args.pace == 0.0
        assert args.batch is True
        assert build_parser().parse_args(
            ["serve", "--no-batch"]).batch is False

    def test_serve_unknown_scenario_exits(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["serve", "--scenarios", "mars-base", "--port", "0"])

    def test_serve_bad_capacity_exits(self):
        with pytest.raises(SystemExit):
            main(["serve", "--capacity", "0", "--port", "0"])

    def test_submit_parser_defaults(self):
        args = build_parser().parse_args(["submit", "t1"])
        assert args.tenant == "t1"
        assert args.url == "http://127.0.0.1:8760"
        assert args.tuner == "cd" and args.epochs == 10
        assert not args.watch and not args.unsupervised

    def test_submit_against_a_live_fleet(self, capsys):
        from repro.experiments.scenarios import SCENARIOS
        from repro.service import FleetServer, FleetService

        fleet = FleetService({"anl-uc": SCENARIOS["anl-uc"]},
                             epoch_s=5.0, dt=1.0)
        with FleetServer(fleet) as server:
            rc = main(["submit", "t1", "--url", server.url,
                       "--epochs", "3", "--watch"])
            out = capsys.readouterr().out
        assert rc == 0
        assert '"admitted": true' in out
        assert '"state": "completed"' in out

    def test_submit_shed_watch_exits_nonzero(self, capsys):
        from repro.experiments.scenarios import SCENARIOS
        from repro.service import FleetServer, FleetService

        fleet = FleetService({"anl-uc": SCENARIOS["anl-uc"]},
                             capacity=1, queue_limit=0,
                             epoch_s=5.0, dt=1.0)
        with FleetServer(fleet) as server:
            assert main(["submit", "hog", "--url", server.url,
                         "--epochs", "1000"]) == 0
            rc = main(["submit", "shed-me", "--url", server.url,
                       "--epochs", "2", "--watch"])
            out = capsys.readouterr().out
        assert rc == 1  # shed with a recorded reason, never completed
        assert "queue-full" in out

    def test_submit_no_fleet_exits(self):
        with pytest.raises(SystemExit, match="fleet at"):
            main(["submit", "t1", "--url", "http://127.0.0.1:9",
                  "--timeout", "0.2"])


class TestDegradedBackendWarnings:
    def test_no_health_no_warnings(self):
        from repro.cli import _degraded_backend_warnings

        assert _degraded_backend_warnings(None) == []
        assert _degraded_backend_warnings({}) == []

    def test_closed_breaker_is_quiet(self):
        from repro.cli import _degraded_backend_warnings

        health = {"url": "http://c:1", "breaker": "closed",
                  "breaker_opens": 0}
        assert _degraded_backend_warnings(health) == []

    def test_open_breaker_warns_with_url(self):
        from repro.cli import _degraded_backend_warnings

        health = {"url": "http://cache:8750", "breaker": "open"}
        lines = _degraded_backend_warnings(health)
        assert len(lines) == 1
        assert "http://cache:8750" in lines[0]
        assert "breaker open" in lines[0]
        assert "local tier" in lines[0]

    def test_closed_but_tripped_breaker_warns(self):
        from repro.cli import _degraded_backend_warnings

        health = {"url": "sqlite:///c.db", "breaker": "closed",
                  "breaker_opens": 2}
        lines = _degraded_backend_warnings(health)
        assert len(lines) == 1
        assert "tripped 2x" in lines[0]

    def test_tiered_health_walks_remote_tier(self):
        from repro.cli import _degraded_backend_warnings

        health = {"tiers": {
            "local": {"url": "dir:/tmp/c", "breaker": "closed",
                      "breaker_opens": 0},
            "remote": {"url": "http://far:8750", "breaker": "half-open"},
        }}
        lines = _degraded_backend_warnings(health)
        assert len(lines) == 1
        assert "http://far:8750" in lines[0]

    def test_campaign_with_degraded_remote_prints_warning(self, tmp_path,
                                                          capsys):
        import repro.experiments.campaign as campaign_mod

        units = campaign_mod.CAMPAIGN_UNITS
        try:
            campaign_mod.CAMPAIGN_UNITS = units[3:4]  # fig8 only
            rc = main([
                "campaign", "--quick",
                "--cache-dir",
                f"http://127.0.0.1:9?local={tmp_path / 'local'}",
            ])
        finally:
            campaign_mod.CAMPAIGN_UNITS = units
        out = capsys.readouterr().out
        assert rc == 0
        assert "warning: cache backend" in out
        assert "local tier" in out
