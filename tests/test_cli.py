"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_tuner, parse_load
from repro.core.base import StaticTuner
from repro.core.nm_tuner import NmTuner


class TestParseLoad:
    def test_none(self):
        load = parse_load("none")
        assert load.ext_cmp == 0 and load.ext_tfr == 0

    def test_cmp_only(self):
        assert parse_load("cmp16").ext_cmp == 16

    def test_tfr_only(self):
        assert parse_load("tfr64").ext_tfr == 64

    def test_combined(self):
        load = parse_load("cmp16+tfr64")
        assert (load.ext_cmp, load.ext_tfr) == (16, 64)

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            parse_load("lots")


class TestMakeTuner:
    def test_known_names(self):
        assert isinstance(make_tuner("default", 0), StaticTuner)
        assert isinstance(make_tuner("nm", 0), NmTuner)
        for name in ("cd", "cs", "hj", "spsa", "gss", "heur1", "heur2"):
            assert make_tuner(name, 0).name  # constructs fine

    def test_unknown_name(self):
        with pytest.raises(SystemExit):
            make_tuner("bogus", 0)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "anl-uc"
        assert args.tuner == "nm"
        assert args.duration == 1800.0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "mars"])


class TestCommands:
    def test_run_prints_summary(self, capsys):
        rc = main(["run", "--tuner", "cd", "--duration", "120",
                   "--load", "none"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "steady observed" in out
        assert "nc per epoch" in out

    def test_run_tune_np_prints_both_trajectories(self, capsys):
        rc = main(["run", "--tuner", "nm", "--duration", "120",
                   "--tune-np"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "np per epoch" in out

    def test_sweep(self, capsys):
        rc = main(["sweep", "--nc", "2,8", "--duration", "90"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "static response surface" in out

    def test_oracle(self, capsys):
        rc = main(["oracle", "--duration", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "oracle static nc" in out

    def test_figure_fig11(self, capsys):
        rc = main(["figure", "fig11", "--duration", "300"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "UC share" in out

    def test_figure_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_bad_tuner_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--tuner", "bogus", "--duration", "60"])
