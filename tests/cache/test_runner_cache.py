"""Cache wiring in the runner: hits are bit-identical to simulation."""

import pytest

from repro.cache import RunCache
from repro.core.registry import make_tuner
from repro.endpoint.load import ExternalLoad
from repro.experiments.replicate import replicate
from repro.experiments.runner import run_joint, run_pair, run_single
from repro.experiments.scenarios import ANL_UC
from repro.faults import FaultEvent, FaultSchedule
from repro.obs import Instrumentation

DURATION = 240.0


@pytest.fixture
def store(tmp_path):
    return RunCache(tmp_path / "cache")


def _traces_equal(a, b) -> bool:
    return (a.label == b.label and a.epochs == b.epochs
            and a.steps == b.steps)


class TestRunSingle:
    @pytest.mark.parametrize("tuner_name", ["nm", "cs", "hj"])
    def test_hit_is_bit_identical(self, store, tuner_name):
        kw = dict(load=ExternalLoad(ext_cmp=16), duration_s=DURATION, seed=2)
        fresh = run_single(
            ANL_UC, make_tuner(tuner_name, 2), cache=False, **kw
        )
        first = run_single(
            ANL_UC, make_tuner(tuner_name, 2), cache=store, **kw
        )
        second = run_single(
            ANL_UC, make_tuner(tuner_name, 2), cache=store, **kw
        )
        assert store.misses == 1 and store.hits == 1
        assert _traces_equal(first, fresh)
        assert _traces_equal(second, fresh)

    def test_faulted_run_hit_is_bit_identical(self, store):
        faults = FaultSchedule((
            FaultEvent(epoch=2, kind="stream-crash"),
            FaultEvent(epoch=4, kind="blackout"),
        ))
        kw = dict(duration_s=DURATION, seed=5, fault_schedule=faults)
        fresh = run_single(ANL_UC, make_tuner("nm", 5), cache=False, **kw)
        run_single(ANL_UC, make_tuner("nm", 5), cache=store, **kw)
        hit = run_single(ANL_UC, make_tuner("nm", 5), cache=store, **kw)
        assert store.hits == 1
        assert _traces_equal(hit, fresh)

    def test_any_config_change_misses(self, store):
        base = dict(duration_s=DURATION, seed=2)
        run_single(ANL_UC, make_tuner("nm", 2), cache=store, **base)
        run_single(ANL_UC, make_tuner("nm", 2), cache=store,
                   duration_s=DURATION, seed=3)
        run_single(ANL_UC, make_tuner("nm", 2), cache=store,
                   duration_s=DURATION, seed=2, fast_path=False)
        assert store.hits == 0 and store.misses == 3
        assert store.stats().entries == 3

    def test_corrupt_entry_resimulates(self, store):
        kw = dict(duration_s=DURATION, seed=2)
        fresh = run_single(ANL_UC, make_tuner("nm", 2), cache=store, **kw)
        for entry in store.entries():
            entry.path.write_text("{ torn")
        again = run_single(ANL_UC, make_tuner("nm", 2), cache=store, **kw)
        assert store.hits == 0 and store.misses == 2
        assert _traces_equal(again, fresh)

    def test_journaled_run_bypasses_cache(self, store, tmp_path):
        from repro.checkpoint.journal import JournalWriter

        with JournalWriter(tmp_path / "run.jnl") as writer:
            writer.write_header({"run": "test"})
            run_single(
                ANL_UC, make_tuner("nm", 2), duration_s=DURATION, seed=2,
                journal=writer, cache=store,
            )
        assert store.hits == 0 and store.misses == 0
        assert store.stats().entries == 0


class TestPairAndJoint:
    def test_pair_hit_returns_both_traces(self, store):
        kw = dict(path_a="anl-uc", path_b="anl-tacc",
                  duration_s=DURATION, seed=1)
        fresh = run_pair(
            ANL_UC, make_tuner("nm", 1), make_tuner("nm", 1),
            cache=False, **kw,
        )
        run_pair(
            ANL_UC, make_tuner("nm", 1), make_tuner("nm", 1),
            cache=store, **kw,
        )
        hit = run_pair(
            ANL_UC, make_tuner("nm", 1), make_tuner("nm", 1),
            cache=store, **kw,
        )
        assert store.hits == 1
        assert set(hit) == set(fresh)
        for name in fresh:
            assert _traces_equal(hit[name], fresh[name])

    def test_joint_hit_returns_both_traces(self, store):
        kw = dict(path_a="anl-uc", path_b="anl-tacc",
                  duration_s=DURATION, seed=1)
        fresh = run_joint(ANL_UC, make_tuner("nm", 1), cache=False, **kw)
        run_joint(ANL_UC, make_tuner("nm", 1), cache=store, **kw)
        hit = run_joint(ANL_UC, make_tuner("nm", 1), cache=store, **kw)
        assert store.hits == 1
        for name in fresh:
            assert _traces_equal(hit[name], fresh[name])


class TestObsReplay:
    REPLAYABLE = ("epoch-end", "fault-injected", "breaker-transition")

    def _epoch_events(self, obs_events):
        return [e for e in obs_events if e.kind in self.REPLAYABLE]

    def test_hit_replays_events_and_metrics(self, store):
        faults = FaultSchedule((FaultEvent(epoch=2, kind="stream-crash"),))
        kw = dict(duration_s=DURATION, seed=3, fault_schedule=faults)

        live = Instrumentation.on()
        live_sub = live.bus.subscribe(maxlen=100_000)
        run_single(ANL_UC, make_tuner("nm", 3), cache=store, obs=live, **kw)

        cached = Instrumentation.on()
        cached_sub = cached.bus.subscribe(maxlen=100_000)
        run_single(ANL_UC, make_tuner("nm", 3), cache=store, obs=cached,
                   **kw)

        assert store.hits == 1
        # The replayable subsequence (the journal-resume contract) must
        # match the live emission exactly.
        assert (self._epoch_events(cached_sub.drain())
                == self._epoch_events(live_sub.drain()))
        # Epoch-derived metrics agree whether simulated or served.
        live_epochs = live.metrics.counter(
            "repro_epochs_total", session="main").value
        cached_epochs = cached.metrics.counter(
            "repro_epochs_total", session="main").value
        assert live_epochs > 0
        assert cached_epochs == live_epochs
        # ... and the hit shows up in the cache's own counters.
        assert cached.metrics.counter("repro_cache_hits_total").value == 1


def _replicate_experiment(seed: int) -> float:
    from repro.analysis.stats import steady_state_mean

    trace = run_single(
        ANL_UC, make_tuner("nm", seed), duration_s=DURATION, seed=seed
    )
    return steady_state_mean(trace)


class TestPoolWorkerActivation:
    def test_workers_write_through_the_env_bridge(self, store):
        # Workers call run_single(cache=None); the activated() bridge
        # must carry the store into their environment.
        first = replicate(
            _replicate_experiment, seeds=(0, 1, 2), jobs=2, cache=store
        )
        assert store.stats().entries == 3
        second = replicate(
            _replicate_experiment, seeds=(0, 1, 2), jobs=2, cache=store
        )
        assert second.values == first.values
        assert store.stats().entries == 3
