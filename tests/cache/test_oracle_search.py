"""Oracle sweeps: unimodal search vs grid, shared eval path, knobs."""

import pytest

from repro.cache import RunCache
from repro.experiments import oracle as oracle_mod
from repro.experiments.oracle import (
    DEFAULT_NC_GRID,
    OracleResult,
    oracle_static_nc,
    oracle_static_nc_np,
)
from repro.experiments.scenarios import SCENARIOS, ANL_UC


class TestUnimodalSearch:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_matches_grid_argmax_with_half_the_evaluations(self, scenario):
        grid = oracle_static_nc(SCENARIOS[scenario], duration_s=240.0)
        uni = oracle_static_nc(
            SCENARIOS[scenario], duration_s=240.0, search="unimodal"
        )
        assert uni.params == grid.params
        assert uni.throughput_mbps == grid.throughput_mbps
        assert uni.evaluations <= grid.evaluations // 2
        assert uni.search == "unimodal"
        assert grid.search == "grid"
        assert grid.evaluations == len(DEFAULT_NC_GRID)

    def test_single_candidate(self):
        res = oracle_static_nc(
            ANL_UC, candidates=(8,), duration_s=120.0, search="unimodal"
        )
        assert res.params == (8,)
        assert res.evaluations == 1

    def test_unknown_search_rejected(self):
        with pytest.raises(ValueError, match="unknown search"):
            oracle_static_nc(ANL_UC, search="binary")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            oracle_static_nc(ANL_UC, search="unimodal",
                             unimodal_tolerance=-0.1)

    def test_non_unimodal_surface_falls_back_to_grid(self, monkeypatch):
        # A two-peaked synthetic surface: the far peak at the high end
        # is taller than anything bisection's adjacent-pair walk can
        # reach from the low end's local peak.
        def fake_eval(task):
            nc = task[2][0]
            return 100.0 - abs(nc - 8) if nc < 100 else 500.0 + nc

        monkeypatch.setattr(oracle_mod, "_eval_static", fake_eval)
        res = oracle_static_nc(ANL_UC, duration_s=120.0, search="unimodal")
        assert res.search == "unimodal:grid-fallback"
        assert res.params == (512,)
        assert res.evaluations == len(DEFAULT_NC_GRID)
        # ... and the answer is exactly the grid's.
        grid = oracle_static_nc(ANL_UC, duration_s=120.0, search="grid")
        assert res.params == grid.params


class TestSharedEvalPath:
    def test_all_filtered_candidates_raise(self):
        with pytest.raises(ValueError, match="no candidate inside"):
            oracle_static_nc(ANL_UC, candidates=(9999,))
        with pytest.raises(ValueError, match="no candidate inside"):
            oracle_static_nc(ANL_UC, candidates=(9999,), search="unimodal")

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError, match="at least one"):
            oracle_static_nc(ANL_UC, candidates=())
        with pytest.raises(ValueError, match="both dimensions"):
            oracle_static_nc_np(ANL_UC, nc_candidates=())

    def test_duplicate_candidates_deduplicate(self):
        res = oracle_static_nc(
            ANL_UC, candidates=(8, 8, 4, 4), duration_s=120.0
        )
        assert res.evaluations == 2

    def test_search_field_has_a_default(self):
        # Older call sites construct OracleResult positionally.
        res = OracleResult((8,), 1000.0, 5)
        assert res.search == "grid"


class TestKnobs:
    def test_jobs_and_cache_reproduce_serial_result(self, tmp_path):
        store = RunCache(tmp_path / "cache")
        serial = oracle_static_nc(
            ANL_UC, candidates=(2, 4, 8, 16), duration_s=120.0
        )
        pooled = oracle_static_nc(
            ANL_UC, candidates=(2, 4, 8, 16), duration_s=120.0,
            jobs=2, cache=store,
        )
        warm = oracle_static_nc(
            ANL_UC, candidates=(2, 4, 8, 16), duration_s=120.0, cache=store,
        )
        assert pooled == serial
        assert warm == serial
        assert store.stats().entries == 4
        assert store.hits == 4  # the warm serial pass hit all four

    def test_2d_jobs_matches_serial(self, tmp_path):
        serial = oracle_static_nc_np(
            ANL_UC, nc_candidates=(2, 8), np_candidates=(4, 8),
            duration_s=90.0,
        )
        pooled = oracle_static_nc_np(
            ANL_UC, nc_candidates=(2, 8), np_candidates=(4, 8),
            duration_s=90.0, jobs=2,
        )
        assert pooled == serial

    def test_unimodal_with_cache_warm_path(self, tmp_path):
        store = RunCache(tmp_path / "cache")
        cold = oracle_static_nc(
            ANL_UC, duration_s=240.0, search="unimodal", cache=store
        )
        warm = oracle_static_nc(
            ANL_UC, duration_s=240.0, search="unimodal", cache=store
        )
        assert warm == cold
        assert store.hits == cold.evaluations
