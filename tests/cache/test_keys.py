"""Run keys: cross-process stability and single-field sensitivity."""

import os
import subprocess
import sys
from pathlib import Path

from repro.cache import engine_fingerprint, run_key
from repro.cache import keys as cache_keys
from repro.core.registry import make_tuner
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.experiments.scenarios import ANL_TACC, ANL_UC
from repro.faults import FaultEvent, FaultSchedule
from repro.sim.engine import EngineConfig

_KEY_SNIPPET = """
from repro.cache import keys as cache_keys
from repro.core.registry import make_tuner
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.experiments.scenarios import ANL_UC
from repro.sim.engine import EngineConfig

print(cache_keys.run_key("single", cache_keys.single_run_components(
    scenario=ANL_UC, tuner=make_tuner("nm", 3),
    schedule=LoadSchedule.constant(ExternalLoad(ext_cmp=16)),
    duration_s=600.0, epoch_s=30.0, tune_np=False, fixed_np=8, x0=None,
    seed=3, max_nc=512, fault_schedule=None, retry_policy=None,
    breaker=None, engine_config=EngineConfig(seed=3),
)))
"""


def _reference_components(**overrides):
    base = dict(
        scenario=ANL_UC,
        tuner=make_tuner("nm", 3),
        schedule=LoadSchedule.constant(ExternalLoad(ext_cmp=16)),
        duration_s=600.0,
        epoch_s=30.0,
        tune_np=False,
        fixed_np=8,
        x0=None,
        seed=3,
        max_nc=512,
        fault_schedule=None,
        retry_policy=None,
        breaker=None,
        engine_config=EngineConfig(seed=3),
    )
    base.update(overrides)
    return cache_keys.single_run_components(**base)


def _subprocess_key(hash_seed: str) -> str:
    src_dir = Path(cache_keys.__file__).parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir)
    env["PYTHONHASHSEED"] = hash_seed
    out = subprocess.run(
        [sys.executable, "-c", _KEY_SNIPPET],
        capture_output=True, text=True, env=env, check=True,
    )
    return out.stdout.strip()


class TestKeyStability:
    def test_same_key_across_processes_and_hash_seeds(self):
        in_process = run_key("single", _reference_components())
        assert _subprocess_key("0") == in_process
        assert _subprocess_key("1") == in_process

    def test_key_is_hex_sha256(self):
        key = run_key("single", _reference_components())
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_engine_fingerprint_is_memoized_and_stable(self):
        assert engine_fingerprint() == engine_fingerprint()
        assert len(engine_fingerprint()) == 64


class TestKeySensitivity:
    """Any single config-field change must change the key."""

    def test_every_field_changes_the_key(self):
        base = run_key("single", _reference_components())
        variants = dict(
            scenario=ANL_TACC,
            tuner=make_tuner("cs", 3),
            schedule=LoadSchedule.constant(ExternalLoad(ext_cmp=32)),
            duration_s=601.0,
            epoch_s=15.0,
            tune_np=True,
            fixed_np=4,
            x0=(7,),
            seed=4,
            max_nc=256,
            fault_schedule=FaultSchedule(
                (FaultEvent(epoch=3, kind="stream-crash"),)
            ),
            engine_config=EngineConfig(seed=3, fast_path=False),
        )
        keys = {"base": base}
        for field, value in variants.items():
            keys[field] = run_key(
                "single", _reference_components(**{field: value})
            )
        # All distinct: no variant collides with the base or each other.
        assert len(set(keys.values())) == len(keys)

    def test_kind_changes_the_key(self):
        comps = _reference_components()
        assert run_key("single", comps) != run_key("pair", comps)

    def test_stochastic_tuner_seed_changes_the_key(self):
        # cs carries its own RNG state; a different tuner seed is a
        # different run.  (nm is deterministic given the engine seed, so
        # its key is — correctly — tuner-seed-insensitive.)
        a = run_key("single", _reference_components(tuner=make_tuner("cs", 3)))
        b = run_key("single", _reference_components(tuner=make_tuner("cs", 4)))
        assert a != b


class TestFingerprintCoverage:
    """The batch engine's sources are inside the engine fingerprint."""

    def test_fingerprint_files_include_batch_sources(self):
        root = Path(cache_keys.__file__).parents[1]
        files = cache_keys.fingerprint_files()
        batch_dir = root / "sim" / "batch"
        assert batch_dir / "engine.py" in files
        assert batch_dir / "eligibility.py" in files
        # Explicitly naming sim/batch on top of the sim subtree must
        # not double-hash: every file appears exactly once.
        assert len(files) == len(set(files))

    def test_batch_module_edit_flips_the_fingerprint(self, tmp_path):
        """An edit to a sim/batch source must invalidate every cache
        entry — proven against a pristine copy of the package in a
        subprocess, so the running package stays untouched."""
        import shutil

        src_root = Path(cache_keys.__file__).parents[2]
        work = tmp_path / "src"
        shutil.copytree(
            src_root, work,
            ignore=shutil.ignore_patterns("__pycache__", "*.pyc"),
        )

        snippet = ("from repro.cache.keys import engine_fingerprint; "
                   "print(engine_fingerprint())")

        def fingerprint() -> str:
            env = dict(os.environ)
            env["PYTHONPATH"] = str(work)
            out = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, env=env, check=True,
            )
            return out.stdout.strip()

        before = fingerprint()
        target = work / "repro" / "sim" / "batch" / "engine.py"
        target.write_text(
            target.read_text() + "\n# an edit that must flip the key\n"
        )
        after = fingerprint()
        assert before != after
        assert len(after) == 64
