"""``cache=`` resolution and the environment bridge to pool workers."""

import os

import pytest

from repro.cache import RunCache, activated, default_cache_dir, resolve_cache
from repro.cache.runtime import ENV_DIR, ENV_ENABLE


class TestResolveCache:
    def test_store_passes_through(self, tmp_path):
        store = RunCache(tmp_path)
        assert resolve_cache(store) is store

    def test_true_uses_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "d"))
        store = resolve_cache(True)
        assert store is not None and store.root == tmp_path / "d"

    def test_false_is_off_even_if_env_enables(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        assert resolve_cache(False) is None

    def test_none_consults_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        assert resolve_cache(None) is None
        monkeypatch.setenv(ENV_ENABLE, "on")
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        store = resolve_cache(None)
        assert store is not None and store.root == tmp_path

    def test_junk_env_value_is_loud(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "maybe")
        with pytest.raises(ValueError, match="REPRO_CACHE"):
            resolve_cache(None)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_cache(42)


class TestActivated:
    def test_store_exports_env_and_restores(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        prior_dir = os.environ.get(ENV_DIR)
        store = RunCache(tmp_path / "c")
        with activated(store) as resolved:
            assert resolved is store
            assert os.environ[ENV_ENABLE] == "1"
            assert os.environ[ENV_DIR] == str(store.root)
        assert ENV_ENABLE not in os.environ
        assert os.environ.get(ENV_DIR) == prior_dir

    def test_false_forces_off_for_the_scope(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_ENABLE, "1")
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        with activated(False) as resolved:
            assert resolved is None
            assert os.environ[ENV_ENABLE] == "0"
        assert os.environ[ENV_ENABLE] == "1"

    def test_none_leaves_environment_alone(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_ENABLE, "1")
        monkeypatch.setenv(ENV_DIR, str(tmp_path))
        with activated(None) as resolved:
            assert resolved is not None and resolved.root == tmp_path
            assert os.environ[ENV_ENABLE] == "1"

    def test_restores_on_exception(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        with pytest.raises(RuntimeError):
            with activated(RunCache(tmp_path)):
                raise RuntimeError("boom")
        assert ENV_ENABLE not in os.environ

    def test_scope_reuses_the_activated_instance(self, tmp_path,
                                                 monkeypatch):
        # Inside activated(store), env-resolved callers must get the
        # same object, so hit/miss counters accumulate visibly.
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        store = RunCache(tmp_path / "c")
        with activated(store):
            assert resolve_cache(None) is store
            assert resolve_cache(True) is store
        assert resolve_cache(None) is None

    def test_default_cache_dir_prefers_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"
        monkeypatch.delenv(ENV_DIR)
        assert str(default_cache_dir()) == ".repro-cache"
