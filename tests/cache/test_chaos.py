"""Seeded backend chaos: the armor holds at a 30% fault rate.

The acceptance bar for the backend layer: run real experiments through
``Resilient(Faulty(real))`` with 30% of every fault class injected —
errors, latency draws, read corruption, torn writes — and require zero
crashes, zero hangs, and hits that stay bit-identical to an uncached
reference, epochs AND steps.
"""

import hashlib

import pytest

from repro.cache import RunCache
from repro.cache.backend import DirBackend, MemoryBackend
from repro.cache.chaos import BackendFault, ChaosPolicy, FaultyBackend
from repro.cache.resilience import BackendPolicy, ResilientBackend
from repro.core.registry import make_tuner
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC

DURATION = 240.0


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _chaos_store(tmp_path, seed: int, rate: float = 0.3) -> RunCache:
    faulty = FaultyBackend(
        DirBackend(tmp_path / "chaos-store"),
        ChaosPolicy.storm(seed, rate=rate),
    )
    return RunCache(
        spec=str(tmp_path / "chaos-store"),
        backend=ResilientBackend(faulty, policy=BackendPolicy.fast_test()),
    )


def _traces_equal(a, b) -> bool:
    return (a.label == b.label and a.epochs == b.epochs
            and a.steps == b.steps)


class TestDeterminism:
    def _drive(self, seed: int):
        backend = FaultyBackend(MemoryBackend(), ChaosPolicy.storm(seed))
        results = []
        for i in range(40):
            key = _key(f"k{i % 7}")
            try:
                if i % 3 == 0:
                    backend.put(key, f"payload-{i}".encode())
                    results.append(("put", True))
                else:
                    results.append(("get", backend.get(key)))
            except BackendFault:
                results.append(("fault", None))
        return results, backend.counts.as_dict()

    def test_same_seed_same_injection(self):
        r1, c1 = self._drive(7)
        r2, c2 = self._drive(7)
        assert r1 == r2
        assert c1 == c2

    def test_different_seed_different_injection(self):
        _, c1 = self._drive(7)
        _, c2 = self._drive(8)
        assert c1 != c2

    def test_storm_actually_injects(self):
        _, counts = self._drive(3)
        assert counts["errors"] > 0
        assert counts["ops"] == 40

    def test_policy_validates_rates(self):
        with pytest.raises(ValueError):
            ChaosPolicy(error_rate=1.5)
        with pytest.raises(ValueError):
            ChaosPolicy(latency_s=-1.0)


class TestDamageDegrades:
    def test_certain_corruption_is_always_a_miss(self, tmp_path):
        store = RunCache(
            spec=str(tmp_path),
            backend=ResilientBackend(
                FaultyBackend(
                    DirBackend(tmp_path / "s"),
                    ChaosPolicy(seed=1, corrupt_rate=1.0),
                ),
                policy=BackendPolicy.fast_test(),
            ),
        )
        key = _key("c")
        store.put(key, {"v": 1})
        for _ in range(5):
            # The contract is "never wrong data": a damaged read is a
            # miss; damage that left the payload intact may still hit.
            assert store.get(key) in (None, {"v": 1})
        assert store.misses >= 1

    def test_torn_write_is_discovered_on_read(self, tmp_path):
        inner = DirBackend(tmp_path / "s")
        store = RunCache(
            spec=str(tmp_path),
            backend=ResilientBackend(
                FaultyBackend(inner, ChaosPolicy(seed=1, torn_rate=1.0)),
                policy=BackendPolicy.fast_test(),
            ),
        )
        key = _key("torn")
        store.put(key, {"v": 1})           # "succeeds", bytes are damaged
        assert inner.get(key) is not None  # something landed on disk
        assert store.get(key) is None      # ... and reads as a miss


class TestChaosStorm:
    """The acceptance scenario, sized for the unit suite (the CI chaos
    job runs the campaign-scale version from tests/integration)."""

    @pytest.mark.parametrize("chaos_seed", [0, 1])
    def test_runs_survive_and_hits_stay_bit_identical(
        self, tmp_path, chaos_seed
    ):
        store = _chaos_store(tmp_path, chaos_seed)
        kw = dict(duration_s=DURATION, seed=3)
        fresh = run_single(ANL_UC, make_tuner("nm", 3), cache=False, **kw)
        for _ in range(6):
            got = run_single(
                ANL_UC, make_tuner("nm", 3), cache=store, **kw
            )
            assert _traces_equal(got, fresh)
        # At 30% injection across 6 cached attempts something must have
        # misbehaved — and been absorbed.
        faulty = store.backend.inner
        assert faulty.counts.errors + faulty.counts.corruptions \
            + faulty.counts.torn_writes > 0

    def test_total_outage_still_produces_correct_results(self, tmp_path):
        store = _chaos_store(tmp_path, seed=0, rate=1.0)
        kw = dict(duration_s=DURATION, seed=4)
        fresh = run_single(ANL_UC, make_tuner("cd", 4), cache=False, **kw)
        for _ in range(3):
            got = run_single(ANL_UC, make_tuner("cd", 4), cache=store, **kw)
            assert _traces_equal(got, fresh)
        assert store.backend.counters.degraded > 0
        assert store.backend.breaker.opens >= 1

    def test_breaker_recovers_when_chaos_ends(self, tmp_path):
        store = _chaos_store(tmp_path, seed=0, rate=1.0)
        key = _key("r")
        # Trip the breaker on a dead backend.
        for _ in range(5):
            store.get(key)
        assert store.backend.breaker.opens >= 1
        # Chaos ends: swap in a calm policy, drive ops until the
        # half-open probe closes the breaker.
        store.backend.inner.policy = ChaosPolicy(seed=0)
        for _ in range(store.backend.policy.cooldown_ops + 2):
            store.get(key)
        assert store.backend.breaker.state == "closed"
        store.put(key, {"v": 1})
        assert store.get(key) == {"v": 1}
