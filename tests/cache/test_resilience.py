"""The never-raise armor: timeouts, retry/backoff, breaker, tiering.

Everything here runs on :meth:`BackendPolicy.fast_test` (no deadline,
zero backoff) with a :class:`FakeClock`, so retry and breaker schedules
are asserted exactly — except the one real-thread timeout test at the
bottom, which proves the deadline actually fires.
"""

import hashlib
import time

import pytest

from repro.cache.backend import MemoryBackend
from repro.cache.resilience import (
    BackendPolicy,
    BackendTimeout,
    ResilientBackend,
    TieredBackend,
)
from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN
from repro.obs.bus import EventBus
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


class ScriptedBackend(MemoryBackend):
    """A memory store that fails the next ``fail_next`` operations
    (every op type), counting how often the inner store was reached."""

    def __init__(self) -> None:
        super().__init__()
        self.fail_next = 0
        self.calls = 0

    def _gate(self) -> None:
        self.calls += 1
        if self.fail_next > 0:
            self.fail_next -= 1
            raise RuntimeError("scripted failure")

    def get(self, key):
        self._gate()
        return super().get(key)

    def put(self, key, data):
        self._gate()
        return super().put(key, data)

    def stat(self, key):
        self._gate()
        return super().stat(key)

    def entries(self):
        self._gate()
        return super().entries()

    def delete(self, key):
        self._gate()
        return super().delete(key)


def _armored(
    inner=None, **policy_kw
) -> tuple[ResilientBackend, ScriptedBackend, FakeClock]:
    inner = inner if inner is not None else ScriptedBackend()
    base = BackendPolicy.fast_test()
    policy = BackendPolicy(**{**base.__dict__, **policy_kw})
    clock = FakeClock()
    return ResilientBackend(inner, policy=policy, clock=clock), inner, clock


class TestPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        p = BackendPolicy(base_backoff_s=0.02, backoff_factor=2.0,
                          max_backoff_s=0.05)
        assert p.backoff_s(0) == 0.02
        assert p.backoff_s(1) == 0.04
        assert p.backoff_s(2) == 0.05  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            BackendPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            BackendPolicy(retries=-1)
        with pytest.raises(ValueError):
            BackendPolicy(failure_threshold=0)


class TestRetry:
    def test_transient_failure_is_retried_away(self):
        backend, inner, clock = _armored(retries=2, base_backoff_s=0.01,
                                         max_backoff_s=0.01)
        key = _key("t")
        backend.put(key, b"v")
        inner.fail_next = 1
        assert backend.get(key) == b"v"
        assert backend.counters.retries == 1
        assert backend.counters.errors == 1
        assert backend.counters.degraded == 0
        assert clock.sleeps == [0.01]

    def test_exhausted_retries_degrade_to_default(self):
        backend, inner, _ = _armored(retries=2)
        inner.fail_next = 3  # all attempts of one op
        key = _key("x")
        backend.put(key, b"v")  # op 1: fails 3x -> dropped write
        assert backend.counters.degraded == 1
        assert super(ScriptedBackend, inner).get(key) is None

    def test_each_op_kind_has_a_miss_shaped_default(self):
        backend, inner, _ = _armored(retries=0, failure_threshold=100)
        inner.fail_next = 10**6  # everything fails, forever
        key = _key("d")
        assert backend.get(key) is None
        assert backend.get_many([key]) == {}
        assert backend.put(key, b"v") is None
        assert backend.put_if_absent(key, b"v") is False
        assert backend.stat(key) is None
        assert backend.stat_many([key]) == set()
        assert backend.entries() == []
        assert backend.delete(key) is False
        assert backend.clear() == 0
        assert backend.prune(0, grace_s=0.0) == []

    def test_empty_batches_never_reach_the_backend(self):
        backend, inner, _ = _armored()
        assert backend.get_many([]) == {}
        assert backend.stat_many([]) == set()
        assert backend.counters.ops == 0


class TestBreaker:
    def test_open_half_open_closed_schedule(self):
        backend, inner, _ = _armored(
            retries=0, failure_threshold=3, cooldown_ops=2
        )
        key = _key("b")
        inner.fail_next = 3
        for _ in range(3):          # three failed ops trip the breaker
            assert backend.get(key) is None
        assert backend.breaker.state == OPEN
        assert backend.breaker.opens == 1

        calls = inner.calls
        for _ in range(2):          # cooldown: served instantly, no I/O
            assert backend.get(key) is None
        assert inner.calls == calls
        assert backend.breaker.state == HALF_OPEN

        backend.put(key, b"v")      # the probe op: inner healthy again
        assert backend.breaker.state == CLOSED
        assert backend.get(key) == b"v"

    def test_failed_probe_reopens(self):
        backend, inner, _ = _armored(
            retries=0, failure_threshold=2, cooldown_ops=1
        )
        key = _key("p")
        inner.fail_next = 2
        backend.get(key)
        backend.get(key)
        assert backend.breaker.state == OPEN
        backend.get(key)            # cooldown tick -> half-open
        assert backend.breaker.state == HALF_OPEN
        inner.fail_next = 1
        backend.get(key)            # probe fails -> open again
        assert backend.breaker.state == OPEN
        assert backend.breaker.opens == 2

    def test_half_open_probe_gets_single_attempt(self):
        backend, inner, _ = _armored(
            retries=5, failure_threshold=1, cooldown_ops=1
        )
        inner.fail_next = 6         # first op burns 1 + 5 retries
        backend.get(_key("h"))
        assert backend.breaker.state == OPEN
        backend.get(_key("h"))      # cooldown -> half-open
        calls = inner.calls
        inner.fail_next = 1
        backend.get(_key("h"))      # probe: exactly one attempt, no retry
        assert inner.calls == calls + 1
        assert backend.breaker.state == OPEN

    def test_racing_threads_send_exactly_one_half_open_probe(self):
        """Regression: two threads seeing HALF_OPEN used to both probe
        and both record an epoch, double-stepping the state machine.
        Now one claims the probe; the loser degrades without touching
        the breaker."""
        import threading

        backend, inner, _ = _armored(
            retries=0, failure_threshold=1, cooldown_ops=1
        )
        key = _key("race")
        inner.fail_next = 1
        backend.get(key)            # trip
        backend.get(key)            # cooldown tick -> half-open
        assert backend.breaker.state == HALF_OPEN

        release = threading.Event()
        entered = threading.Event()
        orig_get = inner.get

        def slow_get(k):
            entered.set()
            assert release.wait(5.0)
            return orig_get(k)

        inner.get = slow_get
        results: dict[str, object] = {}

        def prober():
            results["probe"] = backend.get(key)

        t = threading.Thread(target=prober)
        t.start()
        assert entered.wait(5.0)    # the probe owner is inside inner.get
        calls = inner.calls
        # A second caller during the in-flight probe: degraded miss,
        # no inner I/O, and the breaker state is untouched.
        assert backend.get(key) is None
        assert inner.calls == calls
        assert backend.breaker.state == HALF_OPEN
        assert backend.counters.degraded >= 1
        release.set()
        t.join(5.0)
        assert backend.breaker.state == CLOSED  # the clean probe closed it


class TestTelemetry:
    def test_counters_mirror_into_metrics(self):
        backend, inner, _ = _armored(retries=1, failure_threshold=10)
        reg = MetricsRegistry()
        backend.bind_metrics(reg)
        key = _key("m")
        backend.put(key, b"v")
        inner.fail_next = 2
        backend.get(key)  # error, retry, error -> degraded

        def value(name, **labels):
            return reg.counter(name, **labels).value

        assert value("repro_cache_backend_ops_total",
                     backend="memory", op="get") == 1
        assert value("repro_cache_backend_errors_total",
                     backend="memory", op="get") == 2
        assert value("repro_cache_backend_retries_total",
                     backend="memory", op="get") == 1
        assert value("repro_cache_backend_degraded_total",
                     backend="memory", op="get") == 1

    def test_events_on_bus(self):
        backend, inner, _ = _armored(
            retries=0, failure_threshold=1, cooldown_ops=1
        )
        bus = EventBus()
        sub = bus.subscribe()
        backend.bind_bus(bus)
        inner.fail_next = 1
        backend.get(_key("e"))
        kinds = [e.kind for e in sub.drain()]
        assert "cache-breaker-transition" in kinds
        assert "cache-backend-degraded" in kinds

    def test_health_reports_breaker_and_counters(self):
        backend, inner, _ = _armored(retries=0, failure_threshold=1)
        inner.fail_next = 1
        backend.get(_key("h"))
        doc = backend.health()
        assert doc["breaker"] == OPEN
        assert doc["counters"]["degraded"] == 1
        assert "RuntimeError" in doc["last_error"]
        assert doc["inner"]["scheme"] == "memory"


class TestTiered:
    def _tiered(self):
        local = ScriptedBackend()
        remote = ScriptedBackend()
        policy = BackendPolicy.fast_test()
        tiered = TieredBackend(
            local=ResilientBackend(local, policy=policy),
            remote=ResilientBackend(remote, policy=policy),
        )
        return tiered, local, remote

    def test_put_lands_in_both_tiers(self):
        tiered, local, remote = self._tiered()
        key = _key("both")
        tiered.put(key, b"v")
        assert super(ScriptedBackend, local).get(key) == b"v"
        assert super(ScriptedBackend, remote).get(key) == b"v"

    def test_remote_outage_degrades_to_local_tier(self):
        tiered, local, remote = self._tiered()
        key = _key("warm")
        tiered.put(key, b"v")
        remote.fail_next = 10**6
        assert tiered.get(key) == b"v"          # warm key: local rung
        assert tiered.get(_key("cold")) is None  # cold key: miss rung
        assert tiered.stat_many([key, _key("cold")]) == {key}

    def test_remote_hit_populates_local(self):
        tiered, local, remote = self._tiered()
        key = _key("pop")
        remote.put(key, b"v")  # written by another worker
        assert tiered.get(key) == b"v"
        remote.fail_next = 10**6
        assert tiered.get(key) == b"v"  # now served locally

    def test_get_many_merges_tiers(self):
        tiered, local, remote = self._tiered()
        k1, k2, k3 = _key("l"), _key("r"), _key("absent")
        local.put(k1, b"local")
        remote.put(k2, b"remote")
        assert tiered.get_many([k1, k2, k3]) == {k1: b"local",
                                                 k2: b"remote"}

    def test_health_has_both_tiers(self):
        tiered, _, _ = self._tiered()
        doc = tiered.health()
        assert set(doc["tiers"]) == {"local", "remote"}


class TestRealTimeout:
    def test_deadline_fires_and_degrades(self):
        class SlowBackend(MemoryBackend):
            def get(self, key):
                time.sleep(0.5)
                return super().get(key)

        backend = ResilientBackend(
            SlowBackend(),
            policy=BackendPolicy(timeout_s=0.05, retries=0,
                                 base_backoff_s=0.0, max_backoff_s=0.0),
        )
        t0 = time.monotonic()
        assert backend.get(_key("slow")) is None
        assert time.monotonic() - t0 < 0.4
        assert backend.counters.timeouts == 1
        assert "BackendTimeout" in backend.last_error

    def test_backend_timeout_is_an_exception_type(self):
        assert issubclass(BackendTimeout, Exception)
