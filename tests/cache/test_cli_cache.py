"""CLI cache surface: the ``cache`` subcommand and ``--no-cache``."""

import pytest

from repro.cache import RunCache
from repro.cli import build_parser, main


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cli-cache"


class TestFlags:
    def test_run_oracle_campaign_default_cache_on(self):
        for argv in (["run"], ["oracle"], ["campaign"]):
            args = build_parser().parse_args(argv)
            assert args.cache is True
            assert args.cache_dir

    def test_no_cache_flag(self):
        args = build_parser().parse_args(["run", "--no-cache"])
        assert args.cache is False

    def test_oracle_search_flag(self):
        args = build_parser().parse_args(["oracle", "--search", "unimodal"])
        assert args.search == "unimodal"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["oracle", "--search", "binary"])


class TestRunCaching:
    def _run(self, cache_dir, *extra):
        return main([
            "run", "--tuner", "cd", "--duration", "120",
            "--cache-dir", str(cache_dir), *extra,
        ])

    def test_run_populates_then_hits(self, cache_dir, capsys):
        assert self._run(cache_dir) == 0
        first = capsys.readouterr().out
        store = RunCache(cache_dir)
        assert store.stats().entries == 1
        assert self._run(cache_dir) == 0
        second = capsys.readouterr().out
        assert second == first
        assert store.stats().entries == 1

    def test_no_cache_writes_nothing(self, cache_dir, capsys):
        assert self._run(cache_dir, "--no-cache") == 0
        assert RunCache(cache_dir).stats().entries == 0


class TestCacheSubcommand:
    def _populate(self, cache_dir):
        main(["run", "--tuner", "cd", "--duration", "120",
              "--cache-dir", str(cache_dir)])

    def test_stats_on_empty_store(self, cache_dir, capsys):
        assert main(["cache", "stats", "--dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries      : 0" in out

    def test_stats_and_ls_after_a_run(self, cache_dir, capsys):
        self._populate(cache_dir)
        capsys.readouterr()
        main(["cache", "stats", "--dir", str(cache_dir)])
        assert "entries      : 1" in capsys.readouterr().out
        main(["cache", "ls", "--dir", str(cache_dir)])
        out = capsys.readouterr().out
        assert "single anl-uc" in out

    def test_ls_empty(self, cache_dir, capsys):
        assert main(["cache", "ls", "--dir", str(cache_dir)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_clear(self, cache_dir, capsys):
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "clear", "--dir", str(cache_dir)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert RunCache(cache_dir).stats().entries == 0

    def test_prune_requires_max_bytes(self, cache_dir):
        with pytest.raises(SystemExit, match="--max-bytes"):
            main(["cache", "prune", "--dir", str(cache_dir)])

    def test_prune_to_zero(self, cache_dir, capsys):
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "prune", "--dir", str(cache_dir),
                     "--max-bytes", "0", "--grace-s", "0"]) == 0
        assert "evicted 1 entries" in capsys.readouterr().out
        assert RunCache(cache_dir).stats().entries == 0

    def test_prune_grace_protects_fresh_entries(self, cache_dir, capsys):
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "prune", "--dir", str(cache_dir),
                     "--max-bytes", "0"]) == 0
        assert "evicted 0 entries" in capsys.readouterr().out
        assert RunCache(cache_dir).stats().entries == 1

    def test_prune_negative_rejected(self, cache_dir):
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--dir", str(cache_dir),
                  "--max-bytes", "-5"])


class TestOracleCli:
    def test_oracle_unimodal_with_cache(self, cache_dir, capsys):
        rc = main(["oracle", "--duration", "240", "--search", "unimodal",
                   "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "unimodal search" in out
        assert RunCache(cache_dir).stats().entries > 0
