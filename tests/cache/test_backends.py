"""Backend contract: every byte store honors the same semantics.

One parametrized suite over dir / memory / sqlite / http (the latter
backed by a live in-process :class:`CacheServer`), plus backend-specific
corners: URL resolution, sqlite concurrency, the HTTP wire protocol,
and the prune grace period that keeps a janitor from racing a
concurrent writer.
"""

import hashlib
import threading

import pytest

from repro.cache.backend import (
    DEFAULT_PRUNE_GRACE_S,
    DirBackend,
    MemoryBackend,
    backend_from_url,
    split_cache_url,
)
from repro.cache.http_store import CacheServer, HttpBackend
from repro.cache.resilience import ResilientBackend, TieredBackend
from repro.cache.sqlite_store import SqliteBackend


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


BACKENDS = ("dir", "memory", "sqlite", "http")


@pytest.fixture
def backend(request, tmp_path):
    kind = request.param
    if kind == "dir":
        yield DirBackend(tmp_path / "store")
    elif kind == "memory":
        yield MemoryBackend()
    elif kind == "sqlite":
        b = SqliteBackend(tmp_path / "cache.db")
        yield b
        b.close()
    elif kind == "http":
        with CacheServer(DirBackend(tmp_path / "served")) as server:
            client = HttpBackend(server.url)
            yield client
            client.close()
    else:  # pragma: no cover - parametrization error
        raise AssertionError(kind)


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
class TestContract:
    def test_get_put_round_trip(self, backend):
        key = _key("a")
        assert backend.get(key) is None
        backend.put(key, b"payload-bytes")
        assert backend.get(key) == b"payload-bytes"

    def test_put_overwrites(self, backend):
        key = _key("o")
        backend.put(key, b"v1")
        backend.put(key, b"v2")
        assert backend.get(key) == b"v2"

    def test_put_if_absent(self, backend):
        key = _key("pia")
        assert backend.put_if_absent(key, b"first") is True
        assert backend.put_if_absent(key, b"second") is False
        assert backend.get(key) == b"first"

    def test_stat(self, backend):
        key = _key("s")
        assert backend.stat(key) is None
        backend.put(key, b"12345")
        info = backend.stat(key)
        assert info is not None
        assert info.key == key
        assert info.size_bytes == 5

    def test_stat_many_is_the_present_subset(self, backend):
        present = [_key(f"p{i}") for i in range(3)]
        absent = [_key(f"a{i}") for i in range(2)]
        for k in present:
            backend.put(k, b"x")
        assert backend.stat_many(present + absent) == set(present)
        assert backend.stat_many([]) == set()

    def test_get_many(self, backend):
        keys = [_key(f"g{i}") for i in range(3)]
        for i, k in enumerate(keys[:2]):
            backend.put(k, f"v{i}".encode())
        out = backend.get_many(keys)
        assert out == {keys[0]: b"v0", keys[1]: b"v1"}

    def test_delete(self, backend):
        key = _key("d")
        backend.put(key, b"x")
        assert backend.delete(key) is True
        assert backend.delete(key) is False
        assert backend.get(key) is None

    def test_entries_and_clear(self, backend):
        keys = {_key(f"e{i}") for i in range(4)}
        for k in keys:
            backend.put(k, b"data")
        assert {e.key for e in backend.entries()} == keys
        assert backend.clear() == 4
        assert backend.entries() == []

    def test_prune_zero_with_no_grace_empties(self, backend):
        for i in range(3):
            backend.put(_key(f"pr{i}"), b"data")
        evicted = backend.prune(0, grace_s=0.0)
        assert len(evicted) == 3
        assert backend.entries() == []

    def test_prune_rejects_negative(self, backend):
        with pytest.raises(ValueError):
            backend.prune(-1)

    def test_health_is_json_shaped(self, backend):
        doc = backend.health()
        assert isinstance(doc, dict)
        assert doc["scheme"] == backend.scheme


class TestPruneGrace:
    """Satellite: a janitor sweep must not evict a concurrent writer's
    fresh entries (the put-then-read-back race)."""

    def test_fresh_entries_survive_prune_zero(self, tmp_path):
        backend = DirBackend(tmp_path / "store")
        key = _key("fresh")
        backend.put(key, b"just written")
        assert backend.prune(0) == []           # default grace
        assert backend.get(key) == b"just written"

    def test_old_entries_evicted_young_kept(self, tmp_path):
        import os

        backend = DirBackend(tmp_path / "store")
        old, young = _key("old"), _key("young")
        old_path = backend.put(old, b"x" * 100)
        os.utime(old_path, (1000.0, 1000.0))
        backend.put(young, b"y" * 100)
        evicted = backend.prune(0)
        assert evicted == [old]
        assert backend.get(young) is not None

    def test_grace_zero_restores_eager_eviction(self, tmp_path):
        backend = DirBackend(tmp_path / "store")
        backend.put(_key("f"), b"data")
        assert len(backend.prune(0, grace_s=0.0)) == 1

    def test_sqlite_grace(self, tmp_path):
        backend = SqliteBackend(tmp_path / "c.db")
        backend._now = lambda: 1000.0
        old = _key("old")
        backend.put(old, b"x")
        backend._now = lambda: 2000.0
        young = _key("young")
        backend.put(young, b"y")
        evicted = backend.prune(
            0, grace_s=DEFAULT_PRUNE_GRACE_S, now=2000.0
        )
        assert evicted == [old]
        assert backend.get(young) == b"y"
        backend.close()

    def test_concurrent_writer_never_loses_fresh_entries(self, tmp_path):
        """A writer thread racing a pruning janitor: every entry the
        writer just put must still be readable afterwards."""
        backend = DirBackend(tmp_path / "store")
        keys = [_key(f"w{i}") for i in range(50)]
        errors = []

        def janitor():
            try:
                for _ in range(25):
                    backend.prune(0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t = threading.Thread(target=janitor)
        t.start()
        for k in keys:
            backend.put(k, b"fresh")
        t.join()
        assert errors == []
        for k in keys:
            assert backend.get(k) == b"fresh"


class TestUrlResolution:
    def test_split_plain_path(self):
        assert split_cache_url("/tmp/x") == ("dir", "/tmp/x", {})

    def test_split_scheme_and_params(self):
        assert split_cache_url("http://h:1?local=/tmp/t") == (
            "http", "h:1", {"local": "/tmp/t"}
        )

    def test_dir_spec_builds_resilient_dir(self, tmp_path):
        b = backend_from_url(str(tmp_path / "c"))
        assert isinstance(b, ResilientBackend)
        assert isinstance(b.inner, DirBackend)
        assert b.scheme == "dir"

    def test_sqlite_spec(self, tmp_path):
        b = backend_from_url(f"sqlite://{tmp_path / 'c.db'}")
        assert isinstance(b, ResilientBackend)
        assert isinstance(b.inner, SqliteBackend)
        b.close()

    def test_http_spec_is_tiered_with_memory_local(self):
        b = backend_from_url("http://127.0.0.1:1")
        assert isinstance(b, TieredBackend)
        assert isinstance(b.remote.inner, HttpBackend)
        assert isinstance(b.local.inner, MemoryBackend)

    def test_http_local_param_uses_dir_tier(self, tmp_path):
        b = backend_from_url(f"http://127.0.0.1:1?local={tmp_path / 'l'}")
        assert isinstance(b.local.inner, DirBackend)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            backend_from_url("ftp://nope")


class TestSqliteBackend:
    def test_concurrent_put_if_absent_single_winner(self, tmp_path):
        backend = SqliteBackend(tmp_path / "c.db")
        key = _key("race")
        wins = []
        barrier = threading.Barrier(4)

        def writer(i):
            barrier.wait()
            if backend.put_if_absent(key, f"writer-{i}".encode()):
                wins.append(i)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert backend.get(key) == f"writer-{wins[0]}".encode()
        backend.close()

    def test_batched_ops_chunk_over_many_keys(self, tmp_path):
        backend = SqliteBackend(tmp_path / "c.db")
        keys = [_key(f"k{i}") for i in range(450)]  # > one IN-chunk
        for k in keys[:420]:
            backend.put(k, b"v")
        assert backend.stat_many(keys) == set(keys[:420])
        assert set(backend.get_many(keys)) == set(keys[:420])
        backend.close()


class TestHttpProtocol:
    @pytest.fixture
    def served(self, tmp_path):
        with CacheServer(DirBackend(tmp_path / "served")) as server:
            client = HttpBackend(server.url)
            yield client, server
            client.close()

    def test_health_round_trip(self, served):
        client, _ = served
        doc = client.health()
        assert doc["scheme"] == "http"
        assert isinstance(doc.get("server"), dict)
        assert doc["server"]["scheme"] == "dir"

    def test_prune_and_clear_over_the_wire(self, served):
        client, _ = served
        for i in range(3):
            client.put(_key(f"h{i}"), b"data")
        assert client.prune(0, grace_s=0.0) != []
        client.put(_key("again"), b"x")
        assert client.clear() >= 1

    def test_server_prune_applies_grace(self, served):
        client, _ = served
        client.put(_key("fresh"), b"x")
        assert client.prune(0) == []  # default grace: fresh entry kept

    def test_unknown_path_is_an_error_not_a_miss(self, served):
        client, server = served
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(server.url + "/v1/nope")
