"""Graceful drain of ``repro cache serve``: SIGTERM semantics.

The contract shared with the fleet server (:mod:`repro.service.drain`):
a drain request stops new work (503), lets in-flight requests finish
under the gauge, closes the listener and the store, and the
``run_forever`` loop exits 0.
"""

import hashlib
import threading
import time
import urllib.error

import pytest

from repro.cache.backend import DirBackend
from repro.cache.http_store import CacheServer, HttpBackend


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


class SlowBackend(DirBackend):
    """A directory store whose ``get`` blocks until released."""

    def __init__(self, root):
        super().__init__(root)
        self.entered = threading.Event()
        self.release = threading.Event()

    def get(self, key):
        self.entered.set()
        assert self.release.wait(5.0)
        return super().get(key)


class TestCacheServeDrain:
    def test_draining_server_refuses_new_requests(self, tmp_path):
        server = CacheServer(DirBackend(tmp_path)).start()
        try:
            be = HttpBackend(server.url)
            be.put(_key("a"), b"v")
            server.request_drain()
            with pytest.raises(urllib.error.HTTPError) as err:
                be.get(_key("a"))
            assert err.value.code == 503
        finally:
            server.drain()

    def test_drain_is_idempotent_and_closes_the_store(self, tmp_path):
        store = DirBackend(tmp_path)
        server = CacheServer(store).start()
        HttpBackend(server.url).put(_key("b"), b"v")
        server.drain()
        server.drain()  # second call is a no-op
        assert server.draining

    def test_in_flight_request_finishes_during_drain(self, tmp_path):
        store = SlowBackend(tmp_path)
        server = CacheServer(store).start()
        key = _key("c")
        DirBackend(tmp_path).put(key, b"payload")
        be = HttpBackend(server.url, timeout_s=10.0)
        result: list[bytes | None] = []
        t = threading.Thread(target=lambda: result.append(be.get(key)))
        t.start()
        assert store.entered.wait(5.0)
        assert server.in_flight.count == 1
        drainer = threading.Thread(target=server.drain)
        drainer.start()
        time.sleep(0.05)
        store.release.set()          # let the in-flight request finish
        t.join(5.0)
        drainer.join(5.0)
        assert result == [b"payload"]
        assert server.in_flight.count == 0

    def test_run_forever_exits_zero_on_drain_request(self, tmp_path):
        server = CacheServer(DirBackend(tmp_path))
        rc: list[int] = []
        t = threading.Thread(target=lambda: rc.append(server.run_forever()))
        t.start()
        deadline = time.monotonic() + 5.0
        while not server._serving.is_set() and time.monotonic() < deadline:
            time.sleep(0.01)
        be = HttpBackend(server.url)
        be.put(_key("d"), b"v")
        assert be.get(_key("d")) == b"v"
        server.request_drain()
        t.join(5.0)
        assert rc == [0]
        assert not t.is_alive()

    def test_context_manager_drains_on_exit(self, tmp_path):
        with CacheServer(DirBackend(tmp_path)) as server:
            HttpBackend(server.url).put(_key("e"), b"v")
        assert server.draining
