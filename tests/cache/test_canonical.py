"""Canonical JSON: the stability layer under every cache key."""

import dataclasses
import math

import numpy as np
import pytest

from repro.cache import canonical_json, describe


@dataclasses.dataclass(frozen=True)
class Point:
    x: int
    y: float


@dataclasses.dataclass(frozen=True)
class Other:
    x: int
    y: float


class TestDescribe:
    def test_primitives_pass_through(self):
        assert describe(None) is None
        assert describe(True) is True
        assert describe(7) == 7
        assert describe("s") == "s"
        assert describe(1.5) == 1.5

    def test_nonfinite_floats_are_tagged(self):
        assert describe(math.inf) == {"__float__": "inf"}
        assert describe(-math.inf) == {"__float__": "-inf"}
        assert describe(math.nan) == {"__float__": "nan"}
        # ... and the rendering stays strict JSON.
        assert '"inf"' in canonical_json(math.inf)

    def test_numpy_scalars_reduce_to_python(self):
        assert describe(np.float64(2.5)) == 2.5
        assert describe(np.int64(3)) == 3

    def test_dataclass_is_tagged_with_qualified_name(self):
        d = describe(Point(x=1, y=2.0))
        assert d["__class__"].endswith("Point")
        assert d["x"] == 1 and d["y"] == 2.0

    def test_same_fields_different_class_differ(self):
        assert canonical_json(Point(1, 2.0)) != canonical_json(Other(1, 2.0))

    def test_callable_encodes_as_qualname(self):
        assert describe(math.sqrt) == {"__callable__": "math.sqrt"}
        assert describe(Point)["__callable__"].endswith("Point")

    def test_bytes_encode_as_hex(self):
        assert describe(b"\x01\xff") == {"__bytes__": "01ff"}

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(TypeError, match="string dict keys"):
            describe({1: "a"})

    def test_undescribable_object_raises(self):
        with pytest.raises(TypeError, match="canonicalize"):
            describe(object())


class TestCanonicalJson:
    def test_dict_insertion_order_is_irrelevant(self):
        a = {"x": 1, "y": [1, 2], "z": {"p": 0.5}}
        b = {"z": {"p": 0.5}, "y": [1, 2], "x": 1}
        assert canonical_json(a) == canonical_json(b)

    def test_set_order_is_irrelevant(self):
        assert canonical_json({3, 1, 2}) == canonical_json({2, 3, 1})

    def test_float_encoding_round_trips_bits(self):
        # repr-based floats: distinct bit patterns stay distinct.
        assert canonical_json(0.1 + 0.2) != canonical_json(0.3)
        assert canonical_json(1e-17) != canonical_json(1.1e-17)

    def test_tuple_and_list_collapse(self):
        # JSON has one sequence type; (1, 2) and [1, 2] are the same
        # configuration.
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'
