"""Campaign cache-awareness: hit accounting, manifests, warm-first order."""

import pytest

from repro.cache import RunCache
from repro.cache.runtime import activated
from repro.core.registry import make_tuner
from repro.experiments import campaign as campaign_mod
from repro.experiments.campaign import (
    CampaignScale,
    _cache_order,
    _manifest_key,
    run_campaign,
)
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC

SCALE = CampaignScale(duration_s=120.0, fig1_duration_s=120.0,
                      fig1_reps=1, seed=0)


def _unit(tag: str, seed_offset: int = 0):
    def unit(scale):
        trace = run_single(
            ANL_UC, make_tuner("cd", scale.seed),
            duration_s=scale.duration_s, seed=scale.seed + seed_offset,
        )
        return {f"sec-{tag}": f"{trace.epochs[-1].observed:.3f}"}

    return unit


@pytest.fixture
def store(tmp_path):
    return RunCache(tmp_path / "campaign-cache")


@pytest.fixture
def two_units(monkeypatch):
    units = [("unit-a", _unit("a", 0)), ("unit-b", _unit("b", 1))]
    monkeypatch.setattr(campaign_mod, "CAMPAIGN_UNITS", units)
    return units


class TestHitAccounting:
    def test_cold_then_warm(self, store, two_units):
        cold = run_campaign(SCALE, cache=store)
        assert cold.cache_hits == 0
        assert cold.cache_misses == 2
        assert cold.cache_hit_rate == 0.0
        assert cold.unit_cache == {"unit-a": (0, 1), "unit-b": (0, 1)}
        assert cold.backend_health is not None
        assert cold.backend_health["scheme"] == "dir"

        warm = run_campaign(SCALE, cache=store)
        assert warm.cache_hits == 2
        assert warm.cache_misses == 0
        assert warm.cache_hit_rate == 1.0
        assert warm.document() == cold.document()

    def test_uncached_campaign_reports_nothing(self, two_units):
        result = run_campaign(SCALE, cache=False)
        assert result.cache_hit_rate is None
        assert result.backend_health is None
        assert result.unit_cache == {"unit-a": (0, 0), "unit-b": (0, 0)}

    def test_manifests_are_written(self, store, two_units):
        run_campaign(SCALE, cache=store)
        for name in ("unit-a", "unit-b"):
            manifest = store.peek(_manifest_key(name, SCALE))
            assert manifest is not None
            assert len(manifest["keys"]) == 1

    def test_manifest_probes_do_not_skew_counters(self, store, two_units):
        run_campaign(SCALE, cache=store)
        warm = run_campaign(SCALE, cache=store)
        # Exactly one probe per unit — the ordering pass (peek +
        # stat_many) charges no hit/miss counters.
        assert warm.cache_hits + warm.cache_misses == 2


class TestWarmFirstOrder:
    def test_warm_unit_dispatches_first(self, store, monkeypatch):
        # Warm only unit-b, then ask for the order of [a, b].
        monkeypatch.setattr(campaign_mod, "CAMPAIGN_UNITS",
                            [("unit-b", _unit("b", 1))])
        run_campaign(SCALE, cache=store)
        with activated(store):
            assert _cache_order(["unit-a", "unit-b"], SCALE) == [
                "unit-b", "unit-a"
            ]

    def test_uncached_order_is_campaign_order(self):
        assert _cache_order(["x", "y"], SCALE) == ["x", "y"]

    def test_all_cold_keeps_campaign_order(self, store):
        with activated(store):
            assert _cache_order(["x", "y", "z"], SCALE) == ["x", "y", "z"]


class TestJournalComposition:
    def test_resumed_units_contribute_no_probes(self, store, two_units,
                                                tmp_path):
        journal = tmp_path / "c.jnl"
        run_campaign(SCALE, journal_path=journal, cache=store)
        resumed = run_campaign(SCALE, journal_path=journal, cache=store)
        assert resumed.resumed_units == ["unit-a", "unit-b"]
        assert resumed.cache_hits == 0 and resumed.cache_misses == 0
        assert resumed.cache_hit_rate is None
