"""On-disk store: atomic round-trips, damage = miss, eviction order."""

import hashlib
import json
import os

import pytest

from repro.cache import RunCache
from repro.cache.store import ENTRY_FORMAT
from repro.obs.metrics import MetricsRegistry


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


@pytest.fixture
def store(tmp_path):
    return RunCache(tmp_path / "cache")


class TestGetPut:
    def test_round_trip(self, store):
        key = _key("a")
        store.put(key, {"traces": {"main": 1}}, meta={"kind": "single"})
        assert store.get(key) == {"traces": {"main": 1}}
        assert store.hits == 1 and store.misses == 0

    def test_missing_entry_is_a_miss(self, store):
        assert store.get(_key("nope")) is None
        assert store.misses == 1

    def test_construction_creates_nothing(self, store):
        assert not store.root.exists()
        store.get(_key("x"))
        assert not store.root.exists()

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ValueError, match="malformed cache key"):
            store.get("short")
        with pytest.raises(ValueError):
            store.put("Z" * 64, {})


class TestDamageIsAMiss:
    def test_torn_json_is_a_miss(self, store):
        key = _key("torn")
        path = store.put(key, {"v": 1})
        path.write_text(path.read_text()[: 10])
        assert store.get(key) is None

    def test_empty_file_is_a_miss(self, store):
        key = _key("empty")
        path = store.put(key, {"v": 1})
        path.write_text("")
        assert store.get(key) is None

    def test_wrong_embedded_key_is_a_miss(self, store):
        key, other = _key("a"), _key("b")
        path = store.put(key, {"v": 1})
        # Copy a's entry into b's slot, as a botched manual copy would.
        target = store._entry_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path.read_text())
        assert store.get(other) is None

    def test_wrong_format_version_is_a_miss(self, store):
        key = _key("fmt")
        path = store.put(key, {"v": 1})
        head, tail = path.read_text().split("\n", 1)
        header = json.loads(head)
        header["format"] = ENTRY_FORMAT + 1
        path.write_text(json.dumps(header) + "\n" + tail)
        assert store.get(key) is None

    def test_non_dict_document_is_a_miss(self, store):
        key = _key("list")
        path = store.put(key, {"v": 1})
        path.write_text("[1, 2, 3]")
        assert store.get(key) is None

    def test_undecodable_traces_payload_is_a_miss(self, store):
        key = _key("traces")
        store.put(key, {"traces": {"main": {"not": "a trace"}}})
        assert store.get_traces(key) is None
        store.put(key, {"no_traces_key": 1})
        assert store.get_traces(key) is None


class TestManagement:
    def _fill(self, store, n):
        keys = [_key(f"e{i}") for i in range(n)]
        for i, key in enumerate(keys):
            path = store.put(key, {"pad": "x" * 100, "i": i})
            # Deterministic, strictly increasing mtimes (filesystem
            # timestamps can tie within one test's runtime).
            os.utime(path, (1000.0 + i, 1000.0 + i))
        return keys

    def test_entries_oldest_first(self, store):
        keys = self._fill(store, 4)
        assert [e.key for e in store.entries()] == keys

    def test_stats_counts_entries_and_bytes(self, store):
        self._fill(store, 3)
        s = store.stats()
        assert s.entries == 3
        assert s.total_bytes == sum(e.size_bytes for e in store.entries())

    def test_clear_removes_everything(self, store):
        self._fill(store, 3)
        assert store.clear() == 3
        assert store.stats().entries == 0

    def test_prune_evicts_oldest_first(self, store):
        keys = self._fill(store, 4)
        per_entry = store.entries()[0].size_bytes
        evicted = store.prune(2 * per_entry)
        assert evicted == keys[:2]
        assert [e.key for e in store.entries()] == keys[2:]

    def test_prune_zero_empties(self, store):
        self._fill(store, 2)
        assert len(store.prune(0)) == 2
        assert store.stats().entries == 0

    def test_prune_noop_when_under_budget(self, store):
        self._fill(store, 2)
        assert store.prune(10**9) == []
        assert store.stats().entries == 2

    def test_prune_rejects_negative(self, store):
        with pytest.raises(ValueError):
            store.prune(-1)


class TestMetrics:
    def test_counts_mirror_into_registry(self, store):
        reg = MetricsRegistry()
        store.bind_metrics(reg)
        key = _key("m")
        store.get(key)                     # miss
        store.put(key, {"v": 1})
        store.get(key)                     # hit
        def value(name):
            return reg.counter(name).value

        assert value("repro_cache_misses_total") == 1
        assert value("repro_cache_hits_total") == 1
        assert value("repro_cache_read_bytes_total") > 0
        assert value("repro_cache_written_bytes_total") > 0
