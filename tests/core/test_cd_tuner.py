"""Unit tests for cd-tuner (Algorithm 1)."""

import pytest

from repro.core.cd_tuner import CdTuner
from repro.core.params import ParamSpace

from tests.core.helpers import drive, drive_switching, unimodal_1d, unimodal_2d

SPACE = ParamSpace(("nc",), (1,), (128,))
SPACE_2D = ParamSpace(("nc", "np"), (1, 1), (128, 32))


class TestUnitSteps:
    def test_first_two_evaluations_are_x0_and_x0_plus_one(self):
        xs, _ = drive(CdTuner(), SPACE, (2,), unimodal_1d(peak=40), epochs=2)
        assert xs == [(2,), (3,)]

    def test_moves_by_at_most_one_per_epoch(self):
        xs, _ = drive(CdTuner(), SPACE, (2,), unimodal_1d(peak=40), epochs=30)
        for a, b in zip(xs, xs[1:]):
            assert abs(b[0] - a[0]) <= 1

    def test_climbs_toward_peak(self):
        xs, _ = drive(CdTuner(), SPACE, (2,), unimodal_1d(peak=20, width=8),
                      epochs=40)
        assert xs[-1][0] >= 17

    def test_descends_when_started_above_peak(self):
        xs, _ = drive(CdTuner(), SPACE, (60,), unimodal_1d(peak=20, width=8),
                      epochs=60)
        assert xs[-1][0] <= 25

    def test_holds_on_flat_surface(self):
        xs, _ = drive(CdTuner(), SPACE, (10,), lambda x: 500.0, epochs=20)
        # After the initial probe (10 -> 11), nothing is significant, so
        # the value never moves again.
        assert set(xs[2:]) == {(11,)}

    def test_reacts_to_external_change_while_holding(self):
        # Flat at first, then the surface level shifts by 50% -> the
        # "same x, significant delta" rule must trigger an increase.
        surface_at = lambda c: (
            (lambda x: 500.0) if c < 10 else (lambda x: 750.0)
        )
        xs, _ = drive_switching(CdTuner(), SPACE, (10,), surface_at, epochs=14)
        assert xs[11][0] == xs[10][0] + 1

    def test_never_leaves_bounds(self):
        xs, _ = drive(CdTuner(), SPACE, (1,), unimodal_1d(peak=500),
                      epochs=200)
        assert all(SPACE.contains(x) for x in xs)
        xs, _ = drive(CdTuner(), SPACE, (128,), unimodal_1d(peak=1),
                      epochs=50)
        assert all(SPACE.contains(x) for x in xs)


class TestMultiParameter:
    def test_cycles_to_second_dimension_when_stable(self):
        # dim 0 is nearly flat around the start (unit steps insignificant),
        # so it goes stable and the tuner must eventually probe dim 1.
        xs, _ = drive(
            CdTuner(stable_epochs_to_switch=2),
            SPACE_2D,
            (2, 1),
            unimodal_2d(peak=(2, 10), widths=(12.0, 5.0)),
            epochs=40,
        )
        np_values = {x[1] for x in xs}
        assert len(np_values) > 1

    def test_improves_both_dimensions(self):
        xs, fs = drive(
            CdTuner(stable_epochs_to_switch=2),
            SPACE_2D,
            (2, 2),
            unimodal_2d(peak=(10, 6), widths=(5.0, 3.0)),
            epochs=80,
        )
        surface = unimodal_2d(peak=(10, 6), widths=(5.0, 3.0))
        assert surface(xs[-1]) > surface((2, 2)) * 1.5

    def test_2d_points_stay_in_bounds(self):
        xs, _ = drive(
            CdTuner(), SPACE_2D, (1, 1),
            unimodal_2d(peak=(200, 50)), epochs=100,
        )
        assert all(SPACE_2D.contains(x) for x in xs)


class TestValidation:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            CdTuner(eps_pct=-1.0)

    def test_rejects_bad_switch_horizon(self):
        with pytest.raises(ValueError):
            CdTuner(stable_epochs_to_switch=0)

    def test_name(self):
        assert CdTuner().name == "cd-tuner"
