"""Tuner populations: batched ``(B,)``-array proposals, bit-identical.

The population protocol (:class:`~repro.core.base.TunerPopulation`,
built by :meth:`Tuner.propose_batch`) advances many same-class lanes as
one array step per epoch.  Its contract is the scalar one: every
proposal must equal — exact tuple equality, no tolerance — what the
lane's own ``tuner.start(x0)`` driver would have proposed for the same
observation sequence, including mid-stream divergence (a lane firing
its watch monitor drops into its scalar generator for the search and
rejoins), per-lane heterogeneous hyperparameters, and detach back to a
standalone :class:`~repro.core.base.TunerDriver`.
"""

import numpy as np
import pytest

from repro.core.base import TunerDriver, TunerPopulation
from repro.core.cd_tuner import CdTuner
from repro.core.cs_tuner import CsTuner
from repro.core.gss_tuner import GssTuner
from repro.core.monitor import DeltaPctMonitor
from repro.core.nm_tuner import NmTuner
from repro.core.params import ParamSpace

SPACE_1D = ParamSpace(("nc",), (1,), (64,))
SPACE_2D = ParamSpace(("nc", "np"), (1, 1), (32, 8))


def _observations(rng, n):
    """A plausible throughput trail: wandering positives with jumps."""
    base = 200.0 + 150.0 * rng.random()
    out = []
    for _ in range(n):
        if rng.random() < 0.08:
            base = 100.0 + 400.0 * rng.random()
        out.append(max(0.0, base * (1.0 + 0.15 * rng.normal())))
    return out


def _lockstep_case(tuners, space, x0s, *, epochs=200, seed=0,
                   detach_at=None):
    """Drive a population and per-lane scalar drivers through the same
    observation streams — random per-epoch lane subsets, so lanes sit
    at different epochs — asserting exact proposal equality throughout.
    """
    rng = np.random.default_rng(seed)
    pop = tuners[0].propose_batch(space)
    assert isinstance(pop, TunerPopulation)
    drivers = []
    for lane, (tuner, x0) in enumerate(zip(tuners, x0s)):
        driver = tuner.start(x0, space)
        cur = pop.add_lane(lane, tuner, x0)
        assert cur == driver.current
        drivers.append(driver)
    streams = [_observations(rng, epochs) for _ in tuners]
    pos = [0] * len(tuners)
    gone: set[int] = set()
    for _ in range(epochs):
        lanes = [ln for ln in range(len(tuners))
                 if ln not in gone and pos[ln] < epochs
                 and rng.random() < 0.9]
        if not lanes:
            continue
        obs = [streams[ln][pos[ln]] for ln in lanes]
        got = pop.observe_batch(lanes, obs)
        for j, (ln, f) in enumerate(zip(lanes, obs)):
            want = drivers[ln].observe(f)
            assert got[j] == want
            assert pop.current(ln) == drivers[ln].current
            pos[ln] += 1
        if detach_at is not None and detach_at in lanes:
            solo = pop.detach(detach_at)
            assert isinstance(solo, TunerDriver)
            assert solo.current == drivers[detach_at].current
            # The detached driver continues bit-identically alone.
            for f in streams[detach_at][pos[detach_at]:]:
                assert solo.observe(f) == drivers[detach_at].observe(f)
            gone.add(detach_at)
            detach_at = None
    return pop, drivers


def test_cd_population_matches_scalar_drivers_heterogeneous():
    tuners = [
        CdTuner(eps_pct=5.0),
        CdTuner(eps_pct=2.0, stable_epochs_to_switch=2),
        CdTuner(eps_pct=9.0, stable_epochs_to_switch=5),
        CdTuner(eps_pct=5.0),
    ]
    x0s = [(4, 1), (8, 2), (32, 8), (1, 1)]
    _lockstep_case(tuners, SPACE_2D, x0s, seed=1)


def test_cd_population_1d_and_detach():
    tuners = [CdTuner(eps_pct=3.0) for _ in range(3)]
    _lockstep_case(tuners, SPACE_1D, [(2,), (16,), (64,)], seed=2,
                   detach_at=1)


def test_cs_population_matches_scalar_drivers():
    tuners = [
        CsTuner(seed=11),
        CsTuner(seed=12, eps_pct=2.0, lam0=4.0),
        CsTuner(seed=13, restart_from="x0"),
    ]
    _lockstep_case(tuners, SPACE_2D, [(4, 2), (16, 4), (8, 8)], seed=3,
                   detach_at=2)


def test_gss_population_matches_scalar_drivers():
    tuners = [GssTuner(), GssTuner(eps_pct=2.0), GssTuner(eps_pct=8.0)]
    _lockstep_case(tuners, SPACE_1D, [(4,), (32,), (60,)], seed=4,
                   detach_at=0)


# -- protocol edges ----------------------------------------------------------


def test_propose_batch_default_is_none():
    assert NmTuner().propose_batch(SPACE_1D) is None


def test_cs_with_monitor_declines_population():
    tuner = CsTuner(monitor=DeltaPctMonitor(5.0))
    assert tuner.propose_batch(SPACE_2D) is None


def test_gss_declines_multidim_space():
    assert GssTuner().propose_batch(SPACE_2D) is None


def test_population_rejects_foreign_tuner_class():
    pop = CdTuner().propose_batch(SPACE_1D)
    assert pop.add_lane(0, NmTuner(), (4,)) is None
    # A subclass is also foreign: its overridden behavior cannot be
    # expressed by the base class's array step.
    class Derived(CdTuner):
        pass
    assert pop.add_lane(1, Derived(), (4,)) is None


def test_population_rejects_duplicate_lane():
    pop = CdTuner().propose_batch(SPACE_1D)
    assert pop.add_lane(0, CdTuner(), (4,)) == (4,)
    with pytest.raises(ValueError):
        pop.add_lane(0, CdTuner(), (4,))


def test_population_primes_with_bounds_clamp():
    pop = CdTuner().propose_batch(SPACE_1D)
    assert pop.add_lane(0, CdTuner(), (999,)) == (64,)


def test_driver_carries_its_tuner():
    tuner = CdTuner()
    assert tuner.start((4,), SPACE_1D).tuner is tuner
