"""Unit tests for the baseline heuristics (heur1, heur2, defaults)."""

import pytest

from repro.core.heuristics import (
    Heur1Tuner,
    Heur2Tuner,
    default_globus_params,
)
from repro.core.params import ParamSpace

from tests.core.helpers import drive, unimodal_1d, unimodal_2d

SPACE = ParamSpace(("nc",), (1,), (128,))
SPACE_2D = ParamSpace(("nc", "np"), (1, 1), (128, 32))


def test_globus_defaults_match_paper():
    assert default_globus_params() == (2, 8)


class TestHeur1:
    def test_additive_climb_while_improving(self):
        xs, _ = drive(Heur1Tuner(), SPACE, (2,), unimodal_1d(peak=30, width=6),
                      epochs=25)
        diffs = [b[0] - a[0] for a, b in zip(xs, xs[1:])]
        assert all(d in (0, 1) for d in diffs)       # never decreases
        assert xs[-1][0] > 10                        # did climb

    def test_no_decrease_rule(self):
        # Start above the peak: additive increase never helps, and heur1
        # has no decrement, so it freezes near the start.
        xs, _ = drive(Heur1Tuner(), SPACE, (60,), unimodal_1d(peak=10, width=5),
                      epochs=30)
        assert min(x[0] for x in xs) >= 60

    def test_slower_than_exponential_rampup(self):
        surface = unimodal_1d(peak=100, width=40)
        xs1, _ = drive(Heur1Tuner(), SPACE, (2,), surface, epochs=15)
        xs2, _ = drive(Heur2Tuner(), SPACE, (2,), surface, epochs=15)
        assert max(x[0] for x in xs2) > max(x[0] for x in xs1)

    def test_2d_cycles_dimensions(self):
        xs, _ = drive(Heur1Tuner(stable_epochs_to_switch=2), SPACE_2D, (2, 2),
                      unimodal_2d(peak=(20, 10), widths=(8.0, 4.0)),
                      epochs=60)
        assert len({x[1] for x in xs}) > 1

    def test_bounds_respected(self):
        xs, _ = drive(Heur1Tuner(), SPACE, (127,), unimodal_1d(peak=500),
                      epochs=20)
        assert all(SPACE.contains(x) for x in xs)

    def test_validation(self):
        with pytest.raises(ValueError):
            Heur1Tuner(eps_pct=-1)
        with pytest.raises(ValueError):
            Heur1Tuner(increment=0)


class TestHeur2:
    def test_doubles_while_improving(self):
        xs, _ = drive(Heur2Tuner(), SPACE, (2,),
                      unimodal_1d(peak=100, width=40), epochs=8)
        values = [x[0] for x in xs]
        assert values[:4] == [2, 4, 8, 16]

    def test_reverts_one_step_on_significant_drop(self):
        # Sharp peak at 16: doubling 16 -> 32 collapses throughput, and the
        # heuristic must fall back to 16 and hold.
        xs, _ = drive(Heur2Tuner(), SPACE, (2,),
                      unimodal_1d(peak=16, width=4), epochs=20)
        assert xs[-1] == (16,)

    def test_never_goes_below_start(self):
        # The paper's criticism: started above the critical value, heur2
        # cannot decrease.
        xs, _ = drive(Heur2Tuner(), SPACE, (64,),
                      unimodal_1d(peak=4, width=2), epochs=20)
        assert min(x[0] for x in xs) >= 64

    def test_terminal_hold(self):
        xs, _ = drive(Heur2Tuner(), SPACE, (2,),
                      unimodal_1d(peak=10, width=3), epochs=30)
        assert len(set(xs[-5:])) == 1

    def test_2d_tunes_both_dimensions(self):
        xs, _ = drive(Heur2Tuner(), SPACE_2D, (2, 2),
                      unimodal_2d(peak=(16, 8), widths=(8.0, 4.0)),
                      epochs=40)
        assert len({x[0] for x in xs}) > 1
        assert len({x[1] for x in xs}) > 1

    def test_bounds_respected(self):
        xs, _ = drive(Heur2Tuner(), SPACE, (100,), unimodal_1d(peak=500),
                      epochs=20)
        assert all(SPACE.contains(x) for x in xs)

    def test_validation(self):
        with pytest.raises(ValueError):
            Heur2Tuner(eps_pct=-1)
        with pytest.raises(ValueError):
            Heur2Tuner(factor=1)
