"""Unit tests for the Ito et al. AIMD/MIMD adaptation baseline."""

import pytest

from repro.core.aimd_tuner import AimdTuner
from repro.core.params import ParamSpace

from tests.core.helpers import drive, drive_switching, unimodal_1d

SPACE = ParamSpace(("nc",), (1,), (128,))


class TestAimd:
    def test_additive_climb(self):
        xs, _ = drive(AimdTuner(), SPACE, (2,),
                      unimodal_1d(peak=40, width=15), epochs=30)
        diffs = [b[0] - a[0] for a, b in zip(xs, xs[1:])]
        assert max(diffs) == 1  # additive increase only

    def test_multiplicative_backoff_after_overshoot(self):
        # Sharp peak: pushing past it triggers a halving.
        xs, _ = drive(AimdTuner(), SPACE, (20,),
                      unimodal_1d(peak=10, width=3), epochs=20)
        values = [x[0] for x in xs]
        drops = [b / a for a, b in zip(values, values[1:]) if b < a]
        assert drops and min(drops) <= 0.6

    def test_sawtooth_around_peak(self):
        # AIMD never settles: expect continued movement late in the run.
        xs, _ = drive(AimdTuner(probe_interval=2), SPACE, (2,),
                      unimodal_1d(peak=20, width=8), epochs=80)
        tail = xs[-15:]
        assert len(set(tail)) > 1

    def test_probes_up_when_flat(self):
        xs, _ = drive(AimdTuner(probe_interval=3), SPACE, (10,),
                      lambda x: 500.0, epochs=20)
        assert max(x[0] for x in xs) > 11

    def test_reclaims_after_external_change(self):
        before = unimodal_1d(peak=15, width=6)
        after = unimodal_1d(peak=60, width=20)
        xs, _ = drive_switching(
            AimdTuner(), SPACE, (2,),
            lambda c: before if c < 30 else after, epochs=150,
        )
        assert max(x[0] for x in xs[30:]) > 30

    def test_mimd_variant_grows_faster(self):
        surface = unimodal_1d(peak=100, width=40)
        a, _ = drive(AimdTuner(), SPACE, (2,), surface, epochs=12)
        m, _ = drive(AimdTuner(multiplicative_increase=True), SPACE, (2,),
                     surface, epochs=12)
        assert max(x[0] for x in m) > max(x[0] for x in a)

    def test_names(self):
        assert AimdTuner().name == "aimd-tuner"
        assert AimdTuner(multiplicative_increase=True).name == "mimd-tuner"

    def test_bounds(self):
        xs, _ = drive(AimdTuner(multiplicative_increase=True), SPACE, (100,),
                      unimodal_1d(peak=500), epochs=30)
        assert all(SPACE.contains(x) for x in xs)

    def test_validation(self):
        with pytest.raises(ValueError):
            AimdTuner(eps_pct=-1)
        with pytest.raises(ValueError):
            AimdTuner(increase=0)
        with pytest.raises(ValueError):
            AimdTuner(decrease_factor=1.0)
        with pytest.raises(ValueError):
            AimdTuner(probe_interval=0)
        with pytest.raises(ValueError):
            AimdTuner(mi_factor=1.0)
