"""Unit tests for EpochHistory and the Δc significant-change test."""

import math

import pytest

from repro.core.history import EpochHistory, delta_pct


class TestDeltaPct:
    def test_positive_change(self):
        assert delta_pct(110.0, 100.0) == pytest.approx(10.0)

    def test_negative_change(self):
        assert delta_pct(90.0, 100.0) == pytest.approx(-10.0)

    def test_no_change(self):
        assert delta_pct(100.0, 100.0) == 0.0

    def test_zero_baseline_with_change_is_infinite(self):
        assert math.isinf(delta_pct(5.0, 0.0))

    def test_zero_to_zero_is_no_change(self):
        assert delta_pct(0.0, 0.0) == 0.0


class TestEpochHistory:
    def test_record_and_access(self):
        h = EpochHistory()
        h.record((2,), 100.0)
        h.record((3,), 120.0)
        assert len(h) == 2
        assert h.last_point == (3,)
        assert h.last_value == 120.0

    def test_delta_needs_two_epochs(self):
        h = EpochHistory()
        h.record((2,), 100.0)
        with pytest.raises(ValueError):
            h.delta()

    def test_delta_and_significance(self):
        h = EpochHistory()
        h.record((2,), 100.0)
        h.record((3,), 104.0)
        assert h.delta() == pytest.approx(4.0)
        assert not h.significant(5.0)
        h.record((4,), 120.0)
        assert h.significant(5.0)

    def test_significance_is_two_sided(self):
        h = EpochHistory()
        h.record((2,), 100.0)
        h.record((2,), 80.0)
        assert h.significant(5.0)

    def test_best(self):
        h = EpochHistory()
        h.record((2,), 100.0)
        h.record((5,), 300.0)
        h.record((9,), 200.0)
        assert h.best() == ((5,), 300.0)

    def test_best_empty_raises(self):
        with pytest.raises(ValueError):
            EpochHistory().best()

    def test_negative_throughput_rejected(self):
        with pytest.raises(ValueError):
            EpochHistory().record((1,), -1.0)
