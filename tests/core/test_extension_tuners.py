"""Unit tests for the extension tuners: Hooke-Jeeves, SPSA,
golden-section."""

import pytest

from repro.core.gss_tuner import GssTuner
from repro.core.hj_tuner import HjTuner
from repro.core.params import ParamSpace
from repro.core.spsa_tuner import SpsaTuner, recommended_gains

from tests.core.helpers import drive, drive_switching, unimodal_1d, unimodal_2d

SPACE = ParamSpace(("nc",), (1,), (128,))
SPACE_2D = ParamSpace(("nc", "np"), (1, 1), (128, 32))


class TestHjTuner:
    def test_converges_near_1d_peak(self):
        xs, _ = drive(HjTuner(), SPACE, (2,), unimodal_1d(peak=40, width=12),
                      epochs=60)
        assert abs(xs[-1][0] - 40) <= 6

    def test_pattern_move_accelerates_across_ridges(self):
        # A far peak: the pattern move should reach it markedly faster
        # than 1-per-epoch coordinate descent would.
        xs, _ = drive(HjTuner(), SPACE, (2,), unimodal_1d(peak=100, width=30),
                      epochs=25)
        assert max(x[0] for x in xs) >= 60

    def test_2d_convergence(self):
        surface = unimodal_2d(peak=(30, 6), widths=(10.0, 4.0))
        xs, _ = drive(HjTuner(), SPACE_2D, (2, 8), surface, epochs=80)
        assert surface(xs[-1]) > 0.75 * surface((30, 6))

    def test_monitors_and_retriggers(self):
        before = unimodal_1d(peak=15, width=6)
        after = unimodal_1d(peak=70, width=10)
        xs, _ = drive_switching(
            HjTuner(), SPACE, (2,),
            lambda c: before if c < 40 else after, epochs=120,
        )
        assert abs(xs[-1][0] - 70) <= 12

    def test_bounds(self):
        xs, _ = drive(HjTuner(), SPACE_2D, (128, 32),
                      unimodal_2d(peak=(1, 1)), epochs=80)
        assert all(SPACE_2D.contains(x) for x in xs)

    def test_validation(self):
        with pytest.raises(ValueError):
            HjTuner(eps_pct=-1)
        with pytest.raises(ValueError):
            HjTuner(step0=0.5)


class TestSpsaTuner:
    def test_climbs_1d_peak(self):
        xs, _ = drive(SpsaTuner(seed=1), SPACE, (2,),
                      unimodal_1d(peak=60, width=25), epochs=120)
        tail = [x[0] for x in xs[-20:]]
        assert sum(tail) / len(tail) > 35

    def test_tracks_2d_surface(self):
        surface = unimodal_2d(peak=(40, 8), widths=(15.0, 6.0))
        xs, _ = drive(SpsaTuner(seed=2), SPACE_2D, (2, 2), surface,
                      epochs=160)
        tail = xs[-20:]
        mean_val = sum(surface(x) for x in tail) / len(tail)
        assert mean_val > 0.5 * surface((40, 8))

    def test_stays_adaptive_after_many_epochs(self):
        # Floored gains: the perturbation never collapses to zero, so the
        # proposals keep moving even late in the run.
        xs, _ = drive(SpsaTuner(seed=3), SPACE, (30,),
                      unimodal_1d(peak=30, width=10), epochs=300)
        assert len(set(xs[-30:])) > 1

    def test_robust_to_noise(self):
        xs, _ = drive(SpsaTuner(seed=4), SPACE, (2,),
                      unimodal_1d(peak=50, width=20), epochs=200,
                      noise_sigma=0.1, seed=4)
        tail = [x[0] for x in xs[-30:]]
        assert sum(tail) / len(tail) > 25

    def test_bounds(self):
        xs, _ = drive(SpsaTuner(seed=5), SPACE_2D, (1, 1),
                      unimodal_2d(peak=(500, 100)), epochs=100)
        assert all(SPACE_2D.contains(x) for x in xs)

    def test_recommended_gains_scale_with_domain(self):
        small = recommended_gains(ParamSpace(("x",), (1,), (8,)))
        large = recommended_gains(ParamSpace(("x",), (1,), (512,)))
        assert large["a0"] > small["a0"]
        point = recommended_gains(ParamSpace(("x",), (3,), (3,)))
        assert point["a0"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpsaTuner(a0=0)
        with pytest.raises(ValueError):
            SpsaTuner(alpha=0)
        with pytest.raises(ValueError):
            SpsaTuner(a_min=-1)


class TestGssTuner:
    def test_rejects_multidimensional_spaces(self):
        driver_gen = GssTuner().propose((1, 1), SPACE_2D)
        with pytest.raises(ValueError):
            next(driver_gen)

    def test_finds_unimodal_peak(self):
        xs, _ = drive(GssTuner(), SPACE, (2,),
                      unimodal_1d(peak=45, width=15), epochs=40)
        assert abs(xs[-1][0] - 45) <= 5

    def test_golden_bracketing_is_frugal(self):
        # log_phi(128) ~ 10: the bracket collapses within ~14 epochs and
        # the tuner settles into monitoring.
        xs, _ = drive(GssTuner(), SPACE, (2,),
                      unimodal_1d(peak=90, width=25), epochs=30)
        tail = xs[-10:]
        assert len(set(tail)) == 1
        assert abs(tail[0][0] - 90) <= 8

    def test_retriggers_on_change(self):
        before = unimodal_1d(peak=20, width=8)
        after = unimodal_1d(peak=100, width=20)
        xs, _ = drive_switching(
            GssTuner(), SPACE, (2,),
            lambda c: before if c < 30 else after, epochs=80,
        )
        assert abs(xs[-1][0] - 100) <= 10

    def test_bounds(self):
        xs, _ = drive(GssTuner(), SPACE, (1,), unimodal_1d(peak=1, width=4),
                      epochs=40)
        assert all(SPACE.contains(x) for x in xs)

    def test_validation(self):
        with pytest.raises(ValueError):
            GssTuner(eps_pct=-1)
