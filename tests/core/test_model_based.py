"""Unit tests for the analytical/empirical model-based baselines."""

import math

import pytest

from repro.core.model_based import HackerModelTuner, NewtonModelTuner
from repro.core.params import ParamSpace

from tests.core.helpers import drive, unimodal_1d

SPACE = ParamSpace(("nc",), (1,), (128,))


class TestHackerModel:
    def test_predicted_streams_matches_mathis_algebra(self):
        t = HackerModelTuner(rtt_s=0.033, loss_rate=1e-4,
                             capacity_mbps=2500.0)
        mathis = 1460 / 0.033 * math.sqrt(1.5) / math.sqrt(1e-4) / 1e6
        assert t.predicted_streams() == math.ceil(2500.0 / mathis)

    def test_more_loss_needs_more_streams(self):
        low = HackerModelTuner(loss_rate=1e-5).predicted_streams()
        high = HackerModelTuner(loss_rate=1e-3).predicted_streams()
        assert high > low

    def test_holds_prediction_forever(self):
        t = HackerModelTuner(rtt_s=0.002, loss_rate=1e-4,
                             capacity_mbps=5000.0, np_=8)
        xs, _ = drive(t, SPACE, (2,), unimodal_1d(peak=10), epochs=20)
        assert len(set(xs)) == 1  # never adapts — the model's weakness

    def test_prediction_is_bounded(self):
        t = HackerModelTuner(loss_rate=0.5, capacity_mbps=1e6, np_=1)
        xs, _ = drive(t, SPACE, (2,), unimodal_1d(peak=10), epochs=3)
        assert SPACE.contains(xs[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            HackerModelTuner(rtt_s=0.0)
        with pytest.raises(ValueError):
            HackerModelTuner(loss_rate=0.0)
        with pytest.raises(ValueError):
            HackerModelTuner(capacity_mbps=0)
        with pytest.raises(ValueError):
            HackerModelTuner(headroom=0)


class TestNewtonFit:
    def test_recovers_known_curve_optimum(self):
        # Build samples from T(n) = n / sqrt(a n^2 + b n + c) with a known
        # interior optimum n* = -2c/b.
        a, b, c = 1.0, -0.4, 4.0   # n* = 20
        def model(n):
            return n / math.sqrt(a * n * n + b * n + c)

        ns = (2, 10, 30)
        ts = tuple(model(n) for n in ns)
        opt = NewtonModelTuner.fit_optimum(ns, ts)
        assert opt == pytest.approx(20.0, rel=1e-6)

    def test_degenerate_fits_return_none(self):
        assert NewtonModelTuner.fit_optimum((1, 2, 3), (0.0, 1.0, 2.0)) is None
        # Monotone-increasing samples -> b >= 0 -> no interior optimum.
        assert NewtonModelTuner.fit_optimum((1, 2, 3), (1.0, 2.0, 3.0)) is None

    def test_tuner_jumps_near_surface_optimum(self):
        surface = unimodal_1d(peak=40, width=30, height=1000)
        t = NewtonModelTuner(sample_points=(2, 16, 48))
        xs, _ = drive(t, SPACE, (2,), surface, epochs=20)
        # After the 3 calibration epochs it should sit at one value in
        # the right neighborhood.
        tail = xs[6:]
        assert len(set(tail)) == 1
        assert surface(tail[0]) > 0.6 * surface((40,))

    def test_recalibrates_on_shift(self):
        from tests.core.helpers import drive_switching

        before = unimodal_1d(peak=20, width=10)
        after = unimodal_1d(peak=20, width=10, height=3000)
        t = NewtonModelTuner()
        xs, _ = drive_switching(
            t, SPACE, (2,), lambda c: before if c < 10 else after, epochs=20
        )
        # The level shift triggers a fresh calibration pass: the sample
        # points reappear after epoch 10.
        assert (1,) in xs[10:]

    def test_fallback_to_best_sample(self, monkeypatch):
        # When the fit is degenerate the tuner must settle on the best of
        # its sampled points.
        monkeypatch.setattr(
            NewtonModelTuner, "fit_optimum", staticmethod(lambda ns, ts: None)
        )
        t = NewtonModelTuner()
        surface = lambda x: {1: 100.0, 8: 900.0, 24: 300.0}.get(x[0], 0.0)
        xs, _ = drive(t, SPACE, (2,), surface, epochs=10)
        assert xs[4] == (8,)

    def test_points_stay_in_domain(self):
        tiny = ParamSpace(("nc",), (1,), (4,))
        t = NewtonModelTuner(sample_points=(1, 2, 64))
        xs, _ = drive(t, tiny, (1,), unimodal_1d(peak=2), epochs=12)
        assert all(tiny.contains(x) for x in xs)

    def test_validation(self):
        with pytest.raises(ValueError):
            NewtonModelTuner(sample_points=(1, 2))
        with pytest.raises(ValueError):
            NewtonModelTuner(sample_points=(1, 1, 2))
        with pytest.raises(ValueError):
            NewtonModelTuner(sample_points=(0, 1, 2))
        with pytest.raises(ValueError):
            NewtonModelTuner(eps_pct=-1)
