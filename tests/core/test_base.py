"""Unit tests for the Tuner protocol, TunerDriver, and StaticTuner."""

import pytest

from repro.core.base import StaticTuner, TunerDriver
from repro.core.params import ParamSpace

SPACE = ParamSpace(("nc",), (1,), (100,))


class TestStaticTuner:
    def test_holds_starting_point_forever(self):
        d = StaticTuner().start((7,), SPACE)
        assert d.current == (7,)
        for _ in range(5):
            assert d.observe(100.0) == (7,)

    def test_explicit_params_override_x0(self):
        d = StaticTuner(params=(2,)).start((50,), SPACE)
        assert d.current == (2,)
        assert d.observe(1.0) == (2,)

    def test_params_are_bounded(self):
        d = StaticTuner(params=(9999,)).start((1,), SPACE)
        assert d.current == (100,)

    def test_x0_is_bounded(self):
        d = StaticTuner().start((0,), SPACE)
        assert d.current == (1,)

    def test_name(self):
        assert StaticTuner().name == "default"


class TestTunerDriver:
    def test_rejects_negative_throughput(self):
        d = StaticTuner().start((5,), SPACE)
        with pytest.raises(ValueError):
            d.observe(-1.0)

    def test_current_tracks_last_proposal(self):
        d = StaticTuner().start((5,), SPACE)
        out = d.observe(10.0)
        assert out == d.current
