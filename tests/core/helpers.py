"""Shared helpers for driving tuner generators against synthetic
throughput surfaces."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.base import Tuner
from repro.core.params import ParamSpace

Surface = Callable[[tuple[int, ...]], float]


def drive(
    tuner: Tuner,
    space: ParamSpace,
    x0: tuple[int, ...],
    surface: Surface,
    epochs: int,
    *,
    noise_sigma: float = 0.0,
    seed: int = 0,
) -> tuple[list[tuple[int, ...]], list[float]]:
    """Run ``epochs`` control epochs of a tuner over a synthetic surface.

    Returns the sequence of evaluated points and observed values.
    """
    rng = np.random.default_rng(seed)
    driver = tuner.start(x0, space)
    xs: list[tuple[int, ...]] = []
    fs: list[float] = []
    for _ in range(epochs):
        x = driver.current
        f = surface(x)
        if noise_sigma > 0:
            f *= float(np.exp(rng.normal(0.0, noise_sigma)))
        xs.append(x)
        fs.append(f)
        driver.observe(f)
    return xs, fs


def unimodal_1d(peak: int, height: float = 1000.0, width: float = 20.0) -> Surface:
    """Concave 1-D surface with its maximum at ``peak``."""

    def f(x: tuple[int, ...]) -> float:
        return height * float(np.exp(-((x[0] - peak) ** 2) / (2 * width**2)))

    return f


def unimodal_2d(
    peak: tuple[int, int], height: float = 1000.0, widths: tuple[float, float] = (15.0, 5.0)
) -> Surface:
    """Concave 2-D surface peaked at ``peak``."""

    def f(x: tuple[int, ...]) -> float:
        z = sum(
            ((xi - pi) ** 2) / (2 * wi**2)
            for xi, pi, wi in zip(x, peak, widths)
        )
        return height * float(np.exp(-z))

    return f


def switching_surface(
    before: Surface, after: Surface, switch_epoch: int
) -> Callable[[int], Surface]:
    """Time-dependent surface: ``before`` until ``switch_epoch``, then
    ``after`` — models an external-load change."""

    def at(epoch: int) -> Surface:
        return before if epoch < switch_epoch else after

    return at


def drive_switching(
    tuner: Tuner,
    space: ParamSpace,
    x0: tuple[int, ...],
    surface_at: Callable[[int], Surface],
    epochs: int,
) -> tuple[list[tuple[int, ...]], list[float]]:
    """Like :func:`drive` but the surface changes over epochs."""
    driver = tuner.start(x0, space)
    xs: list[tuple[int, ...]] = []
    fs: list[float] = []
    for c in range(epochs):
        x = driver.current
        f = surface_at(c)(x)
        xs.append(x)
        fs.append(f)
        driver.observe(f)
    return xs, fs
