"""Unit tests for endpoint-level joint tuning (JointTuner)."""

import pytest

from repro.core.aggregate import JointTuner, concat_spaces
from repro.core.nm_tuner import NmTuner
from repro.core.params import ParamSpace

from tests.core.helpers import drive, unimodal_2d

SP_A = ParamSpace(("nc", "np"), (1, 1), (64, 16))
SP_B = ParamSpace(("nc",), (1,), (32,))


class TestConcatSpaces:
    def test_names_are_prefixed(self):
        sp = concat_spaces([SP_A, SP_B], ["a", "b"])
        assert sp.names == ("a.nc", "a.np", "b.nc")
        assert sp.lower == (1, 1, 1)
        assert sp.upper == (64, 16, 32)

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            concat_spaces([SP_A], ["a", "b"])

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ValueError):
            concat_spaces([SP_A, SP_B], ["a", "a"])


class TestJointTuner:
    def _joint(self):
        return JointTuner(
            inner=NmTuner(), subspaces=[SP_A, SP_B], labels=["a", "b"]
        )

    def test_split_and_join_roundtrip(self):
        j = self._joint()
        xs = [(3, 4), (7,)]
        assert j.split(j.join(xs)) == xs

    def test_split_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            self._joint().split((1, 2))

    def test_join_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            self._joint().join([(1, 2)])
        with pytest.raises(ValueError):
            self._joint().join([(1,), (2,)])

    def test_propose_requires_joint_space(self):
        j = self._joint()
        with pytest.raises(ValueError):
            j.propose((1, 1, 1), SP_A)

    def test_name_composes_inner(self):
        assert self._joint().name == "joint-nm-tuner"

    def test_optimizes_sum_objective(self):
        # Joint surface: transfer a peaks at (10, 4), transfer b at 20.
        j = JointTuner(
            inner=NmTuner(),
            subspaces=[ParamSpace(("nc",), (1,), (64,)), SP_B],
            labels=["a", "b"],
        )
        sp = j.joint_space
        surface = unimodal_2d(peak=(10, 20), widths=(5.0, 8.0))
        xs, _ = drive(j, sp, (2, 2), surface, epochs=80)
        assert surface(xs[-1]) > 0.7 * surface((10, 20))

    def test_proposals_stay_in_joint_space(self):
        j = self._joint()
        sp = j.joint_space
        xs, _ = drive(j, sp, (2, 8, 2),
                      unimodal_2d(peak=(100, 20, 60), widths=(20., 6., 15.)),
                      epochs=60)
        assert all(sp.contains(x) for x in xs)
