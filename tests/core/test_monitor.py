"""Unit tests for the pluggable change monitors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cs_tuner import CsTuner
from repro.core.monitor import (
    CusumMonitor,
    DeltaPctMonitor,
    EwmaMonitor,
    FaultFilterMonitor,
)
from repro.core.params import ParamSpace

from tests.core.helpers import drive_switching, unimodal_1d


class TestDeltaPctMonitor:
    def test_first_observation_never_fires(self):
        m = DeltaPctMonitor(eps_pct=5.0)
        assert not m.update(100.0)

    def test_fires_on_large_jump(self):
        m = DeltaPctMonitor(eps_pct=5.0)
        m.update(100.0)
        assert m.update(110.0)
        assert m.update(100.0)  # 9% down from 110

    def test_tolerates_small_changes(self):
        m = DeltaPctMonitor(eps_pct=5.0)
        m.update(100.0)
        assert not m.update(104.0)

    def test_reset_rebases(self):
        m = DeltaPctMonitor(eps_pct=5.0)
        m.update(100.0)
        m.reset(500.0)
        assert not m.update(510.0)

    def test_clone_is_fresh(self):
        m = DeltaPctMonitor(eps_pct=7.0)
        m.update(1.0)
        c = m.clone()
        assert c.eps_pct == 7.0
        assert not c.update(100.0)  # no carried state

    def test_validation(self):
        with pytest.raises(ValueError):
            DeltaPctMonitor(eps_pct=-1)


class TestEwmaMonitor:
    def test_single_outlier_does_not_fire(self):
        m = EwmaMonitor(alpha=0.3, band_pct=10.0)
        m.update(100.0)
        assert not m.update(125.0)   # one noisy epoch
        assert not m.update(100.0)

    def test_sustained_shift_fires(self):
        m = EwmaMonitor(alpha=0.3, band_pct=10.0)
        m.update(100.0)
        fired = [m.update(150.0) for _ in range(10)]
        assert any(fired)

    def test_rebases_after_firing(self):
        m = EwmaMonitor(alpha=0.5, band_pct=10.0)
        m.update(100.0)
        while not m.update(200.0):
            pass
        # Now 200 is the reference; staying there must not re-fire.
        assert not any(m.update(200.0) for _ in range(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaMonitor(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaMonitor(band_pct=0.0)


class TestCusumMonitor:
    def test_small_oscillations_never_fire(self):
        m = CusumMonitor(k_pct=3.0, h_pct=12.0)
        m.update(100.0)
        for v in (102.0, 98.0, 101.0, 99.0) * 10:
            assert not m.update(v)

    def test_sustained_upward_shift_fires(self):
        m = CusumMonitor(k_pct=3.0, h_pct=12.0)
        m.update(100.0)
        fired = [m.update(110.0) for _ in range(5)]
        assert any(fired)

    def test_sustained_downward_shift_fires(self):
        m = CusumMonitor(k_pct=3.0, h_pct=12.0)
        m.update(100.0)
        fired = [m.update(88.0) for _ in range(5)]
        assert any(fired)

    def test_fires_later_than_delta_rule(self):
        """CUSUM trades detection delay for fewer false alarms."""
        d = DeltaPctMonitor(eps_pct=5.0)
        c = CusumMonitor(k_pct=3.0, h_pct=12.0)
        d.update(100.0)
        c.update(100.0)
        seq = [108.0] * 6
        d_first = next(i for i, v in enumerate(seq) if d.update(v))
        c_first = next(i for i, v in enumerate(seq) if c.update(v))
        assert d_first <= c_first

    def test_validation(self):
        with pytest.raises(ValueError):
            CusumMonitor(k_pct=-1)
        with pytest.raises(ValueError):
            CusumMonitor(h_pct=0)


class TestMonitorsInTuners:
    SPACE = ParamSpace(("nc",), (1,), (128,))

    @pytest.mark.parametrize(
        "monitor",
        [DeltaPctMonitor(5.0), EwmaMonitor(0.4, 8.0), CusumMonitor(3.0, 10.0)],
    )
    def test_cs_tuner_retriggers_with_any_monitor(self, monitor):
        before = unimodal_1d(peak=20, width=8)
        after = unimodal_1d(peak=70, width=10)
        tuner = CsTuner(seed=2, monitor=monitor)
        xs, _ = drive_switching(
            tuner, self.SPACE, (2,),
            lambda c: before if c < 40 else after, epochs=120,
        )
        assert abs(xs[-1][0] - 70) <= 10


class TestFaultFilterMonitor:
    def test_marked_epochs_never_reach_the_inner_monitor(self):
        mon = FaultFilterMonitor(inner=DeltaPctMonitor(5.0))
        assert not mon.update(1000.0)
        mon.mark_faulted()
        # a blackout epoch observes ~0 MB/s — a 100% drop that would fire
        # the Δc rule, but it is a fault artifact, not a level shift
        assert not mon.update(0.0)
        assert not mon.update(1010.0)  # back to the old level: no change

    def test_unfiltered_monitor_fires_on_the_same_sequence(self):
        mon = DeltaPctMonitor(5.0)
        mon.update(1000.0)
        assert mon.update(0.0)

    def test_mark_faulted_accumulates(self):
        mon = FaultFilterMonitor(inner=DeltaPctMonitor(5.0))
        mon.update(100.0)
        mon.mark_faulted(2)
        assert not mon.update(0.0)
        assert not mon.update(0.0)
        assert mon.update(500.0)  # filter exhausted; real shift fires

    def test_clean_updates_pass_through(self):
        mon = FaultFilterMonitor(inner=DeltaPctMonitor(5.0))
        mon.update(100.0)
        assert mon.update(200.0)

    def test_reset_clears_pending_skips(self):
        mon = FaultFilterMonitor(inner=DeltaPctMonitor(5.0))
        mon.update(100.0)
        mon.mark_faulted(3)
        mon.reset(100.0)
        assert mon.update(500.0)

    def test_clone_is_fresh_and_validation(self):
        mon = FaultFilterMonitor(inner=EwmaMonitor(0.3, 10.0))
        mon.mark_faulted(4)
        fresh = mon.clone()
        assert isinstance(fresh.inner, EwmaMonitor)
        assert fresh._skip == 0
        with pytest.raises(ValueError):
            mon.mark_faulted(0)


@given(
    values=st.lists(st.floats(0.1, 1e6), min_size=2, max_size=50),
)
@settings(max_examples=100, deadline=None)
def test_monitors_never_crash_and_clone_matches(values):
    for proto in (DeltaPctMonitor(5.0), EwmaMonitor(0.3, 10.0),
                  CusumMonitor(3.0, 12.0)):
        a = proto.clone()
        b = proto.clone()
        for v in values:
            assert a.update(v) == b.update(v)
