"""Property tests shared by every tuner.

Whatever throughput sequence reality feeds back — noisy, adversarial,
zero — a tuner must only ever propose integer points inside the domain,
never raise, and keep responding.  These invariants hold for all methods
and all starting points.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aimd_tuner import AimdTuner
from repro.core.bandit import BanditTuner
from repro.core.base import StaticTuner
from repro.core.cd_tuner import CdTuner
from repro.core.cs_tuner import CsTuner
from repro.core.gss_tuner import GssTuner
from repro.core.heuristics import Heur1Tuner, Heur2Tuner
from repro.core.hj_tuner import HjTuner
from repro.core.nm_tuner import NmTuner
from repro.core.params import ParamSpace
from repro.core.spsa_tuner import SpsaTuner

TUNER_FACTORIES = [
    lambda: StaticTuner(),
    lambda: CdTuner(),
    lambda: CsTuner(seed=0),
    lambda: NmTuner(),
    lambda: Heur1Tuner(),
    lambda: Heur2Tuner(),
    lambda: HjTuner(),
    lambda: SpsaTuner(seed=0),
    lambda: BanditTuner(seed=0),
    lambda: AimdTuner(),
    lambda: AimdTuner(multiplicative_increase=True),
]

#: gss is 1-D-only, so it gets its own strategy below.
GSS_FACTORY = lambda: GssTuner()  # noqa: E731


@st.composite
def tuner_runs(draw):
    factory = draw(st.sampled_from(TUNER_FACTORIES))
    ndim = draw(st.integers(1, 3))
    lower = tuple(draw(st.integers(1, 3)) for _ in range(ndim))
    upper = tuple(
        lo + draw(st.integers(0, 60)) for lo in lower
    )
    space = ParamSpace(
        tuple(f"p{i}" for i in range(ndim)), lower, upper
    )
    x0 = tuple(
        draw(st.integers(lo, hi)) for lo, hi in zip(lower, upper)
    )
    throughputs = draw(
        st.lists(
            st.floats(0.0, 1e5, allow_nan=False, allow_infinity=False),
            min_size=5,
            max_size=60,
        )
    )
    return factory(), space, x0, throughputs


@given(tuner_runs())
@settings(max_examples=200, deadline=None)
def test_proposals_always_inside_domain(run):
    tuner, space, x0, throughputs = run
    driver = tuner.start(x0, space)
    assert space.contains(driver.current)
    for f in throughputs:
        x = driver.observe(f)
        assert space.contains(x), (tuner.name, x, space)


@given(tuner_runs())
@settings(max_examples=100, deadline=None)
def test_tuners_are_deterministic_given_observations(run):
    tuner_a, space, x0, throughputs = run
    tuner_b = type(tuner_a)(**{
        k: getattr(tuner_a, k)
        for k in tuner_a.__dataclass_fields__  # type: ignore[attr-defined]
    })
    da, db = tuner_a.start(x0, space), tuner_b.start(x0, space)
    assert da.current == db.current
    for f in throughputs:
        assert da.observe(f) == db.observe(f)


@pytest.mark.parametrize("factory", TUNER_FACTORIES)
def test_all_zero_throughput_does_not_crash(factory):
    space = ParamSpace(("nc",), (1,), (16,))
    driver = factory().start((2,), space)
    for _ in range(30):
        x = driver.observe(0.0)
        assert space.contains(x)


@pytest.mark.parametrize("factory", TUNER_FACTORIES)
def test_single_point_domain_is_fixed_point(factory):
    space = ParamSpace(("nc", "np"), (3, 5), (3, 5))
    driver = factory().start((3, 5), space)
    assert driver.current == (3, 5)
    for f in (10.0, 500.0, 0.0, 250.0, 250.0, 9.0):
        assert driver.observe(f) == (3, 5)


@given(
    lower=st.integers(1, 3),
    width=st.integers(0, 120),
    x0_off=st.integers(0, 120),
    throughputs=st.lists(
        st.floats(0.0, 1e5, allow_nan=False, allow_infinity=False),
        min_size=5, max_size=60,
    ),
)
@settings(max_examples=100, deadline=None)
def test_gss_proposals_inside_1d_domain(lower, width, x0_off, throughputs):
    space = ParamSpace(("nc",), (lower,), (lower + width,))
    x0 = (min(lower + x0_off, lower + width),)
    driver = GSS_FACTORY().start(x0, space)
    assert space.contains(driver.current)
    for f in throughputs:
        assert space.contains(driver.observe(f))
