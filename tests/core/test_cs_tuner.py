"""Unit tests for cs-tuner (Algorithm 2)."""

import pytest

from repro.core.cs_tuner import CsTuner
from repro.core.params import ParamSpace

from tests.core.helpers import drive, drive_switching, unimodal_1d, unimodal_2d

SPACE = ParamSpace(("nc",), (1,), (128,))
SPACE_2D = ParamSpace(("nc", "np"), (1, 1), (128, 32))


class TestCompassSearch:
    def test_first_probe_is_lambda_away(self):
        xs, _ = drive(CsTuner(lam0=8.0), SPACE, (2,), unimodal_1d(peak=40),
                      epochs=2)
        assert xs[0] == (2,)
        assert abs(xs[1][0] - 2) == 8

    def test_converges_near_peak(self):
        xs, _ = drive(CsTuner(lam0=8.0, seed=3), SPACE, (2,),
                      unimodal_1d(peak=40, width=12), epochs=40)
        assert abs(xs[-1][0] - 40) <= 4

    def test_large_lambda_beats_unit_steps_early(self):
        # From x0=2 to a peak at 60, compass reaches >=30 within 10 epochs.
        xs, _ = drive(CsTuner(lam0=8.0, seed=0), SPACE, (2,),
                      unimodal_1d(peak=60, width=20), epochs=10)
        assert max(x[0] for x in xs) >= 30

    def test_settles_and_monitors_at_incumbent(self):
        xs, _ = drive(CsTuner(seed=1), SPACE, (2,),
                      unimodal_1d(peak=30, width=10), epochs=60)
        # Once lambda collapses, the tuner repeats the incumbent.
        tail = xs[-5:]
        assert len(set(tail)) == 1

    def test_retriggers_search_on_surface_change(self):
        before = unimodal_1d(peak=20, width=8, height=1000)
        after = unimodal_1d(peak=60, width=8, height=1000)
        surface_at = lambda c: before if c < 40 else after
        xs, _ = drive_switching(CsTuner(seed=2), SPACE, (2,), surface_at,
                                epochs=110)
        assert abs(xs[-1][0] - 60) <= 8

    def test_never_leaves_bounds(self):
        for seed in range(5):
            xs, _ = drive(CsTuner(seed=seed), SPACE, (1,),
                          unimodal_1d(peak=500), epochs=80)
            assert all(SPACE.contains(x) for x in xs)

    def test_skips_degenerate_probes_at_corner(self):
        # x0 at the lower bound: -lambda probes project back onto x0 and
        # must be skipped, not evaluated (no duplicate consecutive points
        # while searching).
        xs, _ = drive(CsTuner(seed=0), SPACE, (1,),
                      unimodal_1d(peak=1, width=3), epochs=20)
        assert all(SPACE.contains(x) for x in xs)

    def test_2d_converges(self):
        xs, _ = drive(CsTuner(seed=4), SPACE_2D, (2, 8),
                      unimodal_2d(peak=(30, 4), widths=(10.0, 3.0)),
                      epochs=80)
        surface = unimodal_2d(peak=(30, 4), widths=(10.0, 3.0))
        assert surface(xs[-1]) > 0.8 * surface((30, 4))


class TestRestartFrom:
    def test_restart_from_x0_returns_to_origin(self):
        before = unimodal_1d(peak=40, width=10)
        after = unimodal_1d(peak=40, width=10, height=2000)
        surface_at = lambda c: before if c < 50 else after
        tuner = CsTuner(seed=0, restart_from="x0")
        xs, _ = drive_switching(tuner, SPACE, (2,), surface_at, epochs=60)
        # After the jump in level, the search restarts at x0=2.
        assert (2,) in xs[50:]

    def test_invalid_restart_from(self):
        with pytest.raises(ValueError):
            CsTuner(restart_from="elsewhere")


class TestValidation:
    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            CsTuner(lam0=0.5)

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            CsTuner(eps_pct=-1.0)

    def test_name(self):
        assert CsTuner().name == "cs-tuner"

    def test_seed_reproducibility(self):
        a, _ = drive(CsTuner(seed=7), SPACE, (2,), unimodal_1d(peak=33),
                     epochs=40)
        b, _ = drive(CsTuner(seed=7), SPACE, (2,), unimodal_1d(peak=33),
                     epochs=40)
        assert a == b
