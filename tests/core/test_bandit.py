"""Unit tests for the discounted-UCB bandit tuner."""

import pytest

from repro.core.bandit import BanditTuner, geometric_grid
from repro.core.params import ParamSpace

from tests.core.helpers import drive, drive_switching, unimodal_1d

SPACE = ParamSpace(("nc",), (1,), (128,))


class TestGeometricGrid:
    def test_endpoints_included(self):
        g = geometric_grid(1, 128, 8)
        assert g[0] == 1 and g[-1] == 128

    def test_strictly_increasing_and_deduped(self):
        g = geometric_grid(1, 10, 20)  # more arms than integers
        assert all(b > a for a, b in zip(g, g[1:]))
        assert len(g) <= 10

    def test_single_arm(self):
        assert geometric_grid(4, 100, 1) == (4,)
        assert geometric_grid(5, 5, 7) == (5,)

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_grid(0, 10, 3)
        with pytest.raises(ValueError):
            geometric_grid(10, 5, 3)
        with pytest.raises(ValueError):
            geometric_grid(1, 10, 0)


class TestBanditTuner:
    def test_initial_phase_plays_every_arm(self):
        t = BanditTuner(n_arms=6)
        xs, _ = drive(t, SPACE, (2,), unimodal_1d(peak=30), epochs=6)
        assert len(set(xs)) == 6

    def test_concentrates_on_the_best_arm(self):
        t = BanditTuner(n_arms=8, discount=1.0, exploration=0.3)
        surface = unimodal_1d(peak=30, width=10, height=1000)
        xs, _ = drive(t, SPACE, (2,), surface, epochs=120)
        tail = xs[-40:]
        # The modal arm of the tail should score near the peak.
        modal = max(set(tail), key=tail.count)
        assert surface(modal) > 0.6 * surface((30,))

    def test_discounting_tracks_a_moving_peak(self):
        before = unimodal_1d(peak=8, width=4, height=1000)
        after = unimodal_1d(peak=64, width=20, height=1000)
        t = BanditTuner(n_arms=8, discount=0.9, exploration=0.8, seed=1)
        xs, _ = drive_switching(
            t, SPACE, (2,), lambda c: before if c < 60 else after,
            epochs=200,
        )
        tail = xs[-30:]
        modal = max(set(tail), key=tail.count)
        assert after(modal) > 0.5 * after((64,))

    def test_all_plays_inside_domain(self):
        t = BanditTuner(n_arms=12, seed=3)
        xs, _ = drive(t, SPACE, (1,), unimodal_1d(peak=500), epochs=80,
                      noise_sigma=0.2, seed=3)
        assert all(SPACE.contains(x) for x in xs)

    def test_second_dimension_stays_fixed(self):
        space2 = ParamSpace(("nc", "np"), (1, 1), (64, 32))
        t = BanditTuner(n_arms=5)
        xs, _ = drive(t, space2, (2, 8), lambda x: float(x[0]), epochs=30)
        assert {x[1] for x in xs} == {8}

    def test_zero_throughput_everywhere_is_survivable(self):
        t = BanditTuner(n_arms=4)
        xs, _ = drive(t, SPACE, (2,), lambda x: 0.0, epochs=30)
        assert all(SPACE.contains(x) for x in xs)

    def test_deterministic_under_seed(self):
        surface = unimodal_1d(peak=20, width=8)
        a, _ = drive(BanditTuner(seed=5), SPACE, (2,), surface, epochs=50)
        b, _ = drive(BanditTuner(seed=5), SPACE, (2,), surface, epochs=50)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            BanditTuner(n_arms=0)
        with pytest.raises(ValueError):
            BanditTuner(discount=0.0)
        with pytest.raises(ValueError):
            BanditTuner(exploration=-1)
