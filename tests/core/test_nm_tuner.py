"""Unit tests for nm-tuner (Algorithm 3)."""

import pytest

from repro.core.nm_tuner import NmTuner
from repro.core.params import ParamSpace

from tests.core.helpers import drive, drive_switching, unimodal_1d, unimodal_2d

SPACE = ParamSpace(("nc",), (1,), (128,))
SPACE_2D = ParamSpace(("nc", "np"), (1, 1), (128, 32))


class TestInitialSimplex:
    def test_simplex_has_m_plus_one_distinct_vertices(self):
        t = NmTuner(init_step=8)
        s = t._initial_simplex((2, 8), SPACE_2D)
        assert len(s) == 3
        assert len(set(s)) == 3
        assert s[0] == (2, 8)

    def test_simplex_flips_direction_at_upper_bound(self):
        t = NmTuner(init_step=8)
        s = t._initial_simplex((128,), SPACE)
        assert s == [(128,), (120,)]

    def test_degenerate_dimension_duplicates_x0(self):
        tiny = ParamSpace(("x",), (5,), (5,))
        t = NmTuner()
        s = t._initial_simplex((5,), tiny)
        assert s == [(5,), (5,)]


class TestSearch:
    def test_converges_near_1d_peak(self):
        xs, _ = drive(NmTuner(), SPACE, (2,), unimodal_1d(peak=40, width=12),
                      epochs=60)
        assert abs(xs[-1][0] - 40) <= 6

    def test_converges_near_2d_peak(self):
        surface = unimodal_2d(peak=(30, 6), widths=(10.0, 4.0))
        xs, _ = drive(NmTuner(), SPACE_2D, (2, 8), surface, epochs=100)
        assert surface(xs[-1]) > 0.75 * surface((30, 6))

    def test_monitors_after_degeneration(self):
        xs, _ = drive(NmTuner(), SPACE, (2,), unimodal_1d(peak=20, width=8),
                      epochs=80)
        tail = xs[-5:]
        assert len(set(tail)) == 1

    def test_retriggers_on_surface_change(self):
        before = unimodal_1d(peak=15, width=6)
        after = unimodal_1d(peak=70, width=10)
        surface_at = lambda c: before if c < 40 else after
        xs, _ = drive_switching(NmTuner(), SPACE, (2,), surface_at,
                                epochs=130)
        assert abs(xs[-1][0] - 70) <= 12

    def test_never_leaves_bounds(self):
        xs, _ = drive(NmTuner(), SPACE_2D, (1, 1),
                      unimodal_2d(peak=(500, 100)), epochs=120)
        assert all(SPACE_2D.contains(x) for x in xs)
        xs, _ = drive(NmTuner(), SPACE_2D, (128, 32),
                      unimodal_2d(peak=(1, 1)), epochs=120)
        assert all(SPACE_2D.contains(x) for x in xs)

    def test_expansion_reaches_far_peaks_fast(self):
        # Repeated expansion should cover x0=2 -> peak 100 in well under
        # 100 unit steps' worth of epochs.
        xs, _ = drive(NmTuner(), SPACE, (2,), unimodal_1d(peak=100, width=30),
                      epochs=25)
        assert max(x[0] for x in xs) >= 60

    def test_inner_budget_bounds_search_length(self):
        # An adversarial (noisy) surface cannot trap the inner search
        # beyond max_inner_epochs: afterwards the tuner monitors.
        t = NmTuner(max_inner_epochs=12)
        xs, _ = drive(t, SPACE, (2,), unimodal_1d(peak=64, width=20),
                      epochs=40, noise_sigma=0.3, seed=5)
        assert len(xs) == 40  # and did not raise / hang


class TestValidation:
    def test_coefficient_validation(self):
        with pytest.raises(ValueError):
            NmTuner(reflection=0.0)
        with pytest.raises(ValueError):
            NmTuner(expansion=1.0)
        with pytest.raises(ValueError):
            NmTuner(contraction=1.0)
        with pytest.raises(ValueError):
            NmTuner(shrink=0.0)
        with pytest.raises(ValueError):
            NmTuner(init_step=0)
        with pytest.raises(ValueError):
            NmTuner(max_inner_epochs=2)
        with pytest.raises(ValueError):
            NmTuner(eps_pct=-0.1)

    def test_paper_defaults(self):
        t = NmTuner()
        assert (t.reflection, t.expansion, t.contraction, t.shrink) == (
            1.0, 2.0, 0.5, 0.5,
        )

    def test_name(self):
        assert NmTuner().name == "nm-tuner"
