"""Tests for priority-weighted joint scheduling."""

import math

import pytest

from repro.core.aggregate import JointTuner
from repro.core.nm_tuner import NmTuner
from repro.core.params import ParamSpace
from repro.core.scheduler import WeightedJointController
from repro.experiments.runner import _controller_session
from repro.experiments.scenarios import ANL_UC
from repro.sim.engine import Engine, EngineConfig

SPACE = ParamSpace(("nc",), (1,), (64,))


def _joint(n=2):
    return JointTuner(
        inner=NmTuner(), subspaces=[SPACE] * n,
        labels=[f"l{i}" for i in range(n)],
    )


class TestWeightedController:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedJointController(_joint(), ["a", "b"], (2, 2), [1.0])
        with pytest.raises(ValueError):
            WeightedJointController(_joint(), ["a", "b"], (2, 2), [1.0, 0.0])

    def test_weighted_objective_reaches_tuner(self):
        observed = []

        class Spy(NmTuner):
            def propose(self, x0, space):
                f = yield space.fbnd(x0)
                while True:
                    observed.append(f)
                    f = yield space.fbnd(x0)

        joint = JointTuner(inner=Spy(), subspaces=[SPACE, SPACE],
                           labels=["a", "b"])
        ctl = WeightedJointController(joint, ["a", "b"], (2, 2), [3.0, 1.0])
        assert ctl.observe("a", 400.0) is None
        out = ctl.observe("b", 100.0)
        assert out is not None
        # (3*400 + 1*100) / 4 = 325
        assert observed[-1] == pytest.approx(325.0)

    def test_misuse_still_guarded(self):
        ctl = WeightedJointController(_joint(), ["a", "b"], (2, 2), [1, 1])
        with pytest.raises(KeyError):
            ctl.observe("zz", 1.0)
        ctl.observe("a", 1.0)
        with pytest.raises(RuntimeError):
            ctl.observe("a", 1.0)


class TestEndToEndPrioritization:
    @staticmethod
    def _run(priorities, seed=0, duration=1800.0):
        sessions = [
            _controller_session("xfer-a", "anl-uc", duration, 30.0, True),
            _controller_session("xfer-b", "anl-tacc", duration, 30.0, True),
        ]
        joint = JointTuner(
            inner=NmTuner(),
            subspaces=[sessions[0].space, sessions[1].space],
            labels=["a", "b"],
        )
        ctl = WeightedJointController(
            joint, [s.name for s in sessions], (2, 8, 2, 8), priorities
        )
        engine = Engine(
            topology=ANL_UC.build_topology(), host=ANL_UC.host,
            sessions=sessions, controllers=[ctl],
            config=EngineConfig(seed=seed),
        )
        traces = engine.run()
        half = duration / 2
        return (
            traces["xfer-a"].mean_observed(from_time=half),
            traces["xfer-b"].mean_observed(from_time=half),
        )

    def test_prioritizing_tacc_shifts_its_share_up(self):
        # Equal priorities vs heavily favoring the (narrower) TACC flow:
        # its share of the combined throughput must rise.
        a_eq, b_eq = self._run([1.0, 1.0])
        a_pr, b_pr = self._run([1.0, 8.0])
        share_eq = b_eq / (a_eq + b_eq)
        share_pr = b_pr / (a_pr + b_pr)
        assert share_pr > share_eq
