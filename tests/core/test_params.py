"""Unit and property tests for ParamSpace / fBnd."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import (
    ParamSpace,
    concurrency_parallelism_space,
    concurrency_space,
)

SPACE_2D = ParamSpace(("nc", "np"), (1, 1), (12, 9))


class TestFbnd:
    def test_paper_rounding_example(self):
        # "(3.8, 9.2) is rounded off to (4, 9)"
        assert SPACE_2D.fbnd((3.8, 9.2)) == (4, 9)

    def test_paper_projection_example(self):
        # "(12, -1) is projected to (12, 1)"
        assert SPACE_2D.fbnd((12.0, -1.0)) == (12, 1)

    def test_upper_projection(self):
        assert SPACE_2D.fbnd((99.0, 99.0)) == (12, 9)

    def test_half_rounds_away_from_zero(self):
        sp = ParamSpace(("x",), (-10,), (10,))
        assert sp.fbnd((2.5,)) == (3,)
        assert sp.fbnd((3.5,)) == (4,)   # banker's rounding would give 4 too
        assert sp.fbnd((1.5,)) == (2,)   # ... but 1.5 -> 2 distinguishes
        assert sp.fbnd((-1.5,)) == (-2,)

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValueError):
            SPACE_2D.fbnd((1.0,))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            SPACE_2D.fbnd((float("nan"), 1.0))

    def test_idempotent(self):
        pt = SPACE_2D.fbnd((7.3, 4.9))
        assert SPACE_2D.fbnd(pt) == pt


class TestSpaceGeometry:
    def test_contains(self):
        assert SPACE_2D.contains((1, 1))
        assert SPACE_2D.contains((12, 9))
        assert not SPACE_2D.contains((0, 1))
        assert not SPACE_2D.contains((1, 10))
        assert not SPACE_2D.contains((1.5, 2))
        assert not SPACE_2D.contains((1,))

    def test_unit_directions(self):
        dirs = SPACE_2D.unit_directions()
        assert set(dirs) == {(1, 0), (-1, 0), (0, 1), (0, -1)}

    def test_clip_dim(self):
        assert SPACE_2D.clip_dim(0, 99.0) == 12
        assert SPACE_2D.clip_dim(1, 0.2) == 1
        with pytest.raises(IndexError):
            SPACE_2D.clip_dim(2, 1.0)

    def test_index_of(self):
        assert SPACE_2D.index_of("np") == 1
        with pytest.raises(KeyError):
            SPACE_2D.index_of("zz")

    def test_size_and_grid(self):
        sp = ParamSpace(("a", "b"), (1, 1), (3, 2))
        assert sp.size() == 6
        assert len(list(sp.iter_grid())) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ParamSpace((), (), ())
        with pytest.raises(ValueError):
            ParamSpace(("a", "a"), (1, 1), (2, 2))
        with pytest.raises(ValueError):
            ParamSpace(("a",), (5,), (1,))
        with pytest.raises(ValueError):
            ParamSpace(("a",), (1, 2), (3,))

    def test_factories(self):
        assert concurrency_space().names == ("nc",)
        assert concurrency_space(64).upper == (64,)
        sp = concurrency_parallelism_space(128, 16)
        assert sp.names == ("nc", "np")
        assert sp.upper == (128, 16)


@given(
    st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=2),
)
@settings(max_examples=200, deadline=None)
def test_fbnd_always_lands_inside(coords):
    pt = SPACE_2D.fbnd(coords)
    assert SPACE_2D.contains(pt)


@given(st.integers(1, 12), st.integers(1, 9))
def test_fbnd_fixes_interior_integers(a, b):
    assert SPACE_2D.fbnd((a, b)) == (a, b)


@given(
    st.floats(-100, 100),
    st.floats(-100, 100),
)
@settings(max_examples=100, deadline=None)
def test_fbnd_is_idempotent_property(a, b):
    once = SPACE_2D.fbnd((a, b))
    assert SPACE_2D.fbnd(once) == once
