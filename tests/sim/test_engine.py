"""Unit/behavioural tests for the simulation engine."""

import math

import pytest

from repro.core.base import StaticTuner
from repro.core.cd_tuner import CdTuner
from repro.core.nm_tuner import NmTuner
from repro.core.aggregate import JointTuner
from repro.core.params import ParamSpace
from repro.endpoint.host import HostSpec
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.gridftp.client import ClientModel, RestartModel
from repro.gridftp.globus import FaultModel
from repro.gridftp.transfer import TransferSpec
from repro.net.link import Link, Path
from repro.net.tcp import TcpModel
from repro.net.topology import Topology
from repro.sim.engine import Engine, EngineConfig, JointController, _ramp_average
from repro.sim.session import ParamMap, TransferSession
from repro.units import GB, MB

HOST = HostSpec(name="h", cores=8, core_copy_rate_mbps=1000.0,
                cs_coeff=0.0, dgemm_thread_weight=0.5, thread_overhead=0.0)

SPACE = ParamSpace(("nc",), (1,), (64,))


def _topo(capacity=1000.0, stream_cap_rate=None):
    """One path over one link; optionally buffer-limit streams."""
    tcp = TcpModel(wmax_bytes=4 * MB, slow_start_tau=0.5)
    topo = Topology()
    topo.add_path(
        Path(
            name="p",
            links=(Link("l", capacity),),
            rtt_ms=40.0,  # buffer limit: 4 MB / 40 ms = 100 MB/s per stream
            loss_rate=1e-9,
            tcp=tcp,
        )
    )
    return topo


def _session(tuner=None, *, duration=120.0, epoch=30.0, x0=(2,),
             restart_each_epoch=False, total_bytes=math.inf, **kw):
    spec = TransferSpec(
        name=kw.pop("name", "s"), path_name="p", total_bytes=total_bytes,
        max_duration_s=duration if math.isinf(total_bytes) else kw.pop("max_duration_s", duration),
        epoch_s=epoch,
    )
    return TransferSession(
        spec, tuner if tuner is not None else StaticTuner(), SPACE, x0,
        param_map=ParamMap.nc_only(fixed_np=1),
        restart_each_epoch=restart_each_epoch, **kw
    )


def _engine(sessions, *, load=None, client=None, seed=0, noise=False, topo=None):
    cfg = EngineConfig(
        seed=seed,
        noise_sigma_epoch=0.03 if noise else 0.0,
        noise_sigma_step=0.02 if noise else 0.0,
    )
    return Engine(
        topology=topo if topo is not None else _topo(),
        host=HOST,
        sessions=sessions,
        schedule=LoadSchedule.constant(load or ExternalLoad()),
        client=client or ClientModel(restart=RestartModel(
            base_s=3.0, per_proc_s=0.0, jitter_sigma=0.0)),
        config=cfg,
    )


class TestSingleTransfer:
    def test_noise_free_run_reaches_expected_rate(self):
        # 2 procs x 1 stream, 100 MB/s buffer-limited streams -> 200 MB/s.
        s = _session(duration=120.0)
        trace = _engine([s]).run()["s"]
        last = trace.epochs[-1]
        assert last.best_case == pytest.approx(200.0, rel=0.02)

    def test_observed_below_best_case_due_to_startup(self):
        s = _session(duration=60.0)
        trace = _engine([s]).run()["s"]
        first = trace.epochs[0]
        assert first.observed < first.best_case

    def test_static_session_pays_startup_only_once(self):
        s = _session(duration=120.0)
        trace = _engine([s]).run()["s"]
        assert any(st.restarting for st in trace.steps[:5])
        assert not any(st.restarting for st in trace.steps[10:])

    def test_tuner_session_restarts_every_epoch(self):
        s = _session(CdTuner(), duration=120.0, restart_each_epoch=True)
        trace = _engine([s]).run()["s"]
        restart_times = [st.time for st in trace.steps if st.restarting]
        # A restart window opens at (or just after) each epoch boundary.
        for boundary in (0.0, 30.0, 60.0, 90.0):
            assert any(boundary <= t < boundary + 5.0 for t in restart_times)

    def test_bytes_conserved_between_steps_and_epochs(self):
        s = _session(duration=120.0)
        trace = _engine([s]).run()["s"]
        assert sum(e.bytes_moved for e in trace.epochs) == pytest.approx(
            trace.total_bytes
        )

    def test_finite_transfer_completes_and_stops(self):
        s = _session(total_bytes=5 * GB, duration=1e9, max_duration_s=None)
        trace = _engine([s]).run()["s"]
        assert trace.total_bytes == pytest.approx(5 * GB)
        assert s.done

    def test_run_until_cuts_off(self):
        s = _session(duration=600.0)
        engine = _engine([s])
        trace = engine.run(until_s=60.0)["s"]
        assert engine.clock.now == pytest.approx(60.0)
        assert len(trace.epochs) == 2

    def test_deterministic_under_seed(self):
        t1 = _engine([_session(CdTuner(), duration=120.0,
                               restart_each_epoch=True)], noise=True,
                     seed=5).run()["s"]
        t2 = _engine([_session(CdTuner(), duration=120.0,
                               restart_each_epoch=True)], noise=True,
                     seed=5).run()["s"]
        assert t1.epoch_observed().tolist() == t2.epoch_observed().tolist()

    def test_different_seeds_differ(self):
        t1 = _engine([_session(duration=120.0)], noise=True, seed=1).run()["s"]
        t2 = _engine([_session(duration=120.0)], noise=True, seed=2).run()["s"]
        assert t1.epoch_observed().tolist() != t2.epoch_observed().tolist()


class TestExternalLoad:
    def test_ext_transfer_reduces_our_share(self):
        free = _engine([_session(x0=(8,), duration=90.0)]).run()["s"]
        loaded = _engine(
            [_session(x0=(8,), duration=90.0)],
            load=ExternalLoad(ext_tfr=16),
        ).run()["s"]
        assert (
            loaded.epochs[-1].best_case < free.epochs[-1].best_case
        )

    def test_ext_compute_reduces_cpu_share(self):
        free = _engine([_session(x0=(8,), duration=90.0)]).run()["s"]
        loaded = _engine(
            [_session(x0=(8,), duration=90.0)],
            load=ExternalLoad(ext_cmp=64),
        ).run()["s"]
        assert loaded.epochs[-1].best_case < free.epochs[-1].best_case

    def test_more_streams_recover_share_from_ext_traffic(self):
        small = _engine(
            [_session(x0=(2,), duration=90.0)], load=ExternalLoad(ext_tfr=32),
        ).run()["s"]
        big = _engine(
            [_session(x0=(32,), duration=90.0)], load=ExternalLoad(ext_tfr=32),
        ).run()["s"]
        assert big.epochs[-1].best_case > 2 * small.epochs[-1].best_case

    def test_load_schedule_switch_changes_rate(self):
        sched = LoadSchedule(
            [(0.0, ExternalLoad(ext_tfr=48)), (60.0, ExternalLoad())]
        )
        s = _session(x0=(4,), duration=120.0)
        engine = Engine(
            topology=_topo(), host=HOST, sessions=[s], schedule=sched,
            client=ClientModel(restart=RestartModel(jitter_sigma=0.0)),
            config=EngineConfig(noise_sigma_epoch=0.0, noise_sigma_step=0.0),
        )
        trace = engine.run()["s"]
        assert trace.epochs[-1].best_case > 1.5 * trace.epochs[0].best_case


class TestSharedBottleneck:
    def test_two_sessions_share_link_per_stream(self):
        a = _session(name="a", x0=(30,), duration=90.0)
        b = _session(name="b", x0=(10,), duration=90.0)
        traces = _engine([a, b]).run()
        ra = traces["a"].epochs[-1].best_case
        rb = traces["b"].epochs[-1].best_case
        assert ra + rb == pytest.approx(1000.0, rel=0.05)
        assert ra / rb == pytest.approx(3.0, rel=0.1)


class TestFaults:
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_faults_inject_extra_dead_time(self):
        clean = _engine([_session(duration=300.0)], seed=3).run()["s"]
        s = _session(duration=300.0, fault_model=FaultModel(0.8))
        faulty = _engine([s], seed=3).run()["s"]
        assert faulty.mean_observed() < clean.mean_observed()


class TestJointControllerEngine:
    @staticmethod
    def _controlled(name):
        spec = TransferSpec(name=name, path_name="p", total_bytes=math.inf,
                            max_duration_s=240.0, epoch_s=30.0)
        return TransferSession(
            spec, None, SPACE, (2,), param_map=ParamMap.nc_only(fixed_np=1),
            restart_each_epoch=True,
        )

    def test_joint_controller_drives_both_sessions(self):
        sa = self._controlled("a")
        sb = self._controlled("b")
        joint = JointTuner(inner=NmTuner(), subspaces=[SPACE, SPACE],
                           labels=["a", "b"])
        ctl = JointController(joint, ["a", "b"], (2, 2))
        engine = Engine(
            topology=_topo(), host=HOST, sessions=[sa, sb],
            controllers=[ctl],
            client=ClientModel(restart=RestartModel(jitter_sigma=0.0)),
            config=EngineConfig(noise_sigma_epoch=0.0, noise_sigma_step=0.0),
        )
        traces = engine.run()
        # Both sessions got proposals beyond the starting point.
        assert len(set(traces["a"].epoch_param(0))) > 1
        assert len(set(traces["b"].epoch_param(0))) > 1


class TestEngineValidation:
    def test_duplicate_session_names(self):
        with pytest.raises(ValueError):
            _engine([_session(name="s"), _session(name="s")])

    def test_reserved_names(self):
        with pytest.raises(ValueError):
            _engine([_session(name="ext.cmp")])

    def test_unknown_path(self):
        spec = TransferSpec(name="s", path_name="nope",
                            total_bytes=math.inf, max_duration_s=60.0)
        sess = TransferSession(spec, StaticTuner(), SPACE, (2,))
        with pytest.raises(KeyError):
            _engine([sess])

    def test_session_without_tuner_or_controller(self):
        s = _session(duration=60.0)
        s.driver = None
        with pytest.raises(ValueError):
            _engine([s])

    def test_controller_over_tunered_session_rejected(self):
        s = _session(CdTuner(), name="a", duration=60.0)
        joint = JointTuner(inner=NmTuner(), subspaces=[SPACE], labels=["a"])
        ctl = JointController(joint, ["a"], (2,))
        with pytest.raises(ValueError):
            Engine(topology=_topo(), host=HOST, sessions=[s],
                   controllers=[ctl])


class TestRampAverage:
    def test_zero_run_is_zero(self):
        assert _ramp_average(2.0, 0.0, 0.0) == 0.0

    def test_matches_point_value_for_long_runs(self):
        assert _ramp_average(2.0, 100.0, 1.0) == pytest.approx(1.0, abs=1e-6)

    def test_increasing_in_t0(self):
        a = _ramp_average(2.0, 0.0, 1.0)
        b = _ramp_average(2.0, 5.0, 1.0)
        assert b > a

    def test_average_below_endpoint_value(self):
        import math as m
        avg = _ramp_average(2.0, 0.0, 4.0)
        assert 0 < avg < 1 - m.exp(-4.0 / 2.0) + 1e-9
