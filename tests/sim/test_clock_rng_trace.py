"""Unit tests for the simulation kernel primitives."""

import numpy as np
import pytest

from repro.noise import lognormal_factor
from repro.sim.clock import SimClock
from repro.sim.rng import STREAM_NAMES, RngStreams
from repro.sim.trace import EpochRecord, StepRecord, Trace


class TestSimClock:
    def test_advances_without_drift(self):
        clk = SimClock(dt=0.1)
        for _ in range(10_000):
            clk.advance()
        assert clk.now == pytest.approx(1000.0, abs=1e-9)

    def test_ticks_for_exact_multiple(self):
        assert SimClock(dt=1.0).ticks_for(30.0) == 30
        assert SimClock(dt=0.5).ticks_for(30.0) == 60

    def test_ticks_for_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            SimClock(dt=1.0).ticks_for(30.5)

    def test_rejects_bad_dt_and_backwards(self):
        with pytest.raises(ValueError):
            SimClock(dt=0.0)
        with pytest.raises(ValueError):
            SimClock().advance(-1)


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a, b = RngStreams(42), RngStreams(42)
        assert a.throughput_noise.random() == b.throughput_noise.random()
        assert a.faults.random() == b.faults.random()

    def test_streams_are_independent(self):
        a, b = RngStreams(42), RngStreams(42)
        a.restart_jitter.random()  # consuming one stream ...
        # ... must not perturb another.
        assert a.throughput_noise.random() == b.throughput_noise.random()

    def test_different_seeds_differ(self):
        assert RngStreams(1).misc.random() != RngStreams(2).misc.random()

    def test_unknown_stream_raises(self):
        with pytest.raises(AttributeError):
            RngStreams(0).nope
        with pytest.raises(KeyError):
            RngStreams(0).stream("nope")

    def test_all_streams_exist(self):
        s = RngStreams(0)
        for name in STREAM_NAMES:
            assert s.stream(name) is getattr(s, name)


class TestLognormalFactor:
    def test_sigma_zero_is_exactly_one(self):
        assert lognormal_factor(np.random.default_rng(0), 0.0) == 1.0

    def test_mean_is_one(self):
        rng = np.random.default_rng(0)
        draws = [lognormal_factor(rng, 0.3) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(1.0, abs=0.02)

    def test_always_positive(self):
        rng = np.random.default_rng(1)
        assert all(lognormal_factor(rng, 1.0) > 0 for _ in range(100))

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            lognormal_factor(np.random.default_rng(0), -0.1)


class TestTrace:
    def _epoch(self, i, start, observed=100.0):
        return EpochRecord(
            index=i, start=start, duration=30.0, params=(2,),
            observed=observed, best_case=observed * 1.2,
            bytes_moved=observed * 30 * 1e6,
        )

    def test_step_accessors(self):
        t = Trace()
        t.add_step(StepRecord(0.0, 50.0, False, 50e6))
        t.add_step(StepRecord(1.0, 70.0, True, 70e6))
        assert t.step_times().tolist() == [0.0, 1.0]
        assert t.step_rates().tolist() == [50.0, 70.0]
        assert t.total_bytes == pytest.approx(120e6)

    def test_epoch_indices_must_be_consecutive(self):
        t = Trace()
        t.add_epoch(self._epoch(0, 0.0))
        with pytest.raises(ValueError):
            t.add_epoch(self._epoch(2, 30.0))

    def test_epoch_param_trajectory(self):
        t = Trace()
        t.add_epoch(self._epoch(0, 0.0))
        t.add_epoch(self._epoch(1, 30.0))
        assert t.epoch_param(0).tolist() == [2, 2]

    def test_mean_observed_time_weighted(self):
        t = Trace()
        t.add_epoch(self._epoch(0, 0.0, observed=100.0))
        t.add_epoch(self._epoch(1, 30.0, observed=200.0))
        assert t.mean_observed() == pytest.approx(150.0)
        assert t.mean_observed(from_time=30.0) == pytest.approx(200.0)
        assert t.mean_observed(to_time=30.0) == pytest.approx(100.0)

    def test_mean_observed_empty_window_raises(self):
        t = Trace()
        t.add_epoch(self._epoch(0, 0.0))
        with pytest.raises(ValueError):
            t.mean_observed(from_time=1e6)

    def test_mean_best_case(self):
        t = Trace()
        t.add_epoch(self._epoch(0, 0.0, observed=100.0))
        assert t.mean_best_case() == pytest.approx(120.0)
