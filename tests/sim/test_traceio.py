"""Unit tests for trace persistence."""

import json

import pytest

from repro.core.base import StaticTuner
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC
from repro.sim.trace import EpochRecord, StepRecord, Trace
from repro.sim.traceio import (
    epochs_to_csv,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


def _sample_trace() -> Trace:
    t = Trace(label="sample")
    t.add_step(StepRecord(time=0.0, rate=100.0, restarting=True,
                          bytes_moved=0.0))
    t.add_step(StepRecord(time=1.0, rate=150.0, restarting=False,
                          bytes_moved=150e6))
    t.add_epoch(EpochRecord(index=0, start=0.0, duration=30.0, params=(2, 8),
                            observed=120.0, best_case=140.0,
                            bytes_moved=3.6e9))
    return t


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        t = _sample_trace()
        back = trace_from_dict(trace_to_dict(t))
        assert back.label == t.label
        assert back.steps == t.steps
        assert back.epochs == t.epochs

    def test_file_round_trip(self, tmp_path):
        t = _sample_trace()
        path = tmp_path / "trace.json"
        save_trace(t, path)
        back = load_trace(path)
        assert back.epochs == t.epochs

    def test_real_engine_trace_round_trips(self, tmp_path):
        t = run_single(ANL_UC, StaticTuner(), duration_s=90.0, seed=0)
        path = tmp_path / "run.json"
        save_trace(t, path)
        back = load_trace(path)
        assert back.epoch_observed().tolist() == t.epoch_observed().tolist()
        assert back.total_bytes == t.total_bytes

    def test_fault_fields_round_trip(self):
        t = Trace(label="faulty")
        t.add_epoch(EpochRecord(index=0, start=0.0, duration=30.0,
                                params=(2,), observed=0.0, best_case=0.0,
                                bytes_moved=0.0, faulted=True,
                                fault="blackout", retries=2,
                                breaker="open", tuned=False))
        back = trace_from_dict(trace_to_dict(t))
        assert back.epochs == t.epochs
        assert back.faulted_epochs() == [0]
        assert back.breaker_states() == ["open"]
        assert back.tuner_fed_epochs() == []

    def test_pre_fault_trace_dicts_load_with_clean_defaults(self):
        data = trace_to_dict(_sample_trace())
        for e in data["epochs"]:
            for key in ("faulted", "fault", "retries", "breaker", "tuned"):
                del e[key]
        back = trace_from_dict(data)
        e = back.epochs[0]
        assert (e.faulted, e.fault, e.retries, e.breaker, e.tuned) == (
            False, None, 0, "closed", True
        )

    def test_rejects_wrong_format_version(self):
        data = trace_to_dict(_sample_trace())
        data["format"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(data)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            trace_from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "t.json"
        save_trace(_sample_trace(), path)
        data = json.loads(path.read_text())
        assert data["format"] == 1
        assert data["epochs"][0]["params"] == [2, 8]


class TestCsv:
    def test_csv_columns_and_rows(self):
        text = epochs_to_csv(_sample_trace())
        lines = text.strip().splitlines()
        assert lines[0] == (
            "index,start_s,duration_s,param0,param1,"
            "observed_mbps,best_case_mbps,bytes_moved,"
            "faulted,fault,retries,breaker,tuned"
        )
        assert len(lines) == 2
        assert lines[1].startswith("0,0.0,30.0,2,8,")

    def test_csv_writes_file(self, tmp_path):
        path = tmp_path / "epochs.csv"
        epochs_to_csv(_sample_trace(), path)
        assert path.read_text().startswith("index,")

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            epochs_to_csv(Trace())


class TestCrashSafety:
    """Atomic writes and corruption diagnosis (crash-safe persistence)."""

    def test_truncated_file_raises_corrupt_trace_error(self, tmp_path):
        from repro.sim.traceio import CorruptTraceError

        path = tmp_path / "t.json"
        save_trace(_sample_trace(), path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CorruptTraceError) as exc:
            load_trace(path)
        assert exc.value.path == str(path)
        assert exc.value.offset > 0
        assert "byte offset" in str(exc.value)

    def test_garbage_file_reports_offset_zero_region(self, tmp_path):
        from repro.sim.traceio import CorruptTraceError

        path = tmp_path / "t.json"
        path.write_text("not json at all")
        with pytest.raises(CorruptTraceError):
            load_trace(path)

    def test_corrupt_trace_error_is_a_value_error(self):
        from repro.sim.traceio import CorruptTraceError

        assert issubclass(CorruptTraceError, ValueError)

    def test_atomic_write_replaces_not_appends(self, tmp_path):
        from repro.sim.traceio import atomic_write_text

        path = tmp_path / "out.txt"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        from repro.sim.traceio import atomic_write_text

        atomic_write_text(tmp_path / "out.txt", "data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_preserves_old_content(self, tmp_path, monkeypatch):
        import repro.sim.traceio as traceio

        path = tmp_path / "out.txt"
        traceio.atomic_write_text(path, "precious")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(traceio.os, "replace", boom)
        with pytest.raises(OSError):
            traceio.atomic_write_text(path, "overwrite")
        assert path.read_text() == "precious"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_save_trace_is_atomic_over_existing(self, tmp_path):
        path = tmp_path / "t.json"
        save_trace(_sample_trace(), path)
        first = path.read_text()
        save_trace(_sample_trace(), path)
        assert path.read_text() == first
        assert [p.name for p in tmp_path.iterdir()] == ["t.json"]
