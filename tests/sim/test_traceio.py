"""Unit tests for trace persistence."""

import json

import pytest

from repro.core.base import StaticTuner
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC
from repro.sim.trace import EpochRecord, StepRecord, Trace
from repro.sim.traceio import (
    epochs_to_csv,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


def _sample_trace() -> Trace:
    t = Trace(label="sample")
    t.add_step(StepRecord(time=0.0, rate=100.0, restarting=True,
                          bytes_moved=0.0))
    t.add_step(StepRecord(time=1.0, rate=150.0, restarting=False,
                          bytes_moved=150e6))
    t.add_epoch(EpochRecord(index=0, start=0.0, duration=30.0, params=(2, 8),
                            observed=120.0, best_case=140.0,
                            bytes_moved=3.6e9))
    return t


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        t = _sample_trace()
        back = trace_from_dict(trace_to_dict(t))
        assert back.label == t.label
        assert back.steps == t.steps
        assert back.epochs == t.epochs

    def test_file_round_trip(self, tmp_path):
        t = _sample_trace()
        path = tmp_path / "trace.json"
        save_trace(t, path)
        back = load_trace(path)
        assert back.epochs == t.epochs

    def test_real_engine_trace_round_trips(self, tmp_path):
        t = run_single(ANL_UC, StaticTuner(), duration_s=90.0, seed=0)
        path = tmp_path / "run.json"
        save_trace(t, path)
        back = load_trace(path)
        assert back.epoch_observed().tolist() == t.epoch_observed().tolist()
        assert back.total_bytes == t.total_bytes

    def test_fault_fields_round_trip(self):
        t = Trace(label="faulty")
        t.add_epoch(EpochRecord(index=0, start=0.0, duration=30.0,
                                params=(2,), observed=0.0, best_case=0.0,
                                bytes_moved=0.0, faulted=True,
                                fault="blackout", retries=2,
                                breaker="open", tuned=False))
        back = trace_from_dict(trace_to_dict(t))
        assert back.epochs == t.epochs
        assert back.faulted_epochs() == [0]
        assert back.breaker_states() == ["open"]
        assert back.tuner_fed_epochs() == []

    def test_pre_fault_trace_dicts_load_with_clean_defaults(self):
        data = trace_to_dict(_sample_trace())
        for e in data["epochs"]:
            for key in ("faulted", "fault", "retries", "breaker", "tuned"):
                del e[key]
        back = trace_from_dict(data)
        e = back.epochs[0]
        assert (e.faulted, e.fault, e.retries, e.breaker, e.tuned) == (
            False, None, 0, "closed", True
        )

    def test_rejects_wrong_format_version(self):
        data = trace_to_dict(_sample_trace())
        data["format"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(data)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            trace_from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "t.json"
        save_trace(_sample_trace(), path)
        data = json.loads(path.read_text())
        assert data["format"] == 1
        assert data["epochs"][0]["params"] == [2, 8]


class TestCsv:
    def test_csv_columns_and_rows(self):
        text = epochs_to_csv(_sample_trace())
        lines = text.strip().splitlines()
        assert lines[0] == (
            "index,start_s,duration_s,param0,param1,"
            "observed_mbps,best_case_mbps,bytes_moved,"
            "faulted,fault,retries,breaker,tuned"
        )
        assert len(lines) == 2
        assert lines[1].startswith("0,0.0,30.0,2,8,")

    def test_csv_writes_file(self, tmp_path):
        path = tmp_path / "epochs.csv"
        epochs_to_csv(_sample_trace(), path)
        assert path.read_text().startswith("index,")

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            epochs_to_csv(Trace())
