"""Hypothesis property tests for the full engine.

Whatever the configuration — tuner, load, topology scale, step size —
certain invariants must hold for every run: bytes are conserved between
step and epoch records, no epoch's best-case rate exceeds the physics
(link capacity), observed never exceeds best-case, and equal seeds give
equal traces.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import StaticTuner
from repro.core.cd_tuner import CdTuner
from repro.core.cs_tuner import CsTuner
from repro.core.nm_tuner import NmTuner
from repro.core.params import ParamSpace
from repro.endpoint.host import HostSpec
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.gridftp.client import ClientModel, RestartModel
from repro.gridftp.transfer import TransferSpec
from repro.net.link import Link, Path
from repro.net.tcp import TcpModel
from repro.net.topology import Topology
from repro.sim.engine import Engine, EngineConfig
from repro.sim.session import ParamMap, TransferSession
from repro.units import MB

TUNERS = [
    lambda: StaticTuner(),
    lambda: CdTuner(),
    lambda: CsTuner(seed=1),
    lambda: NmTuner(),
]


@st.composite
def engine_setups(draw):
    capacity = draw(st.floats(100.0, 8000.0))
    rtt_ms = draw(st.floats(1.0, 100.0))
    loss = draw(st.floats(0.0, 1e-3))
    cores = draw(st.integers(1, 32))
    tuner = draw(st.sampled_from(TUNERS))()
    nc0 = draw(st.integers(1, 32))
    np_fixed = draw(st.integers(1, 8))
    load = ExternalLoad(
        ext_cmp=draw(st.integers(0, 32)),
        ext_tfr=draw(st.integers(0, 64)),
    )
    epoch_s = draw(st.sampled_from([10.0, 30.0]))
    duration = draw(st.sampled_from([60.0, 90.0, 150.0]))
    seed = draw(st.integers(0, 100))
    return (capacity, rtt_ms, loss, cores, tuner, nc0, np_fixed, load,
            epoch_s, duration, seed)


def _build(setup):
    (capacity, rtt_ms, loss, cores, tuner, nc0, np_fixed, load,
     epoch_s, duration, seed) = setup
    topo = Topology()
    topo.add_path(
        Path(
            name="p",
            links=(Link("l", capacity),),
            rtt_ms=rtt_ms,
            loss_rate=loss,
            loss_per_stream=loss / 10.0,
            tcp=TcpModel(wmax_bytes=4 * MB, slow_start_tau=1.0),
        )
    )
    host = HostSpec(name="h", cores=cores, core_copy_rate_mbps=1000.0)
    spec = TransferSpec(name="s", path_name="p", total_bytes=math.inf,
                        max_duration_s=duration, epoch_s=epoch_s)
    session = TransferSession(
        spec, tuner, ParamSpace(("nc",), (1,), (64,)), (nc0,),
        param_map=ParamMap.nc_only(fixed_np=np_fixed),
        restart_each_epoch=tuner.restarts_every_epoch,
    )
    return Engine(
        topology=topo, host=host, sessions=[session],
        schedule=LoadSchedule.constant(load),
        client=ClientModel(restart=RestartModel(jitter_sigma=0.05)),
        config=EngineConfig(seed=seed),
    ), capacity


@given(engine_setups())
@settings(max_examples=60, deadline=None)
def test_engine_invariants(setup):
    engine, capacity = _build(setup)
    trace = engine.run()["s"]

    # Bytes conserved between granularities.
    step_total = trace.total_bytes
    epoch_total = sum(e.bytes_moved for e in trace.epochs)
    assert abs(step_total - epoch_total) <= 1e-6 * max(step_total, 1.0)

    # Physics: never faster than the bottleneck; observed <= best-case.
    for e in trace.epochs:
        assert e.observed <= capacity * 1.5 + 1e-6  # 1.5: noise headroom
        assert e.observed <= e.best_case + 1e-9
        assert e.bytes_moved >= 0
    for s in trace.steps:
        assert s.rate >= 0
        assert s.bytes_moved >= 0

    # Time accounting: epochs tile the run.
    assert sum(e.duration for e in trace.epochs) == len(trace.steps) * 1.0


@given(engine_setups())
@settings(max_examples=20, deadline=None)
def test_engine_determinism(setup):
    t1 = _build(setup)[0].run()["s"]
    t2 = _build(setup)[0].run()["s"]
    assert t1.epoch_observed().tolist() == t2.epoch_observed().tolist()
    assert [e.params for e in t1.epochs] == [e.params for e in t2.epochs]
