"""Engine edge cases: step sizes, epoch alignment, warm restarts,
external-path routing, and controller misuse."""

import math

import pytest

from repro.core.aggregate import JointTuner
from repro.core.base import StaticTuner
from repro.core.nm_tuner import NmTuner
from repro.core.params import ParamSpace
from repro.endpoint.host import HostSpec
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.gridftp.client import ClientModel, RestartModel
from repro.gridftp.transfer import TransferSpec
from repro.net.link import Link, Path
from repro.net.tcp import TcpModel
from repro.net.topology import Topology
from repro.sim.engine import Engine, EngineConfig, JointController
from repro.sim.session import ParamMap, TransferSession
from repro.units import MB

HOST = HostSpec(name="h", cores=8, core_copy_rate_mbps=1000.0, cs_coeff=0.0)
SPACE = ParamSpace(("nc",), (1,), (64,))


def _topo_two_paths():
    tcp = TcpModel(wmax_bytes=4 * MB, slow_start_tau=0.5)
    nic = Link("nic", 1000.0)
    topo = Topology()
    topo.add_path(Path("pa", (nic, Link("wa", 800.0)), rtt_ms=40.0,
                       loss_rate=1e-9, tcp=tcp))
    topo.add_path(Path("pb", (nic, Link("wb", 300.0)), rtt_ms=40.0,
                       loss_rate=1e-9, tcp=tcp))
    return topo


def _session(name="s", path="pa", nc=4, duration=90.0, epoch=30.0,
             tuner=None, restart=False):
    spec = TransferSpec(name=name, path_name=path, total_bytes=math.inf,
                        max_duration_s=duration, epoch_s=epoch)
    return TransferSession(
        spec, tuner if tuner is not None else StaticTuner(), SPACE, (nc,),
        param_map=ParamMap.nc_only(fixed_np=1), restart_each_epoch=restart,
    )


def _engine(sessions, *, dt=1.0, load=None, ext_path=None):
    return Engine(
        topology=_topo_two_paths(),
        host=HOST,
        sessions=sessions,
        schedule=LoadSchedule.constant(load or ExternalLoad()),
        client=ClientModel(restart=RestartModel(base_s=2.0, per_proc_s=0.0,
                                                jitter_sigma=0.0)),
        config=EngineConfig(dt=dt, noise_sigma_epoch=0.0,
                            noise_sigma_step=0.0, ext_tfr_path=ext_path),
    )


class TestStepSizes:
    def test_subsecond_dt_matches_unit_dt(self):
        coarse = _engine([_session(duration=90.0)]).run()["s"]
        fine = _engine([_session(duration=90.0)], dt=0.5).run()["s"]
        assert fine.epochs[-1].best_case == pytest.approx(
            coarse.epochs[-1].best_case, rel=0.02
        )
        assert len(fine.epochs) == len(coarse.epochs)

    def test_fractional_restart_consumes_partial_step(self):
        # restart base 2.0 s with dt = 0.8: the third step is partly dead.
        trace = _engine([_session(duration=40.0, epoch=40.0)], dt=0.8).run()["s"]
        rates = trace.step_rates()
        assert rates[0] == 0.0 and rates[1] == 0.0
        assert 0.0 < rates[2] < rates[10]

    def test_epoch_not_multiple_of_duration_partial_final_epoch(self):
        # 100 s run with 30 s epochs: final epoch lasts 10 s.
        trace = _engine([_session(duration=100.0)]).run()["s"]
        assert len(trace.epochs) == 4
        assert trace.epochs[-1].duration == pytest.approx(10.0)


class TestExternalPathRouting:
    def test_ext_traffic_on_other_path_couples_exactly_via_nic(self):
        # Our transfer on pa; ext traffic explicitly on pb.  pb's WAN
        # link caps the external flow at 300 MB/s, and that much — no
        # more — comes out of the shared 1000 MB/s NIC: we get 700.
        routed = _engine(
            [_session(nc=8)], load=ExternalLoad(ext_tfr=16), ext_path="pb",
        ).run()["s"]
        assert routed.epochs[-1].best_case == pytest.approx(700.0, rel=0.02)

    def test_ext_traffic_on_same_path_competes(self):
        free = _engine([_session(nc=8)]).run()["s"]
        contended = _engine(
            [_session(nc=8)], load=ExternalLoad(ext_tfr=64), ext_path="pa",
        ).run()["s"]
        assert contended.epochs[-1].best_case < 0.8 * free.epochs[-1].best_case


class TestWarmRestart:
    def test_warm_restart_reduces_dead_time(self):
        def run(warm):
            s = _session(tuner=NmTuner(), duration=600.0, restart=True)
            s.warm_restart = warm
            engine = Engine(
                topology=_topo_two_paths(), host=HOST, sessions=[s],
                client=ClientModel(restart=RestartModel(
                    base_s=6.0, per_proc_s=0.0, jitter_sigma=0.0,
                    warm_np_factor=0.1)),
                config=EngineConfig(noise_sigma_epoch=0.0,
                                    noise_sigma_step=0.0),
            )
            return engine.run()["s"]

        cold = run(False)
        warm = run(True)
        # Warm restarts apply whenever nc is unchanged (monitoring
        # epochs), so total dead time shrinks.
        dead_cold = sum(1 for st in cold.steps if st.restarting)
        dead_warm = sum(1 for st in warm.steps if st.restarting)
        assert dead_warm < dead_cold


class TestControllerMisuse:
    def _joint(self, names):
        return JointTuner(
            inner=NmTuner(),
            subspaces=[SPACE] * len(names),
            labels=[f"l{i}" for i in range(len(names))],
        )

    def test_controller_requires_matching_subspaces(self):
        with pytest.raises(ValueError):
            JointController(self._joint(["a"]), ["a", "b"], (2,))

    def test_duplicate_controller_sessions_rejected(self):
        with pytest.raises(ValueError):
            JointController(self._joint(["a", "b"]), ["a", "a"], (2, 2))

    def test_observe_unknown_session(self):
        ctl = JointController(self._joint(["a"]), ["a"], (2,))
        with pytest.raises(KeyError):
            ctl.observe("zz", 1.0)

    def test_double_report_rejected(self):
        ctl = JointController(self._joint(["a", "b"]), ["a", "b"], (2, 2))
        ctl.observe("a", 1.0)
        with pytest.raises(RuntimeError):
            ctl.observe("a", 2.0)

    def test_partial_report_returns_none(self):
        ctl = JointController(self._joint(["a", "b"]), ["a", "b"], (2, 2))
        assert ctl.observe("a", 1.0) is None
        out = ctl.observe("b", 2.0)
        assert out is not None and set(out) == {"a", "b"}


class TestRunIdempotence:
    def test_second_run_call_continues_not_restarts(self):
        s = _session(duration=120.0)
        engine = _engine([s])
        engine.run(until_s=60.0)
        traces = engine.run()
        assert traces["s"].epochs[-1].start >= 60.0
        assert engine.clock.now == pytest.approx(120.0)
