"""Unit tests for TransferSession and ParamMap."""

import math

import pytest

from repro.core.base import StaticTuner
from repro.core.cd_tuner import CdTuner
from repro.core.params import ParamSpace
from repro.gridftp.transfer import TransferSpec
from repro.sim.session import ParamMap, TransferSession

SPACE_1D = ParamSpace(("nc",), (1,), (64,))
SPACE_2D = ParamSpace(("nc", "np"), (1, 1), (64, 16))


def _spec(**kw):
    defaults = dict(
        name="s", path_name="p", total_bytes=math.inf, max_duration_s=600.0,
        epoch_s=30.0,
    )
    defaults.update(kw)
    return TransferSpec(**defaults)


def _session(tuner=None, space=SPACE_1D, x0=(2,), **kw):
    return TransferSession(
        _spec(), tuner if tuner is not None else StaticTuner(), space, x0, **kw
    )


class TestParamMap:
    def test_nc_only(self):
        pm = ParamMap.nc_only(fixed_np=8)
        assert pm.nc((5,)) == 5
        assert pm.np((5,)) == 8

    def test_nc_np(self):
        pm = ParamMap.nc_np()
        assert pm.nc((5, 3)) == 5
        assert pm.np((5, 3)) == 3

    def test_fully_fixed(self):
        pm = ParamMap(nc_dim=None, np_dim=None, fixed_nc=4, fixed_np=2)
        assert pm.nc(()) == 4
        assert pm.np(()) == 2

    def test_rejects_shared_dimension(self):
        with pytest.raises(ValueError):
            ParamMap(nc_dim=0, np_dim=0)

    def test_rejects_bad_fixed(self):
        with pytest.raises(ValueError):
            ParamMap(nc_dim=None, fixed_nc=0)


class TestSessionBasics:
    def test_derived_quantities(self):
        s = _session(space=SPACE_2D, x0=(3, 4), param_map=ParamMap.nc_np())
        assert (s.nc, s.np_, s.streams) == (3, 4, 12)

    def test_param_map_dimension_checked(self):
        with pytest.raises(ValueError):
            _session(space=SPACE_1D, x0=(2,), param_map=ParamMap.nc_np())

    def test_restarting_flag(self):
        s = _session()
        assert not s.restarting
        s.begin_restart(5.0)
        assert s.restarting
        assert s.time_since_start == 0.0

    def test_begin_restart_rejects_negative(self):
        with pytest.raises(ValueError):
            _session().begin_restart(-1.0)

    def test_disk_cap_defaults_to_inf(self):
        assert _session().disk_cap() == math.inf

    def test_disk_cap_fn_receives_params(self):
        s = _session(
            space=SPACE_2D, x0=(3, 4), param_map=ParamMap.nc_np(),
            disk_cap_fn=lambda nc, np_, pp: 10.0 * nc * np_ * pp,
        )
        assert s.disk_cap() == 120.0  # pp defaults to fixed_pp = 1

    def test_pp_dimension_mapping(self):
        space3 = ParamSpace(("nc", "np", "pp"), (1, 1, 1), (64, 16, 64))
        s = _session(
            space=space3, x0=(3, 4, 8), param_map=ParamMap.nc_np_pp(),
            disk_cap_fn=lambda nc, np_, pp: float(pp),
        )
        assert s.pp == 8
        assert s.disk_cap() == 8.0

    def test_pp_shares_dimension_rejected(self):
        with pytest.raises(ValueError):
            ParamMap(nc_dim=0, np_dim=1, pp_dim=1)


class TestEpochAccounting:
    def test_close_epoch_computes_observed_and_best_case(self):
        s = _session()
        s.epoch_elapsed = 30.0
        s.epoch_run_s = 25.0
        s.epoch_bytes = 25.0 * 100e6  # 100 MB/s while running
        rec = s.close_epoch(start_time=0.0)
        assert rec.observed == pytest.approx(2500.0 / 30.0)
        assert rec.best_case == pytest.approx(100.0)
        assert rec.params == (2,)

    def test_close_epoch_resets_accumulators(self):
        s = _session()
        s.epoch_elapsed, s.epoch_run_s, s.epoch_bytes = 30.0, 30.0, 1e9
        s.close_epoch(start_time=0.0)
        assert (s.epoch_elapsed, s.epoch_run_s, s.epoch_bytes) == (0, 0, 0)
        assert s.epoch_index == 1

    def test_close_empty_epoch_raises(self):
        with pytest.raises(ValueError):
            _session().close_epoch(start_time=0.0)

    def test_all_restart_epoch_best_case_zero(self):
        s = _session()
        s.epoch_elapsed = 30.0
        s.epoch_run_s = 0.0
        s.epoch_bytes = 0.0
        rec = s.close_epoch(start_time=0.0)
        assert rec.observed == 0.0
        assert rec.best_case == 0.0


class TestApplyParams:
    def test_tuner_session_restarts_every_epoch(self):
        s = _session(tuner=CdTuner(), restart_each_epoch=True)
        needs, warm = s.apply_params(s.params)  # even with unchanged params
        assert needs and not warm

    def test_static_session_never_restarts_on_same_params(self):
        s = _session(restart_each_epoch=False)
        needs, _ = s.apply_params(s.params)
        assert not needs

    def test_static_session_restarts_on_changed_params(self):
        s = _session(restart_each_epoch=False)
        needs, _ = s.apply_params((10,))
        assert needs

    def test_warm_restart_only_when_nc_unchanged(self):
        s = _session(
            space=SPACE_2D, x0=(3, 4), param_map=ParamMap.nc_np(),
            warm_restart=True,
        )
        _, warm_np = s.apply_params((3, 8))   # np changed only
        assert warm_np
        _, warm_nc = s.apply_params((5, 8))   # nc changed
        assert not warm_nc

    def test_rejects_out_of_domain_params(self):
        s = _session()
        with pytest.raises(ValueError):
            s.apply_params((9999,))
