"""Fast-path equivalence: the cached/batched engine vs. the reference.

``EngineConfig(fast_path=True)`` (the default) caches the allocation
phase on change-point state and batches per-step jitter draws;
``fast_path=False`` recomputes everything every step.  Both must
produce **bit-identical** traces — epoch records AND step records —
because all randomness is drawn from the same streams in the same
order.  These tests pin that contract across every engine feature that
interacts with the cache key or the draw order: tuners, faults and
breaker transitions, varying load schedules, multi-session pairs with
epoch offsets, the joint controller, finite-byte transfers, partial
``run(until_s=...)``, zero noise, and crash/resume.
"""

import json
import math

import pytest

from repro.core.registry import make_tuner
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.experiments.figures import varying_load_schedule
from repro.experiments.runner import (
    make_session,
    run_joint,
    run_pair,
    run_single,
)
from repro.experiments.scenarios import ANL_UC, SCENARIOS
from repro.faults import (
    BLACKOUT,
    OBS_LOSS,
    STREAM_CRASH,
    CircuitBreaker,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)
from repro.gridftp.transfer import TransferSpec
from repro.sim.engine import Engine, EngineConfig
from repro.sim.session import ParamMap, TransferSession
from repro.units import MB

DURATION = 600.0
SEED = 11


def assert_bit_identical(ref, fast):
    """Step- and epoch-level record equality (dataclass ==, no tolerance)."""
    assert fast.epochs == ref.epochs
    assert fast.steps == ref.steps


def _fault_kit():
    return dict(
        fault_schedule=FaultSchedule([
            FaultEvent(kind=STREAM_CRASH, epoch=3, duration=2),
            FaultEvent(kind=BLACKOUT, epoch=7, duration=3),
            FaultEvent(kind=OBS_LOSS, epoch=12, duration=1),
        ]),
        retry_policy=RetryPolicy(),
        breaker=CircuitBreaker(failure_threshold=2, cooldown_epochs=3),
    )


def _single(tuner_name, *, fast_path, **kw):
    return run_single(
        SCENARIOS["anl-uc"], make_tuner(tuner_name, SEED),
        duration_s=DURATION, seed=SEED, fast_path=fast_path, **kw,
    )


@pytest.mark.parametrize("tuner_name", ["default", "cd", "cs", "nm"])
def test_tuner_runs_are_bit_identical(tuner_name):
    assert_bit_identical(
        _single(tuner_name, fast_path=False),
        _single(tuner_name, fast_path=True),
    )


@pytest.mark.parametrize("tuner_name", ["cs", "nm"])
def test_fault_campaigns_are_bit_identical(tuner_name):
    assert_bit_identical(
        _single(tuner_name, fast_path=False, **_fault_kit()),
        _single(tuner_name, fast_path=True, **_fault_kit()),
    )


def test_varying_load_schedule_is_bit_identical():
    schedule = varying_load_schedule(switch_at_s=DURATION / 2)
    assert_bit_identical(
        _single("nm", fast_path=False, load=schedule),
        _single("nm", fast_path=True, load=schedule),
    )


def test_tune_np_2d_search_is_bit_identical():
    assert_bit_identical(
        _single("nm", fast_path=False, tune_np=True),
        _single("nm", fast_path=True, tune_np=True),
    )


def test_pair_is_bit_identical():
    def run(fast_path):
        return run_pair(
            ANL_UC, make_tuner("nm", SEED), make_tuner("cs", SEED),
            path_a="anl-uc", path_b="anl-tacc",
            duration_s=DURATION, seed=SEED, fast_path=fast_path,
        )

    ref, fast = run(False), run(True)
    for name in ref:
        assert_bit_identical(ref[name], fast[name])


def test_joint_controller_is_bit_identical():
    def run(fast_path):
        return run_joint(
            ANL_UC, make_tuner("nm", SEED),
            path_a="anl-uc", path_b="anl-tacc",
            duration_s=DURATION, seed=SEED, fast_path=fast_path,
        )

    ref, fast = run(False), run(True)
    for name in ref:
        assert_bit_identical(ref[name], fast[name])


# -- custom engines: offsets, finite bytes, partial runs, zero noise --------


def _engine(*, fast_path, sessions=None, noise_sigma_step=0.02):
    scenario = SCENARIOS["anl-uc"]
    if sessions is None:
        sessions = [make_session(
            "main", scenario.main_path, make_tuner("nm", SEED),
            duration_s=DURATION,
        )]
    return Engine(
        topology=scenario.build_topology(),
        host=scenario.host,
        sessions=sessions,
        schedule=LoadSchedule.constant(ExternalLoad()),
        config=EngineConfig(
            seed=SEED, fast_path=fast_path,
            noise_sigma_step=noise_sigma_step,
        ),
    )


def _offset_sessions():
    """Two sessions whose epochs close on *different* steps — the case
    that stresses the jitter-batch span prediction."""
    scenario = SCENARIOS["anl-uc"]
    out = []
    for name, path, offset in (
        ("a", "anl-uc", 0.0), ("b", "anl-tacc", 7.0),
    ):
        spec = TransferSpec(
            name=name, path_name=path, total_bytes=math.inf,
            max_duration_s=DURATION, epoch_s=30.0, epoch_offset_s=offset,
        )
        out.append(TransferSession(
            spec, make_tuner("nm", SEED),
            make_session("tmp", path, make_tuner("nm", SEED),
                         duration_s=DURATION).space,
            (2,),
            param_map=ParamMap.nc_only(fixed_np=8),
            restart_each_epoch=True,
        ))
    return out


def test_epoch_offsets_are_bit_identical():
    ref = _engine(fast_path=False, sessions=_offset_sessions()).run()
    fast = _engine(fast_path=True, sessions=_offset_sessions()).run()
    for name in ref:
        assert_bit_identical(ref[name], fast[name])


def test_finite_bytes_transfer_is_bit_identical():
    def sessions():
        scenario = SCENARIOS["anl-uc"]
        spec = TransferSpec(
            name="main", path_name=scenario.main_path,
            total_bytes=200_000 * MB, max_duration_s=DURATION,
            epoch_s=30.0,
        )
        base = make_session("tmp", scenario.main_path,
                            make_tuner("nm", SEED), duration_s=DURATION)
        return [TransferSession(
            spec, make_tuner("nm", SEED), base.space, (2,),
            param_map=ParamMap.nc_only(fixed_np=8),
            restart_each_epoch=True,
        )]

    ref = _engine(fast_path=False, sessions=sessions()).run()["main"]
    fast = _engine(fast_path=True, sessions=sessions()).run()["main"]
    assert ref.steps[-1].time < DURATION - 1.0, (
        "finite transfer should finish early for this to test completion"
    )
    assert_bit_identical(ref, fast)


def test_partial_run_until_s_is_bit_identical():
    ref = _engine(fast_path=False)
    ref.run(until_s=333.0)
    ref_trace = ref.run()["main"]
    fast = _engine(fast_path=True)
    fast.run(until_s=333.0)
    fast_trace = fast.run()["main"]
    assert_bit_identical(ref_trace, fast_trace)


def test_zero_step_noise_is_bit_identical():
    # sigma_step == 0 means lognormal_factor never draws: the batching
    # gate must stay off and the cache alone must not change anything.
    ref = _engine(fast_path=False, noise_sigma_step=0.0).run()["main"]
    fast = _engine(fast_path=True, noise_sigma_step=0.0).run()["main"]
    assert_bit_identical(ref, fast)


def test_fast_path_engine_reports_batching_only_when_safe():
    assert _engine(fast_path=True)._batch_jitter
    assert not _engine(fast_path=False)._batch_jitter
    assert not _engine(fast_path=True, noise_sigma_step=0.0)._batch_jitter


# -- crash/resume against the reference engine ------------------------------


def _truncate_after(path, n_epochs: int) -> None:
    kept, seen = [], 0
    with open(path, "rb") as f:
        for line in f.read().splitlines(keepends=True):
            rec = json.loads(line)
            if rec["kind"] == "end":
                continue
            kept.append(line)
            if rec["kind"] == "epoch":
                seen += 1
            if seen == n_epochs and rec["kind"] == "snapshot":
                break
    with open(path, "wb") as f:
        f.writelines(kept)


@pytest.mark.parametrize("cut", [2, 9])
def test_kill_and_resume_matches_reference_engine(tmp_path, cut):
    """A fast-path run journaled, truncated mid-run (the on-disk state
    of a SIGKILL), and resumed must equal the *reference* engine's
    uninterrupted run — resume restores RNG state mid-stream, so any
    fast-path draw-order slip would surface here."""
    from repro.checkpoint import resume_run, run_journaled

    ref = _single("cs", fast_path=False, **_fault_kit())
    path = tmp_path / "run.jnl"
    run_journaled(
        path, scenario="anl-uc", tuner="cs", seed=SEED,
        duration_s=DURATION, **_fault_kit(),
    )
    _truncate_after(path, cut)
    resumed = resume_run(path)
    assert_bit_identical(ref, resumed)
