"""Batch-vs-scalar equivalence: the struct-of-arrays engine's contract.

Every trace a :class:`~repro.sim.batch.BatchEngine` lane produces must
be **bit-identical** — epoch records AND step records, dataclass ``==``
with no tolerance — to the scalar :func:`run_single` call with the same
arguments.  These tests pin that contract across the tuner matrix on
both stock scenarios with the fast path on and off, across
heterogeneous populations (mixed tuners, durations, load schedules, a
2-D ``tune_np`` lane), and across the automatic per-run scalar
fallback, plus the :class:`BatchEngine` construction-time validation.
"""

import math

import pytest

from repro.core.registry import make_tuner
from repro.endpoint.load import ExternalLoad
from repro.experiments.batch import (
    SingleRunSpec,
    dispatch_fallback_reasons,
    dispatch_timings,
    fallback_reasons,
    occupancy,
    resolve_dispatch,
    run_batch,
)
from repro.experiments.figures import varying_load_schedule
from repro.experiments.runner import build_single_engine, run_single
from repro.experiments.scenarios import ANL_TACC, ANL_UC
from repro.faults import FaultEvent, FaultSchedule, RetryPolicy, STREAM_CRASH
from repro.sim.batch import BatchEngine, unbatchable_reason
from repro.sim.engine import LoadSchedule

DURATION = 240.0
SEED = 5


def assert_bit_identical(ref, got):
    assert got.epochs == ref.epochs
    assert got.steps == ref.steps


def _run_scalar(spec: SingleRunSpec):
    return run_single(
        spec.scenario, spec.tuner, load=spec.load,
        duration_s=spec.duration_s, epoch_s=spec.epoch_s,
        tune_np=spec.tune_np, fixed_np=spec.fixed_np, x0=spec.x0,
        seed=spec.seed, max_nc=spec.max_nc,
        fault_schedule=spec.fault_schedule,
        retry_policy=spec.retry_policy, breaker=spec.breaker,
        fast_path=spec.fast_path, cache=False,
    )


def _assert_batch_matches_scalar(specs, *, batch):
    """The whole population, batched vs. run one `run_single` at a time.

    Tuner objects are stateless factories (each ``start`` builds a
    fresh driver), so reusing the same spec objects on both paths is
    exactly what production callers do.
    """
    refs = [_run_scalar(s) for s in specs]
    got = run_batch(specs, batch=batch, cache=False)
    assert len(got) == len(refs)
    for ref, trace in zip(refs, got):
        assert_bit_identical(ref, trace)


@pytest.mark.parametrize("scenario", [ANL_UC, ANL_TACC],
                         ids=["anl-uc", "anl-tacc"])
@pytest.mark.parametrize("fast_path", [True, False],
                         ids=["fast", "reference"])
def test_tuner_matrix_is_bit_identical(scenario, fast_path):
    """cd/cs/nm/default × stock scenarios × fast_path on/off, one batch."""
    specs = [
        SingleRunSpec(
            scenario, make_tuner(name, SEED), duration_s=DURATION,
            seed=SEED, fast_path=fast_path,
        )
        for name in ("default", "cd", "cs", "nm")
    ]
    _assert_batch_matches_scalar(specs, batch=4)


def test_heterogeneous_population_is_bit_identical():
    """Mixed scenarios, tuners, seeds, durations, loads — including a
    varying-load schedule and a 2-D ``tune_np`` lane — in undersized
    chunks so lanes of different shapes share a chunk."""
    specs = [
        SingleRunSpec(ANL_UC, make_tuner("cd", SEED), duration_s=DURATION,
                      seed=SEED),
        SingleRunSpec(ANL_UC, make_tuner("cs", SEED + 1),
                      duration_s=DURATION / 2, seed=SEED + 1,
                      load=ExternalLoad(ext_cmp=16)),
        SingleRunSpec(ANL_TACC, make_tuner("nm", SEED), seed=SEED,
                      duration_s=DURATION,
                      load=varying_load_schedule(DURATION / 2)),
        SingleRunSpec(ANL_TACC, make_tuner("nm", SEED), seed=SEED,
                      duration_s=DURATION, tune_np=True),
        SingleRunSpec(ANL_UC, make_tuner("default", SEED), seed=SEED + 2,
                      duration_s=DURATION, x0=(16,), fixed_np=1),
        SingleRunSpec(ANL_UC, make_tuner("cd", SEED),
                      duration_s=DURATION, seed=SEED,
                      retry_policy=RetryPolicy()),
    ]
    _assert_batch_matches_scalar(specs, batch=4)


def test_homogeneous_seed_replicates_are_bit_identical():
    """The bench shape: one scenario/tuner, seeds fanned — the case the
    shared allocation-group memo and homogeneous span shortcut serve."""
    specs = [
        SingleRunSpec(ANL_UC, make_tuner("cd", seed), duration_s=DURATION,
                      seed=seed)
        for seed in range(SEED, SEED + 8)
    ]
    _assert_batch_matches_scalar(specs, batch=8)


def test_unbatchable_specs_fall_back_per_run():
    """A fault-schedule lane cannot batch; it must fall back to its own
    scalar engine while its siblings batch — results identical, the
    fallback charged to occupancy with its reason."""
    faulty = SingleRunSpec(
        ANL_UC, make_tuner("cs", SEED), duration_s=DURATION, seed=SEED,
        fault_schedule=FaultSchedule(
            [FaultEvent(kind=STREAM_CRASH, epoch=2, duration=1)]
        ),
        retry_policy=RetryPolicy(),
    )
    clean = [
        SingleRunSpec(ANL_UC, make_tuner("cd", seed), duration_s=DURATION,
                      seed=seed)
        for seed in (SEED, SEED + 1, SEED + 2)
    ]
    before, reasons_before = occupancy(), fallback_reasons()
    _assert_batch_matches_scalar([clean[0], faulty, *clean[1:]], batch=4)
    delta = occupancy() - before
    assert delta.batched == 3
    assert delta.fallback == 1
    assert delta.chunks == 1
    assert (fallback_reasons().get("fault schedule", 0)
            == reasons_before.get("fault schedule", 0) + 1)


# -- population dispatch -----------------------------------------------------


@pytest.mark.parametrize("tuner_name", ["cd", "cs", "gss"])
@pytest.mark.parametrize("dispatch", [True, False],
                         ids=["population", "ladder"])
def test_population_dispatch_matrix_is_bit_identical(tuner_name, dispatch):
    """Population-dispatch lanes (and the same lanes with the knob off)
    stay bit-identical to run_single across the supported tuners."""
    specs = [
        SingleRunSpec(ANL_UC, make_tuner(tuner_name, seed),
                      duration_s=DURATION, seed=seed)
        for seed in range(SEED, SEED + 4)
    ]
    refs = [_run_scalar(s) for s in specs]
    got = run_batch(specs, batch=4, cache=False, dispatch=dispatch)
    for ref, trace in zip(refs, got):
        assert_bit_identical(ref, trace)


def test_mixed_tuner_population_routes_nm_to_ladder():
    """Mixed cd/nm lanes: the nm lanes keep the scalar dispatch ladder
    (tallied once per lane under dispatch:unsupported-tuner), the cd
    lanes ride one population — everything bit-identical to serial."""
    specs = [
        SingleRunSpec(ANL_UC, make_tuner("cd", SEED), duration_s=DURATION,
                      seed=SEED),
        SingleRunSpec(ANL_UC, make_tuner("nm", SEED), duration_s=DURATION,
                      seed=SEED),
        SingleRunSpec(ANL_UC, make_tuner("cd", SEED + 1),
                      duration_s=DURATION, seed=SEED + 1),
        SingleRunSpec(ANL_UC, make_tuner("nm", SEED + 1),
                      duration_s=DURATION, seed=SEED + 1),
    ]
    before = dispatch_fallback_reasons().get(
        "dispatch:unsupported-tuner", 0)
    timings_before = dispatch_timings()
    _assert_batch_matches_scalar(specs, batch=4)
    assert (dispatch_fallback_reasons()["dispatch:unsupported-tuner"]
            == before + 2)
    after = dispatch_timings()
    assert after["population_lanes"] >= timings_before["population_lanes"] + 2
    assert after["ladder_lanes"] >= timings_before["ladder_lanes"] + 2
    # The phase clocks only move forward.
    for key in ("span", "close", "dispatch"):
        assert after["phase_s"][key] >= timings_before["phase_s"][key]


def test_recovery_machinery_lane_keeps_ladder_with_reason():
    """A retry-policy lane batches its spans but keeps the scalar
    dispatch ladder, tallied under dispatch:recovery-machinery."""
    specs = [
        SingleRunSpec(ANL_UC, make_tuner("cd", SEED), duration_s=DURATION,
                      seed=SEED, retry_policy=RetryPolicy()),
        SingleRunSpec(ANL_UC, make_tuner("cd", SEED + 1),
                      duration_s=DURATION, seed=SEED + 1),
    ]
    before = dispatch_fallback_reasons().get(
        "dispatch:recovery-machinery", 0)
    _assert_batch_matches_scalar(specs, batch=2)
    assert (dispatch_fallback_reasons()["dispatch:recovery-machinery"]
            == before + 1)


def test_resolve_dispatch_env(monkeypatch):
    monkeypatch.delenv("REPRO_DISPATCH", raising=False)
    assert resolve_dispatch(None) is True
    monkeypatch.setenv("REPRO_DISPATCH", "off")
    assert resolve_dispatch(None) is False
    assert resolve_dispatch(True) is True  # explicit knob wins
    monkeypatch.setenv("REPRO_DISPATCH", "1")
    assert resolve_dispatch(None) is True
    monkeypatch.setenv("REPRO_DISPATCH", "sideways")
    with pytest.raises(ValueError):
        resolve_dispatch(None)


def test_dispatch_env_off_is_bit_identical(monkeypatch):
    monkeypatch.setenv("REPRO_DISPATCH", "off")
    specs = [
        SingleRunSpec(ANL_UC, make_tuner("cd", seed), duration_s=DURATION,
                      seed=seed)
        for seed in (SEED, SEED + 1)
    ]
    _assert_batch_matches_scalar(specs, batch=2)


# -- BatchEngine construction-time validation --------------------------------


def _engine(**kw):
    kw.setdefault("duration_s", DURATION)
    kw.setdefault("seed", SEED)
    return build_single_engine(
        kw.pop("scenario", ANL_UC), kw.pop("tuner", make_tuner("cd", SEED)),
        schedule=kw.pop("schedule",
                        LoadSchedule.constant(ExternalLoad())),
        **kw,
    )


def test_batch_engine_rejects_empty_and_reused_engines():
    with pytest.raises(ValueError):
        BatchEngine([])
    e = _engine()
    with pytest.raises(ValueError):
        BatchEngine([e, e])


def test_batch_engine_rejects_unbatchable_members():
    eligible = _engine()
    assert unbatchable_reason(eligible) is None
    started = _engine()
    started.run()
    assert unbatchable_reason(started) == "engine already started"
    with pytest.raises(ValueError):
        BatchEngine([eligible, started])


def test_batch_engine_rejects_mismatched_alloc_groups():
    with pytest.raises(ValueError):
        BatchEngine([_engine(), _engine()], alloc_groups=[0])


def test_unbatchable_reason_classifies_finite_bytes():
    import dataclasses

    engine = _engine()
    assert math.isinf(engine.sessions[0].spec.total_bytes)
    engine.sessions[0].spec = dataclasses.replace(
        engine.sessions[0].spec, total_bytes=1e9
    )
    assert unbatchable_reason(engine) == "finite-bytes transfer"
