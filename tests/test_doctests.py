"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.core.params
import repro.endpoint.load
import repro.units


@pytest.mark.parametrize(
    "module",
    [repro.units, repro.endpoint.load, repro.core.params],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module)
    # Modules without examples are fine; failures are not.
    assert result.failed == 0
