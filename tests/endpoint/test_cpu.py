"""Unit and property tests for the CPU fair-share scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.endpoint.cpu import CpuTask, context_switch_efficiency, fair_shares


class TestFairShares:
    def test_undersubscribed_everyone_gets_demand(self):
        shares = fair_shares(
            [CpuTask("a", 2), CpuTask("b", 3)], cores=8
        )
        assert shares == {"a": 2.0, "b": 3.0}

    def test_oversubscribed_equal_weights_split_evenly(self):
        shares = fair_shares(
            [CpuTask("a", 8), CpuTask("b", 8)], cores=8
        )
        assert shares["a"] == pytest.approx(4.0)
        assert shares["b"] == pytest.approx(4.0)

    def test_weighted_split(self):
        shares = fair_shares(
            [CpuTask("heavy", 4, weight=3.0), CpuTask("light", 4, weight=1.0)],
            cores=4,
        )
        assert shares["heavy"] == pytest.approx(3.0)
        assert shares["light"] == pytest.approx(1.0)

    def test_demand_cap_redistributes_to_others(self):
        # "capped" can use at most 0.25 cores per entity even though its
        # fair share would be 1 core.
        shares = fair_shares(
            [
                CpuTask("capped", 2, demand_cores_per_entity=0.25),
                CpuTask("greedy", 8),
            ],
            cores=4,
        )
        assert shares["capped"] == pytest.approx(0.5)
        assert shares["greedy"] == pytest.approx(3.5)

    def test_single_core_bound_process_cannot_exceed_one_core(self):
        # 2 transfer processes on 8 idle cores: each still <= 1 core.
        shares = fair_shares([CpuTask("xfer", 2)], cores=8)
        assert shares["xfer"] == pytest.approx(2.0)

    def test_paper_scenario_concurrency_claws_back_cpu(self):
        """Raising nc increases the transfer's aggregate share against a
        fixed dgemm load — the paper's Fig. 5b/5c mechanism."""
        dgemm = CpuTask("dgemm", n_entities=16 * 8, weight=0.35)
        s2 = fair_shares([CpuTask("xfer", 2), dgemm], cores=8)["xfer"]
        s50 = fair_shares([CpuTask("xfer", 50), dgemm], cores=8)["xfer"]
        assert s50 > 5 * s2

    def test_zero_entities_task_gets_zero(self):
        shares = fair_shares(
            [CpuTask("none", 0), CpuTask("some", 4)], cores=2
        )
        assert shares["none"] == 0.0
        assert shares["some"] == pytest.approx(2.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            fair_shares([CpuTask("a", 1), CpuTask("a", 1)], cores=1)

    def test_nonpositive_cores_rejected(self):
        with pytest.raises(ValueError):
            fair_shares([CpuTask("a", 1)], cores=0)

    def test_task_validation(self):
        with pytest.raises(ValueError):
            CpuTask("", 1)
        with pytest.raises(ValueError):
            CpuTask("a", -1)
        with pytest.raises(ValueError):
            CpuTask("a", 1, weight=0.0)
        with pytest.raises(ValueError):
            CpuTask("a", 1, demand_cores_per_entity=-0.5)


@st.composite
def scheduling_problems(draw):
    n_tasks = draw(st.integers(1, 6))
    tasks = [
        CpuTask(
            f"t{i}",
            n_entities=draw(st.integers(0, 200)),
            weight=draw(st.floats(0.05, 5.0)),
            demand_cores_per_entity=draw(st.floats(0.0, 2.0)),
        )
        for i in range(n_tasks)
    ]
    cores = draw(st.integers(1, 64))
    return tasks, cores


TOL = 1e-6


@given(scheduling_problems())
@settings(max_examples=200, deadline=None)
def test_fair_share_invariants(problem):
    tasks, cores = problem
    shares = fair_shares(tasks, cores)

    total = sum(shares.values())
    assert total <= cores + TOL

    total_demand = sum(t.n_entities * t.demand_cores_per_entity for t in tasks)
    for t in tasks:
        assert shares[t.name] >= -TOL
        assert shares[t.name] <= t.n_entities * t.demand_cores_per_entity + TOL

    # Work-conserving: all cores used unless total demand is lower.
    assert total >= min(cores, total_demand) - 1e-4

    # Oversubscribed fairness: per-entity share per unit weight is equal
    # across tasks that are not demand-capped.
    if total_demand > cores + TOL:
        levels = []
        for t in tasks:
            if t.n_entities == 0:
                continue
            per_entity = shares[t.name] / t.n_entities
            if per_entity < t.demand_cores_per_entity - TOL:
                levels.append(per_entity / t.weight)
        for a in levels:
            for b in levels:
                assert a == pytest.approx(b, abs=1e-4)


class TestContextSwitchEfficiency:
    def test_no_penalty_up_to_core_count(self):
        assert context_switch_efficiency(0, 8, 0.01) == 1.0
        assert context_switch_efficiency(8, 8, 0.01) == 1.0

    def test_monotone_decreasing(self):
        vals = [
            context_switch_efficiency(r, 8, 0.01)
            for r in (8, 16, 64, 256, 1024)
        ]
        assert all(a >= b for a, b in zip(vals, vals[1:]))
        assert vals[-1] > 0.0

    def test_matches_formula(self):
        assert context_switch_efficiency(108, 8, 0.01) == pytest.approx(
            1.0 / (1.0 + 0.01 * (108 / 8 - 1))
        )

    def test_size_invariance(self):
        # Same per-core crowding -> same efficiency, any machine size.
        assert context_switch_efficiency(80, 8, 0.03) == pytest.approx(
            context_switch_efficiency(320, 32, 0.03)
        )

    def test_zero_coeff_is_free(self):
        assert context_switch_efficiency(10_000, 1, 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            context_switch_efficiency(-1, 8, 0.01)
        with pytest.raises(ValueError):
            context_switch_efficiency(1, 0, 0.01)
        with pytest.raises(ValueError):
            context_switch_efficiency(1, 8, -0.01)
