"""Unit tests for the memory-bus contention model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.endpoint.host import NEHALEM, HostSpec
from repro.endpoint.memory import NEHALEM_BUS, MemoryBus


class TestMemoryBus:
    def test_idle_bus_cap_is_bandwidth_over_multiplier(self):
        bus = MemoryBus(bandwidth_mbps=21_000.0, bytes_on_bus_per_byte=3.0)
        assert bus.transfer_cap_mbps(2, 0) == pytest.approx(7000.0)

    def test_cap_shrinks_with_dgemm_threads(self):
        caps = [NEHALEM_BUS.transfer_cap_mbps(2, t) for t in (0, 64, 256, 512)]
        assert all(a >= b for a, b in zip(caps, caps[1:]))

    def test_more_processes_reclaim_bus_share(self):
        # The same mechanism as CPU share: concurrency wins arbitration
        # slots back from dgemm.
        low = NEHALEM_BUS.transfer_cap_mbps(2, 128)
        high = NEHALEM_BUS.transfer_cap_mbps(50, 128)
        assert high > 5 * low

    def test_grant_never_below_weighted_share(self):
        # Even a fully demanded bus grants the transfer its weighted slice.
        bus = MemoryBus(bandwidth_mbps=10_000.0, dgemm_demand_mbps=1e6)
        cap = bus.transfer_cap_mbps(10, 10)
        expect = 10_000.0 * 10 / (10 + 0.35 * 10) / 3.0
        assert cap == pytest.approx(expect)

    def test_leftover_used_when_dgemm_demand_is_light(self):
        bus = MemoryBus(bandwidth_mbps=10_000.0, dgemm_demand_mbps=10.0)
        # 8 dgemm threads demand only 80 -> leftover 9920 dominates the
        # tiny weighted share of one process.
        assert bus.transfer_cap_mbps(1, 8) == pytest.approx(9920.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBus(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            MemoryBus(bytes_on_bus_per_byte=0.5)
        with pytest.raises(ValueError):
            MemoryBus(dgemm_demand_mbps=-1)
        with pytest.raises(ValueError):
            MemoryBus(dgemm_weight=0)
        with pytest.raises(ValueError):
            NEHALEM_BUS.transfer_cap_mbps(0, 0)
        with pytest.raises(ValueError):
            NEHALEM_BUS.transfer_cap_mbps(1, -1)


class TestHostIntegration:
    def test_nehalem_preset_has_bus(self):
        assert NEHALEM.membus is not None
        assert math.isfinite(NEHALEM.memory_cap_mbps(2, 16))

    def test_busless_host_is_uncapped(self):
        host = HostSpec("h", cores=8, core_copy_rate_mbps=1000.0)
        assert host.memory_cap_mbps(2, 64) == math.inf

    def test_cap_uses_threads_per_copy(self):
        # ext_cmp copies spawn one thread per core.
        direct = NEHALEM.membus.transfer_cap_mbps(4, 16 * NEHALEM.cores)
        assert NEHALEM.memory_cap_mbps(4, 16) == pytest.approx(direct)


@given(
    nc=st.integers(1, 256),
    threads=st.integers(0, 1024),
    bw=st.floats(100.0, 1e6),
)
@settings(max_examples=200, deadline=None)
def test_cap_bounds_property(nc, threads, bw):
    bus = MemoryBus(bandwidth_mbps=bw)
    cap = bus.transfer_cap_mbps(nc, threads)
    assert 0.0 < cap <= bw / bus.bytes_on_bus_per_byte + 1e-9
