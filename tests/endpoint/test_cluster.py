"""Tests for striped DTN clusters."""

import pytest

from repro.analysis.stats import steady_state_mean
from repro.endpoint.cluster import striped_host, striped_nic_capacity
from repro.endpoint.host import NEHALEM
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.experiments.runner import make_session
from repro.net.link import Link, Path
from repro.net.tcp import HTCP, TcpModel
from repro.net.topology import Topology
from repro.sim.engine import Engine, EngineConfig
from repro.units import MB


class TestStripedHost:
    def test_one_stripe_is_identity(self):
        assert striped_host(NEHALEM, 1) is NEHALEM

    def test_scales_cores_and_bus(self):
        h4 = striped_host(NEHALEM, 4)
        assert h4.cores == 4 * NEHALEM.cores
        assert h4.membus.bandwidth_mbps == pytest.approx(
            4 * NEHALEM.membus.bandwidth_mbps
        )
        assert h4.name.endswith("-x4")

    def test_preserves_per_core_constants(self):
        h2 = striped_host(NEHALEM, 2)
        assert h2.core_copy_rate_mbps == NEHALEM.core_copy_rate_mbps
        assert h2.cs_coeff == NEHALEM.cs_coeff

    def test_drops_numa_layout(self):
        assert striped_host(NEHALEM, 2).sockets is None

    def test_validation(self):
        with pytest.raises(ValueError):
            striped_host(NEHALEM, 0)
        with pytest.raises(ValueError):
            striped_nic_capacity(0.0, 2)
        with pytest.raises(ValueError):
            striped_nic_capacity(1000.0, 0)

    def test_nic_capacity_scales(self):
        assert striped_nic_capacity(5000.0, 3) == 15000.0


class TestStripedEndToEnd:
    @staticmethod
    def _run(stripes: int, tuner, nc0: int = 16, duration: float = 1800.0,
             seed: int = 0) -> float:
        """A transfer from a striped endpoint under heavy dgemm load."""
        host = striped_host(NEHALEM, stripes)
        nic = Link("nic", striped_nic_capacity(5000.0, stripes))
        topo = Topology()
        topo.add_path(
            Path(
                name="p", links=(nic, Link("wan", 20_000.0)), rtt_ms=2.0,
                loss_rate=1e-6, loss_per_stream=2.7e-6,
                tcp=TcpModel(cc=HTCP, wmax_bytes=4 * MB, slow_start_tau=2.0),
            )
        )
        session = make_session("main", "p", tuner, duration_s=duration,
                               fixed_np=8, max_nc=512, x0=(nc0,))
        engine = Engine(
            topology=topo, host=host, sessions=[session],
            schedule=LoadSchedule.constant(ExternalLoad(ext_cmp=16)),
            config=EngineConfig(seed=seed),
        )
        return steady_state_mean(engine.run()["main"])

    def test_stripes_raise_the_static_ceiling(self):
        from repro.core.base import StaticTuner

        one = self._run(1, StaticTuner(params=(60,)), duration=240.0)
        four = self._run(4, StaticTuner(params=(120,)), duration=240.0)
        assert four > 2.5 * one

    def test_tuner_exploits_the_extra_stripes(self):
        # cs-tuner's sustained lambda=8 strides suit the long climb the
        # 4-stripe optimum (nc ~ 120+) requires.
        from repro.core.cs_tuner import CsTuner

        one = self._run(1, CsTuner(seed=0))
        four = self._run(4, CsTuner(seed=0))
        assert four > 1.8 * one
