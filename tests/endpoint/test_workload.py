"""Unit and property tests for the random workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.endpoint.workload import BurstyTraffic, DiurnalTraffic, PoissonJobMix


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestPoissonJobMix:
    def test_schedule_starts_at_zero_load(self):
        sched = PoissonJobMix().schedule(3600.0, _rng())
        assert sched.at(0.0).ext_cmp == 0

    def test_occupancy_tracks_littles_law(self):
        # M/M/inf mean occupancy = lambda * mean service time.
        mix = PoissonJobMix(arrival_per_hour=36.0, mean_duration_s=600.0,
                            max_jobs=1000)
        sched = mix.schedule(200_000.0, _rng(1))
        times = np.arange(0.0, 200_000.0, 60.0)
        mean_jobs = np.mean([sched.at(float(t)).ext_cmp for t in times])
        expect = 36.0 / 3600.0 * 600.0  # = 6 concurrent jobs
        assert mean_jobs == pytest.approx(expect, rel=0.3)

    def test_max_jobs_cap(self):
        mix = PoissonJobMix(arrival_per_hour=3600.0, mean_duration_s=3600.0,
                            max_jobs=4)
        sched = mix.schedule(7200.0, _rng(2))
        times = np.arange(0.0, 7200.0, 30.0)
        assert max(sched.at(float(t)).ext_cmp for t in times) <= 4

    def test_zero_rate_is_always_idle(self):
        sched = PoissonJobMix(arrival_per_hour=0.0).schedule(3600.0, _rng())
        assert sched.at(1800.0).ext_cmp == 0

    def test_reproducible_under_seed(self):
        a = PoissonJobMix().schedule(3600.0, _rng(7))
        b = PoissonJobMix().schedule(3600.0, _rng(7))
        times = np.arange(0.0, 3600.0, 10.0)
        assert all(a.at(float(t)) == b.at(float(t)) for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonJobMix(arrival_per_hour=-1)
        with pytest.raises(ValueError):
            PoissonJobMix(mean_duration_s=0)
        with pytest.raises(ValueError):
            PoissonJobMix(max_jobs=0)
        with pytest.raises(ValueError):
            PoissonJobMix().schedule(0.0, _rng())


class TestDiurnalTraffic:
    def test_cycle_peaks_and_troughs(self):
        dt = DiurnalTraffic(base_streams=8, amplitude_streams=48,
                            period_s=86_400.0, noise_streams=0.0)
        sched = dt.schedule(86_400.0, _rng())
        quarter = sched.at(86_400.0 / 4).ext_tfr     # sin peak
        three_q = sched.at(3 * 86_400.0 / 4).ext_tfr  # sin trough
        assert quarter == pytest.approx(8 + 48, abs=2)
        assert three_q == pytest.approx(8, abs=2)

    def test_levels_never_negative(self):
        dt = DiurnalTraffic(base_streams=0, amplitude_streams=8,
                            noise_streams=20.0)
        sched = dt.schedule(7200.0, _rng(3))
        times = np.arange(0.0, 7200.0, 60.0)
        assert all(sched.at(float(t)).ext_tfr >= 0 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTraffic(period_s=0)
        with pytest.raises(ValueError):
            DiurnalTraffic(noise_streams=-1)


class TestBurstyTraffic:
    def test_alternates_quiet_and_burst(self):
        bt = BurstyTraffic(burst_streams=64, mean_quiet_s=100.0,
                           mean_burst_s=100.0)
        sched = bt.schedule(50_000.0, _rng(4))
        times = np.arange(0.0, 50_000.0, 20.0)
        levels = {sched.at(float(t)).ext_tfr for t in times}
        assert levels == {0, 64}

    def test_burst_fraction_roughly_matches_duty_cycle(self):
        bt = BurstyTraffic(burst_streams=10, mean_quiet_s=300.0,
                           mean_burst_s=100.0)
        sched = bt.schedule(400_000.0, _rng(5))
        times = np.arange(0.0, 400_000.0, 20.0)
        frac = np.mean([sched.at(float(t)).ext_tfr > 0 for t in times])
        assert frac == pytest.approx(0.25, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyTraffic(burst_streams=0)
        with pytest.raises(ValueError):
            BurstyTraffic(mean_quiet_s=0)


@given(seed=st.integers(0, 1000), duration=st.floats(60.0, 20_000.0))
@settings(max_examples=50, deadline=None)
def test_all_generators_produce_valid_schedules(seed, duration):
    rng = np.random.default_rng(seed)
    for gen in (PoissonJobMix(), DiurnalTraffic(), BurstyTraffic()):
        sched = gen.schedule(duration, rng)
        # Total (defined everywhere) and consistent at probe points.
        for t in (0.0, duration / 3, duration):
            load = sched.at(t)
            assert load.ext_cmp >= 0 and load.ext_tfr >= 0
        starts = [0.0] + sched.change_times
        assert all(b > a for a, b in zip(starts, starts[1:]))
