"""Unit tests for external load schedules and host specs."""

import pytest

from repro.endpoint.host import NEHALEM, SANDYBRIDGE_TACC, SANDYBRIDGE_UC, HostSpec
from repro.endpoint.load import ExternalLoad, LoadSchedule


class TestExternalLoad:
    def test_defaults_are_unloaded(self):
        load = ExternalLoad()
        assert load.ext_cmp == 0 and load.ext_tfr == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ExternalLoad(ext_cmp=-1)
        with pytest.raises(ValueError):
            ExternalLoad(ext_tfr=-1)

    def test_str_is_readable(self):
        assert str(ExternalLoad(16, 64)) == "ext.cmp=16, ext.tfr=64"

    def test_frozen_and_hashable(self):
        assert ExternalLoad(1, 2) == ExternalLoad(1, 2)
        assert hash(ExternalLoad(1, 2)) == hash(ExternalLoad(1, 2))


class TestLoadSchedule:
    def test_constant(self):
        sched = LoadSchedule.constant(ExternalLoad(16, 0))
        assert sched.at(0.0).ext_cmp == 16
        assert sched.at(1e6).ext_cmp == 16
        assert sched.change_times == []

    def test_piecewise_switch_is_left_closed(self):
        sched = LoadSchedule(
            [(0.0, ExternalLoad(16, 64)), (1000.0, ExternalLoad(16, 16))]
        )
        assert sched.at(999.999).ext_tfr == 64
        assert sched.at(1000.0).ext_tfr == 16
        assert sched.change_times == [1000.0]

    def test_requires_t0_segment(self):
        with pytest.raises(ValueError):
            LoadSchedule([(10.0, ExternalLoad())])

    def test_requires_increasing_starts(self):
        with pytest.raises(ValueError):
            LoadSchedule(
                [(0.0, ExternalLoad()), (5.0, ExternalLoad()), (5.0, ExternalLoad())]
            )

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            LoadSchedule([])

    def test_rejects_negative_time(self):
        sched = LoadSchedule.constant(ExternalLoad())
        with pytest.raises(ValueError):
            sched.at(-1.0)


class TestHostSpec:
    def test_presets_match_testbed(self):
        assert NEHALEM.cores == 8          # dual-socket quad-core
        assert SANDYBRIDGE_UC.cores == 16  # dual-socket 8-core
        assert SANDYBRIDGE_TACC.cores == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            HostSpec("h", cores=0, core_copy_rate_mbps=100.0)
        with pytest.raises(ValueError):
            HostSpec("h", cores=1, core_copy_rate_mbps=0.0)
        with pytest.raises(ValueError):
            HostSpec("h", cores=1, core_copy_rate_mbps=1.0, cs_coeff=-1.0)
        with pytest.raises(ValueError):
            HostSpec("h", cores=1, core_copy_rate_mbps=1.0, thread_overhead=1.0)
        with pytest.raises(ValueError):
            HostSpec("h", cores=1, core_copy_rate_mbps=1.0, dgemm_thread_weight=0.0)
