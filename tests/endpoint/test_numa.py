"""Unit tests for the NUMA pinning model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.endpoint.numa import (
    NEHALEM_LAYOUT,
    PinnedLayout,
    PinningPolicy,
    SocketLayout,
    best_policy,
)


class TestSocketLayout:
    def test_nehalem_preset(self):
        assert NEHALEM_LAYOUT.total_cores == 8
        assert NEHALEM_LAYOUT.n_sockets == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SocketLayout(n_sockets=0)
        with pytest.raises(ValueError):
            SocketLayout(cores_per_socket=0)
        with pytest.raises(ValueError):
            SocketLayout(nic_socket=5)
        with pytest.raises(ValueError):
            SocketLayout(remote_penalty=1.0)
        with pytest.raises(ValueError):
            SocketLayout(migration_penalty=-0.1)


class TestPlacement:
    def test_alternate_round_robins(self):
        p = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.ALTERNATE, nc=5)
        assert p.per_socket_processes() == [3, 2]

    def test_nic_first_fills_nic_socket(self):
        p = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.NIC_FIRST, nc=3)
        assert p.per_socket_processes() == [3, 0]

    def test_nic_first_spills_over(self):
        p = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.NIC_FIRST, nc=6)
        assert p.per_socket_processes() == [4, 2]

    def test_nic_first_beyond_all_cores_round_robins(self):
        p = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.NIC_FIRST, nc=10)
        counts = p.per_socket_processes()
        assert sum(counts) == 10
        assert counts[0] >= counts[1]

    def test_counts_conserve_processes(self):
        for policy in PinningPolicy:
            for nc in (1, 4, 7, 16, 33):
                p = PinnedLayout(NEHALEM_LAYOUT, policy, nc)
                assert sum(p.per_socket_processes()) == nc


class TestEfficiency:
    def test_single_process_on_nic_socket_is_free(self):
        for policy in (PinningPolicy.ALTERNATE, PinningPolicy.NIC_FIRST):
            p = PinnedLayout(NEHALEM_LAYOUT, policy, nc=1)
            assert p.efficiency() == pytest.approx(1.0)

    def test_remote_socket_pays_penalty(self):
        # 2 processes, alternate: one local, one remote.
        p = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.ALTERNATE, nc=2)
        expect = (1.0 + (1.0 - NEHALEM_LAYOUT.remote_penalty)) / 2.0
        assert p.efficiency() == pytest.approx(expect)

    def test_nic_first_beats_alternate_at_low_nc(self):
        # Up to one socket's worth of copies, keeping them NIC-local wins.
        alt = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.ALTERNATE, nc=4)
        nic = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.NIC_FIRST, nc=4)
        assert nic.efficiency() > alt.efficiency()

    def test_policies_converge_when_both_sockets_full(self):
        # Beyond both sockets' capacity the placements even out and only
        # the locality mix matters; with symmetric counts they tie.
        alt = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.ALTERNATE, nc=10)
        nic = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.NIC_FIRST, nc=10)
        assert alt.per_socket_processes() == nic.per_socket_processes()
        assert alt.efficiency() == pytest.approx(nic.efficiency())

    def test_unpinned_always_pays_migration(self):
        pinned = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.ALTERNATE, nc=4)
        loose = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.UNPINNED, nc=4)
        assert loose.efficiency() == pytest.approx(
            pinned.efficiency() * (1 - NEHALEM_LAYOUT.migration_penalty)
        )

    def test_effective_rate_scales_and_validates(self):
        p = PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.ALTERNATE, nc=4)
        assert p.effective_rate_mbps(1000.0) == pytest.approx(
            4 * 1000.0 * p.efficiency()
        )
        with pytest.raises(ValueError):
            p.effective_rate_mbps(0.0)

    def test_best_policy_matches_manual_comparison(self):
        policy, eff = best_policy(NEHALEM_LAYOUT, 4)
        assert policy is PinningPolicy.NIC_FIRST
        assert eff == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PinnedLayout(NEHALEM_LAYOUT, PinningPolicy.ALTERNATE, nc=0)


@given(
    nc=st.integers(1, 200),
    sockets=st.integers(1, 4),
    cores=st.integers(1, 16),
    policy=st.sampled_from(list(PinningPolicy)),
)
@settings(max_examples=200, deadline=None)
def test_efficiency_bounds_property(nc, sockets, cores, policy):
    layout = SocketLayout(n_sockets=sockets, cores_per_socket=cores,
                          nic_socket=0)
    p = PinnedLayout(layout, policy, nc)
    eff = p.efficiency()
    assert 0.0 < eff <= 1.0
    assert sum(p.per_socket_processes()) == nc
