"""Unit tests for analysis statistics."""

import pytest

from repro.analysis.stats import (
    box_stats,
    improvement_factor,
    steady_state_mean,
    time_to_steady_state,
)
from repro.sim.trace import EpochRecord, Trace


def _trace(observed, best=None):
    t = Trace()
    for i, v in enumerate(observed):
        b = best[i] if best is not None else v
        t.add_epoch(
            EpochRecord(index=i, start=30.0 * i, duration=30.0, params=(2,),
                        observed=v, best_case=b, bytes_moved=v * 30e6)
        )
    return t


class TestBoxStats:
    def test_five_numbers(self):
        s = box_stats([1, 2, 3, 4, 5])
        assert (s.minimum, s.median, s.maximum) == (1, 3, 5)
        assert s.q1 == 2 and s.q3 == 4
        assert s.mean == 3
        assert s.iqr == 2

    def test_single_sample(self):
        s = box_stats([7.0])
        assert s.minimum == s.median == s.maximum == 7.0

    def test_rejects_empty_and_nan(self):
        with pytest.raises(ValueError):
            box_stats([])
        with pytest.raises(ValueError):
            box_stats([1.0, float("nan")])


class TestSteadyStateMean:
    def test_uses_tail_only(self):
        t = _trace([0, 0, 100, 100])
        assert steady_state_mean(t, tail_fraction=0.5) == 100.0

    def test_full_trace(self):
        t = _trace([50, 150])
        assert steady_state_mean(t, tail_fraction=1.0) == 100.0

    def test_best_case_flag(self):
        t = _trace([100, 100], best=[200, 200])
        assert steady_state_mean(t, best_case=True) == 200.0

    def test_validation(self):
        t = _trace([1.0])
        with pytest.raises(ValueError):
            steady_state_mean(t, tail_fraction=0.0)
        with pytest.raises(ValueError):
            steady_state_mean(Trace())


class TestTimeToSteadyState:
    def test_detects_transient_length(self):
        t = _trace([10, 50, 95, 100, 102, 99, 101])
        # Steady level ~ 100; the first epoch within 10% is index 2.
        assert time_to_steady_state(t) == 60.0

    def test_immediate_steady(self):
        t = _trace([100, 100, 100])
        assert time_to_steady_state(t) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            time_to_steady_state(_trace([1.0]), tolerance_pct=0.0)


class TestImprovementFactor:
    def test_ratio(self):
        tuned = _trace([0, 400])
        base = _trace([0, 100])
        assert improvement_factor(tuned, base) == 4.0

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            improvement_factor(_trace([0, 10]), _trace([0, 0]))
