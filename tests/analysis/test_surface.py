"""Unit tests for response-surface characterization."""

import math

import numpy as np
import pytest

from repro.analysis.surface import (
    critical_point,
    fit_lu_model,
    unimodality_score,
)
from repro.analysis.stats import steady_state_mean
from repro.core.base import StaticTuner
from repro.endpoint.load import ExternalLoad
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC


def _lu_samples(a, b, c, ns):
    def model(n):
        return n / math.sqrt(a * n * n + b * n + c)

    return ns, [model(n) for n in ns]


class TestFitLuModel:
    def test_exact_recovery_on_model_data(self):
        ns, ts = _lu_samples(1.0, -0.4, 4.0, [2, 5, 10, 20, 30, 50])
        fit = fit_lu_model(ns, ts)
        assert fit.a == pytest.approx(1.0, rel=1e-6)
        assert fit.b == pytest.approx(-0.4, rel=1e-6)
        assert fit.c == pytest.approx(4.0, rel=1e-6)
        assert fit.residual < 1e-9
        assert fit.optimum == pytest.approx(20.0, rel=1e-6)

    def test_predict_matches_samples(self):
        ns, ts = _lu_samples(0.5, -0.2, 3.0, [1, 4, 9, 16])
        fit = fit_lu_model(ns, ts)
        np.testing.assert_allclose(fit.predict(np.array(ns)), ts, rtol=1e-6)

    def test_monotone_data_has_no_interior_optimum(self):
        # Linear throughput growth: b >= 0 after the fit.
        ns = [1, 2, 4, 8, 16]
        ts = [10.0 * n for n in ns]
        assert fit_lu_model(ns, ts).optimum is None

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_lu_model([1, 2], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_lu_model([1, 2, 3], [1.0, 0.0, 2.0])
        with pytest.raises(ValueError):
            fit_lu_model([0, 2, 3], [1.0, 1.0, 2.0])


class TestCriticalPoint:
    def test_ci_brackets_true_optimum_on_noisy_data(self):
        rng = np.random.default_rng(0)
        ns = list(range(2, 60, 4))
        _, ts = _lu_samples(1.0, -0.4, 4.0, ns)
        noisy = [t * float(rng.normal(1.0, 0.03)) for t in ts]
        est = critical_point(ns, noisy, seed=1)
        assert est.ci_low <= est.point <= est.ci_high
        assert est.ci_low <= 20.0 + 8.0 and est.ci_high >= 20.0 - 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            critical_point([1, 2, 3], [1, 2, 3], ci=1.0)
        with pytest.raises(ValueError):
            critical_point([1, 2, 3], [1, 2, 3], n_boot=0)

    def test_on_measured_substrate_sweep(self):
        # The Fig. 1 no-load surface: critical point near 64 streams.
        ns = [4, 8, 16, 32, 64, 128, 256]
        ts = []
        for nc in ns:
            trace = run_single(
                ANL_UC, StaticTuner(), load=ExternalLoad(), x0=(nc,),
                fixed_np=1, duration_s=180.0, seed=3,
            )
            ts.append(steady_state_mean(trace, tail_fraction=0.75))
        est = critical_point(ns, ts, n_boot=50, seed=2)
        # The Lu curve is only an approximation of the substrate's
        # overhead-driven decline, so assert bracketing: the bootstrap CI
        # must contain the empirical argmax (64 streams).
        empirical = ns[int(np.argmax(ts))]
        assert est.ci_low <= empirical <= est.ci_high
        assert 8 <= est.point <= 256


class TestUnimodalityScore:
    def test_perfectly_unimodal_is_one(self):
        assert unimodality_score([1, 3, 7, 9, 6, 2]) == pytest.approx(1.0)

    def test_monotone_is_unimodal(self):
        assert unimodality_score([1, 2, 3, 4]) == pytest.approx(1.0)

    def test_bimodal_scores_lower(self):
        bimodal = [1, 8, 2, 8, 1]
        assert unimodality_score(bimodal) < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            unimodality_score([1.0, 2.0])
