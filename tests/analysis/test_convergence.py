"""Unit tests for regret/convergence metrics and the oracle sweep."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    cumulative_bytes,
    epochs_to_fraction_of_oracle,
    regret_curve,
    regret_fraction,
    search_cost_bytes,
)
from repro.core.base import StaticTuner
from repro.endpoint.load import ExternalLoad
from repro.experiments.oracle import (
    OracleResult,
    oracle_static_nc,
    oracle_static_nc_np,
)
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC
from repro.sim.trace import EpochRecord, Trace
from repro.units import MB


def _trace(observed):
    t = Trace()
    for i, v in enumerate(observed):
        t.add_epoch(
            EpochRecord(index=i, start=30.0 * i, duration=30.0, params=(2,),
                        observed=v, best_case=v, bytes_moved=v * 30 * MB)
        )
    return t


class TestRegret:
    def test_cumulative_bytes(self):
        t = _trace([100.0, 200.0])
        np.testing.assert_allclose(
            cumulative_bytes(t), [100 * 30 * MB, 300 * 30 * MB]
        )

    def test_perfect_run_has_zero_regret(self):
        t = _trace([500.0, 500.0, 500.0])
        assert regret_fraction(t, 500.0) == pytest.approx(0.0, abs=1e-12)

    def test_half_rate_run_has_half_regret(self):
        t = _trace([250.0] * 4)
        assert regret_fraction(t, 500.0) == pytest.approx(0.5)

    def test_regret_curve_monotone_for_below_oracle_runs(self):
        t = _trace([100.0, 200.0, 300.0])
        curve = regret_curve(t, 400.0)
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_beating_the_oracle_clips_to_zero(self):
        t = _trace([600.0, 600.0])
        assert regret_fraction(t, 500.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            regret_curve(_trace([1.0]), 0.0)
        with pytest.raises(ValueError):
            cumulative_bytes(Trace())


class TestSearchCost:
    def test_transient_shortfall_counted(self):
        t = _trace([100.0, 300.0, 500.0, 500.0, 500.0, 500.0])
        cost = search_cost_bytes(t, tail_fraction=0.5)
        assert cost == pytest.approx((400 + 200) * 30 * MB)

    def test_flat_run_has_zero_cost(self):
        t = _trace([500.0] * 6)
        assert search_cost_bytes(t) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            search_cost_bytes(_trace([1.0]), tail_fraction=0.0)


class TestEpochsToFraction:
    def test_finds_first_crossing(self):
        t = _trace([100.0, 300.0, 450.0, 500.0])
        assert epochs_to_fraction_of_oracle(t, 500.0, fraction=0.8) == 2

    def test_never_reached_returns_none(self):
        t = _trace([100.0, 100.0])
        assert epochs_to_fraction_of_oracle(t, 500.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            epochs_to_fraction_of_oracle(_trace([1.0]), 500.0, fraction=0.0)
        with pytest.raises(ValueError):
            epochs_to_fraction_of_oracle(_trace([1.0]), 0.0)


class TestOracle:
    def test_oracle_result_regret_fraction(self):
        o = OracleResult(params=(8,), throughput_mbps=1000.0, evaluations=5)
        assert o.regret_fraction(800.0) == pytest.approx(0.2)
        assert o.regret_fraction(1200.0) == 0.0
        with pytest.raises(ValueError):
            OracleResult((1,), 0.0, 1).regret_fraction(1.0)

    def test_oracle_finds_interior_optimum_no_load(self):
        oracle = oracle_static_nc(
            ANL_UC, candidates=(2, 4, 8, 16, 32), duration_s=120.0
        )
        # The calibrated no-load surface peaks around nc=8 at np=8.
        assert oracle.params[0] in (4, 8)
        assert oracle.evaluations == 5

    def test_oracle_optimum_shifts_under_load(self):
        free = oracle_static_nc(
            ANL_UC, candidates=(2, 8, 32, 80), duration_s=120.0
        )
        loaded = oracle_static_nc(
            ANL_UC, load=ExternalLoad(ext_cmp=16),
            candidates=(2, 8, 32, 80), duration_s=120.0,
        )
        assert loaded.params[0] > free.params[0]

    def test_oracle_beats_default(self):
        oracle = oracle_static_nc(
            ANL_UC, candidates=(2, 4, 8, 16), duration_s=120.0
        )
        default = run_single(ANL_UC, StaticTuner(), duration_s=120.0)
        from repro.analysis.stats import steady_state_mean

        assert oracle.throughput_mbps >= steady_state_mean(
            default, tail_fraction=0.75
        ) - 1e-6

    def test_oracle_2d(self):
        oracle = oracle_static_nc_np(
            ANL_UC, nc_candidates=(2, 8), np_candidates=(4, 8),
            duration_s=90.0,
        )
        assert len(oracle.params) == 2
        assert oracle.evaluations == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            oracle_static_nc(ANL_UC, candidates=())
        with pytest.raises(ValueError):
            oracle_static_nc(ANL_UC, candidates=(9999,))
        with pytest.raises(ValueError):
            oracle_static_nc_np(ANL_UC, nc_candidates=())
