"""Unit tests for the globus-url-copy client and restart models."""

import numpy as np
import pytest

from repro.endpoint.host import NEHALEM
from repro.gridftp.client import ClientModel, RestartModel


class TestRestartModel:
    def test_base_cost_without_contention(self):
        m = RestartModel(base_s=3.0, per_proc_s=0.025, jitter_sigma=0.0)
        assert m.restart_time_s(2, 0.0, 30.0) == pytest.approx(3.05)

    def test_grows_with_process_count(self):
        m = RestartModel(jitter_sigma=0.0)
        assert m.restart_time_s(64, 0.0, 30.0) > m.restart_time_s(2, 0.0, 30.0)

    def test_grows_with_compute_contention(self):
        m = RestartModel(jitter_sigma=0.0)
        t_idle = m.restart_time_s(8, 0.0, 30.0)
        t_half = m.restart_time_s(8, 0.5, 30.0)
        t_heavy = m.restart_time_s(8, 0.8, 30.0)
        assert t_idle < t_half < t_heavy

    def test_clamped_to_fraction_of_epoch(self):
        m = RestartModel(base_s=100.0, jitter_sigma=0.0,
                         max_fraction_of_epoch=0.9)
        assert m.restart_time_s(1, 0.0, 30.0) == pytest.approx(27.0)

    def test_warm_restart_discount(self):
        m = RestartModel(jitter_sigma=0.0, warm_np_factor=0.2)
        cold = m.restart_time_s(8, 0.0, 30.0)
        warm = m.restart_time_s(8, 0.0, 30.0, warm=True)
        assert warm == pytest.approx(0.2 * cold)

    def test_warm_factor_one_means_no_discount(self):
        m = RestartModel(jitter_sigma=0.0)
        assert m.restart_time_s(8, 0.0, 30.0) == pytest.approx(
            m.restart_time_s(8, 0.0, 30.0, warm=True)
        )

    def test_jitter_is_applied_with_rng(self):
        m = RestartModel(jitter_sigma=0.5)
        rng = np.random.default_rng(0)
        draws = {m.restart_time_s(2, 0.0, 30.0, rng=rng) for _ in range(5)}
        assert len(draws) > 1

    def test_no_rng_is_deterministic(self):
        m = RestartModel(jitter_sigma=0.5)
        assert m.restart_time_s(2, 0.0, 30.0) == m.restart_time_s(2, 0.0, 30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartModel(base_s=-1.0)
        with pytest.raises(ValueError):
            RestartModel(cmp_beta=-1.0)
        with pytest.raises(ValueError):
            RestartModel(max_fraction_of_epoch=0.0)
        with pytest.raises(ValueError):
            RestartModel(warm_np_factor=2.0)
        m = RestartModel()
        with pytest.raises(ValueError):
            m.restart_time_s(0, 0.0, 30.0)
        with pytest.raises(ValueError):
            m.restart_time_s(1, 1.0, 30.0)
        with pytest.raises(ValueError):
            m.restart_time_s(1, 0.0, 0.0)


class TestClientModel:
    def test_streams_is_nc_times_np(self):
        # "The number of TCP streams used by Globus GridFTP is the product
        # of concurrency and parallelism" — e.g. 2 x 4 = 8.
        assert ClientModel.streams(2, 4) == 8

    def test_processes_equals_nc(self):
        assert ClientModel.processes(5) == 5

    def test_thread_efficiency_single_stream_is_one(self):
        assert ClientModel.thread_efficiency(1, NEHALEM) == 1.0

    def test_thread_efficiency_decreases_and_floors(self):
        e8 = ClientModel.thread_efficiency(8, NEHALEM)
        e32 = ClientModel.thread_efficiency(32, NEHALEM)
        assert 0.5 <= e32 < e8 < 1.0
        assert ClientModel.thread_efficiency(10_000, NEHALEM) == 0.5

    def test_cpu_capacity_scales_with_share(self):
        c = ClientModel()
        r1 = c.cpu_capacity_mbps(8, 1.0, NEHALEM)
        r2 = c.cpu_capacity_mbps(8, 2.0, NEHALEM)
        assert r2 == pytest.approx(2 * r1)

    def test_cpu_capacity_zero_share(self):
        assert ClientModel().cpu_capacity_mbps(8, 0.0, NEHALEM) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientModel.streams(0, 1)
        with pytest.raises(ValueError):
            ClientModel.processes(0)
        with pytest.raises(ValueError):
            ClientModel.thread_efficiency(0, NEHALEM)
        with pytest.raises(ValueError):
            ClientModel().cpu_capacity_mbps(1, -1.0, NEHALEM)
