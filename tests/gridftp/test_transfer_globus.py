"""Unit tests for transfer accounting and Globus policy/faults."""

import math

import numpy as np
import pytest

from repro.gridftp.globus import FaultModel, GlobusPolicy
from repro.gridftp.transfer import TransferSpec, TransferState
from repro.units import GB, MB


def _spec(**kw):
    defaults = dict(name="t", path_name="p", total_bytes=10 * GB)
    defaults.update(kw)
    return TransferSpec(**defaults)


class TestTransferSpec:
    def test_unbounded_requires_duration(self):
        with pytest.raises(ValueError):
            TransferSpec("t", "p", total_bytes=math.inf)
        TransferSpec("t", "p", total_bytes=math.inf, max_duration_s=600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            _spec(name="")
        with pytest.raises(ValueError):
            _spec(path_name="")
        with pytest.raises(ValueError):
            _spec(total_bytes=0)
        with pytest.raises(ValueError):
            _spec(max_duration_s=0.0)
        with pytest.raises(ValueError):
            _spec(epoch_s=0.0)


class TestTransferState:
    def test_account_moves_bytes_and_time(self):
        st = TransferState(_spec())
        moved = st.account(1 * GB, 1.0)
        assert moved == 1 * GB
        assert st.remaining_bytes == 9 * GB
        assert st.elapsed_s == 1.0
        assert not st.done

    def test_account_clips_to_remaining(self):
        st = TransferState(_spec(total_bytes=100.0))
        assert st.account(1000.0, 1.0) == 100.0
        assert st.remaining_bytes == 0.0
        assert st.done

    def test_duration_limit_marks_done(self):
        st = TransferState(
            _spec(total_bytes=math.inf, max_duration_s=2.0)
        )
        st.account(0.0, 1.0)
        assert not st.done
        st.account(0.0, 1.0)
        assert st.done

    def test_conservation_over_many_steps(self):
        st = TransferState(_spec(total_bytes=1 * GB))
        total = 0.0
        while not st.done:
            total += st.account(37 * MB, 1.0)
        assert total == pytest.approx(1 * GB)

    def test_account_validation(self):
        st = TransferState(_spec())
        with pytest.raises(ValueError):
            st.account(-1.0, 1.0)
        with pytest.raises(ValueError):
            st.account(1.0, 0.0)


class TestGlobusPolicy:
    def test_large_file_defaults_match_paper(self):
        # "For large files, Globus transfer uses default values of 2 and 8"
        assert GlobusPolicy().choose(1 * GB) == (2, 8)

    def test_small_file_defaults(self):
        pol = GlobusPolicy()
        assert pol.choose(1 * MB) == (pol.small_nc, pol.small_np)

    def test_threshold_boundary(self):
        pol = GlobusPolicy()
        assert pol.choose(pol.large_file_threshold_bytes) == (2, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobusPolicy(large_nc=0)
        with pytest.raises(ValueError):
            GlobusPolicy(large_file_threshold_bytes=0)
        with pytest.raises(ValueError):
            GlobusPolicy().choose(0)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestFaultModel:
    def test_zero_probability_never_faults(self):
        fm = FaultModel(fault_prob_per_epoch=0.0)
        rng = np.random.default_rng(0)
        assert not any(fm.draw_fault(rng) for _ in range(100))

    def test_fault_rate_approximates_probability(self):
        fm = FaultModel(fault_prob_per_epoch=0.3)
        rng = np.random.default_rng(1)
        rate = sum(fm.draw_fault(rng) for _ in range(5000)) / 5000
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_certain_fault_probability_allowed(self):
        fm = FaultModel(fault_prob_per_epoch=1.0)
        rng = np.random.default_rng(2)
        assert all(fm.draw_fault(rng) for _ in range(100))

    def test_validation_message_names_the_interval(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultModel(fault_prob_per_epoch=1.5)
        with pytest.raises(ValueError):
            FaultModel(fault_prob_per_epoch=-0.1)
        with pytest.raises(ValueError):
            FaultModel(max_retries=-1)

    def test_nonzero_probability_warns_deprecated(self):
        with pytest.warns(DeprecationWarning):
            FaultModel(fault_prob_per_epoch=0.2)

    def test_zero_probability_stays_silent(self, recwarn):
        FaultModel(fault_prob_per_epoch=0.0)
        assert not any(
            isinstance(w.message, DeprecationWarning) for w in recwarn.list
        )

    def test_as_schedule_matches_rate_and_replays(self):
        fm = FaultModel(fault_prob_per_epoch=0.25)
        sched = fm.as_schedule(seed=7, n_epochs=400)
        again = fm.as_schedule(seed=7, n_epochs=400)
        assert sched == again
        rate = len(sched.fault_epochs()) / 400
        assert rate == pytest.approx(0.25, abs=0.06)
