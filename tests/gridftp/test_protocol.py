"""Unit and property tests for the GridFTP protocol emulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp.client import RestartModel
from repro.gridftp.protocol import (
    EBLOCK_HEADER_BYTES,
    ControlSession,
    ProtocolError,
    Reply,
    SessionState,
    distribute_blocks,
    eblock_efficiency,
    startup_time_s,
)


def _configured_session() -> ControlSession:
    s = ControlSession()
    s.auth("/DC=org/CN=test-user")
    s.set_type("I")
    s.set_mode("E")
    s.set_buffer(4 * 1024 * 1024)
    s.set_parallelism(8)
    s.spas(n_nodes=2)
    return s


class TestControlSequencing:
    def test_happy_path_full_transfer(self):
        s = _configured_session()
        assert s.retr("/dev/zero").code == 150
        assert s.state is SessionState.TRANSFERRING
        assert s.complete().code == 226
        assert s.state is SessionState.CONFIGURED
        assert s.quit().code == 221
        assert s.state is SessionState.CLOSED

    def test_commands_require_auth_first(self):
        s = ControlSession()
        with pytest.raises(ProtocolError):
            s.set_mode("E")
        with pytest.raises(ProtocolError):
            s.retr("/x")

    def test_cannot_auth_twice(self):
        s = ControlSession()
        s.auth("/CN=u")
        with pytest.raises(ProtocolError):
            s.auth("/CN=u")

    def test_parallelism_requires_mode_e(self):
        s = ControlSession()
        s.auth("/CN=u")
        s.set_type("I")  # CONFIGURED, but still MODE S
        with pytest.raises(ProtocolError):
            s.set_parallelism(8)

    def test_retr_requires_data_channels(self):
        s = ControlSession()
        s.auth("/CN=u")
        s.set_mode("E")
        with pytest.raises(ProtocolError):
            s.retr("/x")

    def test_abort_returns_to_configured(self):
        s = _configured_session()
        s.retr("/x")
        s.abort()
        assert s.state is SessionState.CONFIGURED
        # A new transfer can start on the same session.
        assert s.retr("/y").ok is False or True  # 150 is preliminary
        assert s.state is SessionState.TRANSFERRING

    def test_complete_only_while_transferring(self):
        s = _configured_session()
        with pytest.raises(ProtocolError):
            s.complete()

    def test_quit_twice_rejected(self):
        s = ControlSession()
        s.auth("/CN=u")
        s.quit()
        with pytest.raises(ProtocolError):
            s.quit()

    def test_invalid_arguments(self):
        s = ControlSession()
        with pytest.raises(ProtocolError):
            s.auth("")
        s.auth("/CN=u")
        with pytest.raises(ProtocolError):
            s.set_mode("X")
        with pytest.raises(ProtocolError):
            s.set_type("E")
        with pytest.raises(ProtocolError):
            s.set_buffer(0)
        s.set_mode("E")
        with pytest.raises(ProtocolError):
            s.set_parallelism(0)
        with pytest.raises(ProtocolError):
            s.spas(0)

    def test_spas_allocates_per_node_addresses(self):
        s = ControlSession(server_name="dtn1")
        s.auth("/CN=u")
        s.set_mode("E")
        s.spas(n_nodes=4)
        assert len(s.stripes) == 4
        assert len(set(s.stripes)) == 4
        assert all(a.startswith("dtn1-dn") for a in s.stripes)

    def test_round_trips_accumulate(self):
        s = _configured_session()
        # auth = 1 command + 2 ADAT legs; 4 config; 1 spas.
        assert s.round_trips == 1 + 2 + 4 + 1

    def test_reply_ok_semantics(self):
        assert Reply(226, "done").ok
        assert Reply(235, "auth").ok
        assert not Reply(550, "no such file").ok


class TestEblock:
    def test_header_size_matches_spec(self):
        assert EBLOCK_HEADER_BYTES == 17

    def test_efficiency_default_block_negligible(self):
        assert eblock_efficiency(256 * 1024) > 0.9999

    def test_efficiency_small_blocks_hurt(self):
        assert eblock_efficiency(64) < 0.8

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            eblock_efficiency(0)


class TestDistributeBlocks:
    def test_conserves_bytes(self):
        parts = distribute_blocks(10_000_000, 256 * 1024, 8)
        assert sum(parts) == 10_000_000

    def test_imbalance_below_one_block(self):
        parts = distribute_blocks(10_000_000, 256 * 1024, 8)
        assert max(parts) - min(parts) <= 256 * 1024

    def test_single_stream_gets_everything(self):
        assert distribute_blocks(999, 256, 1) == [999]

    def test_zero_bytes(self):
        assert distribute_blocks(0, 256, 4) == [0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            distribute_blocks(-1, 256, 1)
        with pytest.raises(ValueError):
            distribute_blocks(1, 0, 1)
        with pytest.raises(ValueError):
            distribute_blocks(1, 256, 0)

    @given(
        total=st.integers(0, 10**9),
        block=st.integers(1, 10**6),
        n=st.integers(1, 64),
    )
    @settings(max_examples=200, deadline=None)
    def test_conservation_and_balance_property(self, total, block, n):
        parts = distribute_blocks(total, block, n)
        assert len(parts) == n
        assert sum(parts) == total
        assert all(p >= 0 for p in parts)
        assert max(parts) - min(parts) <= block


class TestStartupTime:
    def test_round_trip_count(self):
        assert ControlSession.startup_round_trips() == 10
        assert ControlSession.startup_round_trips(striped=True) == 11

    def test_grows_with_rtt_and_nc(self):
        assert startup_time_s(0.05) > startup_time_s(0.002)
        assert startup_time_s(0.002, nc=64) > startup_time_s(0.002, nc=2)

    def test_protocol_plausibility_of_restart_model(self):
        """The calibrated RestartModel's no-load cost should be within the
        range the protocol derivation produces for the paper's setups."""
        model = RestartModel()
        calibrated = model.restart_time_s(8, 0.0, 30.0)
        derived = startup_time_s(
            0.033, nc=8, exec_load_s=1.0, per_channel_connect_s=0.05
        )
        assert 0.3 * calibrated < derived < 3.0 * calibrated

    def test_validation(self):
        with pytest.raises(ValueError):
            startup_time_s(0.0)
        with pytest.raises(ValueError):
            startup_time_s(0.01, nc=0)
        with pytest.raises(ValueError):
            startup_time_s(0.01, exec_load_s=-1)
