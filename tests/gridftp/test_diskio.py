"""Unit tests for the disk-to-disk extension."""

import numpy as np
import pytest

from repro.gridftp.diskio import DiskSpec, FileSet, disk_rate_cap_mbps
from repro.units import GB, MB


class TestDiskSpec:
    def test_aggregate_rate_scales_with_accessors(self):
        d = DiskSpec(streaming_rate_mbps=100.0, parallel_scaling=0.5)
        assert d.aggregate_rate_mbps(1) == 100.0
        assert d.aggregate_rate_mbps(3) == pytest.approx(200.0)

    def test_scaling_saturates(self):
        d = DiskSpec(max_parallel_accessors=4, parallel_scaling=1.0,
                     streaming_rate_mbps=100.0)
        assert d.aggregate_rate_mbps(4) == d.aggregate_rate_mbps(100)

    def test_single_spindle_no_scaling(self):
        d = DiskSpec(parallel_scaling=0.0, streaming_rate_mbps=100.0)
        assert d.aggregate_rate_mbps(32) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(streaming_rate_mbps=0.0)
        with pytest.raises(ValueError):
            DiskSpec(per_file_overhead_s=-0.1)
        with pytest.raises(ValueError):
            DiskSpec(parallel_scaling=1.5)
        with pytest.raises(ValueError):
            DiskSpec().aggregate_rate_mbps(0)


class TestFileSet:
    def test_total_bytes(self):
        fs = FileSet(n_files=10, mean_bytes=1 * GB)
        assert fs.total_bytes == 10 * GB

    def test_sample_sizes_mean_preserving(self):
        fs = FileSet(n_files=20_000, mean_bytes=100 * MB, sigma=1.0)
        sizes = fs.sample_sizes(np.random.default_rng(0))
        assert sizes.shape == (20_000,)
        assert sizes.mean() == pytest.approx(100 * MB, rel=0.05)

    def test_sigma_zero_is_uniform(self):
        fs = FileSet(n_files=5, mean_bytes=10.0, sigma=0.0)
        assert (fs.sample_sizes(np.random.default_rng(0)) == 10.0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            FileSet(n_files=0)
        with pytest.raises(ValueError):
            FileSet(n_files=1, mean_bytes=0)
        with pytest.raises(ValueError):
            FileSet(n_files=1, sigma=-1)


class TestDiskRateCap:
    DISK = DiskSpec(streaming_rate_mbps=500.0, per_file_overhead_s=0.05)

    def test_few_large_files_reach_streaming_rate(self):
        files = FileSet(n_files=10, mean_bytes=10 * GB)
        cap = disk_rate_cap_mbps(self.DISK, files, nc=1, np_=1, pp=1,
                                 rtt_s=0.03)
        assert cap == pytest.approx(500.0, rel=0.01)

    def test_many_small_files_are_overhead_bound(self):
        files = FileSet(n_files=100_000, mean_bytes=1 * MB)
        cap = disk_rate_cap_mbps(self.DISK, files, nc=1, np_=1, pp=1,
                                 rtt_s=0.03)
        assert cap < 20.0

    def test_pipelining_recovers_small_file_throughput(self):
        files = FileSet(n_files=100_000, mean_bytes=1 * MB)
        shallow = disk_rate_cap_mbps(self.DISK, files, 1, 1, pp=1, rtt_s=0.03)
        deep = disk_rate_cap_mbps(self.DISK, files, 1, 1, pp=32, rtt_s=0.03)
        assert deep > 10 * shallow

    def test_streams_amortize_per_file_cost(self):
        files = FileSet(n_files=100_000, mean_bytes=1 * MB)
        one = disk_rate_cap_mbps(self.DISK, files, 1, 1, pp=1, rtt_s=0.03)
        many = disk_rate_cap_mbps(self.DISK, files, 8, 4, pp=1, rtt_s=0.03)
        assert many > 5 * one

    def test_validation(self):
        files = FileSet(n_files=1, mean_bytes=1 * MB)
        with pytest.raises(ValueError):
            disk_rate_cap_mbps(self.DISK, files, 1, 1, pp=0, rtt_s=0.03)
        with pytest.raises(ValueError):
            disk_rate_cap_mbps(self.DISK, files, 1, 1, pp=1, rtt_s=-1.0)
        with pytest.raises(ValueError):
            disk_rate_cap_mbps(self.DISK, files, 0, 1, pp=1, rtt_s=0.0)
