"""Suite-wide fixtures.

The run cache is *environment-activated* (``REPRO_CACHE`` /
``REPRO_CACHE_DIR``), so a developer with caching enabled in their
shell would silently change what the determinism and engine tests
measure.  Every test therefore starts with caching off and with the
default cache root pointed into its tmp dir — a test that wants the
cache opts in explicitly via ``cache=`` or by setting ``REPRO_CACHE``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_run_cache(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "run-cache"))
