"""Tests for the live (real-tool) adapter."""

import pytest

from repro.core.base import StaticTuner
from repro.core.cd_tuner import CdTuner
from repro.core.params import ParamSpace
from repro.live import (
    BYTE_PUMP,
    LiveEpoch,
    LiveResult,
    SubprocessEpochRunner,
    tune_live,
)

SPACE = ParamSpace(("nc",), (1,), (32,))


def _fake_runner(rate_per_stream: float = 10e6):
    """Deterministic epoch runner: bytes = nc * np * rate * duration."""

    def run(nc: int, np_: int, duration_s: float) -> float:
        return nc * np_ * rate_per_stream * duration_s

    return run


class TestTuneLive:
    def test_stops_on_max_epochs(self):
        result = tune_live(
            StaticTuner(), SPACE, (2,), _fake_runner(), epoch_s=1.0,
            max_epochs=5,
        )
        assert len(result.epochs) == 5

    def test_stops_on_total_bytes(self):
        # 2 streams x 10 MB/s x 1 s = 20 MB per epoch; 50 MB needs 3.
        result = tune_live(
            StaticTuner(), SPACE, (2,), _fake_runner(), epoch_s=1.0,
            total_bytes=50e6,
        )
        assert len(result.epochs) == 3
        assert result.total_bytes == pytest.approx(50e6)

    def test_stops_on_duration(self):
        result = tune_live(
            StaticTuner(), SPACE, (2,), _fake_runner(), epoch_s=2.0,
            max_duration_s=7.0,
        )
        assert len(result.epochs) == 4  # 0,2,4,6 start times

    def test_tuner_actually_drives_parameters(self):
        result = tune_live(
            CdTuner(), SPACE, (2,), _fake_runner(), epoch_s=1.0,
            max_epochs=10,
        )
        traj = result.params_trajectory()
        # Throughput grows linearly in nc, so cd-tuner must climb.
        assert traj[-1][0] > traj[0][0]

    def test_on_epoch_callback_sees_every_epoch(self):
        seen = []
        tune_live(
            StaticTuner(), SPACE, (2,), _fake_runner(), epoch_s=1.0,
            max_epochs=3, on_epoch=seen.append,
        )
        assert [e.index for e in seen] == [0, 1, 2]

    def test_throughput_accounting(self):
        result = tune_live(
            StaticTuner(), SPACE, (2,), _fake_runner(10e6), epoch_s=2.0,
            max_epochs=2, fixed_np=1,
        )
        assert result.mean_throughput_mbps == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            tune_live(StaticTuner(), SPACE, (2,), _fake_runner())
        with pytest.raises(ValueError):
            tune_live(StaticTuner(), SPACE, (2,), _fake_runner(),
                      epoch_s=0.0, max_epochs=1)
        with pytest.raises(ValueError):
            tune_live(StaticTuner(), SPACE, (2,), _fake_runner(),
                      total_bytes=0.0)
        with pytest.raises(ValueError):
            tune_live(StaticTuner(), SPACE, (2,),
                      lambda nc, np_, d: -1.0, max_epochs=1)


class TestLiveRecords:
    def test_epoch_throughput(self):
        e = LiveEpoch(index=0, params=(2,), duration_s=2.0, bytes_moved=4e6)
        assert e.throughput_mbps == pytest.approx(2.0)

    def test_empty_result_is_zero(self):
        r = LiveResult()
        assert r.total_bytes == 0.0
        assert r.mean_throughput_mbps == 0.0


class TestSubprocessRunner:
    @staticmethod
    def _runner():
        return SubprocessEpochRunner(
            BYTE_PUMP, parse_bytes=lambda out: float(out.strip() or 0)
        )

    def test_byte_pump_moves_bytes(self):
        moved = self._runner()(nc=1, np_=1, duration_s=0.4)
        assert moved > 0

    def test_more_copies_move_more_bytes(self):
        # Wall-clock subprocess timing is noisy on a loaded CI machine:
        # use a generous window, a loose factor, and a few attempts.
        runner = self._runner()
        for attempt in range(3):
            one = runner(nc=1, np_=2, duration_s=0.8)
            four = runner(nc=4, np_=2, duration_s=0.8)
            if four > 1.2 * one:
                return
        pytest.fail(f"4 copies moved {four} vs 1 copy {one}")

    def test_build_command_substitutes_template(self):
        r = SubprocessEpochRunner(
            "mover -p {np} --copy {copy} --time {duration}",
            parse_bytes=float,
        )
        cmd = r.build_command(np_=8, copy=3, duration_s=30.0)
        assert cmd == ["mover", "-p", "8", "--copy", "3", "--time", "30.0"]

    def test_end_to_end_with_cd_tuner(self):
        result = tune_live(
            CdTuner(), ParamSpace(("nc",), (1,), (4,)), (1,),
            self._runner(), epoch_s=0.3, max_epochs=4,
        )
        assert len(result.epochs) == 4
        assert result.total_bytes > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SubprocessEpochRunner("", parse_bytes=float)
        with pytest.raises(ValueError):
            SubprocessEpochRunner("x", parse_bytes=float,
                                  terminate_grace_s=-1.0)
        with pytest.raises(ValueError):
            self._runner()(nc=0, np_=1, duration_s=1.0)
        with pytest.raises(ValueError):
            self._runner()(nc=1, np_=1, duration_s=0.0)
