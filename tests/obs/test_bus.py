"""Event bus: bounded subscribers, sink isolation, the null bus."""

import pytest

from repro.obs import (
    NULL_BUS,
    EpochStart,
    EventBus,
    NullBus,
    RingSubscriber,
    SnapshotWritten,
)


def _ev(i: int) -> EpochStart:
    return EpochStart(time=float(i), session="main", index=i, params=(2,))


class TestRingSubscriber:
    def test_fifo_order(self):
        sub = RingSubscriber(maxlen=10)
        for i in range(3):
            sub.accept(_ev(i))
        assert [e.index for e in sub.drain()] == [0, 1, 2]

    def test_overflow_drops_oldest_and_counts(self):
        sub = RingSubscriber(maxlen=3)
        for i in range(7):
            sub.accept(_ev(i))
        assert sub.dropped == 4
        assert sub.received == 7
        # The newest events survive; the oldest were evicted.
        assert [e.index for e in sub.peek()] == [4, 5, 6]
        assert len(sub) == 3

    def test_drain_empties_the_ring(self):
        sub = RingSubscriber(maxlen=3)
        sub.accept(_ev(0))
        assert len(sub.drain()) == 1
        assert sub.drain() == []

    def test_kind_filter(self):
        sub = RingSubscriber(maxlen=10, kinds=["snapshot-written"])
        sub.accept(_ev(0))
        sub.accept(SnapshotWritten(time=1.0, epochs=1))
        assert sub.received == 1
        assert [e.kind for e in sub.drain()] == ["snapshot-written"]

    def test_maxlen_validated(self):
        with pytest.raises(ValueError):
            RingSubscriber(maxlen=0)


class TestEventBus:
    def test_fan_out_to_all_subscribers(self):
        bus = EventBus()
        a, b = bus.subscribe(), bus.subscribe()
        bus.emit(_ev(0))
        assert len(a) == len(b) == 1

    def test_counts_by_kind(self):
        bus = EventBus()
        bus.emit(_ev(0))
        bus.emit(_ev(1))
        bus.emit(SnapshotWritten(time=1.0, epochs=2))
        assert bus.counts == {"epoch-start": 2, "snapshot-written": 1}
        assert bus.total_emitted == 3

    def test_slow_consumer_never_blocks_emit(self):
        """A full ring keeps accepting: the producer never stalls."""
        bus = EventBus()
        sub = bus.subscribe(maxlen=2)
        for i in range(1000):
            bus.emit(_ev(i))
        assert bus.total_emitted == 1000
        assert sub.dropped == 998
        assert [e.index for e in sub.drain()] == [998, 999]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.unsubscribe(sub)
        bus.emit(_ev(0))
        assert len(sub) == 0

    def test_raising_sink_is_detached_not_fatal(self):
        bus = EventBus()
        seen = []

        def bad(event):
            raise RuntimeError("exporter broke")

        bus.attach(bad)
        bus.attach(seen.append)
        bus.emit(_ev(0))  # must not raise
        bus.emit(_ev(1))
        assert bus.sink_errors == 1
        assert [e.index for e in seen] == [0, 1]

    def test_detach(self):
        bus = EventBus()
        seen = []
        sink = bus.attach(seen.append)
        bus.detach(sink)
        bus.emit(_ev(0))
        assert seen == []


class TestNullBus:
    def test_emit_is_noop(self):
        NULL_BUS.emit(_ev(0))
        assert NULL_BUS.total_emitted == 0

    def test_subscribe_refused(self):
        with pytest.raises(RuntimeError, match="NullBus"):
            NullBus().subscribe()
