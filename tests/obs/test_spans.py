"""Span recorder: nesting, explicit form, metric destination."""

import pytest

from repro.obs import SPAN_METRIC, FakeClock, MetricsRegistry, SpanRecorder


def _recorder(**labels):
    clock = FakeClock()
    reg = MetricsRegistry()
    return SpanRecorder(reg, clock=clock.now, buckets=(0.1, 1.0, 10.0),
                        **labels), clock, reg


class TestSpans:
    def test_span_measures_clock_delta(self):
        spans, clock, _ = _recorder()
        with spans.span("epoch"):
            clock.advance(0.5)
        assert spans.last["epoch"] == pytest.approx(0.5)

    def test_nesting_joins_paths_with_slash(self):
        spans, clock, _ = _recorder()
        with spans.span("epoch"):
            assert spans.current_path == "epoch"
            with spans.span("propose"):
                assert spans.current_path == "epoch/propose"
                clock.advance(0.2)
            clock.advance(0.3)
        assert spans.current_path == ""
        assert spans.last["epoch/propose"] == pytest.approx(0.2)
        assert spans.last["epoch"] == pytest.approx(0.5)

    def test_stack_unwinds_on_exception(self):
        spans, clock, _ = _recorder()
        with pytest.raises(RuntimeError):
            with spans.span("epoch"):
                clock.advance(0.1)
                raise RuntimeError("boom")
        assert spans.current_path == ""
        assert spans.last["epoch"] == pytest.approx(0.1)

    def test_slash_in_name_rejected(self):
        spans, _, _ = _recorder()
        with pytest.raises(ValueError):
            with spans.span("a/b"):
                pass

    def test_explicit_record_form(self):
        spans, clock, reg = _recorder()
        t0 = spans.now()
        clock.advance(0.25)
        spans.record("epoch/transfer", spans.now() - t0)
        hist = reg.histogram(SPAN_METRIC, buckets=(0.1, 1.0, 10.0),
                             phase="epoch/transfer")
        assert hist.count == 1
        assert hist.total == pytest.approx(0.25)

    def test_negative_duration_rejected(self):
        spans, _, _ = _recorder()
        with pytest.raises(ValueError):
            spans.record("epoch", -1.0)

    def test_extra_labels_flow_to_the_metric(self):
        spans, clock, reg = _recorder(run="r1")
        with spans.span("epoch"):
            clock.advance(0.1)
        hist = reg.histogram(SPAN_METRIC, buckets=(0.1, 1.0, 10.0),
                             phase="epoch", run="r1")
        assert hist.count == 1


class TestInjectableClock:
    """Spans accept the shared Clock protocol, not just a callable."""

    def test_fake_clock_instance(self):
        from repro.obs.clock import FakeClock

        registry = MetricsRegistry()
        clk = FakeClock()
        spans = SpanRecorder(registry, clock=clk)
        with spans.span("epoch"):
            clk.advance(2.5)
        assert spans.last["epoch"] == 2.5

    def test_default_is_wall_perf_counter(self):
        spans = SpanRecorder(MetricsRegistry())
        t0 = spans.now()
        assert spans.now() >= t0

    def test_instrumentation_on_accepts_clock_instance(self):
        from repro.obs.clock import FakeClock
        from repro.obs.instrument import Instrumentation

        clk = FakeClock(start=10.0)
        obs = Instrumentation.on(clock=clk)
        with obs.spans.span("propose"):
            clk.advance(0.125)
        assert obs.spans.last["propose"] == 0.125
