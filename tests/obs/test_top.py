"""The ``repro top`` dashboard: rendering, source sniffing, follow."""

import io

import pytest

from repro.checkpoint.journal import JournalWriter
from repro.obs import (
    follow,
    load_view,
    render,
    render_path,
    sparkline,
    view_from_journal,
    view_from_trace,
)
from repro.sim.trace import EpochRecord, Trace
from repro.sim.traceio import save_trace


def _rec(index, *, observed=1000.0, fault=None, breaker="closed",
         retries=0):
    return EpochRecord(
        index=index, start=30.0 * index, duration=30.0, params=(4,),
        observed=observed, best_case=observed * 1.1, bytes_moved=3e10,
        faulted=fault is not None, fault=fault, retries=retries,
        breaker=breaker, tuned=fault is None,
    )


def _journal(path, n_epochs, *, ended=False, session="main"):
    writer = JournalWriter(path)
    writer.write_header(
        {"run": {"scenario": "anl-uc", "tuner": "nm", "load": "none",
                 "seed": 0}}
    )
    for i in range(n_epochs):
        writer.write_epoch(session, _rec(i, observed=800.0 + 150.0 * i))
    if ended:
        writer.write_end()
    writer.close()
    return path


class TestSparkline:
    def test_shape_and_extremes(self):
        line = sparkline([0.0, 50.0, 100.0], width=3)
        assert len(line) == 3
        assert line[0] == " " or line[0] == "▁"
        assert line[-1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsamples_to_width(self):
        assert len(sparkline([float(i) for i in range(1000)], width=10)) == 10


class TestViews:
    def test_in_progress_journal_is_live(self, tmp_path):
        path = _journal(tmp_path / "j.jnl", 3)
        view = view_from_journal(path)
        assert view.live
        assert not view.ended
        assert len(view.sessions["main"]) == 3
        assert view.config["tuner"] == "nm"

    def test_ended_journal_is_complete(self, tmp_path):
        path = _journal(tmp_path / "j.jnl", 3, ended=True)
        view = view_from_journal(path)
        assert view.ended and not view.live

    def test_torn_journal_tail_is_tolerated_silently(self, tmp_path):
        path = _journal(tmp_path / "j.jnl", 2)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"kind":"epoch","ses')  # writer died mid-append
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            view = view_from_journal(path)
        assert len(view.sessions["main"]) == 2

    def test_view_from_trace(self, tmp_path):
        trace = Trace(label="main", epochs=[_rec(0), _rec(1)])
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        view = view_from_trace(path)
        assert view.ended and not view.live
        assert len(view.sessions["main"]) == 2

    def test_load_view_sniffs_journal_then_trace(self, tmp_path):
        jpath = _journal(tmp_path / "j.jnl", 1)
        assert load_view(jpath).kind == "journal"
        trace = Trace(label="main", epochs=[_rec(0)])
        tpath = tmp_path / "trace.json"
        save_trace(trace, tpath)
        assert load_view(tpath).kind == "trace"

    def test_load_view_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_view(tmp_path / "nope.jnl")


class TestRender:
    def test_render_shows_params_breaker_and_sparkline(self, tmp_path):
        path = _journal(tmp_path / "j.jnl", 4)
        frame = render_path(path)
        assert "[LIVE]" in frame
        assert "nc=4" in frame
        assert "breaker closed" in frame
        assert "tuner-fed 4/4" in frame
        assert "█" in frame  # the peak epoch saturates the sparkline

    def test_render_summarizes_faults_and_retries(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jnl")
        writer.write_header({"run": {}})
        writer.write_epoch("main", _rec(0))
        writer.write_epoch(
            "main", _rec(1, fault="blackout", breaker="open", retries=2))
        writer.write_end()
        writer.close()
        frame = render_path(tmp_path / "j.jnl")
        assert "[complete]" in frame
        assert "breaker open" in frame
        assert "blackout" in frame
        assert "retries: 2" in frame

    def test_render_empty_journal(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jnl")
        writer.write_header({"run": {}})
        writer.close()
        frame = render_path(tmp_path / "j.jnl")
        assert "no epochs journaled yet" in frame

    def test_width_is_respected(self, tmp_path):
        path = _journal(tmp_path / "j.jnl", 4)
        frame = render(load_view(path), width=40)
        rules = [ln for ln in frame.splitlines()
                 if set(ln) == {"─"}]
        assert rules and all(len(r) == 40 for r in rules)


class TestFollow:
    def test_follow_renders_until_the_run_ends(self, tmp_path):
        path = _journal(tmp_path / "j.jnl", 2, ended=True)
        out = io.StringIO()
        frames = follow(path, interval_s=0.01, out=out,
                        sleep=lambda s: None)
        assert frames == 1  # ended journal: one frame, then stop
        assert "[complete]" in out.getvalue()

    def test_follow_polls_a_missing_file(self, tmp_path):
        out = io.StringIO()
        frames = follow(tmp_path / "later.jnl", interval_s=0.01, out=out,
                        sleep=lambda s: None, max_frames=3)
        assert frames == 3
        assert "waiting for" in out.getvalue()

    def test_follow_max_frames_bounds_a_live_journal(self, tmp_path):
        path = _journal(tmp_path / "j.jnl", 2)  # never ends
        out = io.StringIO()
        frames = follow(path, interval_s=0.01, out=out,
                        sleep=lambda s: None, max_frames=5)
        assert frames == 5

    def test_follow_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError):
            follow(tmp_path / "x", interval_s=0.0)


class TestFollowRotation:
    """The stateful tailer: rotation, truncation, torn mid-rewrite."""

    def test_truncated_journal_holds_the_last_frame(self, tmp_path):
        path = _journal(tmp_path / "j.jnl", 3)
        out = io.StringIO()
        frames = [0]

        def chaos_sleep(_):
            frames[0] += 1
            if frames[0] == 1:
                # Truncate to a torn prefix mid-read: un-parseable.
                raw = path.read_bytes()
                path.write_bytes(raw[: len(raw) // 2 + 7])

        n = follow(path, interval_s=0.01, out=out, sleep=chaos_sleep,
                   max_frames=3)
        assert n == 3  # never crashed
        text = out.getvalue()
        assert "epoch 2" in text  # the pre-truncation frame rendered

    def test_rotation_reloads_from_the_new_file(self, tmp_path):
        path = tmp_path / "j.jnl"
        _journal(path, 5)
        out = io.StringIO()
        step = [0]

        def rotate_sleep(_):
            step[0] += 1
            if step[0] == 1:
                # Rotate: replace with a fresh, shorter journal from a
                # different run (new inode, smaller size).
                path.unlink()
                _journal(tmp_path / "j2.jnl", 2, session="rotated")
                (tmp_path / "j2.jnl").rename(path)

        follow(path, interval_s=0.01, out=out, sleep=rotate_sleep,
               max_frames=3)
        text = out.getvalue()
        assert "rotated: epoch 1" in text   # the new journal rendered
        assert "journal rotated" in text    # and the reload was noted

    def test_rotation_to_an_ended_journal_stops_the_loop(self, tmp_path):
        path = tmp_path / "j.jnl"
        _journal(path, 3)
        out = io.StringIO()
        step = [0]

        def rotate_sleep(_):
            step[0] += 1
            if step[0] == 1:
                _journal(tmp_path / "done.jnl", 2, ended=True)
                (tmp_path / "done.jnl").rename(path)

        n = follow(path, interval_s=0.01, out=out, sleep=rotate_sleep,
                   max_frames=10)
        assert n == 2  # stopped on the rotated-in ended journal
        assert "[complete]" in out.getvalue()

    def test_file_vanishing_mid_follow_reports_waiting(self, tmp_path):
        path = _journal(tmp_path / "j.jnl", 2)
        out = io.StringIO()
        step = [0]

        def vanish_sleep(_):
            step[0] += 1
            if step[0] == 1:
                path.unlink()

        n = follow(path, interval_s=0.01, out=out, sleep=vanish_sleep,
                   max_frames=3)
        assert n == 3
        assert "waiting for" in out.getvalue()

    def test_unchanged_journal_is_not_reparsed(self, tmp_path, monkeypatch):
        path = _journal(tmp_path / "j.jnl", 2)
        import repro.obs.top as top_mod

        loads = [0]
        orig = top_mod.load_view

        def counting(p):
            loads[0] += 1
            return orig(p)

        monkeypatch.setattr(top_mod, "load_view", counting)
        out = io.StringIO()
        n = top_mod.follow(path, interval_s=0.01, out=out,
                           sleep=lambda s: None, max_frames=5)
        assert n == 5
        assert loads[0] == 1  # one parse, four cached re-renders
