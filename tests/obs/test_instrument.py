"""Wired instrumentation: deterministic streams, resume equality, no-op.

The determinism contract under test: a seeded sim run publishes an event
stream that (a) repeats exactly on a rerun, (b) matches the
reconstruction from its own journal, and (c) is reproduced by a resumed
run — reconstructed prefix plus live remainder — with float-exact
payloads and ordering.
"""

import pytest

from repro.checkpoint import read_journal, resume_run, run_journaled
from repro.core.monitor import DeltaPctMonitor
from repro.faults import (
    BLACKOUT,
    CircuitBreaker,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)
from repro.obs import (
    Instrumentation,
    events_from_records,
    instrument_monitor,
)

#: The replayable subsequence — what the journal alone can reconstruct.
REPLAYABLE = ("epoch-end", "fault-injected", "breaker-transition")

FAULTS = FaultSchedule(
    [FaultEvent(kind=BLACKOUT, epoch=4, duration=3)]
)


def _journaled_run(path, obs, duration_s=600.0):
    return run_journaled(
        path, scenario="anl-uc", tuner="cs", seed=7,
        duration_s=duration_s,
        fault_schedule=FAULTS, retry_policy=RetryPolicy(),
        breaker=CircuitBreaker(failure_threshold=2, cooldown_epochs=2),
        obs=obs,
    )


def _capture(run):
    inst = Instrumentation.on()
    sub = inst.bus.subscribe(maxlen=100_000)
    run(inst)
    return sub.drain()


def _replayable(events):
    return [e for e in events if e.kind in REPLAYABLE]


class TestSimStreamDeterminism:
    def test_same_seed_same_stream(self, tmp_path):
        a = _capture(lambda o: _journaled_run(tmp_path / "a.jnl", o))
        b = _capture(lambda o: _journaled_run(tmp_path / "b.jnl", o))
        assert a == b
        kinds = {e.kind for e in a}
        assert {"epoch-start", "epoch-end", "tuner-proposal",
                "tuner-accept", "tuner-reject", "fault-injected",
                "breaker-transition", "snapshot-written"} <= kinds

    def test_stream_matches_journal_reconstruction(self, tmp_path):
        events = _capture(lambda o: _journaled_run(tmp_path / "j.jnl", o))
        journal = read_journal(tmp_path / "j.jnl")
        recon = events_from_records(
            "main", [je.record for je in journal.epochs_for("main")]
        )
        assert _replayable(events) == recon

    def test_resumed_run_replays_the_identical_stream(self, tmp_path):
        path = tmp_path / "full.jnl"
        full = _replayable(_capture(lambda o: _journaled_run(path, o)))

        # "Kill" the run: keep the journal prefix through the third
        # snapshot (header + 3 x (epoch, snapshot) records).
        trunc = tmp_path / "killed.jnl"
        lines = path.read_bytes().splitlines(keepends=True)
        trunc.write_bytes(b"".join(lines[:7]))

        journal = read_journal(trunc)
        assert not journal.ended
        prefix = events_from_records(
            "main",
            [je.record for je in journal.snapshot_epochs_for("main")],
        )
        assert 0 < len(prefix) < len(full)

        resumed_live = _replayable(
            _capture(lambda o: resume_run(trunc, obs=o))
        )
        assert prefix + resumed_live == full

    def test_replayed_epochs_do_not_reemit_events(self, tmp_path):
        """Resuming a *complete* journal replays everything and runs
        nothing — so the bus must stay silent."""
        path = tmp_path / "full.jnl"
        _journaled_run(path, None)
        events = _capture(lambda o: resume_run(path, obs=o))
        assert events == []


class TestOffByDefault:
    def test_default_run_has_no_bus(self, tmp_path):
        # obs=None end to end: nothing to assert beyond "it runs clean",
        # which is exactly the point of the default path.
        trace = _journaled_run(tmp_path / "plain.jnl", None, 300.0)
        assert len(trace.epochs) == 10

    def test_noop_bundle_runs_the_wired_path(self, tmp_path):
        inst = Instrumentation.noop()
        trace = _journaled_run(tmp_path / "noop.jnl", inst, 300.0)
        assert len(trace.epochs) == 10
        assert inst.bus.total_emitted == 0
        assert inst.metrics is None and inst.spans is None

    def test_noop_and_instrumented_runs_agree(self, tmp_path):
        t_noop = _journaled_run(tmp_path / "a.jnl",
                                Instrumentation.noop(), 300.0)
        t_on = _journaled_run(tmp_path / "b.jnl",
                              Instrumentation.on(), 300.0)
        assert t_noop.epochs == t_on.epochs


class TestMetricsWiring:
    def test_per_epoch_metrics_populated(self, tmp_path):
        inst = Instrumentation.on()
        trace = _journaled_run(tmp_path / "j.jnl", inst)
        n = len(trace.epochs)
        fam = inst.metrics.collect()
        assert fam["repro_epochs_total"][(("session", "main"),)].value == n
        hist = fam["repro_epoch_throughput_mbps"][(("session", "main"),)]
        assert hist.count == n
        assert fam["repro_faults_total"][
            (("fault_kind", "blackout"), ("session", "main"))
        ].value == 3.0
        assert "repro_breaker_transitions_total" in fam
        assert "repro_journal_records_total" in fam

    def test_span_latencies_recorded(self, tmp_path):
        inst = Instrumentation.on()
        _journaled_run(tmp_path / "j.jnl", inst, 300.0)
        assert set(inst.spans.last) >= {
            "epoch/transfer", "epoch/observe", "epoch/propose",
        }


class TestInstrumentMonitor:
    def test_trip_publishes_event_and_counts(self):
        inst = Instrumentation.on()
        sub = inst.bus.subscribe()
        monitor = instrument_monitor(
            DeltaPctMonitor(eps_pct=5.0),
            inst, session="main", clock=lambda: 42.0,
        )
        tripped = False
        for v in (1000.0, 1000.0, 100.0):
            tripped = monitor.update(v) or tripped
        assert tripped
        trips = [e for e in sub.drain() if e.kind == "monitor-trip"]
        assert trips and trips[0].time == 42.0
        assert trips[0].session == "main"
        assert inst.metrics.counter(
            "repro_monitor_trips_total", session="main"
        ).value == len(trips)
