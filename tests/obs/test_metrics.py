"""Metrics registry: counters, gauges, mergeable histograms, rendering.

The load-bearing property (pinned with hypothesis): splitting a sample
across two fixed-bucket histograms and merging them gives quantile
estimates within one bucket width of the exact sample quantile — the
guarantee that makes per-session histograms aggregatable across shards
and resumed runs.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, MetricsRegistry

#: Unit-width buckets covering [0, 10]; one bucket width == 1.0.
LINEAR_BUCKETS = tuple(float(b) for b in range(1, 11))


def exact_quantile(values: list[float], q: float) -> float:
    """The q-quantile as the ceil(q*n)-th smallest sample value."""
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q * len(ordered))
    return ordered[min(rank, len(ordered)) - 1]


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]
        assert h.overflow == 1
        assert h.count == 5
        assert h.mean == pytest.approx(21.2)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, float("inf")))

    def test_quantile_empty_is_zero(self):
        assert Histogram((1.0,)).quantile(0.5) == 0.0

    def test_quantile_saturates_at_last_bound(self):
        h = Histogram((1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == 2.0

    def test_merge_requires_equal_buckets(self):
        with pytest.raises(ValueError, match="different buckets"):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_merge_is_bucketwise_sum(self):
        a, b = Histogram(LINEAR_BUCKETS), Histogram(LINEAR_BUCKETS)
        for v in (0.5, 3.3):
            a.observe(v)
        for v in (3.4, 9.9, 42.0):
            b.observe(v)
        m = a.merge(b)
        assert m.count == 5
        assert m.overflow == 1
        assert m.total == pytest.approx(a.total + b.total)
        assert m.counts == [x + y for x, y in zip(a.counts, b.counts)]

    @settings(max_examples=200, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=60,
        ),
        split=st.integers(min_value=0, max_value=60),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_merged_quantile_within_one_bucket_width_of_exact(
        self, values, split, q
    ):
        split = min(split, len(values))
        a, b = Histogram(LINEAR_BUCKETS), Histogram(LINEAR_BUCKETS)
        for v in values[:split]:
            a.observe(v)
        for v in values[split:]:
            b.observe(v)
        merged = a.merge(b)
        est = merged.quantile(q)
        width = 1.0  # LINEAR_BUCKETS spacing
        assert abs(est - exact_quantile(values, q)) <= width + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=60,
        ),
        split=st.integers(min_value=0, max_value=60),
    )
    def test_merge_equals_observing_everything_in_one_histogram(
        self, values, split
    ):
        split = min(split, len(values))
        a, b = Histogram(LINEAR_BUCKETS), Histogram(LINEAR_BUCKETS)
        whole = Histogram(LINEAR_BUCKETS)
        for v in values:
            whole.observe(v)
        for v in values[:split]:
            a.observe(v)
        for v in values[split:]:
            b.observe(v)
        merged = a.merge(b)
        assert merged.counts == whole.counts
        assert merged.overflow == whole.overflow
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)


class TestMetricsRegistry:
    def test_counter_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits", session="a").inc()
        reg.counter("hits", session="a").inc(2)
        reg.counter("hits", session="b").inc()
        fam = reg.collect()["hits"]
        assert {k: m.value for k, m in fam.items()} == {
            (("session", "a"),): 3.0,
            (("session", "b"),): 1.0,
        }

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("hits").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_histogram_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            reg.histogram("lat", buckets=(1.0, 3.0))

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok", **{"0bad": "v"})

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("n", session="main").inc()
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["n"]["kind"] == "counter"
        assert snap["n"]["series"][0]["labels"] == {"session": "main"}
        hist = snap["lat"]["series"][0]
        assert hist["count"] == 1 and "p50" in hist

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("repro_epochs_total", session="main").inc(3)
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        text = reg.render_prometheus()
        assert "# TYPE repro_epochs_total counter" in text
        assert 'repro_epochs_total{session="main"} 3.0' in text
        assert 'lat_bucket{le="1.0"} 0' in text
        assert 'lat_bucket{le="2.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 1.5" in text
        assert "lat_count 1" in text
        assert text.endswith("\n")
