"""Live-loop observability: one clock, deterministic streams.

The live loop keeps a deterministic elapsed-time ledger (epoch starts,
backoffs) independent of the wall clock, so with an injected
:class:`FakeClock` the published event stream is exactly repeatable and
matches the journal reconstruction — same contract as the sim engine.
"""

import time

import pytest

from repro.checkpoint.journal import JournalWriter, read_journal
from repro.core.params import ParamSpace
from repro.core.registry import make_tuner
from repro.faults import CircuitBreaker, FaultSchedule, RetryPolicy
from repro.live import tune_live
from repro.obs import FakeClock, Instrumentation, events_from_records

SPACE = ParamSpace(("nc",), (1,), (16,))

REPLAYABLE = ("epoch-end", "fault-injected", "breaker-transition")


def _runner(nc, np_, duration_s):
    return nc * np_ * 10e6 * duration_s


def _faulted_run(*, journal=None, obs=None, clock=None):
    return tune_live(
        make_tuner("nm", 0), SPACE, (2,), _runner,
        epoch_s=10.0, max_epochs=12,
        fault_schedule=FaultSchedule.bursts(5, 12, 1, 3),
        retry_policy=RetryPolicy(jitter_frac=0.0),
        breaker=CircuitBreaker(failure_threshold=2, cooldown_epochs=2),
        clock=clock if clock is not None else FakeClock(),
        journal=journal, obs=obs,
    )


def _capture(**kwargs):
    inst = Instrumentation.on(clock=FakeClock().now)
    sub = inst.bus.subscribe(maxlen=100_000)
    result = _faulted_run(obs=inst, **kwargs)
    return result, sub.drain()


class TestLiveClock:
    def test_fake_clock_runs_instantly(self):
        t0 = time.monotonic()
        result, _ = _capture()
        assert time.monotonic() - t0 < 5.0  # 12 x 10 s epochs, no waiting
        assert len(result.epochs) == 12

    def test_no_direct_wall_sleep_with_an_injected_clock(self, monkeypatch):
        def forbidden(seconds):  # pragma: no cover - failure path
            raise AssertionError("tune_live bypassed the injected clock")

        monkeypatch.setattr(time, "sleep", forbidden)
        result, _ = _capture()
        assert len(result.epochs) == 12

    def test_backoffs_are_served_through_the_clock(self):
        clock = FakeClock()
        result = _faulted_run(clock=clock)
        retries = max(e.retries for e in result.epochs)
        assert retries > 0
        # Every retry charged its backoff as a clock sleep.
        assert len(clock.sleeps) >= retries
        assert all(s >= 0 for s in clock.sleeps)

    def test_sleep_kwarg_still_works_without_a_clock(self):
        slept = []
        result = tune_live(
            make_tuner("default", 0), SPACE, (2,), _runner,
            epoch_s=0.01, max_epochs=2, sleep=slept.append,
        )
        assert len(result.epochs) == 2


class TestLiveStreamDeterminism:
    def test_same_campaign_same_stream(self):
        _, a = _capture()
        _, b = _capture()
        assert a == b
        kinds = {e.kind for e in a}
        assert {"epoch-start", "epoch-end", "fault-injected",
                "breaker-transition", "tuner-reject"} <= kinds

    def test_stream_matches_journal_reconstruction(self, tmp_path):
        writer = JournalWriter(tmp_path / "live.jnl")
        writer.write_header({"run": {}})
        _, events = _capture(journal=writer)
        writer.close()
        journal = read_journal(tmp_path / "live.jnl")
        recon = events_from_records(
            "live", [je.record for je in journal.epochs_for("live")]
        )
        live = [e for e in events if e.kind in REPLAYABLE]
        assert live == recon

    def test_event_times_follow_the_epoch_ledger(self):
        _, events = _capture()
        ends = [e for e in events if e.kind == "epoch-end"]
        # Epoch ends land on the elapsed ledger: start + epoch length,
        # shifted by any backoff the dispatch charged earlier.
        assert all(b.time > a.time for a, b in zip(ends, ends[1:]))
        assert ends[0].time == pytest.approx(10.0)

    def test_snapshot_events_when_journaled_only(self, tmp_path):
        _, bare = _capture()
        assert all(e.kind != "snapshot-written" for e in bare)
        writer = JournalWriter(tmp_path / "live.jnl")
        writer.write_header({"run": {}})
        _, journaled = _capture(journal=writer)
        writer.close()
        snaps = [e for e in journaled if e.kind == "snapshot-written"]
        assert len(snaps) == 12
