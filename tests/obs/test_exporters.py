"""Exporters: JSONL event log round-trip and Prometheus snapshots."""

import pytest

from repro.obs import (
    EpochStart,
    EventBus,
    JsonlEventLog,
    MetricsRegistry,
    SnapshotWritten,
    read_event_log,
    write_prometheus,
)


def _ev(i: int) -> EpochStart:
    return EpochStart(time=float(i), session="main", index=i, params=(2,))


class TestJsonlEventLog:
    def test_round_trip_through_a_bus(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        events = [_ev(0), SnapshotWritten(time=1.0, epochs=1), _ev(1)]
        with JsonlEventLog(path).attach_to(bus) as log:
            for e in events:
                bus.emit(e)
        assert log.written == 3
        assert read_event_log(path) == events

    def test_append_mode_accumulates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventLog(path) as log:
            log(_ev(0))
        with JsonlEventLog(path) as log:
            log(_ev(1))
        assert [e.index for e in read_event_log(path)] == [0, 1]

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventLog(path) as log:
            log(_ev(0))
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"kind":"epoch-start","time":3.0,"sess')
        assert [e.index for e in read_event_log(path)] == [0]

    def test_damage_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind":"garbage"}\n'
                        + '{"kind":"snapshot-written","time":1.0,'
                          '"session":"","epochs":1}\n')
        with pytest.raises(ValueError):
            read_event_log(path)


class TestWritePrometheus:
    def test_writes_text_format(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_epochs_total", session="main").inc(4)
        out = tmp_path / "metrics.prom"
        write_prometheus(reg, out)
        text = out.read_text()
        assert "# TYPE repro_epochs_total counter" in text
        assert 'repro_epochs_total{session="main"} 4.0' in text

    def test_atomic_replace(self, tmp_path):
        out = tmp_path / "metrics.prom"
        reg = MetricsRegistry()
        reg.gauge("x").set(1)
        write_prometheus(reg, out)
        reg.gauge("x").set(2)
        write_prometheus(reg, out)
        assert "x 2.0" in out.read_text()
        assert list(tmp_path.iterdir()) == [out]  # no temp litter
