"""Event model: dict round-trips and record-stream reconstruction."""

import pytest

from repro.obs import (
    EVENT_TYPES,
    BreakerTransition,
    EpochEnd,
    EpochStart,
    FaultInjected,
    RetryAttempt,
    TunerProposal,
    event_from_dict,
    events_from_records,
)
from repro.sim.trace import EpochRecord


def _rec(index, *, fault=None, breaker="closed", start=None):
    return EpochRecord(
        index=index,
        start=30.0 * index if start is None else start,
        duration=30.0,
        params=(2,),
        observed=1000.0,
        best_case=1100.0,
        bytes_moved=3e10,
        faulted=fault is not None,
        fault=fault,
        retries=1 if fault else 0,
        breaker=breaker,
        tuned=fault is None,
    )


class TestDictRoundTrip:
    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_every_kind_round_trips(self, kind):
        samples = {
            "epoch-start": EpochStart(
                time=0.0, session="main", index=0, params=(2, 8)),
            "epoch-end": EpochEnd(
                time=30.0, session="main", index=0, params=(2, 8),
                observed=1000.0, best_case=1100.0, bytes_moved=3e10),
            "tuner-proposal": TunerProposal(
                time=30.0, session="main", index=0, params=(4, 8),
                observed=1000.0),
            "tuner-accept": EVENT_TYPES["tuner-accept"](
                time=30.0, session="main", index=0, params=(4, 8)),
            "tuner-reject": EVENT_TYPES["tuner-reject"](
                time=30.0, session="main", index=0, params=(2, 8),
                reason="breaker-open"),
            "fault-injected": FaultInjected(
                time=30.0, session="main", index=0, fault="blackout"),
            "retry-attempt": RetryAttempt(
                time=30.0, session="main", index=0, attempt=1,
                backoff_s=1.0),
            "breaker-transition": BreakerTransition(
                time=30.0, session="main", index=0, old="closed",
                new="open"),
            "snapshot-written": EVENT_TYPES["snapshot-written"](
                time=30.0, epochs=1),
            "monitor-trip": EVENT_TYPES["monitor-trip"](
                time=30.0, session="main", value=0.4),
            "cache-backend-degraded": EVENT_TYPES["cache-backend-degraded"](
                time=30.0, backend="http", op="get", reason="timeout"),
            "cache-breaker-transition": EVENT_TYPES[
                "cache-breaker-transition"](
                time=30.0, backend="http", old="closed", new="open"),
        }
        event = samples[kind]
        data = event.to_dict()
        assert data["kind"] == kind
        assert event_from_dict(data) == event

    def test_params_restored_as_tuple(self):
        data = EpochStart(
            time=0.0, session="m", index=0, params=(2, 8)).to_dict()
        assert data["params"] == [2, 8]  # JSON-ready
        assert event_from_dict(data).params == (2, 8)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "nope"})

    def test_events_are_immutable(self):
        ev = EpochStart(time=0.0, session="m", index=0, params=(2,))
        with pytest.raises(AttributeError):
            ev.index = 1


class TestEventsFromRecords:
    def test_plain_run_is_epoch_ends_only(self):
        events = events_from_records("s", [_rec(0), _rec(1)])
        assert [e.kind for e in events] == ["epoch-end", "epoch-end"]
        assert [e.index for e in events] == [0, 1]
        assert events[0].time == 30.0
        assert events[1].time == 60.0

    def test_fault_precedes_its_epoch_end(self):
        events = events_from_records("s", [_rec(0, fault="blackout")])
        assert [e.kind for e in events] == ["fault-injected", "epoch-end"]
        assert events[0].fault == "blackout"
        assert events[0].time == events[1].time

    def test_breaker_transition_between_epoch_ends(self):
        events = events_from_records(
            "s",
            [_rec(0, breaker="closed"), _rec(1, breaker="open"),
             _rec(2, breaker="open")],
        )
        assert [e.kind for e in events] == [
            "epoch-end", "breaker-transition", "epoch-end", "epoch-end",
        ]
        trans = events[1]
        # The transition is stamped at the boundary of the epoch that
        # caused it: index of the previous record, time of its close.
        assert (trans.index, trans.old, trans.new) == (0, "closed", "open")
        assert trans.time == 30.0

    def test_trailing_transition_is_never_guessed(self):
        # The last record's outcome may have tripped the breaker, but
        # records alone cannot show it — and a finished live session
        # skips its final dispatch, so live streams agree.
        events = events_from_records("s", [_rec(0, fault="blackout")])
        assert all(e.kind != "breaker-transition" for e in events)

    def test_empty(self):
        assert events_from_records("s", []) == []
