"""Smoke tests: every example script runs end to end.

Examples are loaded as modules and their duration constants shrunk so the
whole file stays fast; the assertion is "runs and prints something
sensible", not specific numbers.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


def test_examples_directory_contents():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart", "adaptive_vs_default", "shared_endpoint",
        "custom_site", "disk_to_disk", "method_zoo", "noisy_endpoint",
        "live_transfer", "fault_survival",
    } <= names


def test_quickstart_runs(capsys):
    mod = _load("quickstart")
    mod.DURATION_S = 240.0
    mod.main()
    out = capsys.readouterr().out
    assert "improvement" in out
    assert "nm-tuner" in out


def test_shared_endpoint_runs(capsys):
    mod = _load("shared_endpoint")
    mod.DURATION_S = 300.0
    mod.main()
    out = capsys.readouterr().out
    assert "independent" in out and "joint" in out


def test_custom_site_builds_valid_site(capsys):
    mod = _load("custom_site")
    # Full run is ~2400 simulated seconds x 2; shrink via run().
    trace = mod.run(mod.StaticTuner(), seed=0)
    assert trace.total_bytes > 0
    assert mod.DTN.cores == 32


def test_noisy_endpoint_runs_and_exports(tmp_path, capsys):
    mod = _load("noisy_endpoint")
    mod.DURATION_S = 600.0
    mod.main(str(tmp_path))
    out = capsys.readouterr().out
    assert "nm+CUSUM" in out
    assert (tmp_path / "nm_cusum.json").exists()
    assert (tmp_path / "nm_cusum_epochs.csv").exists()


def test_live_transfer_runs(capsys):
    mod = _load("live_transfer")
    result = mod.tune_live(
        mod.CdTuner(), mod.SPACE, (1,),
        mod.SubprocessEpochRunner(
            mod.BYTE_PUMP, parse_bytes=lambda o: float(o.strip() or 0)
        ),
        epoch_s=0.3, max_epochs=2, fixed_np=2,
    )
    assert result.total_bytes > 0


def test_fault_survival_runs(capsys):
    mod = _load("fault_survival")
    mod.DURATION_S = 900.0
    mod.BLACKOUT_EPOCH = 10
    mod.main()
    out = capsys.readouterr().out
    assert "blackout" in out
    assert "breaker=open" in out
    assert "survived" in out


def test_disk_to_disk_3d_runner(capsys):
    mod = _load("disk_to_disk")
    trace = mod.run_3d(mod.NmTuner(), seed=0, duration_s=300.0)
    assert len(trace.epochs) == 10
    assert len(trace.epochs[0].params) == 3
