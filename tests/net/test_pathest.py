"""Tests for probe-based path characterization."""

import pytest

from repro.analysis.stats import steady_state_mean
from repro.core.base import StaticTuner
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC
from repro.net.pathest import (
    PathEstimate,
    calibrated_hacker_prediction,
    estimate_from_samples,
    probe_path,
)


class TestEstimateFromSamples:
    def test_recovers_linear_plus_plateau(self):
        # T(n) = min(50 n, 1000): slope 50, capacity 1000.
        ns = [1, 2, 4, 8, 32, 64]
        ts = [min(50.0 * n, 1000.0) for n in ns]
        est = estimate_from_samples(ns, ts)
        assert est.per_stream_mbps == pytest.approx(50.0, rel=0.05)
        assert est.capacity_mbps == pytest.approx(1000.0)
        assert est.saturating_streams == 20

    def test_robust_to_declining_tail(self):
        # Overhead decline past the peak must not lower the capacity
        # estimate below the observed maximum.
        ns = [1, 2, 4, 16, 64, 256]
        ts = [50.0, 100.0, 200.0, 800.0, 1000.0, 700.0]
        est = estimate_from_samples(ns, ts)
        assert est.capacity_mbps == pytest.approx(1000.0)

    def test_per_stream_never_exceeds_capacity(self):
        est = estimate_from_samples([1, 2], [500.0, 400.0])
        assert est.per_stream_mbps <= est.capacity_mbps
        assert est.saturating_streams >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_from_samples([1], [10.0])
        with pytest.raises(ValueError):
            estimate_from_samples([1, 2], [10.0])
        with pytest.raises(ValueError):
            estimate_from_samples([1, 2], [10.0, -1.0])
        with pytest.raises(ValueError):
            estimate_from_samples([2, 2], [10.0, 10.0])


class TestProbePath:
    def test_runs_probes_in_order(self):
        seen = []

        def probe(n):
            seen.append(n)
            return min(10.0 * n, 200.0)

        est = probe_path(probe, stream_counts=(1, 4, 16, 64))
        assert seen == [1, 4, 16, 64]
        assert est.capacity_mbps == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            probe_path(lambda n: 1.0, stream_counts=(4,))

    def test_on_the_substrate(self):
        """Probing the calibrated UC scenario recovers sane parameters."""

        def probe(n):
            trace = run_single(
                ANL_UC, StaticTuner(), x0=(n,), fixed_np=1,
                duration_s=120.0, seed=5,
            )
            return steady_state_mean(trace, tail_fraction=0.5)

        est = probe_path(probe, stream_counts=(1, 2, 4, 16, 64))
        # At very low stream counts the self-congestion loss term is
        # negligible, so single streams run fast (~400-550 MB/s) and the
        # estimated saturating count is small; capacity ~ 4000+.
        assert 250 < est.per_stream_mbps < 600
        assert est.capacity_mbps > 3000
        assert 5 <= est.saturating_streams <= 40


class TestCalibratedPrediction:
    def test_rounds_streams_to_concurrency(self):
        est = PathEstimate(per_stream_mbps=100.0, capacity_mbps=5000.0,
                           samples=((1, 100.0),))
        assert calibrated_hacker_prediction(est, np_=8) == 6  # 50 streams
        assert calibrated_hacker_prediction(est, np_=1) == 50
        assert calibrated_hacker_prediction(est, np_=8, headroom=2.0) in (12, 13)

    def test_validation(self):
        est = PathEstimate(1.0, 2.0, ((1, 1.0),))
        with pytest.raises(ValueError):
            calibrated_hacker_prediction(est, np_=0)
        with pytest.raises(ValueError):
            calibrated_hacker_prediction(est, headroom=0.0)
