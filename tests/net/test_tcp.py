"""Unit tests for the TCP congestion-control rate models."""

import math

import pytest

from repro.net.tcp import (
    CC_BY_NAME,
    CUBIC,
    HTCP,
    RENO,
    SCALABLE,
    CongestionControl,
    TcpModel,
)
from repro.units import MB


class TestCongestionControl:
    def test_registry_contains_all_four_algorithms(self):
        assert set(CC_BY_NAME) == {"reno", "cubic", "htcp", "scalable"}

    def test_reno_matches_mathis_constant(self):
        assert RENO.constant == pytest.approx(math.sqrt(1.5), rel=0.01)
        assert RENO.loss_exponent == 0.5

    def test_scalable_rate_scales_inverse_in_loss(self):
        assert SCALABLE.loss_exponent == 1.0

    def test_invalid_constant_rejected(self):
        with pytest.raises(ValueError):
            CongestionControl("bad", constant=0.0, loss_exponent=0.5,
                              rtt_exponent=1.0, aimd_efficiency=0.8)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            CongestionControl("bad", constant=1.0, loss_exponent=0.5,
                              rtt_exponent=1.0, aimd_efficiency=1.5)


class TestTcpModel:
    def test_buffer_limit_is_window_per_rtt(self):
        m = TcpModel(wmax_bytes=4 * MB)
        # 4 MB window over 40 ms RTT = 100 MB/s.
        assert m.buffer_limit_mbps(0.040) == pytest.approx(100.0)

    def test_buffer_limit_rejects_nonpositive_rtt(self):
        with pytest.raises(ValueError):
            TcpModel().buffer_limit_mbps(0.0)

    def test_loss_limit_zero_loss_is_unbounded(self):
        assert math.isinf(TcpModel().loss_limit_mbps(0.01, 0.0))

    def test_loss_limit_decreases_with_loss(self):
        m = TcpModel(cc=RENO)
        assert m.loss_limit_mbps(0.01, 1e-4) > m.loss_limit_mbps(0.01, 1e-3)

    def test_loss_limit_reno_inverse_sqrt(self):
        m = TcpModel(cc=RENO)
        r1 = m.loss_limit_mbps(0.01, 1e-4)
        r2 = m.loss_limit_mbps(0.01, 4e-4)
        assert r1 / r2 == pytest.approx(2.0, rel=1e-6)

    def test_loss_limit_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            TcpModel().loss_limit_mbps(0.01, 1.0)
        with pytest.raises(ValueError):
            TcpModel().loss_limit_mbps(0.01, -0.1)

    def test_stream_cap_buffer_branch_has_no_sawtooth_penalty(self):
        # Tiny loss: buffer-limited, so the cap equals the raw buffer rate.
        m = TcpModel(cc=HTCP, wmax_bytes=4 * MB)
        cap = m.stream_cap_mbps(0.033, 1e-9)
        assert cap == pytest.approx(m.buffer_limit_mbps(0.033))

    def test_stream_cap_loss_branch_applies_efficiency(self):
        m = TcpModel(cc=HTCP, wmax_bytes=64 * MB)
        loss = 1e-3
        cap = m.stream_cap_mbps(0.010, loss)
        assert cap == pytest.approx(
            HTCP.aimd_efficiency * m.loss_limit_mbps(0.010, loss)
        )

    def test_cubic_less_rtt_sensitive_than_reno(self):
        cubic = TcpModel(cc=CUBIC, wmax_bytes=1000 * MB)
        reno = TcpModel(cc=RENO, wmax_bytes=1000 * MB)
        loss = 1e-4
        cubic_ratio = cubic.loss_limit_mbps(0.01, loss) / cubic.loss_limit_mbps(0.08, loss)
        reno_ratio = reno.loss_limit_mbps(0.01, loss) / reno.loss_limit_mbps(0.08, loss)
        assert cubic_ratio < reno_ratio

    def test_ramp_fraction_monotone_and_bounded(self):
        m = TcpModel(slow_start_tau=2.0)
        fs = [m.ramp_fraction(t) for t in (0.0, 1.0, 2.0, 10.0)]
        assert fs[0] == 0.0
        assert all(a < b for a, b in zip(fs, fs[1:]))
        assert fs[-1] < 1.0
        assert m.ramp_fraction(100.0) == pytest.approx(1.0, abs=1e-9)

    def test_ramp_fraction_rejects_negative_time(self):
        with pytest.raises(ValueError):
            TcpModel().ramp_fraction(-1.0)

    def test_validation_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TcpModel(mss=0)
        with pytest.raises(ValueError):
            TcpModel(wmax_bytes=0)
        with pytest.raises(ValueError):
            TcpModel(slow_start_tau=0)
