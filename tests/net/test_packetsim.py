"""Unit and validation tests for the packet-level TCP simulator."""

import math

import numpy as np
import pytest

from repro.net.packetsim import (
    PacketLevelSimulator,
    PacketPath,
    StreamState,
    aggregate_goodput_mbps,
)
from repro.net.tcp import CUBIC, HTCP, RENO, SCALABLE, TcpModel
from repro.units import MB


def _lossy_path(**kw):
    defaults = dict(capacity_mbps=10_000.0, rtt_s=0.05, loss_rate=1e-4,
                    buffer_packets=100_000)
    defaults.update(kw)
    return PacketPath(**defaults)


class TestPacketPath:
    def test_bdp(self):
        p = PacketPath(capacity_mbps=100.0, rtt_s=0.01, mss=1000)
        # 100 MB/s * 10 ms = 1 MB = 1000 packets of 1000 B.
        assert p.bdp_packets == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketPath(capacity_mbps=0, rtt_s=0.01)
        with pytest.raises(ValueError):
            PacketPath(capacity_mbps=1, rtt_s=0)
        with pytest.raises(ValueError):
            PacketPath(capacity_mbps=1, rtt_s=0.01, loss_rate=1.0)
        with pytest.raises(ValueError):
            PacketPath(capacity_mbps=1, rtt_s=0.01, buffer_packets=-1)
        with pytest.raises(ValueError):
            PacketPath(capacity_mbps=1, rtt_s=0.01, mss=0)


class TestStreamState:
    def test_slow_start_doubles_until_ssthresh(self):
        s = StreamState(cc=RENO, cwnd=2.0, ssthresh=16.0)
        s.grow(0.01)
        assert s.cwnd == 4.0 and s.in_slow_start
        s.grow(0.01)
        s.grow(0.01)
        assert s.cwnd == 16.0 and not s.in_slow_start

    def test_reno_linear_in_congestion_avoidance(self):
        s = StreamState(cc=RENO, cwnd=10.0, in_slow_start=False)
        s.grow(0.01)
        assert s.cwnd == 11.0

    def test_loss_halves_reno(self):
        s = StreamState(cc=RENO, cwnd=100.0, in_slow_start=False)
        s.on_loss()
        assert s.cwnd == 50.0
        assert s.ssthresh == 50.0
        assert s.time_since_loss == 0.0

    def test_cubic_backoff_gentler_than_reno(self):
        r = StreamState(cc=RENO, cwnd=100.0)
        c = StreamState(cc=CUBIC, cwnd=100.0)
        r.on_loss()
        c.on_loss()
        assert c.cwnd > r.cwnd

    def test_htcp_alpha_ramps_after_one_second(self):
        s = StreamState(cc=HTCP, cwnd=100.0, in_slow_start=False)
        s.grow(0.5)       # within the low-alpha window
        assert s.cwnd == pytest.approx(101.0)
        s.time_since_loss = 2.0
        before = s.cwnd
        s.grow(0.5)       # t = 2.5 s -> alpha = 1 + 15 + 0.5625
        assert s.cwnd - before == pytest.approx(1 + 10 * 1.5 + 0.5625)

    def test_scalable_multiplicative_growth(self):
        s = StreamState(cc=SCALABLE, cwnd=100.0, in_slow_start=False)
        s.grow(0.01)
        assert s.cwnd == pytest.approx(101.0)

    def test_cwnd_floor_after_loss(self):
        s = StreamState(cc=RENO, cwnd=2.0)
        s.on_loss()
        assert s.cwnd >= 2.0


class TestSimulator:
    def test_single_reno_matches_mathis_within_20pct(self):
        # The inverse-sqrt(p) law the fluid model uses.
        path = _lossy_path()
        measured = aggregate_goodput_mbps(1, path, cc=RENO,
                                          duration_s=600, warmup_s=60)
        mathis = TcpModel(cc=RENO, wmax_bytes=1e15).loss_limit_mbps(
            path.rtt_s, path.loss_rate
        )
        assert measured == pytest.approx(mathis, rel=0.20)

    def test_loss_scaling_follows_inverse_sqrt(self):
        lo = aggregate_goodput_mbps(1, _lossy_path(loss_rate=1e-4), cc=RENO,
                                    duration_s=600, warmup_s=60)
        hi = aggregate_goodput_mbps(1, _lossy_path(loss_rate=4e-4), cc=RENO,
                                    duration_s=600, warmup_s=60)
        assert lo / hi == pytest.approx(2.0, rel=0.3)

    def test_identical_streams_are_fair(self):
        sim = PacketLevelSimulator(
            PacketPath(1000.0, 0.02, loss_rate=1e-5), [HTCP] * 8, seed=1
        )
        result = sim.run(120.0, warmup_s=20.0)
        assert result.jain_fairness > 0.9

    def test_goodput_never_exceeds_capacity(self):
        path = PacketPath(5000.0, 0.002, loss_rate=1e-4, buffer_packets=5000)
        for n in (16, 64, 256):
            g = aggregate_goodput_mbps(n, path, duration_s=30, warmup_s=5)
            assert g <= path.capacity_mbps + 1e-6

    def test_parallel_streams_fill_the_pipe(self):
        # The paper's core §III-A observation: a single AIMD stream leaves
        # bandwidth unused, parallel streams consume it.
        path = PacketPath(5000.0, 0.002, loss_rate=1e-4, buffer_packets=5000)
        one = aggregate_goodput_mbps(1, path, duration_s=60, warmup_s=10)
        many = aggregate_goodput_mbps(64, path, duration_s=60, warmup_s=10)
        assert one < 0.2 * path.capacity_mbps
        assert many > 0.9 * path.capacity_mbps

    def test_aggressive_cc_wins_on_high_bdp(self):
        # Scalable > H-TCP > CUBIC > Reno on a long fat lossy pipe — the
        # reason the paper's testbed runs H-TCP instead of Reno.
        p = PacketPath(2500.0, 0.05, loss_rate=1e-5, buffer_packets=20_000)
        rates = {
            cc.name: aggregate_goodput_mbps(1, p, cc=cc, duration_s=600,
                                            warmup_s=60)
            for cc in (RENO, CUBIC, HTCP, SCALABLE)
        }
        assert rates["reno"] < rates["cubic"] < rates["htcp"] < rates["scalable"]

    def test_buffer_overflow_causes_losses_without_background_loss(self):
        # Zero background loss, tiny buffer: windows must still stabilize.
        sim = PacketLevelSimulator(
            PacketPath(100.0, 0.02, loss_rate=0.0, buffer_packets=50),
            [RENO] * 4,
            seed=0,
        )
        result = sim.run(60.0, warmup_s=10.0)
        assert 0 < result.aggregate_mbps <= 100.0
        # Some loss happened: windows did not grow unboundedly.
        assert all(s.cwnd < 1e5 for s in sim.states)

    def test_seed_reproducibility(self):
        a = aggregate_goodput_mbps(4, _lossy_path(), duration_s=30,
                                   warmup_s=5, seed=7)
        b = aggregate_goodput_mbps(4, _lossy_path(), duration_s=30,
                                   warmup_s=5, seed=7)
        assert a == b

    def test_run_validation(self):
        sim = PacketLevelSimulator(_lossy_path(), [RENO])
        with pytest.raises(ValueError):
            sim.run(0.0)
        with pytest.raises(ValueError):
            sim.run(1.0, warmup_s=-1.0)
        with pytest.raises(ValueError):
            aggregate_goodput_mbps(0, _lossy_path())
        with pytest.raises(ValueError):
            PacketLevelSimulator(_lossy_path(), [])


class TestFluidAgreement:
    def test_aggregate_tracks_fluid_allocation(self):
        """The fluid model's min(n * stream_cap, capacity) envelope should
        match the packet simulator within a factor band across n."""
        path = PacketPath(5000.0, 0.002, loss_rate=1e-4, buffer_packets=5000)
        tcp = TcpModel(cc=HTCP, wmax_bytes=1e15)
        cap = tcp.stream_cap_mbps(path.rtt_s, path.loss_rate)
        for n in (2, 8, 32):
            fluid = min(n * cap, path.capacity_mbps)
            packet = aggregate_goodput_mbps(n, path, duration_s=120,
                                            warmup_s=20)
            assert 0.5 * fluid < packet < 2.0 * fluid
