"""Unit tests for links and paths."""

import pytest

from repro.net.link import Link, Path
from repro.net.tcp import TcpModel
from repro.units import MB


def _path(**kw):
    defaults = dict(
        name="p",
        links=(Link("a", 1000.0), Link("b", 500.0)),
        rtt_ms=10.0,
    )
    defaults.update(kw)
    return Path(**defaults)


class TestLink:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            Link("x", 0.0)

    def test_requires_name(self):
        with pytest.raises(ValueError):
            Link("", 100.0)


class TestPath:
    def test_bottleneck_is_min_capacity(self):
        assert _path().bottleneck_capacity_mbps == 500.0

    def test_rtt_seconds_conversion(self):
        assert _path(rtt_ms=33.0).rtt_s == pytest.approx(0.033)

    def test_rejects_duplicate_links(self):
        l = Link("a", 100.0)
        with pytest.raises(ValueError):
            _path(links=(l, l))

    def test_rejects_empty_links(self):
        with pytest.raises(ValueError):
            _path(links=())

    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            _path(loss_rate=-0.1)
        with pytest.raises(ValueError):
            _path(loss_per_stream=-1e-9)

    def test_effective_loss_grows_with_streams(self):
        p = _path(loss_rate=1e-5, loss_per_stream=1e-6)
        assert p.effective_loss(0) == pytest.approx(1e-5)
        assert p.effective_loss(100) == pytest.approx(1.1e-4)

    def test_effective_loss_clamped_below_one(self):
        p = _path(loss_rate=0.5, loss_per_stream=0.1)
        assert p.effective_loss(1000) == pytest.approx(0.999)

    def test_effective_loss_rejects_negative_streams(self):
        with pytest.raises(ValueError):
            _path().effective_loss(-1)

    def test_stream_cap_decreases_with_total_streams(self):
        p = _path(
            loss_rate=1e-5,
            loss_per_stream=1e-6,
            tcp=TcpModel(wmax_bytes=1000 * MB),  # never buffer-limited
        )
        assert p.stream_cap_mbps(1) > p.stream_cap_mbps(100)

    def test_stream_cap_buffer_limited_insensitive_to_streams(self):
        p = _path(
            rtt_ms=100.0,
            loss_rate=1e-9,
            loss_per_stream=1e-10,
            tcp=TcpModel(wmax_bytes=1 * MB),
        )
        assert p.stream_cap_mbps(1) == pytest.approx(p.stream_cap_mbps(50))
