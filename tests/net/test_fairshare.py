"""Unit and property tests for the max-min fair allocator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fairshare import max_min_fair_allocation
from repro.net.flows import FlowGroup
from repro.net.link import Link, Path

LINK_A = Link("A", 1000.0)
LINK_B = Link("B", 400.0)


def _path(name, links, **kw):
    return Path(name=name, links=links, rtt_ms=10.0, **kw)


def _group(name, path, n, *, cap=math.inf, stream_cap=50.0):
    return FlowGroup(
        name=name,
        path=path,
        n_streams=n,
        group_cap_mbps=cap,
        stream_cap_mbps=stream_cap,
    )


PA = _path("pa", (LINK_A,))
PB = _path("pb", (LINK_A, LINK_B))


class TestBasicAllocation:
    def test_empty_input(self):
        assert max_min_fair_allocation([]) == {}

    def test_single_group_stream_capped(self):
        alloc = max_min_fair_allocation([_group("g", PA, 4, stream_cap=50.0)])
        assert alloc["g"] == pytest.approx(200.0)

    def test_single_group_link_capped(self):
        alloc = max_min_fair_allocation(
            [_group("g", PA, 100, stream_cap=50.0)]
        )
        assert alloc["g"] == pytest.approx(1000.0)

    def test_single_group_group_capped(self):
        alloc = max_min_fair_allocation(
            [_group("g", PA, 4, cap=120.0, stream_cap=50.0)]
        )
        assert alloc["g"] == pytest.approx(120.0)

    def test_per_stream_fairness_on_shared_link(self):
        # 30 vs 10 streams on a 1000 MB/s link, no other caps binding:
        # shares split 3:1.
        alloc = max_min_fair_allocation(
            [
                _group("big", PA, 30, stream_cap=1000.0),
                _group("small", PA, 10, stream_cap=1000.0),
            ]
        )
        assert alloc["big"] == pytest.approx(750.0)
        assert alloc["small"] == pytest.approx(250.0)

    def test_capped_group_leaves_capacity_to_other(self):
        alloc = max_min_fair_allocation(
            [
                _group("capped", PA, 10, cap=100.0, stream_cap=1000.0),
                _group("free", PA, 10, stream_cap=1000.0),
            ]
        )
        assert alloc["capped"] == pytest.approx(100.0)
        assert alloc["free"] == pytest.approx(900.0)

    def test_multi_link_path_respects_narrow_link(self):
        alloc = max_min_fair_allocation(
            [_group("g", PB, 100, stream_cap=50.0)]
        )
        assert alloc["g"] == pytest.approx(400.0)

    def test_shared_first_link_couples_two_paths(self):
        # Both cross A (1000); pb also crosses B (400).  pb freezes at B's
        # saturation; pa picks up the rest of A.
        alloc = max_min_fair_allocation(
            [
                _group("ga", PA, 50, stream_cap=1000.0),
                _group("gb", PB, 50, stream_cap=1000.0),
            ]
        )
        assert alloc["gb"] == pytest.approx(400.0)
        assert alloc["ga"] == pytest.approx(600.0)

    def test_zero_cap_group_gets_nothing(self):
        alloc = max_min_fair_allocation(
            [
                _group("dead", PA, 10, cap=0.0, stream_cap=10.0),
                _group("live", PA, 10, stream_cap=10.0),
            ]
        )
        assert alloc["dead"] == 0.0
        assert alloc["live"] == pytest.approx(100.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair_allocation([_group("g", PA, 1), _group("g", PA, 1)])

    def test_conflicting_link_capacities_rejected(self):
        pa2 = _path("pa2", (Link("A", 999.0),))
        with pytest.raises(ValueError):
            max_min_fair_allocation(
                [_group("g1", PA, 1), _group("g2", pa2, 1)]
            )


# -- property tests ---------------------------------------------------------


@st.composite
def allocation_problems(draw):
    n_links = draw(st.integers(1, 4))
    links = [
        Link(f"L{i}", draw(st.floats(10.0, 2000.0)))
        for i in range(n_links)
    ]
    n_groups = draw(st.integers(1, 6))
    groups = []
    for g in range(n_groups):
        # Each path uses a nonempty subset of links, in index order.
        subset = draw(
            st.sets(st.integers(0, n_links - 1), min_size=1, max_size=n_links)
        )
        path = _path(f"p{g}", tuple(links[i] for i in sorted(subset)))
        groups.append(
            FlowGroup(
                name=f"g{g}",
                path=path,
                n_streams=draw(st.integers(1, 64)),
                group_cap_mbps=draw(
                    st.one_of(st.just(math.inf), st.floats(0.0, 3000.0))
                ),
                stream_cap_mbps=draw(st.floats(0.1, 500.0)),
            )
        )
    return links, groups


TOL = 1e-6


@given(allocation_problems())
@settings(max_examples=150, deadline=None)
def test_allocation_invariants(problem):
    links, groups = problem
    alloc = max_min_fair_allocation(groups)

    # Non-negative and never above the group's own maximum.
    for g in groups:
        assert alloc[g.name] >= -TOL
        assert alloc[g.name] <= g.max_rate_mbps + TOL

    # No link oversubscribed.
    for link in links:
        load = sum(
            alloc[g.name]
            for g in groups
            if any(l.name == link.name for l in g.path.links)
        )
        assert load <= link.capacity_mbps + TOL

    # Every group is blocked: at its own cap or on a saturated link.
    for g in groups:
        at_own_cap = alloc[g.name] >= g.max_rate_mbps - TOL
        on_saturated = any(
            sum(
                alloc[h.name]
                for h in groups
                if any(l.name == link.name for l in h.path.links)
            )
            >= link.capacity_mbps - TOL
            for link in g.path.links
        )
        assert at_own_cap or on_saturated


@given(allocation_problems())
@settings(max_examples=100, deadline=None)
def test_allocation_fairness_on_shared_bottleneck(problem):
    """Groups blocked only by the same link get equal per-stream rates,
    unless individually capped lower."""
    _, groups = problem
    alloc = max_min_fair_allocation(groups)
    per_stream = {g.name: alloc[g.name] / g.n_streams for g in groups}
    for a in groups:
        for b in groups:
            shared = {l.name for l in a.path.links} & {
                l.name for l in b.path.links
            }
            if not shared:
                continue
            # If a's per-stream rate is *strictly below* b's, then a must
            # be at one of its own caps (fairness would otherwise have
            # given it b's level).
            if per_stream[a.name] < per_stream[b.name] - TOL:
                at_cap = alloc[a.name] >= a.max_rate_mbps - TOL
                # ... or a is blocked by a link b doesn't cross.
                other_links = {l.name for l in a.path.links} - shared
                assert at_cap or other_links


@given(st.integers(1, 100), st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_share_grows_with_stream_count(n_ours, n_ext):
    """More parallel streams claim a larger share of a congested link —
    the paper's core mechanism."""
    groups = [_group("us", PA, n_ours, stream_cap=1000.0)]
    if n_ext:
        groups.append(_group("ext", PA, n_ext, stream_cap=1000.0))
    base = max_min_fair_allocation(groups)["us"]
    groups[0] = _group("us", PA, n_ours + 1, stream_cap=1000.0)
    more = max_min_fair_allocation(groups)["us"]
    assert more >= base - TOL
