"""Unit tests for FlowGroup and Topology."""

import math

import pytest

from repro.net.flows import FlowGroup
from repro.net.link import Link, Path
from repro.net.tcp import TcpModel
from repro.net.topology import Topology
from repro.units import MB

NIC = Link("nic", 5000.0)
WAN1 = Link("wan1", 5000.0)
WAN2 = Link("wan2", 2500.0)

P1 = Path("p1", (NIC, WAN1), rtt_ms=2.0)
P2 = Path("p2", (NIC, WAN2), rtt_ms=33.0)


class TestFlowGroup:
    def test_effective_stream_cap_prefers_override(self):
        g = FlowGroup("g", P1, 4, stream_cap_mbps=42.0)
        assert g.effective_stream_cap == 42.0

    def test_effective_stream_cap_falls_back_to_path(self):
        g = FlowGroup("g", P1, 4)
        assert g.effective_stream_cap == pytest.approx(P1.stream_cap_mbps(1))

    def test_max_rate_combines_caps(self):
        g = FlowGroup("g", P1, 4, group_cap_mbps=100.0, stream_cap_mbps=42.0)
        assert g.max_rate_mbps == pytest.approx(100.0)
        g2 = FlowGroup("g", P1, 2, group_cap_mbps=1000.0, stream_cap_mbps=42.0)
        assert g2.max_rate_mbps == pytest.approx(84.0)

    def test_unbounded_group_cap(self):
        g = FlowGroup("g", P1, 2, stream_cap_mbps=10.0)
        assert g.group_cap_mbps == math.inf
        assert g.max_rate_mbps == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowGroup("", P1, 1)
        with pytest.raises(ValueError):
            FlowGroup("g", P1, 0)
        with pytest.raises(ValueError):
            FlowGroup("g", P1, 1, group_cap_mbps=-1.0)
        with pytest.raises(ValueError):
            FlowGroup("g", P1, 1, stream_cap_mbps=-1.0)


class TestTopology:
    def test_add_and_lookup_path(self):
        topo = Topology()
        topo.add_path(P1)
        assert topo.path("p1") is P1

    def test_links_registered_from_paths(self):
        topo = Topology()
        topo.add_path(P1)
        topo.add_path(P2)
        assert set(topo.links) == {"nic", "wan1", "wan2"}

    def test_shared_links(self):
        topo = Topology()
        topo.add_path(P1)
        topo.add_path(P2)
        assert topo.shared_links("p1", "p2") == {"nic"}

    def test_duplicate_path_rejected(self):
        topo = Topology()
        topo.add_path(P1)
        with pytest.raises(ValueError):
            topo.add_path(P1)

    def test_conflicting_link_redefinition_rejected(self):
        topo = Topology()
        topo.add_path(P1)
        bad = Path("p3", (Link("nic", 123.0),), rtt_ms=1.0)
        with pytest.raises(ValueError):
            topo.add_path(bad)

    def test_unknown_path_raises_keyerror(self):
        with pytest.raises(KeyError):
            Topology().path("nope")

    def test_duplicate_link_add_rejected(self):
        topo = Topology()
        topo.add_link(NIC)
        with pytest.raises(ValueError):
            topo.add_link(Link("nic", 5000.0))
