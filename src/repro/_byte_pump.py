"""Tiny transfer-tool stand-in: pump bytes to /dev/null and report.

Usage: ``python -m repro._byte_pump <np> <duration_s> [progress_s]``.
Writes chunks whose size scales with ``np`` for ``duration_s`` seconds
(or until SIGTERM), then prints the total byte count — the interface
:class:`repro.live.SubprocessEpochRunner` parses.  Exists so the live
adapter has a dependency-free end-to-end test target.

With ``progress_s > 0`` the running total is also printed every
``progress_s`` seconds, one count per line.  A parser that takes the
*last* line (:func:`repro.live.parse_last_count`) then still credits the
bytes a copy moved before being SIGKILLed mid-epoch — the partial-epoch
accounting the fault tests exercise.
"""

from __future__ import annotations

import signal
import sys
import time

_stop = False


def _on_term(signum, frame):  # pragma: no cover - signal path
    global _stop
    _stop = True


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print("usage: _byte_pump <np> <duration_s> [progress_s]",
              file=sys.stderr)
        return 2
    np_ = int(argv[0])
    duration = float(argv[1])
    progress = float(argv[2]) if len(argv) == 3 else 0.0
    signal.signal(signal.SIGTERM, _on_term)
    chunk = b"x" * (1024 * max(1, np_))
    end = time.monotonic() + duration
    next_report = (time.monotonic() + progress) if progress > 0 else None
    n = 0
    with open("/dev/null", "wb") as sink:
        while not _stop and time.monotonic() < end:
            sink.write(chunk)
            n += len(chunk)
            if next_report is not None and time.monotonic() >= next_report:
                print(n, flush=True)
                next_report = time.monotonic() + progress
            time.sleep(0.001)
    print(n, flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main(sys.argv[1:]))
