"""Steady-state TCP throughput models per congestion-control algorithm.

The paper attributes the rising branch of the throughput-vs-streams curve to
AIMD leaving bandwidth unused: a single stream's steady-state rate is capped
by its congestion-control response to loss and by the socket-buffer-limited
window, so parallel streams are needed to fill a fat long pipe.  We model
each stream's cap as::

    r_stream = min(buffer_limit, loss_limit)

    buffer_limit = wmax_bytes / rtt
    loss_limit   = (mss / rtt) * C / p**e        # response-function form

with the response-function constant ``C`` and loss exponent ``e`` taken per
algorithm from the literature:

* **Reno/AIMD** — Mathis et al.: ``sqrt(3/2) / sqrt(p)`` (C≈1.22, e=0.5).
* **CUBIC** — Ha et al. 2008: rate ∝ ``(b/RTT)^0.75 / p^0.75``; we use the
  standard response function with RTT entering at the 0.25 power overall
  (less RTT-sensitive than Reno).
* **H-TCP** — Leith & Shorten: aggressive additive increase as a function of
  time-since-loss; behaves close to ``1/sqrt(p)`` but with a larger constant
  on high-BDP paths.
* **Scalable TCP** — Kelly 2003: multiplicative increase gives rate
  ∝ ``1/p`` (e=1) with a small constant.

These are *models of caps*, not packet-level simulations: the fluid engine
combines them with max-min fair sharing (:mod:`repro.net.fairshare`) to get
aggregate rates.  An ``aimd_efficiency`` factor (<1) models the sawtooth
under-utilization that parallel streams progressively recover — the paper's
§III-A explanation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import DEFAULT_MSS, MB


@dataclass(frozen=True)
class CongestionControl:
    """Response-function description of one TCP congestion-control algorithm.

    ``rate = (mss / rtt_eff) * constant / p**loss_exponent`` where
    ``rtt_eff = rtt**rtt_exponent`` scaled so Reno (rtt_exponent=1) is the
    reference.  ``aimd_efficiency`` is the fraction of its cap a single
    stream achieves on average due to the sawtooth (window oscillating
    between W*beta and W).
    """

    name: str
    constant: float
    loss_exponent: float
    rtt_exponent: float
    aimd_efficiency: float

    def __post_init__(self) -> None:
        if self.constant <= 0:
            raise ValueError("constant must be positive")
        if not 0 < self.loss_exponent <= 1.5:
            raise ValueError("loss_exponent out of range")
        if not 0 < self.aimd_efficiency <= 1:
            raise ValueError("aimd_efficiency must be in (0, 1]")


#: Classic Reno/NewReno AIMD.  Sawtooth between W/2 and W averages 75%.
RENO = CongestionControl(
    name="reno", constant=1.22, loss_exponent=0.5, rtt_exponent=1.0,
    aimd_efficiency=0.75,
)

#: CUBIC (Linux default).  Less RTT-sensitive, gentler backoff (beta=0.7).
CUBIC = CongestionControl(
    name="cubic", constant=1.17, loss_exponent=0.75, rtt_exponent=0.25,
    aimd_efficiency=0.85,
)

#: Hamilton TCP (used on the paper's testbed endpoints).
HTCP = CongestionControl(
    name="htcp", constant=1.80, loss_exponent=0.5, rtt_exponent=1.0,
    aimd_efficiency=0.80,
)

#: Scalable TCP (Kelly).  MIMD; rate scales like 1/p.
SCALABLE = CongestionControl(
    name="scalable", constant=0.075, loss_exponent=1.0, rtt_exponent=1.0,
    aimd_efficiency=0.90,
)

CC_BY_NAME: dict[str, CongestionControl] = {
    cc.name: cc for cc in (RENO, CUBIC, HTCP, SCALABLE)
}


@dataclass(frozen=True)
class TcpModel:
    """Per-stream TCP rate model on a concrete path.

    Parameters
    ----------
    cc:
        Congestion-control algorithm.
    mss:
        Maximum segment size in bytes.
    wmax_bytes:
        Socket-buffer-limited maximum window in bytes (send/receive buffer).
    slow_start_tau:
        Time constant, in seconds, of the exponential ramp a restarted
        stream follows toward its steady-state rate.
    """

    cc: CongestionControl = HTCP
    mss: int = DEFAULT_MSS
    wmax_bytes: float = 4.0 * MB
    slow_start_tau: float = 5.0

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.wmax_bytes <= 0:
            raise ValueError("wmax_bytes must be positive")
        if self.slow_start_tau <= 0:
            raise ValueError("slow_start_tau must be positive")

    def buffer_limit_mbps(self, rtt_s: float) -> float:
        """Window-limited rate in MB/s: one window per RTT."""
        if rtt_s <= 0:
            raise ValueError("rtt must be positive")
        return (self.wmax_bytes / rtt_s) / MB

    def loss_limit_mbps(self, rtt_s: float, loss_rate: float) -> float:
        """Congestion-control response-function rate in MB/s.

        ``loss_rate`` is the steady background packet-loss probability; zero
        loss means the loss limit does not bind (returns +inf).
        """
        if rtt_s <= 0:
            raise ValueError("rtt must be positive")
        if loss_rate < 0 or loss_rate >= 1:
            raise ValueError("loss_rate must be in [0, 1)")
        if loss_rate == 0.0:
            return float("inf")
        rtt_eff = rtt_s ** self.cc.rtt_exponent
        rate_bytes = (self.mss / rtt_eff) * self.cc.constant / (
            loss_rate ** self.cc.loss_exponent
        )
        return rate_bytes / MB

    def stream_cap_mbps(self, rtt_s: float, loss_rate: float) -> float:
        """Steady-state cap of a single stream in MB/s.

        ``min(buffer limit, aimd_efficiency * loss limit)``: the sawtooth
        efficiency applies only to the loss-limited branch — a stream whose
        window is pinned at the socket-buffer maximum sees no losses and no
        sawtooth.  This is the quantity the fair-share allocator uses as
        the per-flow cap.
        """
        return min(
            self.buffer_limit_mbps(rtt_s),
            self.cc.aimd_efficiency * self.loss_limit_mbps(rtt_s, loss_rate),
        )

    def ramp_fraction(self, time_since_start: float) -> float:
        """Fraction of steady-state rate reached ``time_since_start`` s after
        a (re)start, following an exponential slow-start ramp.
        """
        if time_since_start < 0:
            raise ValueError("time_since_start must be non-negative")
        import math

        return 1.0 - math.exp(-time_since_start / self.slow_start_tau)
