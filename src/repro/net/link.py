"""Links and end-to-end paths.

A :class:`Link` is a capacity-constrained resource (a NIC, a WAN segment).
A :class:`Path` is the ordered set of links a transfer's streams traverse,
plus path-level properties (RTT, base loss rate, TCP model).  Multiple paths
may share links — in the paper's testbed, ANL→UChicago and ANL→TACC share
the source NIC at ANL, which is what couples the two transfers in Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.tcp import TcpModel
from repro.units import ms_to_s


@dataclass(frozen=True)
class Link:
    """A shared capacity constraint.

    Parameters
    ----------
    name:
        Unique identifier within a topology.
    capacity_mbps:
        Usable capacity in MB/s (bytes).  E.g. a 40 Gb/s NIC is 5000 MB/s.
    """

    name: str
    capacity_mbps: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be non-empty")
        if self.capacity_mbps <= 0:
            raise ValueError("capacity must be positive")


@dataclass(frozen=True)
class Path:
    """An end-to-end route with TCP-relevant properties.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"anl-uchicago"``.
    links:
        Links traversed, in order.  Sharing a Link object (by name) with
        another path makes the two paths compete for that capacity.
    rtt_ms:
        Round-trip time in milliseconds.
    loss_rate:
        Steady background packet-loss probability on the path.
    loss_per_stream:
        Self-congestion term: each active TCP stream on the path adds this
        much to the effective loss probability.  This is what makes the
        per-stream rate *fall* as streams are added — the paper's Fig. 1
        observation that aggregate throughput saturates and then the
        stream count stops paying off.
    tcp:
        Per-stream TCP model used on this path.
    """

    name: str
    links: tuple[Link, ...]
    rtt_ms: float
    loss_rate: float = 0.0
    loss_per_stream: float = 0.0
    tcp: TcpModel = field(default_factory=TcpModel)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("path name must be non-empty")
        if not self.links:
            raise ValueError("path must traverse at least one link")
        names = [l.name for l in self.links]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate link in path {self.name}: {names}")
        if self.rtt_ms <= 0:
            raise ValueError("rtt must be positive")
        if not 0 <= self.loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.loss_per_stream < 0:
            raise ValueError("loss_per_stream must be non-negative")

    @property
    def rtt_s(self) -> float:
        return ms_to_s(self.rtt_ms)

    @property
    def bottleneck_capacity_mbps(self) -> float:
        """Capacity of the narrowest link on the path, MB/s."""
        return min(l.capacity_mbps for l in self.links)

    def effective_loss(self, total_streams: int) -> float:
        """Loss probability with ``total_streams`` active streams on the
        path (background loss plus self-congestion), clamped below 1."""
        if total_streams < 0:
            raise ValueError("total_streams must be non-negative")
        return min(
            0.999, self.loss_rate + self.loss_per_stream * total_streams
        )

    def stream_cap_mbps(self, total_streams: int = 1) -> float:
        """Steady-state cap of one TCP stream on this path, MB/s, given the
        total number of streams currently loading the path."""
        return self.tcp.stream_cap_mbps(
            self.rtt_s, self.effective_loss(total_streams)
        )
