"""WAN network substrate.

A fluid model of TCP flows sharing capacity-constrained links:

* :mod:`repro.net.tcp` — steady-state per-stream rate models for the
  congestion-control algorithms the paper discusses (Reno/AIMD, CUBIC,
  H-TCP, Scalable TCP), plus a slow-start ramp model.
* :mod:`repro.net.link` — links and end-to-end paths (capacity, RTT, loss).
* :mod:`repro.net.fairshare` — progressive-filling max-min fair allocation
  of link capacity among flows with individual rate caps.
* :mod:`repro.net.flows` — flow groups (all streams of one transfer).
* :mod:`repro.net.topology` — endpoints, NICs, and shared bottlenecks.
"""

from repro.net.tcp import (
    CongestionControl,
    TcpModel,
    RENO,
    CUBIC,
    HTCP,
    SCALABLE,
    CC_BY_NAME,
)
from repro.net.link import Link, Path
from repro.net.fairshare import max_min_fair_allocation
from repro.net.flows import FlowGroup
from repro.net.topology import Topology
from repro.net.pathest import (
    PathEstimate,
    calibrated_hacker_prediction,
    estimate_from_samples,
    probe_path,
)

__all__ = [
    "CongestionControl",
    "TcpModel",
    "RENO",
    "CUBIC",
    "HTCP",
    "SCALABLE",
    "CC_BY_NAME",
    "Link",
    "Path",
    "max_min_fair_allocation",
    "FlowGroup",
    "Topology",
    "PathEstimate",
    "estimate_from_samples",
    "probe_path",
    "calibrated_hacker_prediction",
]
