"""Max-min fair bandwidth allocation by progressive filling.

TCP's long-run behaviour on a shared bottleneck is approximately fair *per
stream*: ``n`` streams competing with ``m`` external streams obtain about
``n / (n + m)`` of the capacity.  We compute the fluid equilibrium with the
classic progressive-filling algorithm, generalized with two kinds of caps:

* a per-stream cap (congestion-control / socket-buffer limit), and
* a per-group aggregate cap (e.g. the CPU-limited rate of the processes
  feeding the streams).

Every stream's rate is raised uniformly until either one of its caps binds
(the group freezes) or a link on its path saturates (all groups crossing
that link freeze).  The result is the unique max-min fair allocation subject
to the caps.

Invariants (property-tested in ``tests/net/test_fairshare.py``):

* no link carries more than its capacity;
* no group exceeds ``min(n_streams * stream_cap, group_cap)``;
* every group is *blocked*: it is at one of its own caps, or some link on
  its path is saturated;
* per-stream rates of groups blocked by the same link are equal unless
  capped lower (fairness).
"""

from __future__ import annotations

from repro.net.flows import FlowGroup

#: Tolerance used when checking saturation/caps, MB/s.
_EPS = 1e-9


def max_min_fair_allocation(groups: list[FlowGroup]) -> dict[str, float]:
    """Allocate link capacity among flow groups, max-min fairly per stream.

    Parameters
    ----------
    groups:
        Flow groups competing for the links on their paths.  Group names
        must be unique.

    Returns
    -------
    dict mapping group name to allocated aggregate rate in MB/s.
    """
    names = [g.name for g in groups]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate flow group names: {names}")
    if not groups:
        return {}

    n = len(groups)
    # Per-group state, indexed by position in ``groups`` (large
    # populations — fleet shards allocate 64+ groups per change point —
    # make dict lookups and repeated property walks the dominant cost,
    # so everything the rounds touch is flattened up front; the float
    # arithmetic below is operand-for-operand the naive formulation).
    per_stream = [0.0] * n
    frozen = [False] * n
    n_streams = [g.n_streams for g in groups]
    group_cap = [g.group_cap_mbps for g in groups]
    stream_cap = [g.effective_stream_cap for g in groups]

    # Collect links by name (shared Link objects must agree on capacity),
    # with member groups resolved once, in ``groups`` order — the same
    # order the naive per-round membership scans sum in.
    link_capacity: dict[str, float] = {}
    link_members: dict[str, list[int]] = {}
    for gi, g in enumerate(groups):
        seen: set[str] = set()
        for l in g.path.links:
            if l.name in link_capacity and link_capacity[l.name] != l.capacity_mbps:
                raise ValueError(
                    f"link {l.name!r} appears with two capacities: "
                    f"{link_capacity[l.name]} and {l.capacity_mbps}"
                )
            link_capacity[l.name] = l.capacity_mbps
            if l.name not in seen:
                seen.add(l.name)
                link_members.setdefault(l.name, []).append(gi)

    def link_load(lname: str) -> float:
        return sum(
            per_stream[gi] * n_streams[gi] for gi in link_members[lname]
        )

    # Degenerate groups with a zero cap freeze immediately.
    for gi, g in enumerate(groups):
        if g.max_rate_mbps <= _EPS:
            frozen[gi] = True

    # Progressive filling: raise all unfrozen per-stream rates by the
    # largest uniform increment that violates nothing, freeze whoever hit a
    # bound, repeat.  Each round freezes at least one group or saturates at
    # least one link, so the loop terminates in O(groups + links) rounds.
    for _ in range(n + len(link_capacity) + 1):
        active = [gi for gi in range(n) if not frozen[gi]]
        if not active:
            break

        increments: list[float] = []
        # Own-cap headroom, expressed as allowable per-stream increment.
        for gi in active:
            stream_headroom = stream_cap[gi] - per_stream[gi]
            group_headroom = (
                group_cap[gi] - per_stream[gi] * n_streams[gi]
            ) / n_streams[gi]
            increments.append(max(0.0, min(stream_headroom, group_headroom)))
        # Link headroom: filling dr per-stream adds dr * (active streams on
        # the link) to its load.
        for lname, cap in link_capacity.items():
            streams_on_link = sum(
                n_streams[gi]
                for gi in link_members[lname]
                if not frozen[gi]
            )
            if streams_on_link == 0:
                continue
            headroom = cap - link_load(lname)
            increments.append(max(0.0, headroom / streams_on_link))

        dr = min(increments)
        for gi in active:
            per_stream[gi] += dr

        # Freeze groups at their own caps.
        for gi in active:
            at_stream_cap = per_stream[gi] >= stream_cap[gi] - _EPS
            at_group_cap = (
                per_stream[gi] * n_streams[gi] >= group_cap[gi] - _EPS
            )
            if at_stream_cap or at_group_cap:
                frozen[gi] = True
        # Freeze groups crossing a saturated link.
        for lname, cap in link_capacity.items():
            if link_load(lname) >= cap - _EPS:
                for gi in link_members[lname]:
                    frozen[gi] = True
    else:  # pragma: no cover - loop bound is a proof, not a branch
        raise RuntimeError("progressive filling failed to converge")

    return {
        g.name: per_stream[gi] * n_streams[gi]
        for gi, g in enumerate(groups)
    }
