"""Max-min fair bandwidth allocation by progressive filling.

TCP's long-run behaviour on a shared bottleneck is approximately fair *per
stream*: ``n`` streams competing with ``m`` external streams obtain about
``n / (n + m)`` of the capacity.  We compute the fluid equilibrium with the
classic progressive-filling algorithm, generalized with two kinds of caps:

* a per-stream cap (congestion-control / socket-buffer limit), and
* a per-group aggregate cap (e.g. the CPU-limited rate of the processes
  feeding the streams).

Every stream's rate is raised uniformly until either one of its caps binds
(the group freezes) or a link on its path saturates (all groups crossing
that link freeze).  The result is the unique max-min fair allocation subject
to the caps.

Invariants (property-tested in ``tests/net/test_fairshare.py``):

* no link carries more than its capacity;
* no group exceeds ``min(n_streams * stream_cap, group_cap)``;
* every group is *blocked*: it is at one of its own caps, or some link on
  its path is saturated;
* per-stream rates of groups blocked by the same link are equal unless
  capped lower (fairness).
"""

from __future__ import annotations

from repro.net.flows import FlowGroup

#: Tolerance used when checking saturation/caps, MB/s.
_EPS = 1e-9


def max_min_fair_allocation(groups: list[FlowGroup]) -> dict[str, float]:
    """Allocate link capacity among flow groups, max-min fairly per stream.

    Parameters
    ----------
    groups:
        Flow groups competing for the links on their paths.  Group names
        must be unique.

    Returns
    -------
    dict mapping group name to allocated aggregate rate in MB/s.
    """
    names = [g.name for g in groups]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate flow group names: {names}")
    if not groups:
        return {}

    # Per-group state: current per-stream rate, frozen flag.
    per_stream = {g.name: 0.0 for g in groups}
    frozen = {g.name: False for g in groups}

    # Collect links by name (shared Link objects must agree on capacity).
    link_capacity: dict[str, float] = {}
    for g in groups:
        for l in g.path.links:
            if l.name in link_capacity and link_capacity[l.name] != l.capacity_mbps:
                raise ValueError(
                    f"link {l.name!r} appears with two capacities: "
                    f"{link_capacity[l.name]} and {l.capacity_mbps}"
                )
            link_capacity[l.name] = l.capacity_mbps

    def group_rate(g: FlowGroup) -> float:
        return per_stream[g.name] * g.n_streams

    def link_load(lname: str) -> float:
        return sum(group_rate(g) for g in groups if any(l.name == lname for l in g.path.links))

    # Degenerate groups with a zero cap freeze immediately.
    for g in groups:
        if g.max_rate_mbps <= _EPS:
            frozen[g.name] = True

    # Progressive filling: raise all unfrozen per-stream rates by the
    # largest uniform increment that violates nothing, freeze whoever hit a
    # bound, repeat.  Each round freezes at least one group or saturates at
    # least one link, so the loop terminates in O(groups + links) rounds.
    for _ in range(len(groups) + len(link_capacity) + 1):
        active = [g for g in groups if not frozen[g.name]]
        if not active:
            break

        increments: list[float] = []
        # Own-cap headroom, expressed as allowable per-stream increment.
        for g in active:
            stream_headroom = g.effective_stream_cap - per_stream[g.name]
            group_headroom = (g.group_cap_mbps - group_rate(g)) / g.n_streams
            increments.append(max(0.0, min(stream_headroom, group_headroom)))
        # Link headroom: filling dr per-stream adds dr * (active streams on
        # the link) to its load.
        for lname, cap in link_capacity.items():
            streams_on_link = sum(
                g.n_streams
                for g in active
                if any(l.name == lname for l in g.path.links)
            )
            if streams_on_link == 0:
                continue
            headroom = cap - link_load(lname)
            increments.append(max(0.0, headroom / streams_on_link))

        dr = min(increments)
        for g in active:
            per_stream[g.name] += dr

        # Freeze groups at their own caps.
        for g in active:
            at_stream_cap = per_stream[g.name] >= g.effective_stream_cap - _EPS
            at_group_cap = group_rate(g) >= g.group_cap_mbps - _EPS
            if at_stream_cap or at_group_cap:
                frozen[g.name] = True
        # Freeze groups crossing a saturated link.
        for lname, cap in link_capacity.items():
            if link_load(lname) >= cap - _EPS:
                for g in groups:
                    if not frozen[g.name] and any(
                        l.name == lname for l in g.path.links
                    ):
                        frozen[g.name] = True
    else:  # pragma: no cover - loop bound is a proof, not a branch
        raise RuntimeError("progressive filling failed to converge")

    return {g.name: group_rate(g) for g in groups}
