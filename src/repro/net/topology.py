"""Endpoint/NIC topology.

The testbed in the paper has one source NIC at ANL shared by everything
leaving that host (our transfer, external transfers, and in Fig. 11 a second
tuned transfer), plus distinct WAN paths to UChicago and TACC.  A
:class:`Topology` owns the links and named paths and builds
:class:`~repro.net.flows.FlowGroup` lists for the allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.link import Link, Path


@dataclass
class Topology:
    """A named collection of links and paths.

    Links shared between paths (same object / name) couple those paths in
    the fair-share allocation.
    """

    links: dict[str, Link] = field(default_factory=dict)
    paths: dict[str, Path] = field(default_factory=dict)

    def add_link(self, link: Link) -> Link:
        if link.name in self.links:
            raise ValueError(f"duplicate link name {link.name!r}")
        self.links[link.name] = link
        return link

    def add_path(self, path: Path) -> Path:
        if path.name in self.paths:
            raise ValueError(f"duplicate path name {path.name!r}")
        for l in path.links:
            known = self.links.get(l.name)
            if known is None:
                self.links[l.name] = l
            elif known != l:
                raise ValueError(
                    f"path {path.name!r} redefines link {l.name!r}"
                )
        self.paths[path.name] = path
        return path

    def path(self, name: str) -> Path:
        try:
            return self.paths[name]
        except KeyError:
            raise KeyError(
                f"unknown path {name!r}; available: {sorted(self.paths)}"
            ) from None

    def shared_links(self, a: str, b: str) -> set[str]:
        """Names of links common to paths ``a`` and ``b``."""
        la = {l.name for l in self.path(a).links}
        lb = {l.name for l in self.path(b).links}
        return la & lb
