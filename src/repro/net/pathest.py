"""Path characterization from probe transfers (extension).

The analytical tuners of the paper's related work need measured path
characteristics (RTT, loss, capacity) from external instrumentation —
their key practical drawback.  This module recovers the two quantities
the Hacker-style model actually consumes from a handful of *probe
transfers* the mover itself can run (the calibration transfers of Yin et
al. [28], done with the transfer tool instead of Iperf):

* the **per-stream rate** ``r`` from the low-stream-count samples, where
  aggregate throughput grows linearly (``T ≈ r·n``);
* the **capacity** ``C`` from the plateau of the high-stream-count
  samples.

The predicted saturating stream count is then ``C / r``, which
:func:`calibrated_hacker_prediction` rounds to a concurrency value — a
self-calibrating analytical baseline that needs no out-of-band tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

#: A probe: stream count in, epoch-average throughput (MB/s) out.
ProbeRunner = Callable[[int], float]


@dataclass(frozen=True)
class PathEstimate:
    """Characteristics recovered from probe transfers."""

    per_stream_mbps: float
    capacity_mbps: float
    samples: tuple[tuple[int, float], ...]

    @property
    def saturating_streams(self) -> int:
        """Streams needed to fill the estimated capacity."""
        return max(1, int(np.ceil(self.capacity_mbps / self.per_stream_mbps)))


def estimate_from_samples(
    ns: Sequence[int], ts: Sequence[float]
) -> PathEstimate:
    """Estimate per-stream rate and capacity from (streams, MB/s) samples.

    Uses the smallest stream counts for the linear slope (regression
    through the origin) and the largest observed throughput as the
    capacity floor — deliberately simple and monotone-robust, as probes
    are few and noisy.
    """
    if len(ns) != len(ts) or len(ns) < 2:
        raise ValueError("need >= 2 paired samples")
    if any(n < 1 for n in ns) or any(t <= 0 for t in ts):
        raise ValueError("samples must be positive")
    order = np.argsort(ns)
    ns_arr = np.asarray(ns, dtype=float)[order]
    ts_arr = np.asarray(ts, dtype=float)[order]
    if len(np.unique(ns_arr)) < 2:
        raise ValueError("need at least two distinct stream counts")

    # Slope from the lowest half of the stream counts (linear regime),
    # least squares through the origin: r = sum(n t) / sum(n^2).
    k = max(2, len(ns_arr) // 2)
    low_n, low_t = ns_arr[:k], ts_arr[:k]
    per_stream = float((low_n * low_t).sum() / (low_n * low_n).sum())

    capacity = float(ts_arr.max())
    # A path is at least one stream wide.
    per_stream = min(per_stream, capacity)
    return PathEstimate(
        per_stream_mbps=per_stream,
        capacity_mbps=capacity,
        samples=tuple((int(n), float(t)) for n, t in zip(ns_arr, ts_arr)),
    )


def probe_path(
    run_probe: ProbeRunner,
    *,
    stream_counts: Sequence[int] = (1, 2, 4, 16, 64, 128),
) -> PathEstimate:
    """Run probe transfers at the given stream counts and estimate."""
    if len(stream_counts) < 2:
        raise ValueError("need >= 2 probe points")
    samples = [(n, float(run_probe(int(n)))) for n in stream_counts]
    return estimate_from_samples(
        [n for n, _ in samples], [t for _, t in samples]
    )


def calibrated_hacker_prediction(
    estimate: PathEstimate, *, np_: int = 8, headroom: float = 1.0
) -> int:
    """Concurrency the self-calibrated analytical model would pick."""
    if np_ < 1:
        raise ValueError("np must be >= 1")
    if headroom <= 0:
        raise ValueError("headroom must be positive")
    streams = headroom * estimate.saturating_streams
    return max(1, round(streams / np_))
