"""Round-based packet-level TCP simulator.

The fluid model (:mod:`repro.net.fairshare` + :mod:`repro.net.tcp`) treats
per-stream rates as steady-state response functions.  This module provides
the dynamics those response functions summarize: every stream carries a
congestion window evolved per RTT round through slow start, congestion
avoidance (with the increase/decrease rules of Reno, CUBIC, H-TCP and
Scalable TCP), and loss reactions — both random background loss and
buffer overflow at the bottleneck queue.

It exists for two reasons:

* **validation** — `tests/net/test_packetsim.py` checks the simulator
  against the closed-form models (Mathis throughput, per-stream fairness)
  and `benchmarks/bench_validation.py` compares its aggregate throughput
  against the fluid allocation across stream counts, grounding the
  substrate the figure benches run on;
* **fidelity experiments** — it reproduces the AIMD sawtooth
  under-utilization story of the paper's §III-A (a single stream leaves
  bandwidth unused; parallel streams consume it).

The model is round-based: one simulation step = one RTT.  This is the
classic fluid-window abstraction (packets within a round are not
individually scheduled), accurate for long flows at the
tens-of-milliseconds RTTs the paper's paths have.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.net.tcp import CongestionControl, HTCP, RENO
from repro.units import DEFAULT_MSS, MB


@dataclass(frozen=True)
class PacketPath:
    """Bottleneck description for the packet simulator.

    Parameters
    ----------
    capacity_mbps:
        Bottleneck bandwidth in MB/s.
    rtt_s:
        Base round-trip time (propagation, excluding queueing).
    buffer_packets:
        Bottleneck queue size in packets; overflow causes synchronized
        loss events.
    loss_rate:
        Random per-packet background loss probability.
    mss:
        Segment size in bytes.
    """

    capacity_mbps: float
    rtt_s: float
    buffer_packets: int = 2000
    loss_rate: float = 0.0
    mss: int = DEFAULT_MSS

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ValueError("capacity must be positive")
        if self.rtt_s <= 0:
            raise ValueError("rtt must be positive")
        if self.buffer_packets < 0:
            raise ValueError("buffer_packets must be non-negative")
        if not 0 <= self.loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.mss <= 0:
            raise ValueError("mss must be positive")

    @property
    def bdp_packets(self) -> float:
        """Bandwidth-delay product in packets."""
        return self.capacity_mbps * MB * self.rtt_s / self.mss


#: CC-specific multiplicative decrease factors (fraction kept on loss).
_BETA = {"reno": 0.5, "cubic": 0.7, "htcp": 0.8, "scalable": 0.875}

#: Scalable TCP per-ACK additive constant (RFC draft value 0.01).
_SCALABLE_A = 0.01

#: CUBIC scaling constant (packets/s^3), standard value.
_CUBIC_C = 0.4


@dataclass
class StreamState:
    """Congestion state of one TCP stream."""

    cc: CongestionControl
    cwnd: float = 2.0             #: congestion window, packets
    ssthresh: float = math.inf    #: slow-start threshold, packets
    in_slow_start: bool = True
    time_since_loss: float = 0.0  #: seconds since last loss (H-TCP, CUBIC)
    w_max: float = 0.0            #: window at last loss (CUBIC)
    delivered_packets: float = 0.0

    def beta(self) -> float:
        return _BETA[self.cc.name]

    def on_loss(self) -> None:
        """Multiplicative decrease + state reset."""
        self.w_max = self.cwnd
        self.cwnd = max(2.0, self.cwnd * self.beta())
        self.ssthresh = self.cwnd
        self.in_slow_start = False
        self.time_since_loss = 0.0

    def grow(self, rtt_s: float) -> None:
        """One RTT's worth of window growth without loss."""
        self.time_since_loss += rtt_s
        if self.in_slow_start:
            self.cwnd *= 2.0
            if self.cwnd >= self.ssthresh:
                self.cwnd = self.ssthresh
                self.in_slow_start = False
            return
        name = self.cc.name
        if name == "reno":
            self.cwnd += 1.0
        elif name == "scalable":
            # +a per ACK, cwnd ACKs per RTT -> multiplicative growth.
            self.cwnd *= 1.0 + _SCALABLE_A
        elif name == "htcp":
            # Leith & Shorten: alpha = 1 for the first second after loss,
            # then 1 + 10(t - 1) + ((t - 1) / 2)^2.
            t = self.time_since_loss
            if t <= 1.0:
                alpha = 1.0
            else:
                alpha = 1.0 + 10.0 * (t - 1.0) + ((t - 1.0) / 2.0) ** 2
            self.cwnd += alpha
        elif name == "cubic":
            # w(t) = C (t - K)^3 + w_max, K = cbrt(w_max * (1-beta) / C).
            t = self.time_since_loss
            k = ((self.w_max * (1.0 - self.beta())) / _CUBIC_C) ** (1.0 / 3.0)
            target = _CUBIC_C * (t - k) ** 3 + self.w_max
            # TCP-friendly floor: at least Reno's +1/RTT.
            self.cwnd = max(target, self.cwnd + 1.0)
        else:  # pragma: no cover - registry is closed
            raise ValueError(f"unknown congestion control {name!r}")


@dataclass
class PacketLevelSimulator:
    """N TCP streams sharing one bottleneck, advanced one RTT per step.

    Parameters
    ----------
    path:
        Bottleneck parameters.
    streams:
        Congestion-control algorithm per stream (one entry per stream; use
        ``[HTCP] * n`` for homogeneous flows).
    seed:
        RNG seed for background-loss draws.
    """

    path: PacketPath
    streams: list[CongestionControl] = field(default_factory=lambda: [RENO])
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.streams:
            raise ValueError("need at least one stream")
        self.states = [StreamState(cc=cc) for cc in self.streams]
        self.rng = np.random.default_rng(self.seed)
        self.round = 0

    # -- stepping ----------------------------------------------------------

    def step(self) -> float:
        """Advance one RTT; returns aggregate goodput this round in MB/s."""
        path = self.path
        capacity_per_round = path.bdp_packets  # packets servable per RTT

        offered = np.array([s.cwnd for s in self.states])
        total_offered = float(offered.sum())

        # The link serves at most one BDP of packets per round; excess up
        # to the buffer size queues (delay we fold into the round), and
        # anything beyond the buffer is dropped.
        delivered = offered.copy()
        if total_offered > capacity_per_round:
            delivered *= capacity_per_round / total_offered
        overflow = total_offered - (capacity_per_round + path.buffer_packets)
        congested = overflow > 0

        # Loss decisions per stream: buffer overflow hits the streams
        # proportionally (each stream's overflow-loss probability grows
        # with its share), and background loss hits any packet.
        for i, s in enumerate(self.states):
            s.delivered_packets += float(delivered[i])
            lost = False
            if congested:
                # P[at least one drop] for this stream this round.
                drop_frac = overflow / total_offered
                p_overflow = 1.0 - (1.0 - min(drop_frac, 1.0)) ** max(
                    offered[i], 1.0
                )
                lost = bool(self.rng.random() < p_overflow)
            if not lost and path.loss_rate > 0:
                p_bg = 1.0 - (1.0 - path.loss_rate) ** max(offered[i], 1.0)
                lost = bool(self.rng.random() < p_bg)
            if lost:
                s.on_loss()
            else:
                s.grow(path.rtt_s)

        self.round += 1
        delivered_bytes = float(delivered.sum()) * path.mss
        return delivered_bytes / path.rtt_s / MB

    def run(self, duration_s: float, *, warmup_s: float = 0.0) -> "PacketRunResult":
        """Simulate ``duration_s`` seconds; returns goodput statistics.

        ``warmup_s`` rounds are simulated but excluded from the averages
        (slow-start transient).
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if warmup_s < 0:
            raise ValueError("warmup must be non-negative")
        warmup_rounds = int(warmup_s / self.path.rtt_s)
        rounds = max(1, int(duration_s / self.path.rtt_s))
        per_round = np.empty(rounds)
        baseline = [s.delivered_packets for s in self.states]
        for _ in range(warmup_rounds):
            self.step()
            baseline = [s.delivered_packets for s in self.states]
        for r in range(rounds):
            per_round[r] = self.step()
        per_stream_packets = np.array(
            [s.delivered_packets - b for s, b in zip(self.states, baseline)]
        )
        elapsed = rounds * self.path.rtt_s
        per_stream = per_stream_packets * self.path.mss / elapsed / MB
        return PacketRunResult(
            aggregate_mbps=float(per_round.mean()),
            per_stream_mbps=per_stream,
            rounds=rounds,
        )


@dataclass(frozen=True)
class PacketRunResult:
    """Goodput measured over a packet-level run."""

    aggregate_mbps: float
    per_stream_mbps: np.ndarray
    rounds: int

    @property
    def jain_fairness(self) -> float:
        """Jain's fairness index of the per-stream goodputs (1 = equal)."""
        x = self.per_stream_mbps
        denom = len(x) * float((x**2).sum())
        if denom == 0:
            return 1.0
        return float(x.sum()) ** 2 / denom


def aggregate_goodput_mbps(
    n_streams: int,
    path: PacketPath,
    *,
    cc: CongestionControl = HTCP,
    duration_s: float = 120.0,
    warmup_s: float = 20.0,
    seed: int = 0,
) -> float:
    """Convenience: steady-state aggregate goodput of ``n_streams``
    identical flows on ``path``."""
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    sim = PacketLevelSimulator(path=path, streams=[cc] * n_streams, seed=seed)
    return sim.run(duration_s, warmup_s=warmup_s).aggregate_mbps
