"""Flow groups: the unit of bandwidth allocation.

A :class:`FlowGroup` represents *all* TCP streams of one logical transfer
(for our transfer: ``nc * np`` streams; for external traffic: ``ext.tfr``
streams).  The fair-share allocator treats each stream as one TCP-fair
claimant, so a group with more streams receives a proportionally larger
share of a congested link — the mechanism by which parallel streams "claim
the majority of available bandwidth" (paper §III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import Path


@dataclass(frozen=True)
class FlowGroup:
    """A set of identical TCP streams belonging to one transfer.

    Parameters
    ----------
    name:
        Unique identifier within one allocation round.
    path:
        The route all streams of the group follow.
    n_streams:
        Number of parallel TCP streams (>= 1).
    group_cap_mbps:
        Aggregate cap on the whole group in MB/s, e.g. the CPU-limited rate
        of the processes feeding these streams.  ``inf`` if unbounded.
    stream_cap_mbps:
        Per-stream cap in MB/s; defaults to the path's TCP model cap when
        ``None``.
    """

    name: str
    path: Path
    n_streams: int
    group_cap_mbps: float = float("inf")
    stream_cap_mbps: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("flow group name must be non-empty")
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.group_cap_mbps < 0:
            raise ValueError("group_cap_mbps must be non-negative")
        if self.stream_cap_mbps is not None and self.stream_cap_mbps < 0:
            raise ValueError("stream_cap_mbps must be non-negative")

    @property
    def effective_stream_cap(self) -> float:
        """Per-stream cap in MB/s (explicit override or path TCP model)."""
        if self.stream_cap_mbps is not None:
            return self.stream_cap_mbps
        return self.path.stream_cap_mbps()

    @property
    def max_rate_mbps(self) -> float:
        """Upper bound on the group's aggregate rate from its own caps only
        (ignoring link contention)."""
        return min(self.n_streams * self.effective_stream_cap, self.group_cap_mbps)
