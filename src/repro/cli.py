"""Command-line interface.

The subcommands mirror how the library is used:

* ``run``    — one tuned transfer on a scenario, with a summary and the
  adopted parameter trajectory; ``--journal`` makes it crash-safe;
  ``--reps N --jobs J`` replicates across seeds in parallel and reports
  the mean with a confidence interval (``--batch`` advances the
  replicates in lockstep lanes, bit-identical to the serial path);
* ``resume`` — continue a killed journaled run (bit-identical result);
* ``sweep``  — the static response surface (throughput vs nc);
* ``oracle`` — the best static setting by offline sweep;
* ``figure`` — regenerate one of the paper's figures as text;
* ``campaign`` — the whole evaluation; ``--journal`` resumes at the
  granularity of completed figures; ``--jobs`` fans the units out over
  processes and ``--batch N`` advances each unit's runs in lockstep
  lanes (identical report at any width of either axis);
* ``info``   — registered tuners, scenarios, and load profiles;
  ``--timings`` prints a campaign journal's per-unit wall times;
* ``top``    — ANSI dashboard over a journal or saved trace
  (``--follow`` re-renders live while a journaled run progresses);
* ``cache``  — inspect/clear/prune the content-addressed run cache;
  ``cache serve`` exposes it over HTTP with graceful SIGTERM drain;
* ``serve``  — the long-running multi-tenant tuning fleet service
  (admission control, supervision, graceful drain);
* ``submit`` — submit one tenant to a running fleet (``--watch`` polls
  it to completion).

``run``, ``oracle``, and ``campaign`` cache their simulation results in
``.repro-cache`` (override with ``--cache-dir`` or ``$REPRO_CACHE_DIR``)
so repeating an experiment is nearly free; ``--no-cache`` forces a
fresh simulation.  Cached results are bit-identical to simulated ones.

Invoke as ``python -m repro ...`` or via the ``repro-transfer`` script.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from typing import Sequence

from repro.analysis.stats import steady_state_mean, time_to_steady_state
from repro.analysis.surface import critical_point, unimodality_score
from repro.core.base import StaticTuner, Tuner
from repro.core import registry
from repro.endpoint.load import ExternalLoad
from repro.experiments import figures
from repro.experiments.batch import resolve_fallback_warn
from repro.experiments.campaign import CampaignScale, run_campaign
from repro.experiments.oracle import oracle_static_nc
from repro.experiments.report import ascii_chart, downsample, render_series, render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import SCENARIOS, Scenario
from repro.sim.trace import Trace


def make_tuner(name: str, seed: int) -> Tuner:
    """Construct a tuner by CLI name (see :mod:`repro.core.registry`)."""
    try:
        return registry.make_tuner(name, seed)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None


def parse_load(text: str) -> ExternalLoad:
    """Parse ``cmp16``, ``tfr64``, ``cmp16+tfr64``, or ``none``."""
    try:
        return ExternalLoad.parse(text)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _cache_spec(args: argparse.Namespace):
    """The ``cache=`` value for a subcommand's ``--cache/--no-cache``."""
    if not args.cache:
        return False
    from repro.cache import RunCache

    return RunCache(args.cache_dir)


def _scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise SystemExit(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None


# -- subcommands -------------------------------------------------------------


def _make_obs(args: argparse.Namespace):
    """Build the observability bundle for ``--events``/``--metrics-out``.

    Returns ``(obs, event_log)`` — both ``None`` when neither flag is
    set, so uninstrumented runs stay on the zero-overhead path.
    """
    if not (args.events or args.metrics_out):
        return None, None
    from repro.obs import Instrumentation, JsonlEventLog

    obs = Instrumentation.on()
    log = None
    if args.events:
        log = JsonlEventLog(args.events).attach_to(obs.bus)
    return obs, log


def _finish_obs(args: argparse.Namespace, obs, log) -> None:
    if log is not None:
        log.close()
        print(f"events written  : {args.events} ({log.written} events)")
    if obs is not None and args.metrics_out:
        from repro.obs import write_prometheus

        write_prometheus(obs.metrics, args.metrics_out)
        print(f"metrics written : {args.metrics_out}")


def _print_summary(
    trace: Trace, *, scenario: str, load: str, tuner: str,
    tune_np: bool, chart: bool,
) -> None:
    steady = steady_state_mean(trace)
    best = steady_state_mean(trace, best_case=True)
    print(f"scenario   : {scenario} ({load})")
    print(f"tuner      : {tuner}")
    print(f"steady observed : {steady:8.0f} MB/s")
    print(f"steady best-case: {best:8.0f} MB/s "
          f"(restart overhead {100 * (1 - steady / max(best, 1e-9)):.0f}%)")
    print(f"time to steady  : {time_to_steady_state(trace):8.0f} s")
    print(f"bytes moved     : {trace.total_bytes / 1e9:8.1f} GB")
    names = ["nc"] + (["np"] if tune_np else [])
    for dim, label in enumerate(names):
        vals = trace.epoch_param(dim).tolist()
        print(f"{label} per epoch: "
              + " ".join(str(int(v)) for v in downsample(vals, 30)))
    if chart:
        print()
        print(
            ascii_chart(
                {
                    "observed": trace.epoch_observed().tolist(),
                    "best-case": trace.epoch_best_case().tolist(),
                },
                title="throughput (MB/s) per control epoch",
            )
        )


def _save_trace(trace: Trace, path: str) -> None:
    from repro.sim.traceio import save_trace

    save_trace(trace, path)
    print(f"trace written   : {path}")


def _rep_experiment(
    seed: int, *, scenario_name: str, tuner_name: str, load: str,
    duration_s: float, tune_np: bool, fixed_np: int,
) -> float:
    """One ``run --reps`` replicate: seed in, steady MB/s out.

    Module-level (wrapped in ``functools.partial``) so it crosses the
    process boundary when ``--jobs`` fans the seeds out.
    """
    trace = run_single(
        SCENARIOS[scenario_name],
        registry.make_tuner(tuner_name, seed),
        load=ExternalLoad.parse(load),
        duration_s=duration_s,
        tune_np=tune_np,
        fixed_np=fixed_np,
        seed=seed,
    )
    return steady_state_mean(trace)


def _run_replicates(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import replicate_seeds
    from repro.experiments.replicate import Replicates, replicate

    for value, flag in (
        (args.journal, "--journal"), (args.warm_start, "--warm-start"),
        (args.trace_out, "--trace-out"), (args.events, "--events"),
        (args.metrics_out, "--metrics-out"),
    ):
        if value is not None:
            raise SystemExit(
                f"{flag} is incompatible with --reps: replicates are "
                "independent seeded runs without per-run artifacts"
            )
    make_tuner(args.tuner, args.seed)  # fail fast on a bad name
    parse_load(args.load)
    seeds = replicate_seeds(args.seed, args.reps)
    occ = None
    if args.batch is not None:
        # Batched replicates: the seeds become a spec list and advance
        # in lockstep lanes; values are identical to the scalar path
        # because every trace is bit-identical to run_single's.
        from repro.experiments.batch import (
            SingleRunSpec,
            occupancy,
            run_many,
        )

        scenario = _scenario(args.scenario)
        load = parse_load(args.load)
        specs = [
            SingleRunSpec(
                scenario, registry.make_tuner(args.tuner, seed),
                load=load, duration_s=args.duration,
                tune_np=args.tune_np, fixed_np=args.np, seed=seed,
            )
            for seed in seeds
        ]
        occ0 = occupancy()
        traces = run_many(specs, jobs=args.jobs, batch=args.batch,
                          cache=_cache_spec(args))
        occ = occupancy() - occ0
        reps = Replicates(
            values=tuple(steady_state_mean(t) for t in traces),
            seeds=tuple(seeds),
        )
    else:
        experiment = functools.partial(
            _rep_experiment,
            scenario_name=args.scenario,
            tuner_name=args.tuner,
            load=args.load,
            duration_s=args.duration,
            tune_np=args.tune_np,
            fixed_np=args.np,
        )
        reps = replicate(
            experiment, seeds, jobs=args.jobs, cache=_cache_spec(args),
        )
    print(render_table(
        ["seed", "steady MB/s"],
        [[s, f"{v:.0f}"] for s, v in zip(reps.seeds, reps.values)],
        title=(f"{args.scenario} / {args.tuner} / load={args.load}: "
               f"{args.reps} replicates"),
    ))
    lo, hi = reps.confidence_interval()
    print(f"\nmean {reps.mean:.0f} MB/s, 95% CI [{lo:.0f}, {hi:.0f}] "
          f"(sample std {reps.std:.0f})")
    if occ is not None and (occ.simulated or occ.cached):
        print(f"(batch: {occ.batched} runs batched in {occ.chunks} "
              f"chunks, {occ.fallback} fell back to scalar, "
              f"{occ.cached} cache hits)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.reps < 1:
        raise SystemExit("--reps must be >= 1")
    if args.reps > 1:
        return _run_replicates(args)
    if args.batch is not None:
        raise SystemExit(
            "--batch needs --reps N (N > 1): batching advances "
            "independent seed replicates in lockstep"
        )
    scenario = _scenario(args.scenario)
    tuner = make_tuner(args.tuner, args.seed)
    obs, event_log = _make_obs(args)
    if args.journal is not None:
        from repro.checkpoint import run_journaled

        parse_load(args.load)  # fail fast with the CLI message
        try:
            trace = run_journaled(
                args.journal,
                scenario=scenario.name,
                tuner=args.tuner,
                seed=args.seed,
                load=args.load,
                duration_s=args.duration,
                tune_np=args.tune_np,
                fixed_np=args.np,
                warm_start_from=args.warm_start,
                obs=obs,
            )
        except FileExistsError as exc:
            raise SystemExit(str(exc)) from None
    else:
        if args.warm_start is not None:
            raise SystemExit("--warm-start needs a journal-based run; "
                             "pass --journal as well")
        trace = run_single(
            scenario,
            tuner,
            load=parse_load(args.load),
            duration_s=args.duration,
            tune_np=args.tune_np,
            fixed_np=args.np,
            seed=args.seed,
            obs=obs,
            cache=_cache_spec(args),
        )
    _print_summary(trace, scenario=scenario.name, load=args.load,
                   tuner=tuner.name, tune_np=args.tune_np, chart=args.chart)
    if args.trace_out:
        _save_trace(trace, args.trace_out)
    _finish_obs(args, obs, event_log)
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.checkpoint import read_journal, resume_run

    try:
        journal = read_journal(args.journal)
    except FileNotFoundError:
        raise SystemExit(f"no journal at {args.journal}") from None
    if journal.header is None or "run" not in journal.header:
        raise SystemExit(
            f"{args.journal} is not a `repro run --journal` journal"
        )
    config = journal.header["run"]
    if journal.ended:
        print(f"journal {args.journal} already complete; reconstructing")
    else:
        print(f"resuming {args.journal} from epoch "
              f"{len(journal.snapshot_epochs)}")
    obs, event_log = _make_obs(args)
    if event_log is not None:
        # Resume replays the snapshot-covered prefix instead of
        # re-running it, so reconstruct those epochs' events from the
        # journal; the engine emits the re-run remainder live.  The
        # combined stream matches an uninterrupted run's exactly.
        from repro.obs import events_from_records

        for session in journal.sessions():
            recs = [je.record
                    for je in journal.snapshot_epochs_for(session)]
            for ev in events_from_records(session, recs):
                event_log(ev)
    trace = resume_run(args.journal, obs=obs)
    _print_summary(
        trace, scenario=config["scenario"], load=config["load"],
        tuner=config["tuner"], tune_np=bool(config["tune_np"]),
        chart=args.chart,
    )
    if args.trace_out:
        _save_trace(trace, args.trace_out)
    _finish_obs(args, obs, event_log)
    return 0


def _info_timings(path: str) -> int:
    from repro.checkpoint import read_journal

    try:
        journal = read_journal(path)
    except FileNotFoundError:
        raise SystemExit(f"no journal at {path}") from None
    if not journal.sections:
        raise SystemExit(
            f"{path} has no section records — `--timings` reads campaign "
            "journals (`repro campaign --journal PATH`)"
        )
    rows, total = [], 0.0
    phase_totals = {"span": 0.0, "close": 0.0, "dispatch": 0.0}
    have_phases = False
    for name, record in journal.sections.items():
        elapsed = record.get("elapsed_s")
        batch = record.get("batch")
        if isinstance(batch, list) and len(batch) == 4:
            batched, fallback = int(batch[0]), int(batch[1])
            occ = f"{batched}/{fallback}" if (batched or fallback) else "-"
        else:  # journal predates batch occupancy
            occ = "-"
        phases = record.get("phase_s")
        cols = []
        for key in ("span", "close", "dispatch"):
            if isinstance(phases, dict) and key in phases:
                have_phases = True
                secs = float(phases[key])
                phase_totals[key] += secs
                cols.append(f"{secs:.3f}")
            else:  # journal predates per-phase timing
                cols.append("-")
        if elapsed is None:  # journal predates per-unit timing
            rows.append([name, "-", occ, *cols])
        else:
            rows.append([name, f"{float(elapsed):.2f}", occ, *cols])
            total += float(elapsed)
    print(render_table(
        ["unit", "wall s", "batched/fallback",
         "span s", "close s", "dispatch s"], rows,
        title=f"per-unit wall time: {path}"))
    print(f"\nrecorded total : {total:.2f} s"
          + ("" if journal.ended else "  (campaign incomplete)"))
    if have_phases:
        print("batch phases   : "
              + ", ".join(f"{k} {phase_totals[k]:.3f} s"
                          for k in ("span", "close", "dispatch")))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    if args.timings is not None:
        return _info_timings(args.timings)
    print(render_table(["tuner", "description"], registry.tuner_info(),
                       title="registered tuners"))
    print()
    print(render_table(["scenario", "description"],
                       registry.scenario_info(),
                       title="registered scenarios"))
    print()
    print(render_table(["load", "description"],
                       registry.load_profile_info(),
                       title="standard load profiles (any cmpN/tfrN "
                             "combination is accepted)"))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.obs import follow, render_path

    try:
        if args.follow:
            follow(args.path, interval_s=args.interval, width=args.width,
                   max_frames=args.frames)
        else:
            print(render_path(args.path, width=args.width))
    except FileNotFoundError:
        raise SystemExit(f"no journal or trace at {args.path}") from None
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    scenario = _scenario(args.scenario)
    load = parse_load(args.load)
    nc_values = [int(v) for v in args.nc.split(",")]
    rows = []
    for nc in nc_values:
        trace = run_single(
            scenario,
            StaticTuner(),
            load=load,
            duration_s=args.duration,
            x0=(nc,),
            fixed_np=args.np,
            seed=args.seed,
        )
        rows.append([nc, steady_state_mean(trace, tail_fraction=0.75)])
    print(
        render_table(
            ["nc", "steady MB/s"],
            rows,
            title=(
                f"{scenario.name}, np={args.np}, load={args.load}: "
                "static response surface"
            ),
        )
    )
    if len(rows) >= 3:
        streams = [r[0] * args.np for r in rows]
        values = [r[1] for r in rows]
        est = critical_point(streams, values, n_boot=100, seed=args.seed)
        print(
            f"\nfitted critical point: {est.point:.0f} streams "
            f"(95% CI [{est.ci_low:.0f}, {est.ci_high:.0f}]); "
            f"unimodality {unimodality_score(values):.2f}"
        )
    return 0


def cmd_oracle(args: argparse.Namespace) -> int:
    scenario = _scenario(args.scenario)
    oracle = oracle_static_nc(
        scenario,
        load=parse_load(args.load),
        fixed_np=args.np,
        duration_s=args.duration,
        seed=args.seed,
        search=args.search,
        jobs=args.jobs,
        cache=_cache_spec(args),
    )
    print(
        f"oracle static nc = {oracle.params[0]} "
        f"({oracle.throughput_mbps:.0f} MB/s, "
        f"{oracle.evaluations} evaluations, {oracle.search} search)"
    )
    return 0


FIGURES = {
    "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "tacc",
}


def cmd_figure(args: argparse.Namespace) -> int:
    name = args.name
    if name not in FIGURES:
        raise SystemExit(
            f"unknown figure {name!r}; choose from {sorted(FIGURES)}"
        )
    if name == "fig1":
        result = figures.fig1(duration_s=args.duration / 3, reps=3,
                              seed=args.seed)
        rows = [
            [label, nc, result.stats[label][nc].median]
            for label in result.stats
            for nc in result.nc_values
        ]
        print(render_table(["load", "nc", "median MB/s"], rows,
                           title="Fig 1"))
    elif name in ("fig5", "fig6", "fig7"):
        result = figures.fig5(duration_s=args.duration, seed=args.seed)
        rows = [
            [load, tuner, result.steady_observed(load, tuner),
             result.steady_best_case(load, tuner)]
            for load in result.traces
            for tuner in result.traces[load]
        ]
        print(render_table(["load", "tuner", "observed", "best-case"],
                           rows, title="Figs 5-7"))
    elif name == "tacc":
        result = figures.tacc_concurrency(duration_s=args.duration,
                                          seed=args.seed)
        rows = [
            [load, tuner, result.steady_observed(load, tuner)]
            for load in result.traces
            for tuner in result.traces[load]
        ]
        print(render_table(["load", "tuner", "observed"], rows,
                           title="ANL->TACC study"))
    elif name in ("fig8", "fig9", "fig10"):
        fn = {"fig8": figures.fig8, "fig9": figures.fig9,
              "fig10": figures.fig10}[name]
        result = fn(duration_s=args.duration, seed=args.seed)
        times = downsample(
            next(iter(result.traces.values())).epoch_times().tolist(), 20
        )
        series = {
            tuner: downsample(tr.epoch_observed().tolist(), 20)
            for tuner, tr in result.traces.items()
        }
        print(render_series(times, series, title=name))
    elif name == "fig11":
        result = figures.fig11(duration_s=args.duration, seed=args.seed)
        print(
            f"anl-uc  : {result.mean('anl-uc', from_time=args.duration / 2):.0f} MB/s"
        )
        print(
            f"anl-tacc: {result.mean('anl-tacc', from_time=args.duration / 2):.0f} MB/s"
        )
        print(f"UC share: {100 * result.share_of_uc(from_time=args.duration / 2):.0f}%")
    return 0


def _degraded_backend_warnings(health: dict | None) -> list[str]:
    """One warning line per cache backend whose breaker degraded the
    run — the campaign completed (the resilience layer fell back to the
    local tier), but the operator should know the shared cache was not
    actually shared."""
    if not health:
        return []
    found: list[str] = []

    def walk(doc, where: str) -> None:
        if not isinstance(doc, dict):
            return
        state = doc.get("breaker")
        opens = doc.get("breaker_opens", 0)
        if state is not None and (state != "closed" or opens):
            url = doc.get("url", where)
            detail = f"breaker {state}" if state != "closed" else (
                f"breaker tripped {opens}x during the run")
            found.append(
                f"warning: cache backend {url} degraded ({detail}) — "
                f"results fell back to the local tier"
            )
        for key, sub in (doc.get("tiers") or {}).items():
            walk(sub, f"{where}/{key}")
        walk(doc.get("inner"), f"{where}/inner")

    walk(health, "cache")
    return found


def cmd_campaign(args: argparse.Namespace) -> int:
    scale = (CampaignScale.quick(args.seed) if args.quick
             else CampaignScale.full(args.seed))
    try:
        result = run_campaign(scale, journal_path=args.journal,
                              jobs=args.jobs, batch=args.batch,
                              cache=_cache_spec(args))
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if result.resumed_units:
        print(f"(resumed from journal: skipped "
              f"{', '.join(result.resumed_units)})\n")
    rate = result.cache_hit_rate
    if rate is not None:
        print(f"(cache: {result.cache_hits} hits, "
              f"{result.cache_misses} misses — {100 * rate:.0f}% hit rate)\n")
    occ = result.batch
    if occ.batched or occ.fallback:
        print(f"(batch: {occ.batched} runs batched in {occ.chunks} chunks "
              f"(avg {occ.runs_per_chunk:.1f}/chunk), "
              f"{occ.fallback} fell back to scalar)\n")
    if result.fallback_reasons:
        parts = ", ".join(
            f"{reason}: {count}" for reason, count in
            sorted(result.fallback_reasons.items(),
                   key=lambda kv: (-kv[1], kv[0]))
        )
        print(f"(fallback reasons: {parts})\n")
    if result.dispatch_reasons:
        parts = ", ".join(
            f"{reason}: {count}" for reason, count in
            sorted(result.dispatch_reasons.items(),
                   key=lambda kv: (-kv[1], kv[0]))
        )
        print(f"(dispatch fallbacks (advisory, lanes stayed batched): "
              f"{parts})\n")
    try:
        warn_at = resolve_fallback_warn(args.batch_fallback_warn)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if warn_at < 1.0 and occ.fallback_rate > warn_at:
        print(f"warning: {100 * occ.fallback_rate:.0f}% of simulated runs "
              "fell back to the scalar engine (threshold "
              f"{100 * warn_at:.0f}%) — the batch width is doing little; "
              "the reason tally above says why\n")
    for line in _degraded_backend_warnings(result.backend_health):
        print(line)
    doc = result.document()
    print(doc)
    if args.output:
        from repro.sim.traceio import atomic_write_text

        atomic_write_text(args.output, doc + "\n")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    import json
    from datetime import datetime

    from repro.cache import RunCache

    if args.action == "serve":
        return _cache_serve(args)
    store = RunCache(args.dir)
    where = store.root if store.root is not None else store.spec
    if args.action == "stats":
        s = store.stats()
        if args.json:
            print(json.dumps({
                "spec": store.spec,
                "entries": s.entries,
                "total_bytes": s.total_bytes,
                "backend": store.health(),
            }, indent=2, sort_keys=True))
            return 0
        print(f"cache root   : {where}")
        print(f"entries      : {s.entries}")
        print(f"total bytes  : {s.total_bytes:,}")
        rows = _health_rows(store.health())
        if rows:
            print()
            print(render_table(
                ["tier", "scheme", "breaker", "ops", "errors",
                 "timeouts", "retries", "degraded"],
                rows, title="backends"))
        return 0
    if args.action == "ls":
        entries = store.entries()
        if not entries:
            print(f"cache at {where} is empty")
            return 0
        rows = []
        for e in entries:
            meta = _meta_label(store.get_meta(e.key))
            when = datetime.fromtimestamp(e.mtime).strftime("%Y-%m-%d %H:%M")
            rows.append([e.key[:12], f"{e.size_bytes:,}", when, meta])
        print(render_table(["key", "bytes", "written", "run"], rows,
                           title=f"cache entries (oldest first): {where}"))
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {where}")
        return 0
    if args.action == "prune":
        if args.max_bytes is None:
            raise SystemExit("prune needs --max-bytes")
        try:
            evicted = store.prune(args.max_bytes, grace_s=args.grace_s)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        s = store.stats()
        print(f"evicted {len(evicted)} entries (oldest first); "
              f"{s.entries} remain, {s.total_bytes:,} bytes")
        return 0
    raise SystemExit(f"unknown cache action {args.action!r}")


def _cache_serve(args: argparse.Namespace) -> int:
    """``repro cache serve``: expose a local store over HTTP."""
    from repro.cache.backend import DirBackend, split_cache_url
    from repro.cache.http_store import serve
    from repro.cache.sqlite_store import SqliteBackend

    scheme, rest, _ = split_cache_url(args.dir)
    if scheme == "dir":
        backend = DirBackend(rest)
    elif scheme == "sqlite":
        backend = SqliteBackend(rest)
    else:
        raise SystemExit(
            f"cache serve needs a local store (a directory or sqlite://), "
            f"got {args.dir!r}"
        )
    try:
        server = serve(backend, host=args.host, port=args.port)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(f"serving {backend.url} at {server.url}  "
          f"(SIGTERM/Ctrl-C drains and stops)", flush=True)
    # SIGTERM/SIGINT stop accepting new requests, let in-flight ones
    # finish, close the store, and exit 0 — the supervisor contract.
    return server.run_forever()


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the multi-tenant tuning fleet service."""
    from repro.service import FleetServer, FleetService

    if args.scenarios:
        unknown = sorted(set(args.scenarios) - set(SCENARIOS))
        if unknown:
            raise SystemExit(
                f"unknown scenario(s): {', '.join(unknown)}; "
                f"choose from {sorted(SCENARIOS)}"
            )
        scenarios = {name: SCENARIOS[name] for name in args.scenarios}
    else:
        scenarios = None
    try:
        fleet = FleetService(
            scenarios,
            capacity=args.capacity,
            queue_limit=args.queue_limit,
            admit_rate=args.admit_rate,
            burst=args.burst,
            seed=args.seed,
            dt=args.dt,
            epoch_s=args.epoch_s,
            journal_path=args.journal,
            batch=args.batch,
        )
        server = FleetServer(fleet, host=args.host, port=args.port,
                             pace_s=args.pace)
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc)) from None
    print(f"fleet [{', '.join(sorted(fleet.shards))}] serving at "
          f"{server.url}  (SIGTERM/Ctrl-C drains and stops)", flush=True)
    return server.run_forever()


def cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit``: submit one tenant to a running fleet."""
    import json
    import urllib.error

    from repro.service import FleetApiError, FleetClient
    from repro.service.tenant import COMPLETED

    client = FleetClient(args.url, timeout_s=args.timeout)
    spec = {
        "tenant": args.tenant,
        "scenario": args.scenario,
        "tuner": args.tuner,
        "seed": args.seed,
        "epochs": args.epochs,
        "tune_np": args.tune_np,
        "fixed_np": args.np,
        "supervised": not args.unsupervised,
    }
    if args.deadline is not None:
        spec["op_deadline_s"] = args.deadline
    try:
        decision = client.submit(spec)
        print(json.dumps(decision, indent=2))
        if not args.watch:
            return 0
        final = client.wait_terminal(args.tenant,
                                     timeout_s=args.watch_timeout)
        print(json.dumps(final, indent=2))
        return 0 if final.get("state") == COMPLETED else 1
    except FleetApiError as exc:
        raise SystemExit(str(exc)) from None
    except (TimeoutError, urllib.error.URLError, OSError) as exc:
        raise SystemExit(f"fleet at {args.url}: {exc}") from None


def _health_rows(doc: dict, tier: str = "-") -> list[list[str]]:
    """Flatten a backend health document into per-tier table rows."""
    tiers = doc.get("tiers")
    if isinstance(tiers, dict):
        rows: list[list[str]] = []
        for name in ("local", "remote"):
            sub = tiers.get(name)
            if isinstance(sub, dict):
                rows.extend(_health_rows(sub, tier=name))
        return rows
    c = doc.get("counters") or {}
    return [[tier, str(doc.get("scheme", "?")),
             str(doc.get("breaker", "-")),
             str(c.get("ops", 0)), str(c.get("errors", 0)),
             str(c.get("timeouts", 0)), str(c.get("retries", 0)),
             str(c.get("degraded", 0))]]


def _meta_label(meta: dict | None) -> str:
    """Compact ``kind scenario/tuner seed`` label from an entry's meta."""
    if not meta:
        return "?"
    parts = [str(meta[k]) for k in ("kind", "scenario", "tuner", "seed")
             if k in meta]
    return " ".join(parts) if parts else "-"


# -- parser ------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Direct-search tuning of parallel-stream data transfers "
            "(ICPP 2016 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scenario", default="anl-uc",
                       choices=sorted(SCENARIOS))
        p.add_argument("--load", default="none",
                       help="e.g. none, cmp16, tfr64, cmp16+tfr64")
        p.add_argument("--duration", type=float, default=1800.0,
                       help="transfer duration in seconds")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--np", type=int, default=8,
                       help="fixed parallelism when np is not tuned")

    def cache_flags(p: argparse.ArgumentParser) -> None:
        from repro.cache import default_cache_spec

        p.add_argument("--cache", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="reuse/store results in the run cache "
                            "(--no-cache forces a fresh simulation)")
        p.add_argument("--cache-dir", default=default_cache_spec(),
                       metavar="SPEC",
                       help="cache root: a directory, sqlite://FILE, "
                            "or http://HOST:PORT")

    p_run = sub.add_parser("run", help="run one tuned transfer")
    common(p_run)
    p_run.add_argument("--tuner", default="nm",
                       help="|".join(registry.tuner_names()))
    p_run.add_argument("--tune-np", action="store_true",
                       help="tune parallelism too (2-D)")
    p_run.add_argument("--chart", action="store_true",
                       help="plot the throughput trace as ASCII art")
    p_run.add_argument("--journal", default=None, metavar="PATH",
                       help="crash-safe journal; continue a killed run "
                            "with `repro resume PATH`")
    p_run.add_argument("--warm-start", default=None, metavar="JOURNAL",
                       help="seed the search from the best configuration "
                            "in an earlier journal (needs --journal)")
    p_run.add_argument("--trace-out", default=None, metavar="PATH",
                       help="save the trace as JSON (atomic write)")
    p_run.add_argument("--events", default=None, metavar="PATH",
                       help="append the structured event stream "
                            "(epochs, tuner decisions, faults) as JSONL")
    p_run.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write final metrics as a Prometheus "
                            "text-format snapshot")
    p_run.add_argument("--reps", type=int, default=1,
                       help="run N seed replicates (seed, seed+1, ...) and "
                            "report mean steady throughput with a 95%% CI")
    p_run.add_argument("--jobs", type=int, default=1,
                       help="processes for --reps fan-out (0 = all CPUs)")
    from repro.experiments.batch import DEFAULT_BATCH

    p_run.add_argument("--batch", type=int, default=None, nargs="?",
                       const=DEFAULT_BATCH, metavar="N",
                       help="advance the --reps replicates N lanes at a "
                            "time through the batch engine (bare --batch "
                            f"= {DEFAULT_BATCH}; results are bit-identical "
                            "either way)")
    cache_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_res = sub.add_parser(
        "resume", help="continue a killed `run --journal` transfer"
    )
    p_res.add_argument("journal", help="journal written by run --journal")
    p_res.add_argument("--chart", action="store_true",
                       help="plot the throughput trace as ASCII art")
    p_res.add_argument("--trace-out", default=None, metavar="PATH",
                       help="save the trace as JSON (atomic write)")
    p_res.add_argument("--events", default=None, metavar="PATH",
                       help="append the resumed run's event stream as JSONL")
    p_res.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write final metrics as a Prometheus "
                            "text-format snapshot")
    p_res.set_defaults(func=cmd_resume)

    p_sweep = sub.add_parser("sweep", help="static throughput vs nc")
    common(p_sweep)
    p_sweep.add_argument("--nc", default="1,2,4,8,16,32,64,128,256",
                         help="comma-separated concurrency values")
    p_sweep.set_defaults(func=cmd_sweep)

    p_oracle = sub.add_parser("oracle", help="best static nc by sweep")
    common(p_oracle)
    p_oracle.add_argument("--search", default="grid",
                          choices=("grid", "unimodal"),
                          help="exhaustive grid, or O(log n) bisection "
                               "exploiting the surface's unimodality")
    p_oracle.add_argument("--jobs", type=int, default=1,
                          help="processes for candidate fan-out "
                               "(0 = all CPUs)")
    cache_flags(p_oracle)
    p_oracle.set_defaults(func=cmd_oracle)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    common(p_fig)
    p_fig.add_argument("name", help="|".join(sorted(FIGURES)))
    p_fig.set_defaults(func=cmd_figure)

    p_camp = sub.add_parser(
        "campaign", help="regenerate the whole evaluation as one report"
    )
    p_camp.add_argument("--quick", action="store_true",
                        help="minutes-scale version of the campaign")
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--output", default=None,
                        help="write the report to this file as well")
    p_camp.add_argument("--journal", default=None, metavar="PATH",
                        help="crash-safe campaign journal; rerunning with "
                             "the same path skips completed figures")
    p_camp.add_argument("--jobs", type=int, default=1,
                        help="processes for unit fan-out (0 = all CPUs); "
                             "the report is identical at any width")
    p_camp.add_argument("--batch", type=int, default=None, metavar="N",
                        help="batch-engine lane width inside every unit "
                             "(0 = off; composes with --jobs; the report "
                             "is identical at any width)")
    p_camp.add_argument("--batch-fallback-warn", type=float, default=None,
                        metavar="FRAC",
                        help="warn when more than this fraction of "
                             "simulated runs fell off the batch path "
                             "(default: $REPRO_BATCH_WARN or 0.10; "
                             ">= 1.0 disables the warning). Advisory "
                             "dispatch:* reasons (unsupported-tuner, "
                             "recovery-machinery, instrumented-run, "
                             "late-join) are reported separately and do "
                             "not count toward the threshold — those "
                             "lanes still ride the batched spans, only "
                             "their window-end tuner proposals stay on "
                             "the scalar ladder")
    cache_flags(p_camp)
    p_camp.set_defaults(func=cmd_campaign)

    p_info = sub.add_parser(
        "info", help="list registered tuners, scenarios, and load profiles"
    )
    p_info.add_argument("--timings", default=None, metavar="JOURNAL",
                        help="print per-unit wall times recorded in a "
                             "campaign journal instead")
    p_info.set_defaults(func=cmd_info)

    p_top = sub.add_parser(
        "top", help="ANSI dashboard over a journal or saved trace"
    )
    p_top.add_argument("path", help="journal (run --journal) or trace JSON")
    p_top.add_argument("--follow", action="store_true",
                       help="re-render until the run ends (live view)")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="refresh period in seconds with --follow")
    p_top.add_argument("--width", type=int, default=72,
                       help="dashboard width in characters")
    p_top.add_argument("--frames", type=int, default=None,
                       help="stop --follow after this many frames")
    p_top.set_defaults(func=cmd_top)

    p_cache = sub.add_parser(
        "cache", help="inspect/clear/prune/serve the run cache"
    )
    p_cache.add_argument("action",
                         choices=("stats", "ls", "clear", "prune", "serve"))
    from repro.cache import DEFAULT_PRUNE_GRACE_S, default_cache_spec

    p_cache.add_argument("--dir", default=default_cache_spec(),
                         help="cache root: a directory, sqlite://FILE, "
                              "or http://HOST:PORT")
    p_cache.add_argument("--json", action="store_true",
                         help="stats: emit machine-readable JSON "
                              "(entries, bytes, per-backend health)")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="prune target: evict oldest entries until "
                              "the store fits this many bytes")
    p_cache.add_argument("--grace-s", type=float,
                         default=DEFAULT_PRUNE_GRACE_S,
                         help="prune: never evict entries younger than "
                              "this many seconds (concurrent-writer "
                              "safety; 0 disables)")
    p_cache.add_argument("--host", default="127.0.0.1",
                         help="serve: bind address")
    p_cache.add_argument("--port", type=int, default=8750,
                         help="serve: TCP port (0 picks a free one)")
    p_cache.set_defaults(func=cmd_cache)

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant tuning fleet service"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address")
    p_serve.add_argument("--port", type=int, default=8760,
                         help="TCP port (0 picks a free one)")
    p_serve.add_argument("--scenarios", nargs="*", default=None,
                         metavar="NAME",
                         help="shard scenarios (default: all registered)")
    p_serve.add_argument("--capacity", type=int, default=64,
                         help="max concurrently running tenants")
    p_serve.add_argument("--queue-limit", type=int, default=128,
                         help="bounded admission queue length")
    p_serve.add_argument("--admit-rate", type=float, default=None,
                         help="token-bucket admits per epoch-second "
                              "(default: unlimited)")
    p_serve.add_argument("--burst", type=float, default=8.0,
                         help="token-bucket burst size")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--dt", type=float, default=1.0,
                         help="simulation step in seconds")
    p_serve.add_argument("--epoch-s", type=float, default=30.0,
                         help="control-epoch span in sim seconds")
    p_serve.add_argument("--journal", default=None, metavar="PATH",
                         help="append-only fleet journal "
                              "(watch with `repro top --follow`)")
    p_serve.add_argument("--pace", type=float, default=0.0,
                         help="minimum wall seconds per pump round "
                              "(0 = as fast as possible)")
    p_serve.add_argument("--batch", default=True,
                         action=argparse.BooleanOptionalAction,
                         help="advance each shard's tenants as vectorized "
                              "lanes (bit-identical to the scalar loop; "
                              "--no-batch forces scalar)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one tenant to a running fleet"
    )
    p_submit.add_argument("tenant", help="fleet-unique tenant id")
    p_submit.add_argument("--url", default="http://127.0.0.1:8760",
                          help="fleet service base URL")
    p_submit.add_argument("--scenario", default="anl-uc",
                          choices=sorted(SCENARIOS))
    p_submit.add_argument("--tuner", default="cd")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--epochs", type=int, default=10,
                          help="control-epoch budget")
    p_submit.add_argument("--tune-np", action="store_true",
                          help="tune parallelism jointly with concurrency")
    p_submit.add_argument("--np", type=int, default=8,
                          help="fixed parallelism when np is not tuned")
    p_submit.add_argument("--deadline", type=float, default=None,
                          help="per-tuner-call deadline in seconds")
    p_submit.add_argument("--unsupervised", action="store_true",
                          help="fail the tenant on a tuner crash instead "
                               "of restarting it from the journal")
    p_submit.add_argument("--watch", action="store_true",
                          help="poll until the tenant reaches a terminal "
                               "state; exit 0 only on completion")
    p_submit.add_argument("--watch-timeout", type=float, default=120.0,
                          help="--watch poll budget in seconds")
    p_submit.add_argument("--timeout", type=float, default=10.0,
                          help="per-request HTTP timeout in seconds")
    p_submit.set_defaults(func=cmd_submit)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


def _main_console() -> int:  # pragma: no cover - thin process wrapper
    try:
        return main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a
        # well-behaved unix filter (and stop the interpreter's own
        # shutdown from re-raising on stdout flush).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main_console())
