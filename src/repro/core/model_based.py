"""Model-based stream selection baselines (paper §I related work).

The paper positions direct search against two older families:

* **Analytical** (Hacker et al. 2002; Lu et al. 2005; Altman et al.
  2006): derive the stream count from first-principles TCP models fed
  with measured path characteristics (RTT, loss, MSS, capacity).
  :class:`HackerModelTuner` implements the canonical version: aggregate
  throughput of ``n`` streams is ``n`` Mathis terms, so the count that
  saturates the bottleneck is ``capacity / mathis_rate``.

* **Empirical** (Yildirim, Yin & Kosar 2011): sample throughput at a few
  stream counts, fit the Lu-model curve ``T(n) = n / sqrt(a n² + b n +
  c)``, and jump to its analytic optimum ``n* = -2c / b``.
  :class:`NewtonModelTuner` implements that three-point fit (the paper
  of record solves the same system with Newton's iteration; with exactly
  three samples the system is linear in (a, b, c) and solved directly).

Both share the weaknesses the paper attributes to them — the analytical
model knows nothing about endpoint CPU load, and the empirical fit is
only as good as the regime its samples came from — which is precisely
what `benchmarks/bench_model_based.py` measures against direct search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.base import Tuner, TunerGen
from repro.core.history import delta_pct
from repro.core.params import ParamSpace
from repro.units import DEFAULT_MSS, MB


@dataclass
class HackerModelTuner(Tuner):
    """Analytical stream-count selection from path characteristics.

    Parameters
    ----------
    rtt_s, loss_rate, capacity_mbps:
        Path characteristics, measured out-of-band (the instrumentation
        requirement the paper criticizes).
    mss:
        TCP segment size in bytes.
    np_:
        Parallelism per process the deployment will use (the model
        predicts total streams; concurrency = streams / np).
    headroom:
        Safety factor on the predicted count (>1 overshoots to be sure
        the pipe is full, as the original usage recommends).
    """

    rtt_s: float = 0.033
    loss_rate: float = 1e-4
    capacity_mbps: float = 2500.0
    mss: int = DEFAULT_MSS
    np_: int = 8
    headroom: float = 1.0
    name: str = "hacker-model"
    restarts_every_epoch: bool = False

    def __post_init__(self) -> None:
        if self.rtt_s <= 0:
            raise ValueError("rtt must be positive")
        if not 0 < self.loss_rate < 1:
            raise ValueError("loss_rate must be in (0, 1)")
        if self.capacity_mbps <= 0:
            raise ValueError("capacity must be positive")
        if self.mss <= 0 or self.np_ < 1:
            raise ValueError("mss and np must be positive")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")

    def predicted_streams(self) -> int:
        """Streams needed to saturate the path per the Mathis model."""
        mathis_mbps = (
            self.mss / self.rtt_s * math.sqrt(1.5)
            / math.sqrt(self.loss_rate) / MB
        )
        return max(1, math.ceil(
            self.headroom * self.capacity_mbps / mathis_mbps
        ))

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        nc = max(1, round(self.predicted_streams() / self.np_))
        target = space.fbnd((nc,) + tuple(x0[1:]))
        while True:
            yield target  # the model never revisits its decision


@dataclass
class NewtonModelTuner(Tuner):
    """Empirical three-point curve fit (Yildirim et al. 2011).

    Samples throughput at three stream counts, fits
    ``T(n) = n / sqrt(a n² + b n + c)`` (linear in (a, b, c) after the
    substitution ``y = n² / T²``), and moves to the curve's optimum
    ``n* = -2c / b``.  If the fit is degenerate or the optimum falls
    outside the domain, it falls back to the best sampled point.  After
    the jump it re-fits whenever throughput shifts significantly — the
    "recollect calibration data" loop such systems need in practice.
    """

    sample_points: tuple[int, ...] = (1, 8, 24)
    eps_pct: float = 5.0
    name: str = "newton-model"
    restarts_every_epoch: bool = False

    def __post_init__(self) -> None:
        if len(self.sample_points) != 3:
            raise ValueError("the fit needs exactly three sample points")
        if len(set(self.sample_points)) != 3:
            raise ValueError("sample points must be distinct")
        if any(p < 1 for p in self.sample_points):
            raise ValueError("sample points must be >= 1")
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")

    @staticmethod
    def fit_optimum(
        ns: tuple[int, int, int], ts: tuple[float, float, float]
    ) -> float | None:
        """Optimal stream count from three (n, throughput) samples.

        Returns None when the fit is degenerate (zero throughput, the
        parabola has no interior maximum, etc.).
        """
        if any(t <= 0 for t in ts):
            return None
        a_mat = np.array([[n * n, n, 1.0] for n in ns])
        y = np.array([n * n / (t * t) for n, t in zip(ns, ts)])
        try:
            coeff = np.linalg.solve(a_mat, y)
        except np.linalg.LinAlgError:
            return None
        _, b, c = coeff
        if b >= 0 or c <= 0:
            return None  # T(n) has no interior maximum
        return -2.0 * c / b

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        rest = tuple(x0[1:])

        def clipped(nc: float) -> tuple[int, ...]:
            return space.fbnd((nc,) + rest)

        while True:
            # Calibration phase: three sample transfers.
            samples: list[tuple[int, float]] = []
            for n in self.sample_points:
                pt = clipped(n)
                f = yield pt
                samples.append((pt[0], f))
            ns = tuple(s[0] for s in samples)
            ts = tuple(s[1] for s in samples)
            opt = None
            if len(set(ns)) == 3:
                opt = self.fit_optimum(ns, ts)  # type: ignore[arg-type]
            if opt is None:
                best = max(samples, key=lambda s: s[1])
                target = clipped(best[0])
            else:
                target = clipped(opt)

            # Exploitation phase: hold the fitted optimum until the
            # environment shifts, then recalibrate.
            f_prev = yield target
            while True:
                f_new = yield target
                if abs(delta_pct(f_new, f_prev)) > self.eps_pct:
                    break
                f_prev = f_new
