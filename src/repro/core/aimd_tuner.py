"""aimd-tuner — Ito et al.'s adaptation schemes (related-work baseline).

Ito, Ohsaki & Imase [11, 12 in the paper] tuned GridFTP parallelism with
the congestion-control playbook applied at the control-loop level:
**additive increase** while throughput improves, **multiplicative
decrease** when it degrades (AIMD), with a multiplicative-increase (MIMD)
variant.  The paper groups these with the dynamic ad hoc schemes its
direct-search methods replace; implementing them completes the §I
taxonomy alongside heur1 (Balman) and heur2 (Yildirim).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import Tuner, TunerGen
from repro.core.history import delta_pct
from repro.core.params import ParamSpace


@dataclass
class AimdTuner(Tuner):
    """Additive-increase / multiplicative-decrease stream tuner.

    Each epoch compares with the previous one: a significant improvement
    earns ``+increase`` streams, a significant degradation costs a
    multiplicative cut to ``decrease_factor`` of the current value, and
    an insignificant change probes upward anyway every
    ``probe_interval`` epochs (AIMD never sits still — that is its
    congestion-control heritage).

    Parameters
    ----------
    eps_pct:
        Significance tolerance on the relative throughput change.
    increase:
        Additive step on improvement.
    decrease_factor:
        Fraction kept on degradation (0.5 = halve, TCP-style).
    probe_interval:
        Epochs between upward probes while the throughput is flat.
    multiplicative_increase:
        The MIMD variant: grow by ``mi_factor`` instead of adding.
    mi_factor:
        Growth factor for the MIMD variant.
    """

    eps_pct: float = 5.0
    increase: int = 1
    decrease_factor: float = 0.5
    probe_interval: int = 4
    multiplicative_increase: bool = False
    mi_factor: float = 1.5
    name: str = "aimd-tuner"

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")
        if self.increase < 1:
            raise ValueError("increase must be >= 1")
        if not 0 < self.decrease_factor < 1:
            raise ValueError("decrease_factor must be in (0, 1)")
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if self.mi_factor <= 1:
            raise ValueError("mi_factor must be > 1")
        if self.multiplicative_increase:
            self.name = "mimd-tuner"

    def _grow(self, space: ParamSpace, x: tuple[int, ...]) -> tuple[int, ...]:
        v = list(x)
        if self.multiplicative_increase:
            v[0] = v[0] * self.mi_factor
        else:
            v[0] = v[0] + self.increase
        return space.fbnd(v)

    def _cut(self, space: ParamSpace, x: tuple[int, ...]) -> tuple[int, ...]:
        v = list(x)
        v[0] = max(1.0, v[0] * self.decrease_factor)
        return space.fbnd(v)

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        x = space.fbnd(x0)
        f_prev = yield x
        x_next = self._grow(space, x)
        flat_epochs = 0
        while True:
            f = yield x_next
            delta = delta_pct(f, f_prev)
            went_up = x_next[0] > x[0]
            x = x_next
            if delta > self.eps_pct:
                x_next = self._grow(space, x)
                flat_epochs = 0
            elif delta < -self.eps_pct and went_up:
                # The last increase hurt: multiplicative backoff.
                x_next = self._cut(space, x)
                flat_epochs = 0
            elif delta < -self.eps_pct:
                # Degradation not caused by us (external load): probe up
                # to reclaim bandwidth, AIMD-style.
                x_next = self._grow(space, x)
                flat_epochs = 0
            else:
                flat_epochs += 1
                if flat_epochs >= self.probe_interval:
                    x_next = self._grow(space, x)
                    flat_epochs = 0
                else:
                    x_next = x
            f_prev = f
