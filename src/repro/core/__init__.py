"""Direct-search tuners: the paper's primary contribution.

All tuners are infinite generators over an integer box domain
(:class:`~repro.core.params.ParamSpace`): they yield a parameter vector for
each control epoch and receive the epoch's observed throughput back.  The
surrounding :class:`~repro.sim.session.TransferSession` (or any caller)
decides when the transfer is finished — mirroring the ``while s' > 0``
outer loops of Algorithms 1–3.
"""

from repro.core.params import ParamSpace
from repro.core.history import EpochHistory, delta_pct
from repro.core.base import Tuner, StaticTuner
from repro.core.cd_tuner import CdTuner
from repro.core.cs_tuner import CsTuner
from repro.core.nm_tuner import NmTuner
from repro.core.heuristics import Heur1Tuner, Heur2Tuner, default_globus_params
from repro.core.aggregate import JointTuner
from repro.core.hj_tuner import HjTuner
from repro.core.spsa_tuner import SpsaTuner
from repro.core.gss_tuner import GssTuner
from repro.core.model_based import HackerModelTuner, NewtonModelTuner
from repro.core.bandit import BanditTuner
from repro.core.aimd_tuner import AimdTuner
from repro.core.scheduler import WeightedJointController
from repro.core.monitor import (
    ChangeMonitor,
    CusumMonitor,
    DeltaPctMonitor,
    EwmaMonitor,
    FaultFilterMonitor,
)

__all__ = [
    "ParamSpace",
    "EpochHistory",
    "delta_pct",
    "Tuner",
    "StaticTuner",
    "CdTuner",
    "CsTuner",
    "NmTuner",
    "Heur1Tuner",
    "Heur2Tuner",
    "HjTuner",
    "SpsaTuner",
    "GssTuner",
    "HackerModelTuner",
    "NewtonModelTuner",
    "BanditTuner",
    "AimdTuner",
    "WeightedJointController",
    "default_globus_params",
    "JointTuner",
    "ChangeMonitor",
    "DeltaPctMonitor",
    "EwmaMonitor",
    "CusumMonitor",
    "FaultFilterMonitor",
]
