"""spsa-tuner — simultaneous-perturbation stochastic approximation
(extension).

SPSA (Spall 1992) estimates the gradient of a noisy objective from just
two measurements per iteration regardless of dimension: perturb all
coordinates at once by a random ±1 vector, measure both sides, and step
along the implied slope.  It is the natural stochastic-optimization
counterpart to the paper's deterministic direct-search methods, and a
useful comparison point because epoch throughput *is* noisy.

Unlike cd/cs/nm, SPSA never "converges and monitors": the decaying gains
are floored (``a_min``, ``c_min``) so the tuner keeps adapting to
external-load changes indefinitely, which replaces the Δc re-trigger
machinery of the other tuners.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.base import Tuner, TunerGen
from repro.core.params import ParamSpace


@dataclass
class SpsaTuner(Tuner):
    """SPSA stream tuner.

    Parameters
    ----------
    a0, c0:
        Initial step-size and perturbation-size gains.
    alpha, gamma:
        Decay exponents (Spall's standard 0.602 / 0.101).
    stabilizer:
        The "A" constant added to the iteration count in the step-size
        schedule (smooths the first steps).
    a_min, c_min:
        Floors that keep the tuner adaptive forever.
    seed:
        RNG seed for the ±1 perturbation draws.
    """

    a0: float = 150.0
    c0: float = 4.0
    alpha: float = 0.602
    gamma: float = 0.101
    stabilizer: float = 10.0
    a_min: float = 6.0
    c_min: float = 2.0
    seed: int = 0
    name: str = "spsa-tuner"

    def __post_init__(self) -> None:
        if self.a0 <= 0 or self.c0 <= 0:
            raise ValueError("a0 and c0 must be positive")
        if not 0 < self.alpha <= 1 or not 0 < self.gamma <= 1:
            raise ValueError("alpha and gamma must be in (0, 1]")
        if self.stabilizer < 0:
            raise ValueError("stabilizer must be non-negative")
        if self.a_min < 0 or self.c_min < 0:
            raise ValueError("floors must be non-negative")

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        rng = random.Random(self.seed)
        x = [float(v) for v in space.fbnd(x0)]
        k = 0
        while True:
            a_k = max(self.a0 / (k + 1 + self.stabilizer) ** self.alpha,
                      self.a_min)
            c_k = max(self.c0 / (k + 1) ** self.gamma, self.c_min)
            delta = [rng.choice((-1.0, 1.0)) for _ in range(space.ndim)]

            x_plus = space.fbnd([xi + c_k * d for xi, d in zip(x, delta)])
            f_plus = yield x_plus
            x_minus = space.fbnd([xi - c_k * d for xi, d in zip(x, delta)])
            f_minus = yield x_minus

            # Effective per-coordinate displacement after fBnd projection;
            # zero displacement carries no gradient information.  The
            # internal iterate stays float (only probes are rounded) so
            # sub-unit gradient steps accumulate instead of vanishing.
            denom = [p - m for p, m in zip(x_plus, x_minus)]
            rel_scale = max(abs(f_plus), abs(f_minus), 1e-9)
            for i in range(space.ndim):
                if denom[i] == 0:
                    continue
                g_i = (f_plus - f_minus) / denom[i] / rel_scale
                x[i] += a_k * g_i
                x[i] = min(max(x[i], float(space.lower[i])),
                           float(space.upper[i]))
            k += 1


def recommended_gains(space: ParamSpace) -> dict[str, float]:
    """Heuristic SPSA gains scaled to the domain size.

    Spall's guidance: c0 around the measurement-noise scale, a0 such that
    the first steps move a meaningful fraction of the domain.  We size
    both from the widest dimension.
    """
    widest = max(hi - lo for lo, hi in zip(space.lower, space.upper))
    if widest == 0:
        return {"a0": 1.0, "c0": 1.0}
    return {"a0": max(2.0, widest / 6.0), "c0": max(2.0, widest / 32.0)}
