"""Endpoint-level joint tuning (extension; paper §IV-D discussion).

Section IV-D shows that two *independently* tuned transfers sharing a
source endpoint fight each other: each treats the other as external load.
The paper proposes (as future work) aggregating the transfers at the
common endpoint and optimizing all their parameters simultaneously with
one direct-search instance.  :class:`JointTuner` implements exactly that:
it concatenates the per-transfer parameter spaces into one joint space,
runs any :class:`~repro.core.base.Tuner` over it, and splits each joint
proposal back into per-transfer vectors.  The objective fed to the inner
tuner is the *sum* of the transfers' throughputs (aggregate egress), which
is what an endpoint operator wants to maximize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import Tuner, TunerGen
from repro.core.params import ParamSpace


def concat_spaces(spaces: list[ParamSpace], labels: list[str]) -> ParamSpace:
    """Concatenate parameter spaces, prefixing names to keep them unique."""
    if len(spaces) != len(labels):
        raise ValueError("need one label per space")
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate labels: {labels}")
    names: list[str] = []
    lower: list[int] = []
    upper: list[int] = []
    for label, sp in zip(labels, spaces):
        names.extend(f"{label}.{n}" for n in sp.names)
        lower.extend(sp.lower)
        upper.extend(sp.upper)
    return ParamSpace(tuple(names), tuple(lower), tuple(upper))


@dataclass
class JointTuner(Tuner):
    """Tune several transfers' parameters as one direct-search problem.

    Parameters
    ----------
    inner:
        The direct-search method used on the joint space (nm-tuner and
        cs-tuner are the paper's recommendations).
    subspaces:
        One :class:`ParamSpace` per controlled transfer, in order.
    labels:
        One label per transfer (used to prefix joint parameter names).
    """

    inner: Tuner
    subspaces: list[ParamSpace]
    labels: list[str]

    def __post_init__(self) -> None:
        # Validates sizes/duplicates as a side effect.
        self.joint_space = concat_spaces(self.subspaces, self.labels)
        self.name = f"joint-{self.inner.name}"

    def split(self, x: tuple[int, ...]) -> list[tuple[int, ...]]:
        """Slice a joint vector into per-transfer parameter vectors."""
        if len(x) != self.joint_space.ndim:
            raise ValueError(
                f"joint vector has {len(x)} coords, expected "
                f"{self.joint_space.ndim}"
            )
        out: list[tuple[int, ...]] = []
        i = 0
        for sp in self.subspaces:
            out.append(tuple(x[i : i + sp.ndim]))
            i += sp.ndim
        return out

    def join(self, xs: list[tuple[int, ...]]) -> tuple[int, ...]:
        """Concatenate per-transfer vectors into a joint vector."""
        if len(xs) != len(self.subspaces):
            raise ValueError("need one vector per subspace")
        flat: list[int] = []
        for sp, x in zip(self.subspaces, xs):
            if len(x) != sp.ndim:
                raise ValueError("vector/subspace dimension mismatch")
            flat.extend(x)
        return tuple(flat)

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        """Run the inner tuner on the joint space.

        ``space`` must equal the joint space built from the subspaces; it
        is accepted (rather than implied) to satisfy the Tuner protocol.
        """
        if space != self.joint_space:
            raise ValueError(
                "JointTuner must be driven over its own joint_space"
            )
        return self.inner.propose(self.joint_space.fbnd(x0), self.joint_space)
