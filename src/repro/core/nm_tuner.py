"""nm-tuner — Nelder-Mead simplex tuner (paper Algorithm 3).

Navigates the m-dimensional parameter space with an (m+1)-vertex simplex,
replacing the worst vertex through reflection (R), expansion (E),
contraction (C), and shrink (S) — paper defaults R=1, E=2, C=0.5, S=0.5.
``fBnd`` rounds every generated vertex to integers inside the bounds, so
the simplex moves on the integer lattice; shrinking halves edge lengths
and eventually degenerates the simplex to a single point, which ends the
inner search.  The outer loop is the same Δc monitor as cs-tuner
(Algorithm 2 lines 16–24): a significant throughput change re-triggers the
Nelder-Mead procedure around the incumbent.

One vertex evaluation = one control epoch of real data transfer, so the
method's bookkeeping is free and its only cost is the epochs it spends on
non-optimal vertices — the paper's argument for direct search.

Deviations from the pseudocode, all guarded and documented:

* The inner search also stops after ``max_inner_epochs`` evaluations.
  Under measurement noise an integer simplex can cycle without
  degenerating; the guard bounds the search and returns the best vertex
  seen.  The paper's runs effectively have the same bound (the transfer
  ends).
* When expansion fails (``f_e < f_r``) we keep the reflected point, as in
  standard Nelder-Mead; the pseudocode's literal control flow would fall
  through to contraction and discard an improving reflection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.base import Tuner, TunerGen
from repro.core.monitor import ChangeMonitor, DeltaPctMonitor
from repro.core.params import ParamSpace


@dataclass
class NmTuner(Tuner):
    """Nelder-Mead stream tuner.

    Parameters
    ----------
    eps_pct:
        Tolerance ε%% for a significant throughput change (paper: 5).
    reflection, expansion, contraction, shrink:
        The four Nelder-Mead coefficients (paper: 1, 2, 0.5, 0.5).
    init_step:
        Edge length of the initial simplex along each coordinate; like
        cs-tuner's λ it gives the method its large early steps (default 8).
    max_inner_epochs:
        Safety bound on evaluations per Nelder-Mead invocation.
    """

    eps_pct: float = 5.0
    reflection: float = 1.0
    expansion: float = 2.0
    contraction: float = 0.5
    shrink: float = 0.5
    init_step: int = 8
    max_inner_epochs: int = 100
    monitor: ChangeMonitor | None = None
    name: str = "nm-tuner"

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")
        if self.reflection <= 0 or self.expansion <= 1:
            raise ValueError("need reflection > 0 and expansion > 1")
        if not 0 < self.contraction < 1 or not 0 < self.shrink < 1:
            raise ValueError("contraction and shrink must be in (0, 1)")
        if self.init_step < 1:
            raise ValueError("init_step must be >= 1")
        if self.max_inner_epochs < 3:
            raise ValueError("max_inner_epochs must be >= 3")

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        x_cur, f_cur = yield from self._nelder_mead(space.fbnd(x0), space)

        mon = (self.monitor.clone() if self.monitor is not None
               else DeltaPctMonitor(self.eps_pct))
        mon.reset(f_cur)
        while True:
            f_new = yield x_cur
            if mon.update(f_new):
                x_cur, f_new = yield from self._nelder_mead(x_cur, space)
                mon.reset(f_new)

    # -- inner search ----------------------------------------------------

    def _initial_simplex(
        self, x0: tuple[int, ...], space: ParamSpace
    ) -> list[tuple[int, ...]]:
        """x0 plus one offset vertex per dimension, all distinct.

        Offsets go +init_step along each axis, flipping to -init_step when
        the bound projection would collapse the vertex onto x0.
        """
        simplex = [x0]
        for j in range(space.ndim):
            for sign in (+1, -1):
                v = list(x0)
                v[j] += sign * self.init_step
                vb = space.fbnd(v)
                if vb not in simplex:
                    simplex.append(vb)
                    break
            else:
                # Both directions collapse: dimension is a single point;
                # duplicate x0 so the simplex stays (m+1)-sized and the
                # degeneration check ends the search naturally.
                simplex.append(x0)
        return simplex

    def _nelder_mead(
        self, x0: tuple[int, ...], space: ParamSpace
    ) -> Generator[tuple[int, ...], float, tuple[tuple[int, ...], float]]:
        """One Nelder-Mead run; returns (best vertex, its throughput)."""
        m = space.ndim
        simplex = self._initial_simplex(x0, space)
        values: list[float] = []
        budget = self.max_inner_epochs
        for v in simplex:
            values.append((yield v))
            budget -= 1

        while budget > 0:
            # Step 1: order best-to-worst and compute the centroid of all
            # vertices except the worst.
            order = sorted(
                range(m + 1), key=lambda i: values[i], reverse=True
            )
            simplex = [simplex[i] for i in order]
            values = [values[i] for i in order]
            if len(set(simplex)) == 1:
                break  # degenerated to a single point: search over
            f_best, f_worst = values[0], values[-1]
            centroid = [
                sum(v[d] for v in simplex[:-1]) / m for d in range(m)
            ]

            # Step 2: reflect the worst vertex through the centroid.
            x_r = space.fbnd(
                [
                    cb + self.reflection * (cb - wb)
                    for cb, wb in zip(centroid, simplex[-1])
                ]
            )
            f_r = yield x_r
            budget -= 1
            if f_best >= f_r > f_worst:
                simplex[-1], values[-1] = x_r, f_r
                continue

            if f_r > f_best:
                # Step 3: expand past the reflection point.
                x_e = space.fbnd(
                    [
                        cb + self.expansion * (rb - cb)
                        for cb, rb in zip(centroid, x_r)
                    ]
                )
                f_e = yield x_e
                budget -= 1
                if f_e >= f_r:
                    simplex[-1], values[-1] = x_e, f_e
                else:
                    simplex[-1], values[-1] = x_r, f_r
                continue

            # Step 4: contract toward the better of (worst, reflected).
            x_t, f_t = simplex[-1], f_worst
            if f_r >= f_t:
                x_t, f_t = x_r, f_r
            x_c = space.fbnd(
                [
                    cb + self.contraction * (tb - cb)
                    for cb, tb in zip(centroid, x_t)
                ]
            )
            f_c = yield x_c
            budget -= 1
            if f_c >= f_worst:
                simplex[-1], values[-1] = x_c, f_c
                continue

            # Step 5: shrink everything toward the best vertex.
            for j in range(1, m + 1):
                simplex[j] = space.fbnd(
                    [
                        bb + self.shrink * (vb - bb)
                        for bb, vb in zip(simplex[0], simplex[j])
                    ]
                )
                values[j] = yield simplex[j]
                budget -= 1
                if budget <= 0:
                    break

        best = max(range(len(values)), key=values.__getitem__)
        return simplex[best], values[best]
