"""Baseline heuristics the paper compares against (§IV-C).

* :func:`default_globus_params` / ``StaticTuner`` — the Globus transfer
  service defaults for large files: concurrency 2, parallelism 8.
* :class:`Heur1Tuner` — Balman & Kosar 2009: compare the two most recent
  throughputs and additively increase the stream count while the gain is
  significant.  The paper describes it as "a simplified version of
  cd-tuner in which the number of streams is incremented by one as long as
  there is a significant throughput improvement" — crucially, it has **no
  decrease rule**.  Like cd-tuner, it is extended to several parameters by
  cycling.
* :class:`Heur2Tuner` — Yildirim et al. 2016: "exponentially increases
  parallelism and concurrency values until the maximum achievable
  throughput is reached".  It doubles the active parameter while the gain
  is significant and backs off to the *previous* doubling when throughput
  drops, but never goes below its starting values — the paper's point is
  that a start above the critical region leaves it stuck there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import Tuner, TunerGen
from repro.core.history import delta_pct
from repro.core.params import ParamSpace


def default_globus_params() -> tuple[int, int]:
    """Globus transfer large-file defaults: (nc, np) = (2, 8)."""
    return (2, 8)


@dataclass
class Heur1Tuner(Tuner):
    """Balman-style additive increase (heur1).

    Parameters
    ----------
    eps_pct:
        Tolerance for a significant improvement (paper: 5).
    increment:
        Additive step per control epoch (Balman's "constant factor", 1).
    """

    eps_pct: float = 5.0
    increment: int = 1
    name: str = "heur1"

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")
        if self.increment < 1:
            raise ValueError("increment must be >= 1")

    #: consecutive no-move epochs before cycling to the next parameter,
    #: matching cd-tuner's multi-parameter extension.
    stable_epochs_to_switch: int = 3

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        x_prev2 = space.fbnd(x0)
        f_prev2 = yield x_prev2
        dim = 0
        x_prev = _bump(space, x_prev2, dim, self.increment)
        f_prev = yield x_prev

        stable = 0
        while True:
            moved = x_prev[dim] - x_prev2[dim]
            improvement = delta_pct(f_prev, f_prev2)
            # Increase only while the last increase paid off significantly;
            # unlike cd-tuner there is no decrease rule, so a drop just
            # freezes the parameter where it is.
            if moved > 0 and improvement > self.eps_pct:
                x_next = _bump(space, x_prev, dim, self.increment)
                stable = 0
            else:
                x_next = x_prev
                stable += 1
                if space.ndim > 1 and stable >= self.stable_epochs_to_switch:
                    dim = (dim + 1) % space.ndim
                    stable = 0
                    x_next = _bump(space, x_prev, dim, self.increment)
            f_next = yield x_next
            x_prev2, f_prev2 = x_prev, f_prev
            x_prev, f_prev = x_next, f_next


@dataclass
class Heur2Tuner(Tuner):
    """Yildirim-style exponential increase (heur2).

    Doubles the active parameter while the throughput improvement stays
    significant; a significant *drop* reverts to the previous value.  No
    mechanism ever takes a parameter below its starting value, which is
    the failure mode §IV-C highlights.
    """

    eps_pct: float = 5.0
    factor: int = 2
    name: str = "heur2"

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")
        if self.factor < 2:
            raise ValueError("factor must be >= 2")

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        x = space.fbnd(x0)
        f_prev = yield x

        for dim in _cycle_once_then_hold(space.ndim):
            if dim is None:
                break
            # Grow this dimension geometrically.
            while True:
                x_next = _scale(space, x, dim, self.factor)
                if x_next == x:
                    break  # at the bound
                f_next = yield x_next
                d = delta_pct(f_next, f_prev)
                if d > self.eps_pct:
                    x, f_prev = x_next, f_next
                    continue
                if d < -self.eps_pct:
                    # Overshot: go back to the previous value (one epoch
                    # to re-measure it) and stop growing this dimension.
                    f_prev = yield x
                else:
                    # Plateau: keep the larger value, as the heuristic
                    # only checks for continued improvement.
                    x, f_prev = x_next, f_next
                break

        # Terminal: hold the final setting (heur2 has no re-search).
        while True:
            f_prev = yield x


def _cycle_once_then_hold(ndim: int):
    """Yield each dimension once, then a single None sentinel."""
    for d in range(ndim):
        yield d
    yield None


def _bump(
    space: ParamSpace, x: tuple[int, ...], dim: int, inc: int
) -> tuple[int, ...]:
    v = list(x)
    v[dim] += inc
    return space.fbnd(v)


def _scale(
    space: ParamSpace, x: tuple[int, ...], dim: int, factor: int
) -> tuple[int, ...]:
    v = list(x)
    v[dim] *= factor
    return space.fbnd(v)
