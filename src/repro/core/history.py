"""Control-epoch history and the significant-change test.

All three algorithms share the same change detector: the relative
difference between the two most recent epoch throughputs,

.. math:: \\Delta_c = 100 \\cdot \\frac{f_{x_{c-1}} - f_{x_{c-2}}}{f_{x_{c-2}}},

is *significant* when ``|Δc| > ε`` for the user tolerance ``ε %`` (5% in
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def delta_pct(f_prev: float, f_prev2: float) -> float:
    """Relative throughput change in percent, Δc.

    A zero ``f_prev2`` (e.g. an epoch spent entirely restarting) would
    divide by zero; we treat any change away from zero as infinitely
    significant, and zero-to-zero as no change.
    """
    if f_prev2 == 0.0:
        return 0.0 if f_prev == 0.0 else float("inf")
    return 100.0 * (f_prev - f_prev2) / f_prev2


def delta_pct_vec(f_prev, f_prev2):
    """:func:`delta_pct` over aligned float64 arrays.

    Elementwise IEEE-754 double arithmetic, so each lane's Δc is
    bit-identical to the scalar function — the population dispatch path
    (`repro.core.base.TunerPopulation`) relies on this to fire its watch
    monitors exactly when the per-lane generators would.
    """
    a = np.asarray(f_prev, dtype=np.float64)
    b = np.asarray(f_prev2, dtype=np.float64)
    zero_base = b == 0.0
    out = 100.0 * (a - b) / np.where(zero_base, 1.0, b)
    return np.where(zero_base, np.where(a == 0.0, 0.0, np.inf), out)


@dataclass
class EpochHistory:
    """Sequence of (parameter vector, observed throughput) per epoch."""

    points: list[tuple[int, ...]] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, x: tuple[int, ...], f: float) -> None:
        if f < 0:
            raise ValueError("throughput must be non-negative")
        self.points.append(tuple(x))
        self.values.append(float(f))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last_point(self) -> tuple[int, ...]:
        return self.points[-1]

    @property
    def last_value(self) -> float:
        return self.values[-1]

    def delta(self) -> float:
        """Δc between the two most recent epochs (requires >= 2 epochs)."""
        if len(self.values) < 2:
            raise ValueError("need at least two epochs for a delta")
        return delta_pct(self.values[-1], self.values[-2])

    def significant(self, eps_pct: float) -> bool:
        """True iff the latest Δc exceeds the tolerance in magnitude."""
        return abs(self.delta()) > eps_pct

    def best(self) -> tuple[tuple[int, ...], float]:
        """(point, value) of the best epoch so far."""
        if not self.values:
            raise ValueError("history is empty")
        i = max(range(len(self.values)), key=self.values.__getitem__)
        return self.points[i], self.values[i]
