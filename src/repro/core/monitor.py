"""Change detectors for the outer monitoring loop (extension).

cs-tuner and nm-tuner re-trigger their search when the environment shifts.
The paper detects shifts with the two-point relative difference Δc — a
deliberately simple rule that, as the ε-ablation shows, fires readily on
measurement noise.  This module makes the detector pluggable and supplies
two standard alternatives from statistical process control:

* :class:`DeltaPctMonitor` — the paper's rule (two consecutive epochs);
* :class:`EwmaMonitor` — exponentially weighted moving average with a
  relative deviation band: robust to single-epoch noise, still fast on
  sustained level shifts;
* :class:`CusumMonitor` — two-sided CUSUM on relative deviations from a
  running reference: the classic quickest-detection scheme, trading a
  short detection delay for far fewer false alarms.

All monitors share the protocol: ``update(value) -> bool`` (True = change
detected; the caller re-searches) and ``reset(value)`` after a search
settles on a new level.

:class:`NotifyingMonitor` wraps any of them with a trip callback so an
observability layer can count and timestamp re-search triggers without
the detectors knowing about telemetry.

:class:`FaultFilterMonitor` wraps any of them for fault-aware tuning: a
faulted epoch's throughput (zero, or whatever a dying tool managed) is a
*measurement outage*, not a level shift — feeding it to a change
detector triggers a pointless re-search.  The wrapper drops marked
epochs before they reach the inner monitor.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

from repro.core.history import delta_pct


class ChangeMonitor(abc.ABC):
    """Detects level shifts in a stream of epoch throughputs."""

    @abc.abstractmethod
    def update(self, value: float) -> bool:
        """Feed one epoch value; True if a change is detected."""

    @abc.abstractmethod
    def reset(self, value: float) -> None:
        """Restart detection around a new reference level."""

    @abc.abstractmethod
    def clone(self) -> "ChangeMonitor":
        """A fresh monitor with the same configuration (no state)."""


@dataclass
class DeltaPctMonitor(ChangeMonitor):
    """The paper's rule: |Δc| > ε% between consecutive epochs."""

    eps_pct: float = 5.0
    _prev: float | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")

    def update(self, value: float) -> bool:
        if self._prev is None:
            self._prev = value
            return False
        fired = abs(delta_pct(value, self._prev)) > self.eps_pct
        self._prev = value
        return fired

    def reset(self, value: float) -> None:
        self._prev = value

    def clone(self) -> "DeltaPctMonitor":
        return DeltaPctMonitor(eps_pct=self.eps_pct)


@dataclass
class EwmaMonitor(ChangeMonitor):
    """EWMA level tracking with a relative deviation band.

    Fires when the smoothed level drifts more than ``band_pct`` away from
    the reference set at the last reset.

    Parameters
    ----------
    alpha:
        Smoothing weight of the newest observation.
    band_pct:
        Relative deviation (percent) of the EWMA from the reference that
        counts as a change.
    """

    alpha: float = 0.3
    band_pct: float = 10.0
    _ewma: float | None = field(default=None, init=False, repr=False)
    _ref: float | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if self.band_pct <= 0:
            raise ValueError("band_pct must be positive")

    def update(self, value: float) -> bool:
        if self._ewma is None:
            self._ewma = value
            self._ref = value
            return False
        self._ewma = self.alpha * value + (1 - self.alpha) * self._ewma
        assert self._ref is not None
        if self._ref == 0.0:
            fired = self._ewma != 0.0
        else:
            fired = abs(self._ewma - self._ref) / abs(self._ref) > (
                self.band_pct / 100.0
            )
        if fired:
            self.reset(value)
        return fired

    def reset(self, value: float) -> None:
        self._ewma = value
        self._ref = value

    def clone(self) -> "EwmaMonitor":
        return EwmaMonitor(alpha=self.alpha, band_pct=self.band_pct)


@dataclass
class CusumMonitor(ChangeMonitor):
    """Two-sided CUSUM on relative deviations from the reference.

    Accumulates positive/negative relative deviations beyond a drift
    allowance ``k_pct``; fires when either sum exceeds ``h_pct``.

    Parameters
    ----------
    k_pct:
        Slack per observation (percent) — deviations smaller than this
        are considered in-control and decay the sums.
    h_pct:
        Decision threshold (percent) on the accumulated sums.
    """

    k_pct: float = 3.0
    h_pct: float = 12.0
    _ref: float | None = field(default=None, init=False, repr=False)
    _pos: float = field(default=0.0, init=False, repr=False)
    _neg: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.k_pct < 0:
            raise ValueError("k_pct must be non-negative")
        if self.h_pct <= 0:
            raise ValueError("h_pct must be positive")

    def update(self, value: float) -> bool:
        if self._ref is None:
            self._ref = value
            return False
        if self._ref == 0.0:
            dev_pct = 0.0 if value == 0.0 else float("inf")
        else:
            dev_pct = 100.0 * (value - self._ref) / abs(self._ref)
        self._pos = max(0.0, self._pos + dev_pct - self.k_pct)
        self._neg = max(0.0, self._neg - dev_pct - self.k_pct)
        if self._pos > self.h_pct or self._neg > self.h_pct:
            self.reset(value)
            return True
        return False

    def reset(self, value: float) -> None:
        self._ref = value
        self._pos = 0.0
        self._neg = 0.0

    def clone(self) -> "CusumMonitor":
        return CusumMonitor(k_pct=self.k_pct, h_pct=self.h_pct)


@dataclass
class NotifyingMonitor(ChangeMonitor):
    """Invoke a callback whenever the wrapped detector fires.

    The callback receives the observation that tripped the detector.
    Detection behavior is unchanged; the wrapper only adds the side
    channel (used by :func:`repro.obs.instrument.instrument_monitor`).
    """

    inner: ChangeMonitor
    on_trip: Callable[[float], None] | None = None

    def update(self, value: float) -> bool:
        fired = self.inner.update(value)
        if fired and self.on_trip is not None:
            self.on_trip(value)
        return fired

    def reset(self, value: float) -> None:
        self.inner.reset(value)

    def clone(self) -> "NotifyingMonitor":
        return NotifyingMonitor(inner=self.inner.clone(),
                                on_trip=self.on_trip)


@dataclass
class FaultFilterMonitor(ChangeMonitor):
    """Shield a change detector from faulted-epoch observations.

    Call :meth:`mark_faulted` when an epoch was lost to a fault (before
    the corresponding :meth:`update`): the next ``n`` updates are
    swallowed — the inner monitor's state is untouched and no change
    fires.  Clean updates pass straight through.

    Parameters
    ----------
    inner:
        The wrapped detector.
    """

    inner: ChangeMonitor
    _skip: int = field(default=0, init=False, repr=False)

    def mark_faulted(self, n: int = 1) -> None:
        """The next ``n`` observations are fault artifacts: drop them."""
        if n < 1:
            raise ValueError("n must be >= 1")
        self._skip += n

    def update(self, value: float) -> bool:
        if self._skip > 0:
            self._skip -= 1
            return False
        return self.inner.update(value)

    def reset(self, value: float) -> None:
        self._skip = 0
        self.inner.reset(value)

    def clone(self) -> "FaultFilterMonitor":
        return FaultFilterMonitor(inner=self.inner.clone())
