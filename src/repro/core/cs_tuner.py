"""cs-tuner — compass (pattern) search tuner (paper Algorithm 2).

The inner COMPASS-SEARCH routine probes the coordinate directions
``±e_j`` around the incumbent at step size λ (paper default 8), moving to
the first improving point; when no direction improves, λ is halved, and
the routine stops when λ drops to 0.5 (the probe pattern degenerates to
the incumbent itself under integer rounding).  ``fBnd`` keeps every probe
integer and in bounds.

The outer loop transfers at the incumbent, watching the relative change
Δc of consecutive epoch throughputs; a significant change (|Δc| > ε%)
signals that the external load shifted and re-invokes the compass search.

The paper's pseudocode line 22 restarts the search from the *original*
``x0``; the surrounding text implies resuming near the incumbent.  Both
are supported via ``restart_from``; the default is the incumbent, which
matches the measured trajectories (Fig. 6 shows no collapse back to the
starting value when load changes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.core.base import (
    GeneratorPopulation,
    PhaseCell,
    Tuner,
    TunerGen,
)
from repro.core.monitor import ChangeMonitor, DeltaPctMonitor
from repro.core.params import ParamSpace


@dataclass
class CsTuner(Tuner):
    """Compass-search stream tuner.

    Parameters
    ----------
    eps_pct:
        Tolerance ε%% for a significant throughput change (paper: 5).
    lam0:
        Initial step size λ (paper: 8).
    restart_from:
        Where a re-triggered search starts: ``"incumbent"`` or ``"x0"``.
    seed:
        Seed for the random direction sampling the paper prescribes.
    """

    eps_pct: float = 5.0
    lam0: float = 8.0
    restart_from: str = "incumbent"
    seed: int = 0
    monitor: ChangeMonitor | None = None
    name: str = "cs-tuner"

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")
        if self.lam0 < 1:
            raise ValueError("lam0 must be >= 1")
        if self.restart_from not in ("incumbent", "x0"):
            raise ValueError("restart_from must be 'incumbent' or 'x0'")

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        return self._propose(x0, space, PhaseCell())

    def propose_batch(self, space: ParamSpace) -> "CsPopulation | None":
        # Custom change monitors carry arbitrary state the vectorized
        # watch mirror cannot reproduce; those lanes stay scalar.
        if self.monitor is not None:
            return None
        return CsPopulation(space)

    def _propose(
        self, x0: tuple[int, ...], space: ParamSpace, cell: PhaseCell
    ) -> TunerGen:
        """The tuning state machine, phase-instrumented via ``cell``.

        Identical float arithmetic and yields to the historical
        ``propose`` body — the cell calls are pure notation for the
        population dispatcher (``prev`` shadows the monitor's ``_prev``).
        """
        rng = random.Random(self.seed)
        x_start = space.fbnd(x0)

        x_cur, f_cur = yield from self._compass(x_start, space, rng)

        mon = (self.monitor.clone() if self.monitor is not None
               else DeltaPctMonitor(self.eps_pct))
        mon.reset(f_cur)
        prev = f_cur
        while True:
            cell.watch(x_cur, prev)
            f_new = yield x_cur
            fired = mon.update(f_new)
            prev = f_new
            if fired:
                cell.search()
                restart_at = x_cur if self.restart_from == "incumbent" else x_start
                x_cur, f_new = yield from self._compass(restart_at, space, rng)
                mon.reset(f_new)
                prev = f_new

    def _compass(
        self,
        x_start: tuple[int, ...],
        space: ParamSpace,
        rng: random.Random,
    ) -> Generator[tuple[int, ...], float, tuple[tuple[int, ...], float]]:
        """One full compass search; returns (incumbent, its throughput)."""
        x_cur = x_start
        f_cur = yield x_cur
        lam = self.lam0
        while lam > 0.5:
            directions = space.unit_directions()
            rng.shuffle(directions)
            improved = False
            for q in directions:
                x_probe = space.fbnd(
                    [xi + lam * qi for xi, qi in zip(x_cur, q)]
                )
                if x_probe == x_cur:
                    # Bound projection degenerated the probe; skip rather
                    # than burn a control epoch re-measuring the incumbent.
                    continue
                f_probe = yield x_probe
                if f_probe > f_cur:
                    x_cur, f_cur = x_probe, f_probe
                    improved = True
                    break
            if not improved:
                lam *= 0.5
        return x_cur, f_cur


class CsPopulation(GeneratorPopulation):
    """cs lanes: vectorized Δc watch, scalar compass searches.

    Steady-state cs spends almost every epoch in the outer watch loop; the
    population answers those epochs with one array Δc test across the
    whole lane axis.  A fired monitor (or any lane already inside a
    compass search) steps that lane's own generator — per-lane divergence
    with no effect on its neighbours.
    """

    def _supports(self, tuner: Tuner) -> bool:
        return type(tuner) is CsTuner and tuner.monitor is None
