"""bandit-tuner — discounted UCB over a concurrency grid (extension).

Online stream tuning is a continuum-armed bandit problem; a pragmatic
discretization plays a fixed grid of concurrency values as arms.  The
classic fit for the paper's *nonstationary* setting (external load comes
and goes) is **discounted UCB** (Kocsis & Szepesvári / Garivier &
Moulines): per-arm statistics decay geometrically so stale observations
stop dominating, and the exploration bonus keeps occasional re-checks of
abandoned arms alive — the bandit's answer to the Δc re-trigger rule.

It contrasts with direct search in an instructive way: direct search
exploits the response surface's *unimodality* (neighbors inform each
other), while the bandit treats arms as unrelated and pays for it with a
wider exploration tax on big grids — visible in the comparison bench.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.base import Tuner, TunerGen
from repro.core.params import ParamSpace


def geometric_grid(lo: int, hi: int, n_arms: int) -> tuple[int, ...]:
    """``n_arms`` roughly geometrically spaced integers in [lo, hi]."""
    if lo < 1 or hi < lo:
        raise ValueError("need 1 <= lo <= hi")
    if n_arms < 1:
        raise ValueError("n_arms must be >= 1")
    if n_arms == 1 or lo == hi:
        return (lo,)
    ratio = (hi / lo) ** (1.0 / (n_arms - 1))
    raw = [lo * ratio**i for i in range(n_arms)]
    grid: list[int] = []
    for v in raw:
        iv = max(lo, min(hi, round(v)))
        if not grid or iv > grid[-1]:
            grid.append(iv)
    return tuple(grid)


@dataclass
class BanditTuner(Tuner):
    """Discounted-UCB tuner over a concurrency grid.

    Tunes the first dimension only; remaining dimensions stay at their
    starting values.  Rewards are normalized by the running maximum so
    the exploration constant is scale-free across scenarios.

    Parameters
    ----------
    n_arms:
        Arms in the geometric grid spanning the first dimension's range.
    discount:
        Per-epoch decay of arm statistics (1.0 = stationary UCB1).
    exploration:
        UCB bonus multiplier.
    seed:
        Tie-breaking RNG seed.
    """

    n_arms: int = 10
    discount: float = 0.95
    exploration: float = 0.6
    seed: int = 0
    name: str = "bandit-tuner"

    def __post_init__(self) -> None:
        if self.n_arms < 1:
            raise ValueError("n_arms must be >= 1")
        if not 0 < self.discount <= 1:
            raise ValueError("discount must be in (0, 1]")
        if self.exploration < 0:
            raise ValueError("exploration must be non-negative")

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        rng = random.Random(self.seed)
        rest = tuple(space.fbnd(x0)[1:])
        arms = geometric_grid(
            space.lower[0], space.upper[0], self.n_arms
        )
        counts = [0.0] * len(arms)
        sums = [0.0] * len(arms)
        running_max = 1e-9

        def point(arm_idx: int) -> tuple[int, ...]:
            return space.fbnd((arms[arm_idx],) + rest)

        # Play every arm once (in grid order) to initialize.
        order = list(range(len(arms)))
        for i in order:
            f = yield point(i)
            running_max = max(running_max, f)
            counts[i] = 1.0
            sums[i] = f / running_max

        while True:
            total = sum(counts)
            log_total = math.log(max(total, math.e))
            best_idx, best_score = 0, -math.inf
            for i in range(len(arms)):
                if counts[i] <= 0:
                    score = math.inf
                else:
                    mean = sums[i] / counts[i]
                    bonus = self.exploration * math.sqrt(
                        log_total / counts[i]
                    )
                    score = mean + bonus
                if score > best_score + 1e-12:
                    best_idx, best_score = i, score
                elif abs(score - best_score) <= 1e-12 and rng.random() < 0.5:
                    best_idx = i

            f = yield point(best_idx)
            running_max = max(running_max, f)
            # Discount everything, then credit the played arm.
            for i in range(len(arms)):
                counts[i] *= self.discount
                sums[i] *= self.discount
            counts[best_idx] += 1.0
            sums[best_idx] += f / running_max
