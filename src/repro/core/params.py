"""Integer box parameter domain and the paper's ``fBnd`` operator.

The tunable parameters (concurrency ``nc``, parallelism ``np``) are
integers with hardware/software bounds.  ``fBnd`` (Algorithms 2 and 3)
makes continuous search operations usable on this domain by (1) rounding
each coordinate to the nearest integer — the paper's example rounds
``(3.8, 9.2)`` to ``(4, 9)`` — and (2) projecting out-of-bound coordinates
onto the bound — ``(12, -1)`` to ``(12, 1)`` for a lower bound of 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence


def _round_half_away(v: float) -> int:
    """Round to nearest integer, halves away from zero (3.8 -> 4, 9.2 -> 9).

    Python's built-in ``round`` uses banker's rounding, which would make
    search trajectories depend on parity; half-away is deterministic and
    matches the paper's example.
    """
    return int(math.floor(v + 0.5)) if v >= 0 else -int(math.floor(-v + 0.5))


@dataclass(frozen=True)
class ParamSpace:
    """Named integer box domain :math:`\\mathcal{D}`.

    Parameters
    ----------
    names:
        One name per dimension, e.g. ``("nc",)`` or ``("nc", "np")``.
    lower, upper:
        Inclusive integer bounds per dimension.
    """

    names: tuple[str, ...]
    lower: tuple[int, ...]
    upper: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("parameter space needs at least one dimension")
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate parameter names: {self.names}")
        if not (len(self.names) == len(self.lower) == len(self.upper)):
            raise ValueError("names/lower/upper must have equal lengths")
        for name, lo, hi in zip(self.names, self.lower, self.upper):
            if int(lo) != lo or int(hi) != hi:
                raise ValueError(f"bounds of {name!r} must be integers")
            if lo > hi:
                raise ValueError(f"empty domain for {name!r}: [{lo}, {hi}]")

    # -- basic geometry --------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.names)

    def contains(self, x: Sequence[float]) -> bool:
        """True iff ``x`` is an integer point inside the box."""
        if len(x) != self.ndim:
            return False
        # Exact integers (the common case: accepted proposals) skip the
        # float boxing; the general arm is unchanged.
        for v, lo, hi in zip(x, self.lower, self.upper):
            if not (type(v) is int or float(v).is_integer()):
                return False
            if not lo <= v <= hi:
                return False
        return True

    def fbnd(self, x: Sequence[float]) -> tuple[int, ...]:
        """The paper's ``fBnd``: round to integers, then project to bounds."""
        if len(x) != self.ndim:
            raise ValueError(
                f"point has {len(x)} coordinates, space has {self.ndim}"
            )
        out = []
        for v, lo, hi in zip(x, self.lower, self.upper):
            if type(v) is int:  # already integral: rounding is identity
                out.append(min(max(v, lo), hi))
                continue
            if math.isnan(v):
                raise ValueError("cannot bound a NaN coordinate")
            out.append(min(max(_round_half_away(v), lo), hi))
        return tuple(out)

    def clip_dim(self, dim: int, v: float) -> int:
        """fBnd applied to a single coordinate."""
        if not 0 <= dim < self.ndim:
            raise IndexError(f"dimension {dim} out of range")
        return min(max(_round_half_away(v), self.lower[dim]), self.upper[dim])

    def unit_directions(self) -> list[tuple[int, ...]]:
        """The compass direction set ±e_j, j = 1..m (2m directions)."""
        dirs: list[tuple[int, ...]] = []
        for j in range(self.ndim):
            for sign in (+1, -1):
                d = [0] * self.ndim
                d[j] = sign
                dirs.append(tuple(d))
        return dirs

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(
                f"no parameter named {name!r}; have {self.names}"
            ) from None

    def iter_grid(self) -> Iterator[tuple[int, ...]]:
        """Iterate all integer points of the box (small spaces only)."""
        import itertools

        ranges = [range(lo, hi + 1) for lo, hi in zip(self.lower, self.upper)]
        return itertools.product(*ranges)

    def size(self) -> int:
        """Number of integer points in the box."""
        n = 1
        for lo, hi in zip(self.lower, self.upper):
            n *= hi - lo + 1
        return n


#: The domain used throughout the paper's experiments: concurrency up to
#: 512 processes (Fig. 1 sweeps that far), parallelism up to 32 streams per
#: process.
def concurrency_space(max_nc: int = 512) -> ParamSpace:
    """1-D space over concurrency only (paper §IV-A, np fixed)."""
    return ParamSpace(names=("nc",), lower=(1,), upper=(max_nc,))


def concurrency_parallelism_space(
    max_nc: int = 512, max_np: int = 32
) -> ParamSpace:
    """2-D space over concurrency and parallelism (paper §IV-B)."""
    return ParamSpace(
        names=("nc", "np"), lower=(1, 1), upper=(max_nc, max_np)
    )


def full_transfer_space(
    max_nc: int = 512, max_np: int = 32, max_pp: int = 64
) -> ParamSpace:
    """3-D space adding GridFTP pipelining depth (paper future work 1 /
    the third knob of Yildirim et al. [25])."""
    return ParamSpace(
        names=("nc", "np", "pp"), lower=(1, 1, 1),
        upper=(max_nc, max_np, max_pp),
    )
