"""gss-tuner — golden-section search over concurrency (extension).

When only one parameter is tuned (the paper's §IV-A setting: concurrency,
with parallelism fixed) and the response surface is unimodal (the paper's
Fig. 1 observation), golden-section search is the textbook-optimal
bracketing method: it shrinks the bracket by the golden ratio with one
new measurement per step.  It serves as a strong specialized baseline the
general-purpose cd/cs/nm methods can be compared against — and as a
cautionary one: unimodality is only approximate under measurement noise,
and gss has no recovery once the bracket collapses on a noise-induced
local pattern, so the outer Δc monitor restarts it from scratch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

from repro.core.base import (
    GeneratorPopulation,
    PhaseCell,
    Tuner,
    TunerGen,
)
from repro.core.history import delta_pct
from repro.core.params import ParamSpace

#: 1/phi, the golden bracket ratio.
_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass
class GssTuner(Tuner):
    """Golden-section stream tuner (1-D spaces only).

    Parameters
    ----------
    eps_pct:
        Tolerance ε%% for the outer change monitor.
    """

    eps_pct: float = 5.0
    name: str = "gss-tuner"

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        return self._propose(x0, space, PhaseCell())

    def propose_batch(self, space: ParamSpace) -> "GssPopulation | None":
        if space.ndim != 1:
            return None
        return GssPopulation(space)

    def _propose(
        self, x0: tuple[int, ...], space: ParamSpace, cell: PhaseCell
    ) -> TunerGen:
        """The tuning state machine, phase-instrumented via ``cell``
        (identical yields and float arithmetic to the plain generator)."""
        if space.ndim != 1:
            raise ValueError(
                "golden-section search tunes exactly one parameter; got "
                f"{space.ndim} dimensions"
            )
        x_cur, f_cur = yield from self._bracket_search(space)
        f_prev = f_cur
        while True:
            cell.watch(x_cur, f_prev)
            f_new = yield x_cur
            if abs(delta_pct(f_new, f_prev)) > self.eps_pct:
                cell.search()
                x_cur, f_new = yield from self._bracket_search(space)
            f_prev = f_new

    def _bracket_search(
        self, space: ParamSpace
    ) -> Generator[tuple[int, ...], float, tuple[tuple[int, ...], float]]:
        """One full golden-section pass over the whole domain."""
        lo = float(space.lower[0])
        hi = float(space.upper[0])

        def probe(v: float):
            return space.fbnd((v,))

        x1 = probe(hi - (hi - lo) * _INV_PHI)
        x2 = probe(lo + (hi - lo) * _INV_PHI)
        f1 = yield x1
        f2 = yield x2
        best, f_best = (x1, f1) if f1 >= f2 else (x2, f2)

        while hi - lo > 2.0:
            if f1 >= f2:
                hi = float(x2[0])
                x2, f2 = x1, f1
                x1 = probe(hi - (hi - lo) * _INV_PHI)
                if x1 == x2:
                    break
                f1 = yield x1
                cand, f_cand = x1, f1
            else:
                lo = float(x1[0])
                x1, f1 = x2, f2
                x2 = probe(lo + (hi - lo) * _INV_PHI)
                if x2 == x1:
                    break
                f2 = yield x2
                cand, f_cand = x2, f2
            if f_cand > f_best:
                best, f_best = cand, f_cand
        return best, f_best


class GssPopulation(GeneratorPopulation):
    """gss lanes: vectorized Δc watch, scalar bracket re-searches.

    gss ignores ``x0`` (the first bracket pass sweeps the whole domain)
    and its watch test is exactly the Δc rule, so the shared watch mirror
    applies unchanged.  Note the mirror's ``prev`` update on quiet epochs
    matches gss's ``f_prev = f_new`` tail assignment.
    """

    def _supports(self, tuner: Tuner) -> bool:
        return type(tuner) is GssTuner
