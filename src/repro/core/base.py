"""Tuner protocol.

A tuner is a *state machine over control epochs* expressed as a Python
generator: it yields the parameter vector to use for the next epoch and
receives the epoch's observed throughput (MB/s) via ``send``.  The
``runTransfer`` calls in the paper's Algorithms 1–3 become ``f = yield x``;
the ``while s' > 0`` outer loop lives in whoever drives the generator
(:class:`repro.sim.session.TransferSession`, or a real transfer wrapper).

This inversion lets the same algorithm code serve a blocking command-line
driver and the multi-session fluid simulation (Fig. 11) without change.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.core.history import delta_pct_vec
from repro.core.params import ParamSpace

#: A tuner generator: yields parameter vectors, receives throughputs.
TunerGen = Generator[tuple[int, ...], float, None]


class Tuner(abc.ABC):
    """Base class for control-epoch tuners.

    Subclasses implement :meth:`propose` as an **infinite** generator —
    termination is the driver's concern.  Every yielded point must lie in
    ``space`` (use ``space.fbnd``); this is property-tested against random
    throughput sequences for every tuner in the suite.
    """

    #: short identifier used in traces/reports, e.g. "cd-tuner"
    name: str = "tuner"

    #: whether the driving session must relaunch the transfer tool every
    #: control epoch (the paper's tuners do; set-and-hold methods only
    #: restart when their parameters actually change).
    restarts_every_epoch: bool = True

    @abc.abstractmethod
    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        """Create a fresh tuning state machine starting from ``x0``."""

    def propose_batch(self, space: ParamSpace) -> "TunerPopulation | None":
        """A vectorized population over ``space``, or None if unsupported.

        Tuner classes that can advance many same-phase lanes as
        ``(B,)``-array operations return a :class:`TunerPopulation`; the
        default is None, which routes every lane of this tuner class to
        its scalar generator (``dispatch:unsupported-tuner``).  One
        population serves every lane that shares ``(tuner class, space)``
        — per-lane hyperparameters ride along in the population's own
        arrays.
        """
        return None

    def start(self, x0: tuple[int, ...], space: ParamSpace) -> "TunerDriver":
        """Convenience: wrap :meth:`propose` in a primed driver."""
        return TunerDriver(self.propose(space.fbnd(x0), space), tuner=self)


class TunerDriver:
    """Thin wrapper handling the generator send/prime protocol.

    >>> driver = CdTuner().start((2,), space)   # doctest: +SKIP
    >>> x = driver.current                      # params for epoch 0
    >>> x = driver.observe(1234.5)              # params for epoch 1

    ``tuner`` is the :class:`Tuner` that built this driver (None when the
    generator was wrapped directly) — the population dispatcher needs it
    to group same-class lanes.
    """

    def __init__(self, gen: TunerGen, tuner: "Tuner | None" = None) -> None:
        self._gen = gen
        self.tuner = tuner
        self.current: tuple[int, ...] = next(gen)

    @classmethod
    def adopt(
        cls,
        gen: TunerGen,
        current: tuple[int, ...],
        tuner: "Tuner | None" = None,
    ) -> "TunerDriver":
        """Wrap an already-primed generator suspended at ``yield current``.

        Used by :meth:`TunerPopulation.detach` to hand a lane that left
        lockstep back to the ordinary scalar protocol without re-priming
        (the generator already consumed its prime ``next``).
        """
        driver = object.__new__(cls)
        driver._gen = gen
        driver.tuner = tuner
        driver.current = tuple(current)
        return driver

    def observe(self, throughput: float) -> tuple[int, ...]:
        """Report an epoch's throughput; returns the next parameter vector."""
        if throughput < 0:
            raise ValueError("throughput must be non-negative")
        self.current = self._gen.send(float(throughput))
        return self.current


#: Phases a population lane can be in: ``watch`` lanes advance as array
#: operations; ``search`` lanes step their scalar generator.
WATCH = "watch"
SEARCH = "search"


class PhaseCell:
    """Shared mailbox between an instrumented generator and its population.

    A phase-aware tuner's ``_propose(x0, space, cell)`` calls
    ``cell.watch(incumbent, prev)`` immediately before every watch-loop
    yield and ``cell.search()`` before delegating into an inner search, so
    the population always knows whether the suspended generator is at a
    watch point (vectorizable: the next step is a pure Δc test against
    ``prev``) or inside a search (scalar: the next proposal needs the
    generator's own control flow).
    """

    __slots__ = ("phase", "incumbent", "prev")

    def __init__(self) -> None:
        self.phase = SEARCH
        self.incumbent: tuple[int, ...] | None = None
        self.prev = 0.0

    def watch(self, incumbent: tuple[int, ...], prev: float) -> None:
        self.phase = WATCH
        self.incumbent = incumbent
        self.prev = prev

    def search(self) -> None:
        self.phase = SEARCH


class TunerPopulation(abc.ABC):
    """Vectorized window-end dispatch for a group of same-class lanes.

    The batch engines use this to replace B per-lane generator steps with
    one ``(B,)``-array operation when lanes are in lockstep.  The contract
    mirrors :class:`TunerDriver` exactly: every proposal a population
    returns for a lane must be bit-identical to what that lane's scalar
    generator would have yielded for the same observation sequence —
    the batch-vs-scalar equivalence matrix is the gate.

    Lanes join via :meth:`add_lane` (None = this particular lane is
    incompatible; the caller falls back to its scalar driver) and may
    leave lockstep at any time via :meth:`detach`.
    """

    def __init__(self, space: ParamSpace) -> None:
        self.space = space

    @abc.abstractmethod
    def add_lane(
        self, lane: int, tuner: Tuner, x0: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        """Admit a lane starting from ``x0``; returns its primed proposal.

        Returns None (leaving the population unchanged) when this lane's
        tuner instance cannot be vectorized — e.g. a custom change
        monitor.  The primed proposal equals what a fresh scalar driver
        for the same ``(tuner, x0, space)`` would hold in ``.current``.
        """

    @abc.abstractmethod
    def current(self, lane: int) -> tuple[int, ...]:
        """The proposal the lane is currently transferring at."""

    @abc.abstractmethod
    def observe_batch(
        self, lanes: list[int], observed: list[float]
    ) -> list[tuple[int, ...]]:
        """Report one epoch throughput per lane; returns next proposals.

        Lanes absent from ``lanes`` simply do not advance — populations
        must tolerate any subset observing in any call (lanes finish at
        different times).
        """

    @abc.abstractmethod
    def detach(self, lane: int) -> TunerDriver:
        """Remove a lane, returning an equivalent primed scalar driver."""


class GeneratorPopulation(TunerPopulation):
    """Population over per-lane *instrumented generators* (cs, gss).

    Each lane keeps its real scalar generator; the population mirrors the
    generator's watch monitor (``prev`` + ``eps_pct``) and, while a lane
    sits in the watch phase, answers observations with the cached
    incumbent after one vectorized Δc test — no generator call.  The
    observations are buffered and replayed through ``gen.send`` only when
    the monitor fires (or the lane detaches), at which point the
    generator — always the bit-exactness authority — re-runs the exact
    same Δc arithmetic and takes over scalar stepping for the search
    phase.  Lanes inside a search step their generator every epoch: that
    is the per-lane divergence path.
    """

    def __init__(self, space: ParamSpace) -> None:
        super().__init__(space)
        self._gen: dict[int, TunerGen] = {}
        self._cell: dict[int, PhaseCell] = {}
        self._cur: dict[int, tuple[int, ...]] = {}
        self._prev: dict[int, float] = {}
        self._eps: dict[int, float] = {}
        self._pending: dict[int, list[float]] = {}
        self._tuner: dict[int, Tuner] = {}

    # -- subclass hooks ---------------------------------------------------

    def _supports(self, tuner: Tuner) -> bool:
        """Whether this particular tuner instance can join."""
        raise NotImplementedError

    def _instrument(
        self, tuner: Tuner, x0: tuple[int, ...], cell: PhaseCell
    ) -> TunerGen:
        """A fresh phase-instrumented generator for one lane."""
        return tuner._propose(x0, self.space, cell)

    # -- protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._gen)

    def add_lane(
        self, lane: int, tuner: Tuner, x0: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        if lane in self._gen:
            raise ValueError(f"lane {lane!r} already in population")
        if not self._supports(tuner):
            return None
        cell = PhaseCell()
        gen = self._instrument(tuner, tuple(x0), cell)
        cur = next(gen)
        self._gen[lane] = gen
        self._cell[lane] = cell
        self._cur[lane] = cur
        self._prev[lane] = cell.prev
        self._eps[lane] = float(tuner.eps_pct)
        self._pending[lane] = []
        self._tuner[lane] = tuner
        return cur

    def current(self, lane: int) -> tuple[int, ...]:
        return self._cur[lane]

    def observe_batch(
        self, lanes: list[int], observed: list[float]
    ) -> list[tuple[int, ...]]:
        obs = [float(f) for f in observed]
        if len(obs) != len(lanes):
            raise ValueError("lanes and observed must be aligned")
        for f in obs:
            if f < 0:
                raise ValueError("throughput must be non-negative")

        # One vectorized Δc test over every watch-phase lane; the mirror
        # runs the identical float64 arithmetic the generators' monitors
        # would, so "fired" is decided bit-exactly without stepping them.
        watch = [j for j, ln in enumerate(lanes)
                 if self._cell[ln].phase == WATCH]
        fired = {}
        if watch:
            f_new = np.array([obs[j] for j in watch])
            prev = np.array([self._prev[lanes[j]] for j in watch])
            eps = np.array([self._eps[lanes[j]] for j in watch])
            hits = np.abs(delta_pct_vec(f_new, prev)) > eps
            fired = {watch[k]: bool(hits[k]) for k in range(len(watch))}

        out: list[tuple[int, ...]] = []
        for j, lane in enumerate(lanes):
            f = obs[j]
            if self._cell[lane].phase == WATCH and not fired.get(j, False):
                # Quiet watch epoch: buffer the observation, keep the
                # incumbent.  The generator replays it later.
                self._prev[lane] = f
                self._pending[lane].append(f)
                out.append(self._cur[lane])
            else:
                out.append(self._flush(lane, f))
        return out

    def _flush(self, lane: int, f: float | None = None) -> tuple[int, ...]:
        """Replay buffered observations (plus ``f``) through the lane's
        generator and re-sync the mirror from its cell."""
        gen = self._gen[lane]
        cur = self._cur[lane]
        for q in self._pending[lane]:
            cur = gen.send(q)
        self._pending[lane].clear()
        if f is not None:
            cur = gen.send(f)
        self._cur[lane] = cur
        cell = self._cell[lane]
        if cell.phase == WATCH:
            self._prev[lane] = cell.prev
        return cur

    def detach(self, lane: int) -> TunerDriver:
        cur = self._flush(lane)
        driver = TunerDriver.adopt(
            self._gen[lane], cur, tuner=self._tuner[lane]
        )
        for store in (self._gen, self._cell, self._cur, self._prev,
                      self._eps, self._pending, self._tuner):
            del store[lane]
        return driver


@dataclass
class StaticTuner(Tuner):
    """Never changes the parameters — the paper's ``default`` baseline.

    If ``params`` is None the starting point is held forever.
    """

    params: tuple[int, ...] | None = None
    name: str = "default"
    restarts_every_epoch: bool = False

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        x = space.fbnd(self.params if self.params is not None else x0)
        while True:
            yield x
