"""Tuner protocol.

A tuner is a *state machine over control epochs* expressed as a Python
generator: it yields the parameter vector to use for the next epoch and
receives the epoch's observed throughput (MB/s) via ``send``.  The
``runTransfer`` calls in the paper's Algorithms 1–3 become ``f = yield x``;
the ``while s' > 0`` outer loop lives in whoever drives the generator
(:class:`repro.sim.session.TransferSession`, or a real transfer wrapper).

This inversion lets the same algorithm code serve a blocking command-line
driver and the multi-session fluid simulation (Fig. 11) without change.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generator

from repro.core.params import ParamSpace

#: A tuner generator: yields parameter vectors, receives throughputs.
TunerGen = Generator[tuple[int, ...], float, None]


class Tuner(abc.ABC):
    """Base class for control-epoch tuners.

    Subclasses implement :meth:`propose` as an **infinite** generator —
    termination is the driver's concern.  Every yielded point must lie in
    ``space`` (use ``space.fbnd``); this is property-tested against random
    throughput sequences for every tuner in the suite.
    """

    #: short identifier used in traces/reports, e.g. "cd-tuner"
    name: str = "tuner"

    #: whether the driving session must relaunch the transfer tool every
    #: control epoch (the paper's tuners do; set-and-hold methods only
    #: restart when their parameters actually change).
    restarts_every_epoch: bool = True

    @abc.abstractmethod
    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        """Create a fresh tuning state machine starting from ``x0``."""

    def start(self, x0: tuple[int, ...], space: ParamSpace) -> "TunerDriver":
        """Convenience: wrap :meth:`propose` in a primed driver."""
        return TunerDriver(self.propose(space.fbnd(x0), space))


class TunerDriver:
    """Thin wrapper handling the generator send/prime protocol.

    >>> driver = CdTuner().start((2,), space)   # doctest: +SKIP
    >>> x = driver.current                      # params for epoch 0
    >>> x = driver.observe(1234.5)              # params for epoch 1
    """

    def __init__(self, gen: TunerGen) -> None:
        self._gen = gen
        self.current: tuple[int, ...] = next(gen)

    def observe(self, throughput: float) -> tuple[int, ...]:
        """Report an epoch's throughput; returns the next parameter vector."""
        if throughput < 0:
            raise ValueError("throughput must be non-negative")
        self.current = self._gen.send(float(throughput))
        return self.current


@dataclass
class StaticTuner(Tuner):
    """Never changes the parameters — the paper's ``default`` baseline.

    If ``params`` is None the starting point is held forever.
    """

    params: tuple[int, ...] | None = None
    name: str = "default"
    restarts_every_epoch: bool = False

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        x = space.fbnd(self.params if self.params is not None else x0)
        while True:
            yield x
