"""Tuner registry: construct any tuner by its short name.

One table maps the short names used by the CLI, journal headers, and the
replay tests to tuner factories.  Checkpoint/resume depends on this
being *stable*: a journal header records the tuner by name, and resume
must rebuild the identical algorithm (same class, same seed) for the
observation replay to land in the same state.
"""

from __future__ import annotations

from typing import Callable

from repro.core.aimd_tuner import AimdTuner
from repro.core.bandit import BanditTuner
from repro.core.base import StaticTuner, Tuner
from repro.core.cd_tuner import CdTuner
from repro.core.cs_tuner import CsTuner
from repro.core.gss_tuner import GssTuner
from repro.core.heuristics import Heur1Tuner, Heur2Tuner
from repro.core.hj_tuner import HjTuner
from repro.core.nm_tuner import NmTuner
from repro.core.spsa_tuner import SpsaTuner

#: name -> factory(seed).  Seeded tuners receive the run seed so a
#: journaled run can be rebuilt exactly; the rest ignore it.
TUNER_FACTORIES: dict[str, Callable[[int], Tuner]] = {
    "default": lambda seed: StaticTuner(),
    "cd": lambda seed: CdTuner(),
    "cs": lambda seed: CsTuner(seed=seed),
    "nm": lambda seed: NmTuner(),
    "hj": lambda seed: HjTuner(),
    "spsa": lambda seed: SpsaTuner(seed=seed),
    "gss": lambda seed: GssTuner(),
    "heur1": lambda seed: Heur1Tuner(),
    "heur2": lambda seed: Heur2Tuner(),
    "bandit": lambda seed: BanditTuner(seed=seed),
    "aimd": lambda seed: AimdTuner(),
    "mimd": lambda seed: AimdTuner(multiplicative_increase=True),
}


#: Docs for names whose class docstring is ambiguous (two short names
#: sharing one class) or too paper-internal for a CLI listing.
_TUNER_DOC_OVERRIDES: dict[str, str] = {
    "default": "Fixed globus-url-copy defaults (nc=2, np=8); never tunes.",
    "aimd": "Additive-increase / multiplicative-decrease stream tuner.",
    "mimd": "Multiplicative-increase / multiplicative-decrease variant "
            "of aimd.",
}


def tuner_names() -> list[str]:
    """All registered short names, sorted."""
    return sorted(TUNER_FACTORIES)


def tuner_info() -> list[tuple[str, str]]:
    """``(name, one-line doc)`` per registered tuner, sorted by name.

    The doc is the tuner class docstring's first line unless a name
    needs an override (e.g. ``aimd``/``mimd`` share one class).
    """
    rows = []
    for name in tuner_names():
        doc = _TUNER_DOC_OVERRIDES.get(name)
        if doc is None:
            cls_doc = type(TUNER_FACTORIES[name](0)).__doc__ or ""
            doc = cls_doc.strip().splitlines()[0] if cls_doc.strip() else ""
        rows.append((name, doc))
    return rows


#: The paper's external-load settings (§IV): dgemm copies (``cmpN``)
#: and competing-transfer streams (``tfrN``) at the source endpoint,
#: in the spec notation :meth:`repro.endpoint.load.ExternalLoad.parse`
#: accepts.  Any ``cmpN``/``tfrN`` combination is valid; these are the
#: levels the experiments use.
LOAD_PROFILES: dict[str, str] = {
    "none": "Unloaded source endpoint (the paper's baseline).",
    "cmp16": "16 dgemm copies saturating the source CPUs.",
    "cmp32": "32 dgemm copies (2x oversubscribed CPUs).",
    "cmp64": "64 dgemm copies (4x oversubscribed CPUs).",
    "tfr16": "Competing external transfer with 16 TCP streams.",
    "tfr32": "Competing external transfer with 32 TCP streams.",
    "tfr64": "Competing external transfer with 64 TCP streams.",
    "cmp16+tfr64": "Combined CPU and network contention (Fig. 7).",
}


def load_profile_info() -> list[tuple[str, str]]:
    """``(spec, one-line doc)`` per standard load profile."""
    return list(LOAD_PROFILES.items())


def scenario_info() -> list[tuple[str, str]]:
    """``(name, one-line doc)`` per registered scenario.

    Imported lazily: the scenario table lives in
    :mod:`repro.experiments.scenarios`, a layer above :mod:`repro.core`.
    """
    from repro.experiments.scenarios import SCENARIOS

    return [(name, s.doc) for name, s in sorted(SCENARIOS.items())]


def make_tuner(name: str, seed: int = 0) -> Tuner:
    """Construct a registered tuner by short name.

    Raises ``KeyError`` with the valid names for an unknown name (the
    CLI wraps this into a ``SystemExit``).
    """
    try:
        factory = TUNER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown tuner {name!r}; choose from {tuner_names()}"
        ) from None
    return factory(seed)
