"""Tuner registry: construct any tuner by its short name.

One table maps the short names used by the CLI, journal headers, and the
replay tests to tuner factories.  Checkpoint/resume depends on this
being *stable*: a journal header records the tuner by name, and resume
must rebuild the identical algorithm (same class, same seed) for the
observation replay to land in the same state.
"""

from __future__ import annotations

from typing import Callable

from repro.core.aimd_tuner import AimdTuner
from repro.core.bandit import BanditTuner
from repro.core.base import StaticTuner, Tuner
from repro.core.cd_tuner import CdTuner
from repro.core.cs_tuner import CsTuner
from repro.core.gss_tuner import GssTuner
from repro.core.heuristics import Heur1Tuner, Heur2Tuner
from repro.core.hj_tuner import HjTuner
from repro.core.nm_tuner import NmTuner
from repro.core.spsa_tuner import SpsaTuner

#: name -> factory(seed).  Seeded tuners receive the run seed so a
#: journaled run can be rebuilt exactly; the rest ignore it.
TUNER_FACTORIES: dict[str, Callable[[int], Tuner]] = {
    "default": lambda seed: StaticTuner(),
    "cd": lambda seed: CdTuner(),
    "cs": lambda seed: CsTuner(seed=seed),
    "nm": lambda seed: NmTuner(),
    "hj": lambda seed: HjTuner(),
    "spsa": lambda seed: SpsaTuner(seed=seed),
    "gss": lambda seed: GssTuner(),
    "heur1": lambda seed: Heur1Tuner(),
    "heur2": lambda seed: Heur2Tuner(),
    "bandit": lambda seed: BanditTuner(seed=seed),
    "aimd": lambda seed: AimdTuner(),
    "mimd": lambda seed: AimdTuner(multiplicative_increase=True),
}


def tuner_names() -> list[str]:
    """All registered short names, sorted."""
    return sorted(TUNER_FACTORIES)


def make_tuner(name: str, seed: int = 0) -> Tuner:
    """Construct a registered tuner by short name.

    Raises ``KeyError`` with the valid names for an unknown name (the
    CLI wraps this into a ``SystemExit``).
    """
    try:
        factory = TUNER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown tuner {name!r}; choose from {tuner_names()}"
        ) from None
    return factory(seed)
