"""cd-tuner — customized coordinate descent search (paper Algorithm 1).

One parameter is tuned at a time with unit steps:

* **increase** when holding the parameter still produced a significant
  throughput change (new congestion or freed bandwidth appeared), or when
  the last move had a significantly positive slope
  ``δc = Δc / (x_{c-1} - x_{c-2})``;
* **decrease** when the last move had a significantly negative slope (the
  source became the bottleneck);
* **hold** otherwise.

For multi-parameter spaces the paper prescribes cycling: tune one
parameter until "the observed throughputs do not vary over several
consecutive control epochs", then move to the next.  The stability horizon
is the ``stable_epochs_to_switch`` knob.

cd-tuner is the paper's most starting-point-sensitive method: it needs
``|x0 - x*|`` epochs to reach the critical point, which is why Figures 5–6
show it lagging cs/nm-tuner under heavy load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Tuner, TunerDriver, TunerGen, TunerPopulation
from repro.core.history import delta_pct, delta_pct_vec
from repro.core.params import ParamSpace


@dataclass
class CdTuner(Tuner):
    """Coordinate-descent stream tuner.

    Parameters
    ----------
    eps_pct:
        Tolerance ε%% for a significant throughput change (paper: 5).
    stable_epochs_to_switch:
        Consecutive no-change epochs before moving to the next parameter
        (multi-parameter spaces only).
    """

    eps_pct: float = 5.0
    stable_epochs_to_switch: int = 3
    name: str = "cd-tuner"

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")
        if self.stable_epochs_to_switch < 1:
            raise ValueError("stable_epochs_to_switch must be >= 1")

    def propose_batch(self, space: ParamSpace) -> "CdPopulation":
        return CdPopulation(space)

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        x_prev2 = space.fbnd(x0)
        f_prev2 = yield x_prev2

        dim = 0
        # Second evaluation: one unit step up in the active dimension, so
        # the first Δc carries slope information.
        x_prev = _step(space, x_prev2, dim, +1)
        f_prev = yield x_prev

        stable = 0
        while True:
            d_active = x_prev[dim] - x_prev2[dim]
            delta = delta_pct(f_prev, f_prev2)

            move = 0
            if d_active == 0:
                if abs(delta) > self.eps_pct:
                    move = +1
            else:
                slope = delta / d_active
                if slope > self.eps_pct:
                    move = +1
                elif slope < -self.eps_pct:
                    move = -1

            if move == 0:
                stable += 1
                if space.ndim > 1 and stable >= self.stable_epochs_to_switch:
                    # Move on to the next parameter and probe it with one
                    # unit step (the same bootstrap the algorithm uses for
                    # its very first move).
                    dim = (dim + 1) % space.ndim
                    stable = 0
                    move = +1
            else:
                stable = 0

            x_next = _step(space, x_prev, dim, move)
            f_next = yield x_next
            x_prev2, f_prev2 = x_prev, f_prev
            x_prev, f_prev = x_next, f_next


def _step(
    space: ParamSpace, x: tuple[int, ...], dim: int, move: int
) -> tuple[int, ...]:
    """Move one unit along ``dim`` and re-apply bounds."""
    stepped = list(x)
    stepped[dim] = stepped[dim] + move
    return space.fbnd(stepped)


class CdPopulation(TunerPopulation):
    """Fully vectorized cd population: B coordinate descents per epoch.

    cd's whole per-epoch step — slope test, stability counter, dimension
    cycling, unit move, bound projection — is branch-free integer/float64
    arithmetic, so the entire population advances as ``(B,)``/``(B,d)``
    array operations with no per-lane generator at all.  ``delta_pct_vec``
    and ``np.clip`` on int64 reproduce the scalar ``delta_pct``/``fBnd``
    bit-for-bit (the integer fBnd arm is a pure clamp), which the
    population equivalence suite pins against :meth:`CdTuner.propose`.

    Per-lane observation history is retained so :meth:`detach` can hand
    back a scalar driver rebuilt by replay — the same reconstruction the
    fleet supervisor uses for crash restarts.
    """

    def __init__(self, space: ParamSpace) -> None:
        super().__init__(space)
        ndim = space.ndim
        self._row: dict[int, int] = {}
        self._lanes: list[int] = []
        self._tuner: dict[int, CdTuner] = {}
        self._x0: dict[int, tuple[int, ...]] = {}
        self._hist: dict[int, list[float]] = {}
        self._cache: dict[int, tuple[int, ...]] = {}
        self._lo = np.asarray(space.lower, dtype=np.int64)
        self._hi = np.asarray(space.upper, dtype=np.int64)
        self._X = np.empty((0, ndim), dtype=np.int64)  # proposal awaiting obs
        self._X2 = np.empty((0, ndim), dtype=np.int64)  # x_prev2
        self._F2 = np.empty(0, dtype=np.float64)  # f_prev2
        self._dim = np.empty(0, dtype=np.int64)
        self._stable = np.empty(0, dtype=np.int64)
        self._boot = np.empty(0, dtype=bool)  # before the first observation
        self._eps = np.empty(0, dtype=np.float64)
        self._switch = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._lanes)

    def add_lane(
        self, lane: int, tuner: Tuner, x0: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        if lane in self._row:
            raise ValueError(f"lane {lane!r} already in population")
        if type(tuner) is not CdTuner:
            return None
        x = self.space.fbnd(tuple(x0))
        self._row[lane] = len(self._lanes)
        self._lanes.append(lane)
        self._tuner[lane] = tuner
        self._x0[lane] = x
        self._hist[lane] = []
        self._cache[lane] = x
        row = np.asarray([x], dtype=np.int64)
        self._X = np.concatenate([self._X, row])
        self._X2 = np.concatenate([self._X2, row])
        self._F2 = np.append(self._F2, 0.0)
        self._dim = np.append(self._dim, 0)
        self._stable = np.append(self._stable, 0)
        self._boot = np.append(self._boot, True)
        self._eps = np.append(self._eps, tuner.eps_pct)
        self._switch = np.append(self._switch, tuner.stable_epochs_to_switch)
        return x

    def current(self, lane: int) -> tuple[int, ...]:
        return self._cache[lane]

    def observe_batch(
        self, lanes: list[int], observed: list[float]
    ) -> list[tuple[int, ...]]:
        n = len(lanes)
        f = np.asarray(observed, dtype=np.float64)
        if len(f) != n:
            raise ValueError("lanes and observed must be aligned")
        if n and (f < 0).any():
            raise ValueError("throughput must be non-negative")
        if not n:
            return []
        rows = np.fromiter(
            (self._row[ln] for ln in lanes), dtype=np.int64, count=n
        )
        fl = f.tolist()
        for j, lane in enumerate(lanes):
            self._hist[lane].append(fl[j])

        X = self._X[rows]
        X2 = self._X2[rows]
        F2 = self._F2[rows]
        dim = self._dim[rows]
        stable = self._stable[rows]
        boot = self._boot[rows]
        eps = self._eps[rows]
        ii = np.arange(n)

        # Steady lanes: the loop body of CdTuner.propose as array math.
        d_active = X[ii, dim] - X2[ii, dim]
        delta = delta_pct_vec(f, F2)
        nz = d_active != 0
        slope = delta / np.where(nz, d_active, 1).astype(np.float64)
        move = np.zeros(n, dtype=np.int64)
        move[~nz & (np.abs(delta) > eps)] = 1
        move[nz & (slope > eps)] = 1
        move[nz & (slope < -eps)] = -1
        hold = move == 0
        stable = np.where(hold, stable + 1, 0)
        if self.space.ndim > 1:
            switch = hold & (stable >= self._switch[rows])
            dim = np.where(switch, (dim + 1) % self.space.ndim, dim)
            stable = np.where(switch, 0, stable)
            move = np.where(switch, 1, move)

        # Bootstrap lanes (first observation): probe +1 along dim 0.
        if boot.any():
            move[boot] = 1
            dim[boot] = 0
            stable[boot] = 0

        x_next = X.copy()
        x_next[ii, dim] += move
        np.clip(x_next, self._lo, self._hi, out=x_next)

        self._X2[rows] = X
        self._F2[rows] = f
        self._X[rows] = x_next
        self._dim[rows] = dim
        self._stable[rows] = stable
        self._boot[rows] = False

        out = [tuple(r) for r in x_next.tolist()]
        for j, lane in enumerate(lanes):
            self._cache[lane] = out[j]
        return out

    def detach(self, lane: int) -> TunerDriver:
        driver = self._tuner[lane].start(self._x0[lane], self.space)
        for f in self._hist[lane]:
            driver.observe(f)
        row = self._row.pop(lane)
        self._lanes.pop(row)
        for ln in self._lanes[row:]:
            self._row[ln] -= 1
        for arr in ("_X", "_X2", "_F2", "_dim", "_stable", "_boot",
                    "_eps", "_switch"):
            setattr(self, arr, np.delete(getattr(self, arr), row, axis=0))
        for store in (self._tuner, self._x0, self._hist, self._cache):
            del store[lane]
        return driver
