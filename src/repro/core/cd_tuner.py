"""cd-tuner — customized coordinate descent search (paper Algorithm 1).

One parameter is tuned at a time with unit steps:

* **increase** when holding the parameter still produced a significant
  throughput change (new congestion or freed bandwidth appeared), or when
  the last move had a significantly positive slope
  ``δc = Δc / (x_{c-1} - x_{c-2})``;
* **decrease** when the last move had a significantly negative slope (the
  source became the bottleneck);
* **hold** otherwise.

For multi-parameter spaces the paper prescribes cycling: tune one
parameter until "the observed throughputs do not vary over several
consecutive control epochs", then move to the next.  The stability horizon
is the ``stable_epochs_to_switch`` knob.

cd-tuner is the paper's most starting-point-sensitive method: it needs
``|x0 - x*|`` epochs to reach the critical point, which is why Figures 5–6
show it lagging cs/nm-tuner under heavy load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import Tuner, TunerGen
from repro.core.history import delta_pct
from repro.core.params import ParamSpace


@dataclass
class CdTuner(Tuner):
    """Coordinate-descent stream tuner.

    Parameters
    ----------
    eps_pct:
        Tolerance ε%% for a significant throughput change (paper: 5).
    stable_epochs_to_switch:
        Consecutive no-change epochs before moving to the next parameter
        (multi-parameter spaces only).
    """

    eps_pct: float = 5.0
    stable_epochs_to_switch: int = 3
    name: str = "cd-tuner"

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")
        if self.stable_epochs_to_switch < 1:
            raise ValueError("stable_epochs_to_switch must be >= 1")

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        x_prev2 = space.fbnd(x0)
        f_prev2 = yield x_prev2

        dim = 0
        # Second evaluation: one unit step up in the active dimension, so
        # the first Δc carries slope information.
        x_prev = _step(space, x_prev2, dim, +1)
        f_prev = yield x_prev

        stable = 0
        while True:
            d_active = x_prev[dim] - x_prev2[dim]
            delta = delta_pct(f_prev, f_prev2)

            move = 0
            if d_active == 0:
                if abs(delta) > self.eps_pct:
                    move = +1
            else:
                slope = delta / d_active
                if slope > self.eps_pct:
                    move = +1
                elif slope < -self.eps_pct:
                    move = -1

            if move == 0:
                stable += 1
                if space.ndim > 1 and stable >= self.stable_epochs_to_switch:
                    # Move on to the next parameter and probe it with one
                    # unit step (the same bootstrap the algorithm uses for
                    # its very first move).
                    dim = (dim + 1) % space.ndim
                    stable = 0
                    move = +1
            else:
                stable = 0

            x_next = _step(space, x_prev, dim, move)
            f_next = yield x_next
            x_prev2, f_prev2 = x_prev, f_prev
            x_prev, f_prev = x_next, f_next


def _step(
    space: ParamSpace, x: tuple[int, ...], dim: int, move: int
) -> tuple[int, ...]:
    """Move one unit along ``dim`` and re-apply bounds."""
    stepped = list(x)
    stepped[dim] = stepped[dim] + move
    return space.fbnd(stepped)
