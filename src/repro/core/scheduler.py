"""Priority-weighted endpoint scheduling (extension; paper §IV-D).

Closing its Fig. 11 discussion, the paper proposes aggregating the
transfers at a common endpoint, optimizing all their parameters with one
direct-search instance, and notes that "we may be able to apply the
methods proposed by Kettimuthu et al. [16] to *prioritize* transfers".
This module supplies that last piece: a joint objective that weights each
transfer's throughput by its priority, so the single search instance
steers shared-NIC capacity toward the transfers the operator cares about.

The weighted objective is

.. math:: F(x) = \\sum_i w_i \\; T_i(x_i) \\Big/ \\sum_i w_i,

a priority-weighted mean in MB/s.  Because the NIC constraint couples the
:math:`T_i`, maximizing :math:`F` trades low-priority bandwidth for
high-priority bandwidth exactly where the shared bottleneck forces a
choice — and nowhere else.
"""

from __future__ import annotations

from repro.core.aggregate import JointTuner
from repro.sim.engine import JointController


class WeightedJointController(JointController):
    """JointController whose objective is priority-weighted throughput.

    Parameters
    ----------
    joint:
        The joint direct-search instance (see :class:`JointTuner`).
    session_names:
        Controlled sessions, in subspace order.
    x0:
        Joint starting point.
    priorities:
        One positive weight per session; relative magnitudes matter
        (``[2, 1]`` counts the first transfer's MB/s double).
    """

    def __init__(
        self,
        joint: JointTuner,
        session_names: list[str],
        x0: tuple[int, ...],
        priorities: list[float],
    ) -> None:
        super().__init__(joint, session_names, x0)
        if len(priorities) != len(session_names):
            raise ValueError("one priority per session required")
        if any(w <= 0 for w in priorities):
            raise ValueError("priorities must be positive")
        self.priorities = dict(zip(session_names, priorities))
        self._weight_sum = float(sum(priorities))

    def observe(
        self, name: str, observed: float
    ) -> dict[str, tuple[int, ...]] | None:
        """Like the base class, but the tuner sees the weighted mean."""
        if name not in self.session_names:
            raise KeyError(f"session {name!r} not under this controller")
        if name in self._pending:
            raise RuntimeError(f"session {name!r} reported twice this epoch")
        self._pending[name] = observed
        if len(self._pending) < len(self.session_names):
            return None
        weighted = sum(
            self.priorities[n] * f for n, f in self._pending.items()
        ) / self._weight_sum
        self._pending.clear()
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_joint_objective_mbps",
                sessions="+".join(self.session_names),
            ).set(weighted)
        parts = self.joint.split(self.driver.observe(weighted))
        return dict(zip(self.session_names, parts))
