"""hj-tuner — Hooke-Jeeves pattern search (extension).

Hooke-Jeeves is the third classic direct-search family alongside the
paper's compass search and Nelder-Mead (Kolda, Lewis & Torczon 2003, the
paper's [17], treat all three).  It adds a *pattern move* to compass-style
exploration: after a successful round of coordinate probes, the search
extrapolates along the combined improvement direction, accelerating
across the long shallow ridges the throughput surface develops under
heavy external load.

Structure mirrors cs-tuner: an inner search from the incumbent, step
halving on failure, and the same Δc monitor/re-trigger outer loop, so the
method drops into every experiment the paper's tuners run in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.base import Tuner, TunerGen
from repro.core.monitor import ChangeMonitor, DeltaPctMonitor
from repro.core.params import ParamSpace


@dataclass
class HjTuner(Tuner):
    """Hooke-Jeeves stream tuner.

    Parameters
    ----------
    eps_pct:
        Tolerance ε%% for the outer change monitor (paper setting: 5).
    step0:
        Initial exploration step (8, matching cs-tuner's λ).
    """

    eps_pct: float = 5.0
    step0: float = 8.0
    monitor: ChangeMonitor | None = None
    name: str = "hj-tuner"

    def __post_init__(self) -> None:
        if self.eps_pct < 0:
            raise ValueError("eps_pct must be non-negative")
        if self.step0 < 1:
            raise ValueError("step0 must be >= 1")

    def propose(self, x0: tuple[int, ...], space: ParamSpace) -> TunerGen:
        x_cur = space.fbnd(x0)
        x_cur, f_cur = yield from self._search(x_cur, space)

        mon = (self.monitor.clone() if self.monitor is not None
               else DeltaPctMonitor(self.eps_pct))
        mon.reset(f_cur)
        while True:
            f_new = yield x_cur
            if mon.update(f_new):
                x_cur, f_new = yield from self._search(x_cur, space)
                mon.reset(f_new)

    def _explore(
        self,
        base: tuple[int, ...],
        f_base: float,
        step: float,
        space: ParamSpace,
    ) -> Generator[tuple[int, ...], float, tuple[tuple[int, ...], float]]:
        """Coordinate probes of size ``step`` around ``base``; greedy."""
        x, fx = base, f_base
        for dim in range(space.ndim):
            for sign in (+1, -1):
                cand = list(x)
                cand[dim] += sign * step
                cand_b = space.fbnd(cand)
                if cand_b == x:
                    continue
                fc = yield cand_b
                if fc > fx:
                    x, fx = cand_b, fc
                    break
        return x, fx

    def _search(
        self, x_start: tuple[int, ...], space: ParamSpace
    ) -> Generator[tuple[int, ...], float, tuple[tuple[int, ...], float]]:
        base = x_start
        f_base = yield base
        step = self.step0
        while step >= 1.0:
            x_new, f_new = yield from self._explore(base, f_base, step, space)
            if f_new <= f_base:
                step /= 2.0
                continue
            # Pattern moves: keep extrapolating base -> x_new while the
            # extrapolated point (after its own exploration) improves.
            while True:
                pattern = space.fbnd(
                    [2 * n - b for n, b in zip(x_new, base)]
                )
                base, f_base = x_new, f_new
                if pattern == base:
                    break
                f_pattern = yield pattern
                x_exp, f_exp = yield from self._explore(
                    pattern, f_pattern, step, space
                )
                if f_exp <= f_base:
                    break
                x_new, f_new = x_exp, f_exp
        return base, f_base
