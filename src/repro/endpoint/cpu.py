"""Weighted fair-share CPU scheduling and context-switch overhead.

Two facts from the paper drive this model:

1. "While [concurrency] exploits multiple CPU cores, [parallelism] does
   not" — each transfer *process* is single-core-bound regardless of its
   thread count, so concurrency ``nc`` is the lever that claims CPU time
   back from external compute load.
2. "After the critical point ... the benefit of multiple streams is
   dominated by processing overhead due to context switching and related
   book-keeping" — total throughput is scaled by an efficiency factor that
   decays as the number of runnable entities exceeds the core count.

The scheduler is a weighted max-min fair division of ``cores`` among
schedulable *entities* (processes or threads), each with a per-entity
demand cap (a single-core-bound process can use at most 1 core however idle
the machine is).  This mirrors Linux CFS at the granularity the fluid model
needs.
"""

from __future__ import annotations

from dataclasses import dataclass

_EPS = 1e-12


@dataclass(frozen=True)
class CpuTask:
    """A group of identical schedulable entities.

    Parameters
    ----------
    name:
        Unique within one scheduling round.
    n_entities:
        Number of runnable processes/threads in the group.
    weight:
        CFS-like weight of each entity.
    demand_cores_per_entity:
        Cap on how much CPU one entity can use (1.0 = a full core).
    """

    name: str
    n_entities: int
    weight: float = 1.0
    demand_cores_per_entity: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.n_entities < 0:
            raise ValueError("n_entities must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.demand_cores_per_entity < 0:
            raise ValueError("demand must be non-negative")


def fair_shares(tasks: list[CpuTask], cores: float) -> dict[str, float]:
    """Divide ``cores`` among tasks by weighted max-min fairness.

    Each entity receives ``min(demand, weight * level)`` cores where
    ``level`` is raised until either the cores are exhausted or every
    entity's demand is met.  Returns aggregate cores per task name.

    Invariants (property-tested): shares are non-negative, sum to at most
    ``cores``, never exceed a task's total demand, and when the machine is
    oversubscribed the per-entity share per unit weight is equal across all
    tasks that are not demand-capped.
    """
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate task names: {names}")
    if cores <= 0:
        raise ValueError("cores must be positive")

    live = [t for t in tasks if t.n_entities > 0 and t.demand_cores_per_entity > 0]
    shares = {t.name: 0.0 for t in tasks}
    if not live:
        return shares

    total_demand = sum(t.n_entities * t.demand_cores_per_entity for t in live)
    if total_demand <= cores + _EPS:
        for t in live:
            shares[t.name] = t.n_entities * t.demand_cores_per_entity
        return shares

    # Oversubscribed: water-fill the fair level.  A task saturates at
    # level >= demand/weight; process candidates in that order.
    remaining = cores
    unsat = sorted(live, key=lambda t: t.demand_cores_per_entity / t.weight)
    active_weight = sum(t.n_entities * t.weight for t in unsat)
    level = 0.0
    for t in unsat:
        sat_level = t.demand_cores_per_entity / t.weight
        # Cores needed to raise every active entity to sat_level.
        needed = (sat_level - level) * active_weight
        if needed >= remaining - _EPS:
            level += remaining / active_weight
            remaining = 0.0
            break
        remaining -= needed
        level = sat_level
        shares[t.name] = t.n_entities * t.demand_cores_per_entity
        active_weight -= t.n_entities * t.weight
    # Tasks not yet demand-capped share the final level.
    for t in unsat:
        if shares[t.name] == 0.0:
            shares[t.name] = min(
                t.n_entities * t.weight * level,
                t.n_entities * t.demand_cores_per_entity,
            )
    return shares


def context_switch_efficiency(
    runnable_entities: float, cores: int, coeff: float
) -> float:
    """Throughput efficiency factor under scheduler overhead.

    With at most one runnable entity per core there is no penalty; beyond
    that, the cost grows with the *oversubscription ratio* — context
    switches per core per scheduling period — so machines of different
    sizes with the same per-core crowding lose the same fraction::

        eta = 1 / (1 + coeff * max(0, runnable / cores - 1))

    Monotonically non-increasing in ``runnable_entities``, equal to 1 up
    to ``cores``, and always in (0, 1].
    """
    if runnable_entities < 0:
        raise ValueError("runnable_entities must be non-negative")
    if cores < 1:
        raise ValueError("cores must be >= 1")
    if coeff < 0:
        raise ValueError("coeff must be non-negative")
    excess = max(0.0, runnable_entities / cores - 1.0)
    return 1.0 / (1.0 + coeff * excess)
