"""Host specifications.

The paper's testbed:

* Source at ANL: dual-socket quad-core Nehalem (Xeon E5530, 2.40 GHz,
  48 GB), 40 Gb/s NIC.
* Destination at UChicago: dual-socket 8-core Sandy Bridge (Xeon E5-2670,
  2.60 GHz, 32 GB), 40 Gb/s NIC.
* Destination at TACC (Stampede): dual-socket Sandy Bridge (Xeon E5-2680,
  2.70 GHz, 32 GB).

Only the *source* host's CPU matters in the paper's experiments (all
external load is applied at the source); destinations are modelled as
capacity-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.endpoint.memory import MemoryBus
    from repro.endpoint.numa import PinningPolicy, SocketLayout


@dataclass(frozen=True)
class HostSpec:
    """Compute capability of one endpoint.

    Parameters
    ----------
    name:
        Human-readable identifier.
    cores:
        Physical cores available to the OS scheduler.
    core_copy_rate_mbps:
        MB/s one transfer process can push using a full core (memory copy +
        syscall + TCP stack cost per byte).  This sets the CPU-limited rate:
        ``rate = cpu_share_cores * core_copy_rate_mbps``.
    cs_coeff:
        Context-switch overhead coefficient per unit of oversubscription
        ratio; see :func:`repro.endpoint.cpu.context_switch_efficiency`.
    dgemm_thread_weight:
        Scheduler weight of one dgemm thread relative to a transfer process
        (CPU-bound spinners tend to lose a little share to I/O-bound tasks
        that frequently block and get scheduling boosts).
    thread_overhead:
        Per-extra-thread efficiency penalty inside one transfer process
        (parallelism ``np`` adds threads that share the process's single
        core); fraction lost per additional thread beyond the first.
    dgemm_runnable_factor:
        Weight of one dgemm thread in the context-switch overhead count.
        CPU-bound spinners run their full quantum and context-switch far
        less often than I/O-bound transfer streams, so they contribute a
        fraction of a stream's switching cost.
    sockets:
        Optional NUMA topology (:class:`repro.endpoint.numa.SocketLayout`).
        When set, the engine scales each transfer's CPU capacity by the
        placement efficiency of its processes under ``pinning``.
    pinning:
        Placement policy used when ``sockets`` is set; default is the
        paper's alternate-socket taskset scheme.
    membus:
        Optional shared memory-bandwidth model
        (:class:`repro.endpoint.memory.MemoryBus`); when set, transfers
        are additionally capped by their bus grant against dgemm traffic.
    """

    name: str
    cores: int
    core_copy_rate_mbps: float
    cs_coeff: float = 0.010
    dgemm_thread_weight: float = 0.60
    thread_overhead: float = 0.004
    dgemm_runnable_factor: float = 0.25
    sockets: "SocketLayout | None" = None
    pinning: "PinningPolicy | None" = None
    membus: "MemoryBus | None" = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.core_copy_rate_mbps <= 0:
            raise ValueError("core_copy_rate_mbps must be positive")
        if self.cs_coeff < 0:
            raise ValueError("cs_coeff must be non-negative")
        if self.dgemm_thread_weight <= 0:
            raise ValueError("dgemm_thread_weight must be positive")
        if not 0 <= self.thread_overhead < 1:
            raise ValueError("thread_overhead must be in [0, 1)")
        if not 0 <= self.dgemm_runnable_factor <= 1:
            raise ValueError("dgemm_runnable_factor must be in [0, 1]")
        if self.pinning is not None and self.sockets is None:
            raise ValueError("pinning requires a socket layout")

    def pinning_efficiency(self, nc: int) -> float:
        """Placement multiplier for ``nc`` transfer processes (1.0 when no
        NUMA topology is modeled)."""
        if self.sockets is None:
            return 1.0
        from repro.endpoint.numa import PinnedLayout, PinningPolicy

        policy = self.pinning if self.pinning is not None else (
            PinningPolicy.ALTERNATE
        )
        return PinnedLayout(self.sockets, policy, nc).efficiency()

    def memory_cap_mbps(self, nc: int, ext_cmp: int) -> float:
        """Memory-bus rate cap for ``nc`` transfer processes against
        ``ext_cmp`` dgemm copies (+inf when no bus is modeled)."""
        if self.membus is None:
            return float("inf")
        return self.membus.transfer_cap_mbps(nc, ext_cmp * self.cores)


#: Paper's source machine at ANL (dual-socket quad-core Xeon E5530).
#: core_copy_rate / cs_coeff / dgemm_thread_weight / the memory bus are
#: calibrated against the paper's measured curves; see EXPERIMENTS.md.
def _nehalem() -> HostSpec:
    from repro.endpoint.memory import NEHALEM_BUS

    return HostSpec(
        name="nehalem-anl",
        cores=8,
        core_copy_rate_mbps=1300.0,
        cs_coeff=0.028,
        dgemm_thread_weight=0.35,
        thread_overhead=0.004,
        dgemm_runnable_factor=0.25,
        membus=NEHALEM_BUS,
    )


NEHALEM = _nehalem()

#: Destination at UChicago (dual-socket 8-core Xeon E5-2670).
SANDYBRIDGE_UC = HostSpec(
    name="sandybridge-uchicago", cores=16, core_copy_rate_mbps=1100.0
)

#: Destination at TACC Stampede (dual-socket Xeon E5-2680).
SANDYBRIDGE_TACC = HostSpec(
    name="sandybridge-tacc", cores=16, core_copy_rate_mbps=1100.0
)
