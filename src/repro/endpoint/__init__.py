"""Endpoint (host) substrate: CPU scheduling and external load.

Models the source host of a transfer:

* :mod:`repro.endpoint.host` — host specifications (cores, per-core copy
  bandwidth) with presets matching the paper's testbed machines.
* :mod:`repro.endpoint.cpu` — weighted fair-share CPU scheduler and the
  context-switch-overhead efficiency model.
* :mod:`repro.endpoint.load` — external load (``ext.cmp`` dgemm copies,
  ``ext.tfr`` competing transfer streams) and piecewise-constant schedules.
"""

from repro.endpoint.host import HostSpec, NEHALEM, SANDYBRIDGE_UC, SANDYBRIDGE_TACC
from repro.endpoint.cpu import CpuTask, fair_shares, context_switch_efficiency
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.endpoint.memory import MemoryBus, NEHALEM_BUS
from repro.endpoint.numa import PinnedLayout, PinningPolicy, SocketLayout
from repro.endpoint.workload import BurstyTraffic, DiurnalTraffic, PoissonJobMix
from repro.endpoint.cluster import striped_host, striped_nic_capacity

__all__ = [
    "HostSpec",
    "NEHALEM",
    "SANDYBRIDGE_UC",
    "SANDYBRIDGE_TACC",
    "CpuTask",
    "fair_shares",
    "context_switch_efficiency",
    "ExternalLoad",
    "LoadSchedule",
    "MemoryBus",
    "NEHALEM_BUS",
    "SocketLayout",
    "PinnedLayout",
    "PinningPolicy",
    "PoissonJobMix",
    "DiurnalTraffic",
    "BurstyTraffic",
    "striped_host",
    "striped_nic_capacity",
]
