"""Striped DTN clusters (extension; paper reference [1]).

The GridFTP framework the paper builds on is the *striped* server
(Allcock et al., SC'05): a logical endpoint backed by several data-transfer
nodes, with the transfer's processes spread across them.  Under balanced
distribution — processes round-robined over identical nodes, external
load replicated per node — the cluster is exactly equivalent to one host
with every per-node resource scaled by the stripe count:

* CPU: ``stripes × cores`` cores at the same per-core copy rate (the
  context-switch model already normalizes by core count, so balanced
  per-node scheduling and aggregate scheduling coincide);
* memory: ``stripes ×`` bus bandwidth against per-node dgemm traffic;
* NIC: each node contributes its own link (the scenario's topology must
  scale the source-NIC capacity to match).

:func:`striped_host` builds that scaled HostSpec, and
:func:`striped_nic_capacity` the matching link capacity, so a striped
scenario is three lines of configuration.
"""

from __future__ import annotations

from dataclasses import replace

from repro.endpoint.host import HostSpec
from repro.endpoint.memory import MemoryBus


def striped_host(node: HostSpec, stripes: int) -> HostSpec:
    """A logical endpoint of ``stripes`` identical ``node`` machines.

    External compute load semantics: ``ext_cmp`` copies land on *every*
    node (a site-wide analysis campaign), which the scaled host expresses
    by keeping the per-copy thread count at ``node.cores`` — i.e. the
    scaled host sees ``ext_cmp`` copies of ``stripes × node.cores``
    threads, the same per-node pressure.

    NUMA layouts do not compose across nodes and are dropped; model
    per-node pinning on the single-node HostSpec if needed.
    """
    if stripes < 1:
        raise ValueError("stripes must be >= 1")
    if stripes == 1:
        return node
    bus: MemoryBus | None = None
    if node.membus is not None:
        bus = replace(
            node.membus,
            bandwidth_mbps=node.membus.bandwidth_mbps * stripes,
        )
    return replace(
        node,
        name=f"{node.name}-x{stripes}",
        cores=node.cores * stripes,
        sockets=None,
        pinning=None,
        membus=bus,
    )


def striped_nic_capacity(node_nic_mbps: float, stripes: int) -> float:
    """Aggregate NIC capacity of a striped endpoint (one NIC per node)."""
    if node_nic_mbps <= 0:
        raise ValueError("node NIC capacity must be positive")
    if stripes < 1:
        raise ValueError("stripes must be >= 1")
    return node_nic_mbps * stripes
