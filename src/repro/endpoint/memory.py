"""Memory-bus contention model.

dgemm is not only a CPU hog: each copy streams its matrix blocks through
the memory controllers, and a memory-to-memory transfer is itself almost
pure memory traffic (read from the source buffer, write to socket
buffers, NIC DMA).  On the paper's Nehalem the two collide on the same
DDR3 channels — a second reason (besides CPU share) that the Globus
default collapses under ``ext.cmp`` while a high-``nc`` transfer, holding
more bus grant slots, claws back bandwidth.

The arbitration model mirrors the CPU scheduler: when the aggregate
demand exceeds the bus bandwidth, requesters share it in proportion to
their weights (per transfer process and per dgemm thread).  The engine
turns the transfer's grant into a rate cap via ``bytes_on_bus_per_byte``
(every payload byte crosses the bus about three times).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryBus:
    """Shared memory-bandwidth resource of one host.

    Parameters
    ----------
    bandwidth_mbps:
        Sustainable aggregate memory bandwidth in MB/s (all channels).
    bytes_on_bus_per_byte:
        Bus bytes per transferred payload byte (copy in + copy out + NIC
        DMA ≈ 3).
    dgemm_demand_mbps:
        Bus demand of one dgemm thread in MB/s (blocked GEMM is
        cache-friendly; this is the part that misses).
    dgemm_weight:
        Arbitration weight of a dgemm thread relative to a transfer
        process (transfer processes issue longer DMA bursts).
    """

    bandwidth_mbps: float = 20_000.0
    bytes_on_bus_per_byte: float = 3.0
    dgemm_demand_mbps: float = 1_000.0
    dgemm_weight: float = 0.35

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.bytes_on_bus_per_byte < 1:
            raise ValueError("bytes_on_bus_per_byte must be >= 1")
        if self.dgemm_demand_mbps < 0:
            raise ValueError("dgemm_demand_mbps must be non-negative")
        if self.dgemm_weight <= 0:
            raise ValueError("dgemm_weight must be positive")

    def transfer_cap_mbps(
        self, nc: int, dgemm_threads: int
    ) -> float:
        """Payload-rate cap of a transfer running ``nc`` processes while
        ``dgemm_threads`` compute threads stream the bus.

        The dgemm side demands ``threads * dgemm_demand``; whatever that
        leaves is available to the transfer — but never less than the
        transfer's weighted arbitration share, because a saturated bus
        still grants slots round-robin rather than starving anyone.
        """
        if nc < 1:
            raise ValueError("nc must be >= 1")
        if dgemm_threads < 0:
            raise ValueError("dgemm_threads must be non-negative")
        dgemm_demand = dgemm_threads * self.dgemm_demand_mbps
        leftover = max(0.0, self.bandwidth_mbps - dgemm_demand)
        weighted_share = self.bandwidth_mbps * nc / (
            nc + self.dgemm_weight * dgemm_threads
        )
        grant = max(leftover, weighted_share)
        return grant / self.bytes_on_bus_per_byte


#: Calibrated bus for the paper's Nehalem source (triple-channel DDR3).
NEHALEM_BUS = MemoryBus(
    bandwidth_mbps=20_000.0,
    bytes_on_bus_per_byte=3.0,
    dgemm_demand_mbps=1_000.0,
    dgemm_weight=0.35,
)
