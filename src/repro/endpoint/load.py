"""External load on the source endpoint and time-varying schedules.

The paper's controlled external load has two knobs, both applied at the
source host:

* ``ext.cmp`` — copies of a multithreaded dgemm, each configured "to
  consume all available CPU on all available cores" (i.e. one spinner
  thread per core, per copy).
* ``ext.tfr`` — a second `globus-url-copy` transfer with that many parallel
  TCP streams to the same destination, sharing the source NIC and WAN path.

Both take values in {0, 16, 32, 64} in the paper's experiments.  Section
IV-B switches the load mid-transfer, which :class:`LoadSchedule` models as
a piecewise-constant function of time.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass


@dataclass(frozen=True)
class ExternalLoad:
    """External load level at the source endpoint.

    Parameters
    ----------
    ext_cmp:
        Number of dgemm copies running on the source.
    ext_tfr:
        Number of TCP streams of the competing external transfer.
    """

    ext_cmp: int = 0
    ext_tfr: int = 0

    def __post_init__(self) -> None:
        if self.ext_cmp < 0:
            raise ValueError("ext_cmp must be non-negative")
        if self.ext_tfr < 0:
            raise ValueError("ext_tfr must be non-negative")

    def __str__(self) -> str:
        return f"ext.cmp={self.ext_cmp}, ext.tfr={self.ext_tfr}"

    def spec(self) -> str:
        """Compact load spec (``none``, ``cmp16``, ``tfr64``,
        ``cmp16+tfr64``) — the CLI/journal-header notation."""
        parts = []
        if self.ext_cmp:
            parts.append(f"cmp{self.ext_cmp}")
        if self.ext_tfr:
            parts.append(f"tfr{self.ext_tfr}")
        return "+".join(parts) if parts else "none"

    @classmethod
    def parse(cls, text: str) -> "ExternalLoad":
        """Inverse of :meth:`spec`; raises ``ValueError`` on bad input."""
        if text in ("none", ""):
            return cls()
        cmp_, tfr = 0, 0
        for part in text.split("+"):
            if part.startswith("cmp"):
                cmp_ = int(part[3:])
            elif part.startswith("tfr"):
                tfr = int(part[3:])
            else:
                raise ValueError(
                    f"bad load spec {text!r}; use e.g. 'cmp16', 'tfr64', "
                    "'cmp16+tfr64', or 'none'"
                )
        return cls(ext_cmp=cmp_, ext_tfr=tfr)


#: Convenience constant for the unloaded case.
NO_LOAD = ExternalLoad(0, 0)


class LoadSchedule:
    """Piecewise-constant external load over time.

    Built from ``(start_time, load)`` segments; the load at time ``t`` is
    that of the last segment whose start is <= t.  The first segment must
    start at t=0 so the schedule is total.

    >>> sched = LoadSchedule([(0.0, ExternalLoad(16, 64)),
    ...                       (1000.0, ExternalLoad(16, 16))])
    >>> sched.at(999.9).ext_tfr
    64
    >>> sched.at(1000.0).ext_tfr
    16
    """

    def __init__(self, segments: list[tuple[float, ExternalLoad]]):
        if not segments:
            raise ValueError("schedule needs at least one segment")
        starts = [s for s, _ in segments]
        if starts[0] != 0.0:
            raise ValueError("first segment must start at t=0")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError("segment start times must be strictly increasing")
        self._starts = starts
        self._loads = [l for _, l in segments]

    @classmethod
    def constant(cls, load: ExternalLoad) -> "LoadSchedule":
        """A schedule that never changes."""
        return cls([(0.0, load)])

    def at(self, t: float) -> ExternalLoad:
        """External load in effect at time ``t`` (seconds)."""
        if t < 0:
            raise ValueError("time must be non-negative")
        idx = bisect_right(self._starts, t) - 1
        return self._loads[idx]

    @property
    def change_times(self) -> list[float]:
        """Times (after t=0) at which the load changes."""
        return self._starts[1:]
