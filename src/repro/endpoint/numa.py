"""NUMA socket layout and process pinning (extension).

The paper pins its `globus-url-copy` copies "on alternate sockets using
the taskset system call" — on the dual-socket Nehalem source, copy *i*
runs on socket ``i % 2``.  This module models why that matters: a NIC
hangs off one socket, and a transfer process on the other socket pays a
QPI/UPI hop for every buffer it sends, while oversubscribing a single
socket queues processes behind each other.

The model yields a single multiplier,
:func:`PinnedLayout.efficiency`, composed of:

* **remote-socket penalty** — processes not on the NIC's socket move
  their payload across the interconnect (``remote_penalty`` throughput
  fraction lost);
* **socket oversubscription** — each socket serves at most its own cores;
  processes beyond that share, exactly like the host-level scheduler but
  per socket.

An ablation bench compares alternate-socket pinning (the paper's choice),
NIC-socket-first packing, and no pinning (the OS spreading processes
evenly, modeled as alternate with a small migration penalty).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class PinningPolicy(enum.Enum):
    """How transfer processes are placed on sockets."""

    ALTERNATE = "alternate"    #: copy i -> socket i % n (the paper's taskset)
    NIC_FIRST = "nic-first"    #: fill the NIC's socket, then spill over
    UNPINNED = "unpinned"      #: OS default: spread + migration churn


@dataclass(frozen=True)
class SocketLayout:
    """Physical socket topology of one host.

    Parameters
    ----------
    n_sockets:
        Number of CPU sockets.
    cores_per_socket:
        Cores on each socket.
    nic_socket:
        Socket the NIC is attached to.
    remote_penalty:
        Fraction of throughput lost per byte that crosses the
        interconnect (QPI on the paper's Nehalem).
    migration_penalty:
        Extra fraction lost by unpinned processes bouncing between
        sockets (cache/NUMA locality churn).
    """

    n_sockets: int = 2
    cores_per_socket: int = 4
    nic_socket: int = 0
    remote_penalty: float = 0.12
    migration_penalty: float = 0.05

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ValueError("n_sockets must be >= 1")
        if self.cores_per_socket < 1:
            raise ValueError("cores_per_socket must be >= 1")
        if not 0 <= self.nic_socket < self.n_sockets:
            raise ValueError("nic_socket out of range")
        if not 0 <= self.remote_penalty < 1:
            raise ValueError("remote_penalty must be in [0, 1)")
        if not 0 <= self.migration_penalty < 1:
            raise ValueError("migration_penalty must be in [0, 1)")

    @property
    def total_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket


@dataclass(frozen=True)
class PinnedLayout:
    """A placement of ``nc`` transfer processes on a socket layout."""

    layout: SocketLayout
    policy: PinningPolicy
    nc: int

    def __post_init__(self) -> None:
        if self.nc < 1:
            raise ValueError("nc must be >= 1")

    def per_socket_processes(self) -> list[int]:
        """Process count per socket under the policy."""
        lay = self.layout
        counts = [0] * lay.n_sockets
        if self.policy in (PinningPolicy.ALTERNATE, PinningPolicy.UNPINNED):
            for i in range(self.nc):
                counts[i % lay.n_sockets] += 1
        elif self.policy is PinningPolicy.NIC_FIRST:
            remaining = self.nc
            order = [lay.nic_socket] + [
                s for s in range(lay.n_sockets) if s != lay.nic_socket
            ]
            for s in order:
                take = min(remaining, lay.cores_per_socket)
                counts[s] = take
                remaining -= take
            # Spillover beyond all cores round-robins like ALTERNATE.
            i = 0
            while remaining > 0:
                counts[order[i % lay.n_sockets]] += 1
                remaining -= 1
                i += 1
        return counts

    def efficiency(self) -> float:
        """Throughput multiplier of this placement, in (0, 1].

        Averages the per-process efficiency: a process on socket ``s``
        delivers ``(1 - remote_penalty if s != nic_socket else 1)``
        scaled by its socket's oversubscription factor
        ``min(1, cores / processes_on_socket)``; unpinned placements
        additionally pay the migration penalty everywhere.
        """
        lay = self.layout
        counts = self.per_socket_processes()
        total = 0.0
        for s, n_here in enumerate(counts):
            if n_here == 0:
                continue
            locality = 1.0 if s == lay.nic_socket else 1.0 - lay.remote_penalty
            crowding = min(1.0, lay.cores_per_socket / n_here)
            total += n_here * locality * crowding
        eff = total / self.nc
        if self.policy is PinningPolicy.UNPINNED:
            eff *= 1.0 - lay.migration_penalty
        return eff

    def effective_rate_mbps(self, per_core_rate_mbps: float) -> float:
        """Aggregate CPU-side rate of the placement.

        ``min(nc, total usable cores)`` full-core process slots scaled by
        the placement efficiency.
        """
        if per_core_rate_mbps <= 0:
            raise ValueError("per_core_rate must be positive")
        slots = min(self.nc, self.layout.total_cores)
        return slots * per_core_rate_mbps * self.efficiency()


#: The paper's source host: dual-socket quad-core Nehalem.
NEHALEM_LAYOUT = SocketLayout(n_sockets=2, cores_per_socket=4, nic_socket=0)


def best_policy(
    layout: SocketLayout, nc: int
) -> tuple[PinningPolicy, float]:
    """The placement policy with the highest efficiency for ``nc``."""
    scored = [
        (PinnedLayout(layout, policy, nc).efficiency(), policy)
        for policy in PinningPolicy
    ]
    eff, policy = max(scored, key=lambda t: t[0])
    return policy, eff
