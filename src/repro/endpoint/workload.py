"""Random external-load workload generators (extension).

The paper controls ``ext.cmp``/``ext.tfr`` at a handful of fixed levels
and flips them once mid-transfer.  Production endpoints see messier
patterns: compute jobs arriving and finishing at random, diurnal traffic
swings, bursts.  These generators build such schedules as ordinary
:class:`~repro.endpoint.load.LoadSchedule` objects so any experiment can
swap them in — the robustness bench races the tuners across a population
of random workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.endpoint.load import ExternalLoad, LoadSchedule


@dataclass(frozen=True)
class PoissonJobMix:
    """Memoryless compute-job arrivals on the source host.

    Jobs arrive at rate ``arrival_per_hour`` and hold for an exponential
    duration with mean ``mean_duration_s``; each job contributes one
    dgemm-equivalent copy of load.  The resulting ``ext.cmp(t)`` is an
    M/M/∞ occupancy process.

    Parameters
    ----------
    arrival_per_hour:
        Mean job arrivals per hour.
    mean_duration_s:
        Mean job runtime.
    max_jobs:
        Hard cap on concurrent jobs (batch-queue width).
    """

    arrival_per_hour: float = 8.0
    mean_duration_s: float = 600.0
    max_jobs: int = 64

    def __post_init__(self) -> None:
        if self.arrival_per_hour < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.mean_duration_s <= 0:
            raise ValueError("mean duration must be positive")
        if self.max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")

    def schedule(
        self, duration_s: float, rng: np.random.Generator
    ) -> LoadSchedule:
        """Sample one workload realization covering [0, duration_s]."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        events: list[tuple[float, int]] = []  # (time, +1/-1)
        t = 0.0
        rate_per_s = self.arrival_per_hour / 3600.0
        if rate_per_s > 0:
            while True:
                t += float(rng.exponential(1.0 / rate_per_s))
                if t >= duration_s:
                    break
                end = t + float(rng.exponential(self.mean_duration_s))
                events.append((t, +1))
                if end < duration_s:
                    events.append((end, -1))
        events.sort()
        segments: list[tuple[float, ExternalLoad]] = [(0.0, ExternalLoad())]
        jobs = 0
        last_t = 0.0
        for when, delta in events:
            jobs = min(max(0, jobs + delta), self.max_jobs)
            if when > last_t:
                segments.append((when, ExternalLoad(ext_cmp=jobs)))
                last_t = when
            else:
                # Coincident events: overwrite the previous segment level.
                segments[-1] = (last_t, ExternalLoad(ext_cmp=jobs))
        return LoadSchedule(_dedupe(segments))


@dataclass(frozen=True)
class DiurnalTraffic:
    """Sinusoidal external-transfer traffic with noise.

    External stream count follows a day-night cycle:
    ``base + amplitude * (1 + sin) / 2`` plus integer noise, quantized
    into steps of ``step_s`` seconds.
    """

    base_streams: int = 8
    amplitude_streams: int = 48
    period_s: float = 86_400.0
    step_s: float = 300.0
    noise_streams: float = 4.0

    def __post_init__(self) -> None:
        if self.base_streams < 0 or self.amplitude_streams < 0:
            raise ValueError("stream counts must be non-negative")
        if self.period_s <= 0 or self.step_s <= 0:
            raise ValueError("period and step must be positive")
        if self.noise_streams < 0:
            raise ValueError("noise must be non-negative")

    def schedule(
        self, duration_s: float, rng: np.random.Generator
    ) -> LoadSchedule:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        times = np.arange(0.0, duration_s, self.step_s)
        phase = 2.0 * np.pi * times / self.period_s
        level = (
            self.base_streams
            + self.amplitude_streams * (1.0 + np.sin(phase)) / 2.0
            + rng.normal(0.0, self.noise_streams, size=times.size)
        )
        streams = np.clip(np.round(level), 0, None).astype(int)
        segments = [
            (float(t), ExternalLoad(ext_tfr=int(s)))
            for t, s in zip(times, streams)
        ]
        return LoadSchedule(_dedupe(segments))


@dataclass(frozen=True)
class BurstyTraffic:
    """On/off traffic bursts (heavy flows that come and go).

    Alternates quiet periods (exponential, mean ``mean_quiet_s``) with
    bursts of ``burst_streams`` external streams (exponential, mean
    ``mean_burst_s``).
    """

    burst_streams: int = 64
    mean_quiet_s: float = 300.0
    mean_burst_s: float = 120.0

    def __post_init__(self) -> None:
        if self.burst_streams < 1:
            raise ValueError("burst_streams must be >= 1")
        if self.mean_quiet_s <= 0 or self.mean_burst_s <= 0:
            raise ValueError("means must be positive")

    def schedule(
        self, duration_s: float, rng: np.random.Generator
    ) -> LoadSchedule:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        segments: list[tuple[float, ExternalLoad]] = [(0.0, ExternalLoad())]
        t = 0.0
        bursting = False
        while t < duration_s:
            hold = float(
                rng.exponential(
                    self.mean_burst_s if bursting else self.mean_quiet_s
                )
            )
            t += max(hold, 1.0)
            if t >= duration_s:
                break
            bursting = not bursting
            segments.append(
                (t, ExternalLoad(ext_tfr=self.burst_streams if bursting else 0))
            )
        return LoadSchedule(_dedupe(segments))


def _dedupe(
    segments: list[tuple[float, ExternalLoad]]
) -> list[tuple[float, ExternalLoad]]:
    """Drop segments that repeat the previous level (keeps schedules
    minimal and start times strictly increasing)."""
    out: list[tuple[float, ExternalLoad]] = []
    for when, load in segments:
        if out and out[-1][1] == load:
            continue
        if out and when <= out[-1][0]:
            out[-1] = (out[-1][0], load)
            continue
        out.append((when, load))
    return out
