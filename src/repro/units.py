"""Unit conversions and physical constants used throughout the library.

The paper reports link capacities in Gb/s and throughputs in MB/s.  All
internal rates in this library are expressed in **MB/s** (decimal megabytes,
1 MB = 1e6 bytes) and all sizes in **bytes** unless a name says otherwise.
Times are in **seconds**.
"""

from __future__ import annotations

#: Bytes per (decimal) megabyte.
MB = 1_000_000
#: Bytes per (decimal) gigabyte.
GB = 1_000_000_000
#: Bytes per (decimal) terabyte.
TB = 1_000_000_000_000

#: Bits per byte.
BITS_PER_BYTE = 8

#: Default TCP maximum segment size in bytes (Ethernet MTU minus headers).
DEFAULT_MSS = 1460

#: Seconds per minute, for readability of scenario definitions.
MINUTE = 60.0


def gbps_to_mbps(gbps: float) -> float:
    """Convert a link rate in Gb/s (bits) to MB/s (bytes).

    >>> gbps_to_mbps(40.0)
    5000.0
    """
    return gbps * 1000.0 / BITS_PER_BYTE


def mbps_to_gbps(mbps: float) -> float:
    """Convert MB/s (bytes) to Gb/s (bits).

    >>> mbps_to_gbps(5000.0)
    40.0
    """
    return mbps * BITS_PER_BYTE / 1000.0


def mb_per_s_to_bytes_per_s(mbps: float) -> float:
    """Convert MB/s to bytes/s."""
    return mbps * MB


def bytes_to_mb(nbytes: float) -> float:
    """Convert a byte count to (decimal) megabytes."""
    return nbytes / MB


def ms_to_s(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1000.0
