"""Analysis utilities: boxplot statistics, steady-state detection,
improvement factors, and regret/convergence metrics."""

from repro.analysis.stats import (
    BoxStats,
    box_stats,
    steady_state_mean,
    time_to_steady_state,
    improvement_factor,
)
from repro.analysis.surface import (
    LuFit,
    CriticalPointEstimate,
    fit_lu_model,
    critical_point,
    unimodality_score,
)
from repro.analysis.convergence import (
    cumulative_bytes,
    regret_curve,
    regret_fraction,
    search_cost_bytes,
    epochs_to_fraction_of_oracle,
)

__all__ = [
    "BoxStats",
    "box_stats",
    "steady_state_mean",
    "time_to_steady_state",
    "improvement_factor",
    "cumulative_bytes",
    "regret_curve",
    "regret_fraction",
    "search_cost_bytes",
    "epochs_to_fraction_of_oracle",
    "LuFit",
    "CriticalPointEstimate",
    "fit_lu_model",
    "critical_point",
    "unimodality_score",
]
