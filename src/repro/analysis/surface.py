"""Response-surface characterization.

The paper's whole premise is the shape of throughput-vs-streams: unimodal
with a load-dependent critical point.  This module turns measured sweeps
into that characterization:

* :func:`fit_lu_model` — least-squares fit of the Lu/Yildirim curve
  ``T(n) = n / sqrt(a n² + b n + c)`` to any number of samples (the
  three-point special case lives in :mod:`repro.core.model_based`);
* :func:`critical_point` — the fitted optimum with a bootstrap confidence
  interval;
* :func:`unimodality_score` — how unimodal a measured sweep actually is
  (1.0 = perfectly unimodal), quantifying when direct search's core
  assumption holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LuFit:
    """Fitted coefficients of ``T(n) = n / sqrt(a n² + b n + c)``."""

    a: float
    b: float
    c: float
    residual: float  #: RMS error of the fit in throughput units

    def predict(self, n: np.ndarray | float) -> np.ndarray | float:
        n = np.asarray(n, dtype=float)
        denom = self.a * n * n + self.b * n + self.c
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(denom > 0, n / np.sqrt(np.abs(denom) + 1e-300), 0.0)
        return out if out.shape else float(out)

    @property
    def optimum(self) -> float | None:
        """Interior maximizer ``n* = -2c/b``, or None if none exists.

        ``b`` within numerical noise of zero (relative to the other
        coefficients) counts as "no interior maximum" — the fit of a
        monotone surface produces exactly that.
        """
        tol = 1e-9 * (abs(self.a) + abs(self.c) + 1.0)
        if self.b >= -tol or self.c <= 0:
            return None
        return -2.0 * self.c / self.b


def fit_lu_model(
    ns: Sequence[float], ts: Sequence[float]
) -> LuFit:
    """Least-squares fit of the Lu model to (streams, throughput) samples.

    The substitution ``y = n²/T²`` makes the model linear in (a, b, c);
    the fit is ordinary least squares on that linearization.  Requires at
    least three samples with positive throughput.
    """
    ns_arr = np.asarray(ns, dtype=float)
    ts_arr = np.asarray(ts, dtype=float)
    if ns_arr.shape != ts_arr.shape or ns_arr.size < 3:
        raise ValueError("need >= 3 paired samples")
    if np.any(ts_arr <= 0) or np.any(ns_arr <= 0):
        raise ValueError("samples must be positive")
    design = np.column_stack([ns_arr**2, ns_arr, np.ones_like(ns_arr)])
    y = ns_arr**2 / ts_arr**2
    coeff, *_ = np.linalg.lstsq(design, y, rcond=None)
    fit = LuFit(a=float(coeff[0]), b=float(coeff[1]), c=float(coeff[2]),
                residual=0.0)
    resid = float(np.sqrt(np.mean((fit.predict(ns_arr) - ts_arr) ** 2)))
    return LuFit(a=fit.a, b=fit.b, c=fit.c, residual=resid)


@dataclass(frozen=True)
class CriticalPointEstimate:
    """Fitted critical stream count with a bootstrap CI."""

    point: float
    ci_low: float
    ci_high: float
    n_boot: int


def critical_point(
    ns: Sequence[float],
    ts: Sequence[float],
    *,
    n_boot: int = 200,
    seed: int = 0,
    ci: float = 0.95,
) -> CriticalPointEstimate:
    """Fitted optimum with a resampling confidence interval.

    Bootstraps the samples (with replacement) and refits; replicates
    whose fit has no interior optimum fall back to the best sampled n.
    """
    if not 0 < ci < 1:
        raise ValueError("ci must be in (0, 1)")
    if n_boot < 1:
        raise ValueError("n_boot must be >= 1")
    ns_arr = np.asarray(ns, dtype=float)
    ts_arr = np.asarray(ts, dtype=float)

    def estimate(idx: np.ndarray) -> float:
        sub_n, sub_t = ns_arr[idx], ts_arr[idx]
        if len(np.unique(sub_n)) < 3:
            return float(sub_n[np.argmax(sub_t)])
        fit = fit_lu_model(sub_n, sub_t)
        opt = fit.optimum
        if opt is None or not np.isfinite(opt) or opt <= 0:
            return float(sub_n[np.argmax(sub_t)])
        return float(np.clip(opt, ns_arr.min(), ns_arr.max()))

    base = estimate(np.arange(ns_arr.size))
    rng = np.random.default_rng(seed)
    boots = np.array([
        estimate(rng.integers(0, ns_arr.size, size=ns_arr.size))
        for _ in range(n_boot)
    ])
    alpha = (1.0 - ci) / 2.0
    lo, hi = np.quantile(boots, [alpha, 1.0 - alpha])
    return CriticalPointEstimate(
        point=base, ci_low=float(lo), ci_high=float(hi), n_boot=n_boot
    )


def unimodality_score(ts: Sequence[float]) -> float:
    """How unimodal a sweep is, in [0, 1].

    Computes the fraction of the total variation explained by the best
    rise-then-fall (unimodal) envelope: 1.0 means the samples are exactly
    non-decreasing up to some peak and non-increasing after it; noisy or
    multi-modal sweeps score lower.
    """
    t = np.asarray(ts, dtype=float)
    if t.size < 3:
        raise ValueError("need >= 3 samples")
    best_err = np.inf
    for peak in range(t.size):
        # Isotonic-lite: cummax up to the peak, reversed cummax after.
        up = np.maximum.accumulate(t[: peak + 1])
        down = np.maximum.accumulate(t[peak:][::-1])[::-1]
        envelope = np.concatenate([up, down[1:]])
        err = float(np.sum(np.abs(envelope - t)))
        best_err = min(best_err, err)
    total = float(np.sum(np.abs(t - t.mean()))) or 1.0
    return max(0.0, 1.0 - best_err / total)
