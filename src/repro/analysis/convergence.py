"""Convergence and regret metrics for tuner runs.

The paper evaluates tuners by their steady-state throughput and by how
long they take to get there ("cs-tuner and nm-tuner take 500 s to reach
steady-state throughput").  These metrics formalize both against an
oracle reference (the best static setting, from
:mod:`repro.experiments.oracle`):

* **cumulative regret** — bytes the run left on the table relative to a
  transfer that ran at the oracle rate from t=0;
* **regret fraction** — that loss as a fraction of the oracle's volume;
* **search cost** — bytes lost specifically during the search transient.
"""

from __future__ import annotations

import numpy as np

from repro.sim.trace import Trace
from repro.units import MB


def cumulative_bytes(trace: Trace) -> np.ndarray:
    """Cumulative bytes moved at the end of each epoch."""
    if not trace.epochs:
        raise ValueError("trace has no epochs")
    return np.cumsum([e.bytes_moved for e in trace.epochs])


def regret_curve(trace: Trace, oracle_mbps: float) -> np.ndarray:
    """Cumulative regret (bytes) vs the oracle rate, per epoch end.

    ``regret[k] = oracle_rate * t_k - bytes(t_k)``, clipped at zero (a
    run can transiently beat a noisy oracle estimate).
    """
    if oracle_mbps <= 0:
        raise ValueError("oracle rate must be positive")
    moved = cumulative_bytes(trace)
    t = np.cumsum([e.duration for e in trace.epochs])
    ideal = oracle_mbps * MB * t
    return np.maximum(0.0, ideal - moved)


def regret_fraction(trace: Trace, oracle_mbps: float) -> float:
    """Final cumulative regret as a fraction of the oracle's volume."""
    curve = regret_curve(trace, oracle_mbps)
    total_t = sum(e.duration for e in trace.epochs)
    ideal = oracle_mbps * MB * total_t
    return float(curve[-1] / ideal)


def search_cost_bytes(trace: Trace, *, tail_fraction: float = 0.5) -> float:
    """Bytes lost to the search transient.

    Compares each epoch against the run's own steady-state level (the
    tail mean) and sums the shortfall of the below-steady epochs — the
    price paid for exploring before settling.
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must be in (0, 1]")
    if not trace.epochs:
        raise ValueError("trace has no epochs")
    observed = trace.epoch_observed()
    start = int(np.floor(observed.size * (1.0 - tail_fraction)))
    steady = float(observed[start:].mean())
    shortfall = 0.0
    for e in trace.epochs:
        if e.observed < steady:
            shortfall += (steady - e.observed) * MB * e.duration
    return shortfall


def epochs_to_fraction_of_oracle(
    trace: Trace, oracle_mbps: float, *, fraction: float = 0.8
) -> int | None:
    """Index of the first epoch reaching ``fraction`` of the oracle rate,
    or None if never reached."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if oracle_mbps <= 0:
        raise ValueError("oracle rate must be positive")
    target = fraction * oracle_mbps
    for i, e in enumerate(trace.epochs):
        if e.observed >= target:
            return i
    return None
