"""Statistics used to summarize experiment traces.

The paper reports boxplot statistics (Fig. 1), steady-state throughputs
("cs-tuner and nm-tuner take 500 s to reach steady-state throughput"), and
improvement factors over the default ("up to 10x").  This module computes
exactly those quantities from arrays or traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.trace import Trace


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus the mean (Tukey boxplot statistics)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def box_stats(samples: Sequence[float]) -> BoxStats:
    """Boxplot summary of a sample set (requires at least one sample)."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    if np.any(np.isnan(arr)):
        raise ValueError("samples contain NaN")
    q1, med, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    return BoxStats(
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
    )


def steady_state_mean(
    trace: Trace, *, tail_fraction: float = 0.5, best_case: bool = False
) -> float:
    """Mean epoch throughput over the trailing ``tail_fraction`` of epochs.

    The leading epochs are the tuner's search transient; the paper's
    "steady-state throughput" statements refer to the level after
    convergence.
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must be in (0, 1]")
    values = trace.epoch_best_case() if best_case else trace.epoch_observed()
    if values.size == 0:
        raise ValueError("trace has no epochs")
    start = int(np.floor(values.size * (1.0 - tail_fraction)))
    return float(values[start:].mean())


def time_to_steady_state(
    trace: Trace, *, tolerance_pct: float = 10.0, tail_fraction: float = 0.5
) -> float:
    """Seconds until throughput first enters (and the epoch average of the
    remaining run stays within) ``tolerance_pct`` of the steady level.

    Returns the start time of the first epoch whose observed throughput is
    within the tolerance band around the steady-state mean.
    """
    if tolerance_pct <= 0:
        raise ValueError("tolerance_pct must be positive")
    level = steady_state_mean(trace, tail_fraction=tail_fraction)
    band = abs(level) * tolerance_pct / 100.0
    for rec in trace.epochs:
        if abs(rec.observed - level) <= band:
            return rec.start
    return trace.epochs[-1].start


def improvement_factor(
    tuned: Trace,
    baseline: Trace,
    *,
    tail_fraction: float = 0.5,
    best_case: bool = False,
) -> float:
    """Steady-state throughput ratio tuned / baseline (the paper's "Nx")."""
    base = steady_state_mean(
        baseline, tail_fraction=tail_fraction, best_case=best_case
    )
    if base <= 0:
        raise ValueError("baseline steady-state throughput is zero")
    return (
        steady_state_mean(tuned, tail_fraction=tail_fraction, best_case=best_case)
        / base
    )
