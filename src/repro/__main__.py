"""``python -m repro`` entry point."""

import sys

from repro.cli import _main_console

sys.exit(_main_console())
