"""Single-file shared cache backend on sqlite3.

One ``sqlite://PATH`` store can be shared by every worker on a machine
(or an NFS-free shared filesystem): WAL journaling gives readers a
consistent snapshot while one writer commits, and ``INSERT OR IGNORE``
makes :meth:`put_if_absent` genuinely atomic instead of the generic
check-then-put.  Connections are per-thread (sqlite3 objects are not
thread-safe by default) and lazy — constructing the backend, or reading
from a path that was never populated, creates nothing on disk, matching
the directory store's "construction has no side effects" contract.

Concurrency posture: ``busy_timeout`` makes writers queue politely
behind each other instead of failing fast; ``synchronous=NORMAL`` under
WAL keeps commits durable-enough for a cache (a lost entry is a miss,
never corruption).  Errors from a sick database file surface as
:class:`sqlite3.Error` and are translated into misses by the resilience
wrapper above this layer.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path
from typing import Iterable

from repro.cache.backend import (
    CacheBackend,
    CacheEntryInfo,
    validate_key,
)

__all__ = ["SqliteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key   TEXT PRIMARY KEY,
    data  BLOB NOT NULL,
    size  INTEGER NOT NULL,
    mtime REAL NOT NULL
)
"""

#: Keys per ``IN (...)`` chunk — far below sqlite's 999-parameter floor.
_CHUNK = 400


class SqliteBackend(CacheBackend):
    """Content-addressed store in one sqlite database file."""

    scheme = "sqlite"

    def __init__(self, path: str | Path, *, busy_timeout_s: float = 5.0) -> None:
        self.path = Path(path)
        self.busy_timeout_s = float(busy_timeout_s)
        self._local = threading.local()
        # Injectable for deterministic mtimes in tests.
        self._now = time.time

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"SqliteBackend({str(self.path)!r})"

    @property
    def url(self) -> str:
        return f"sqlite://{self.path}"

    # -- connections -----------------------------------------------------

    def _connect(self, *, create: bool) -> sqlite3.Connection | None:
        """The thread's connection, opening (and optionally creating the
        database) on first use.  Read paths pass ``create=False`` so a
        never-populated store stays absent from disk."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        if not create and not self.path.exists():
            return None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=self.busy_timeout_s)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}"
            )
            conn.execute(_SCHEMA)
            conn.commit()
        except sqlite3.Error:
            conn.close()
            raise
        self._local.conn = conn
        return conn

    # -- data plane ------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        conn = self._connect(create=False)
        if conn is None:
            return None
        row = conn.execute(
            "SELECT data FROM entries WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else bytes(row[0])

    def get_many(self, keys: Iterable[str]) -> dict[str, bytes]:
        keys = list(keys)
        conn = self._connect(create=False)
        if conn is None or not keys:
            return {}
        out: dict[str, bytes] = {}
        for i in range(0, len(keys), _CHUNK):
            chunk = keys[i : i + _CHUNK]
            marks = ",".join("?" * len(chunk))
            rows = conn.execute(
                f"SELECT key, data FROM entries WHERE key IN ({marks})",
                chunk,
            ).fetchall()
            out.update({k: bytes(d) for k, d in rows})
        return out

    def put(self, key: str, data: bytes) -> None:
        validate_key(key)
        conn = self._connect(create=True)
        conn.execute(
            "INSERT INTO entries (key, data, size, mtime) "
            "VALUES (?, ?, ?, ?) "
            "ON CONFLICT(key) DO UPDATE SET "
            "data=excluded.data, size=excluded.size, mtime=excluded.mtime",
            (key, sqlite3.Binary(data), len(data), float(self._now())),
        )
        conn.commit()
        return None

    def put_if_absent(self, key: str, data: bytes) -> bool:
        validate_key(key)
        conn = self._connect(create=True)
        cur = conn.execute(
            "INSERT OR IGNORE INTO entries (key, data, size, mtime) "
            "VALUES (?, ?, ?, ?)",
            (key, sqlite3.Binary(data), len(data), float(self._now())),
        )
        conn.commit()
        return cur.rowcount > 0

    # -- metadata plane ----------------------------------------------------

    def stat(self, key: str) -> CacheEntryInfo | None:
        conn = self._connect(create=False)
        if conn is None:
            return None
        row = conn.execute(
            "SELECT size, mtime FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return CacheEntryInfo(key=key, path=None, size_bytes=int(row[0]),
                              mtime=float(row[1]))

    def stat_many(self, keys: Iterable[str]) -> set[str]:
        keys = list(keys)
        conn = self._connect(create=False)
        if conn is None or not keys:
            return set()
        present: set[str] = set()
        for i in range(0, len(keys), _CHUNK):
            chunk = keys[i : i + _CHUNK]
            marks = ",".join("?" * len(chunk))
            rows = conn.execute(
                f"SELECT key FROM entries WHERE key IN ({marks})", chunk
            ).fetchall()
            present.update(k for (k,) in rows)
        return present

    def entries(self) -> list[CacheEntryInfo]:
        conn = self._connect(create=False)
        if conn is None:
            return []
        rows = conn.execute(
            "SELECT key, size, mtime FROM entries ORDER BY mtime, key"
        ).fetchall()
        return [
            CacheEntryInfo(key=k, path=None, size_bytes=int(s),
                           mtime=float(m))
            for k, s, m in rows
        ]

    def delete(self, key: str) -> bool:
        conn = self._connect(create=False)
        if conn is None:
            return False
        cur = conn.execute("DELETE FROM entries WHERE key = ?", (key,))
        conn.commit()
        return cur.rowcount > 0

    # -- health / lifecycle ------------------------------------------------

    def health(self) -> dict:
        conn = self._connect(create=False)
        if conn is None:
            return {"scheme": self.scheme, "url": self.url,
                    "entries": 0, "total_bytes": 0}
        count, total = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM entries"
        ).fetchone()
        return {
            "scheme": self.scheme,
            "url": self.url,
            "entries": int(count),
            "total_bytes": int(total),
        }

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None
