"""Observability replay for cache hits.

A cache hit skips the engine, but an instrumented caller still expects
the run's telemetry.  The journal-resume path already defines what a
reconstructed stream looks like: the replayable event subsequence of
:func:`repro.obs.events.events_from_records` (``BreakerTransition`` /
``FaultInjected`` / ``EpochEnd``), float-exact against a live run's
emissions for the same epochs.  Cache hits reuse exactly that contract,
and feed the same per-epoch metrics a live run would
(:func:`repro.obs.instrument.publish_epoch_record`), so counters and
histograms agree whether a trace was simulated or served.

Engine-internal events that are not derivable from records alone
(``EpochStart``, tuner proposal/accept/reject, spans) are not replayed
— the same contract resume follows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instrument import Instrumentation

__all__ = ["replay_traces"]


def replay_traces(
    obs: "Instrumentation | None", traces: dict[str, Trace]
) -> None:
    """Publish cached traces' reconstructed events and epoch metrics."""
    if obs is None or not obs.active:
        return
    from repro.obs.bus import NULL_BUS, NullBus
    from repro.obs.events import events_from_records
    from repro.obs.instrument import Instrumentation, publish_epoch_record

    if not isinstance(obs.bus, NullBus):
        for name in sorted(traces):
            for event in events_from_records(name, traces[name].epochs):
                obs.bus.emit(event)
    if obs.metrics is not None:
        # Metrics only: the events above already went out once.
        metrics_only = Instrumentation(bus=NULL_BUS, metrics=obs.metrics)
        for name in sorted(traces):
            for rec in traces[name].epochs:
                publish_epoch_record(metrics_only, name, rec)
