"""On-disk content-addressed result store.

Entries live under ``<root>/v<schema>/<key[:2]>/<key>.json`` — one JSON
document per run, fanned out over 256 prefix directories so a large
cache never piles tens of thousands of files into one directory.

Write discipline matches :func:`repro.sim.traceio.atomic_write_text`
(temp file + fsync + ``os.replace``): a process killed mid-``put`` can
never leave a torn entry at the final path.  Read discipline is the
mirror image: anything wrong with an entry — missing, truncated,
invalid JSON, wrong embedded key, wrong format — is a *miss*, never an
exception.  A damaged cache costs a re-simulation, not a crash.

Hit/miss/byte counts accumulate on the store object and, when a
:class:`~repro.obs.metrics.MetricsRegistry` is bound, into
``repro_cache_hits_total`` / ``repro_cache_misses_total`` /
``repro_cache_read_bytes_total`` / ``repro_cache_written_bytes_total``
counters so the cache shows up next to the rest of the telemetry.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.cache.keys import CACHE_SCHEMA_VERSION
from repro.sim.trace import StepRecord, Trace
from repro.sim.traceio import (
    atomic_write_text,
    epoch_from_dict,
    epoch_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["RunCache", "CacheStats", "CacheEntryInfo"]

#: Entry-file format tag (inside each JSON document).
ENTRY_FORMAT = 1

_KEY_HEX_LEN = 64


@dataclass(frozen=True)
class CacheEntryInfo:
    """One entry as seen by ``ls``/``prune``."""

    key: str
    path: Path
    size_bytes: int
    mtime: float


@dataclass(frozen=True)
class CacheStats:
    """Store-level totals: on-disk state plus this process's traffic."""

    entries: int
    total_bytes: int
    hits: int
    misses: int
    read_bytes: int
    written_bytes: int


class RunCache:
    """Content-addressed run-result cache rooted at ``root``.

    The directory is created lazily on first write, so constructing a
    cache (e.g. to report stats on a path that was never populated) has
    no filesystem side effects.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.read_bytes = 0
        self.written_bytes = 0
        self._metrics: "MetricsRegistry | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"RunCache({str(self.root)!r})"

    # -- metrics -------------------------------------------------------

    def bind_metrics(self, registry: "MetricsRegistry | None") -> "RunCache":
        """Mirror hit/miss/byte counts into ``repro_cache_*`` counters."""
        self._metrics = registry
        return self

    def _count(self, *, hit: bool, nbytes: int = 0) -> None:
        if hit:
            self.hits += 1
            self.read_bytes += nbytes
        else:
            self.misses += 1
        if self._metrics is not None:
            name = "repro_cache_hits_total" if hit else "repro_cache_misses_total"
            self._metrics.counter(name).inc()
            if hit and nbytes:
                self._metrics.counter(
                    "repro_cache_read_bytes_total"
                ).inc(nbytes)

    def _count_write(self, nbytes: int) -> None:
        self.written_bytes += nbytes
        if self._metrics is not None:
            self._metrics.counter("repro_cache_written_bytes_total").inc(
                nbytes
            )

    # -- paths ---------------------------------------------------------

    @property
    def _version_dir(self) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    def _entry_path(self, key: str) -> Path:
        if len(key) != _KEY_HEX_LEN or any(
            c not in "0123456789abcdef" for c in key
        ):
            raise ValueError(f"malformed cache key {key!r}")
        return self._version_dir / key[:2] / f"{key}.json"

    # -- get/put -------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The entry payload for ``key``, or None (any damage = miss)."""
        path = self._entry_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            # Missing entry, missing prefix dir, permission trouble,
            # mid-replace race: all of them are just misses.
            self._count(hit=False)
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            self._count(hit=False)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != ENTRY_FORMAT
            or entry.get("key") != key
            or "payload" not in entry
        ):
            self._count(hit=False)
            return None
        self._count(hit=True, nbytes=len(text.encode("utf-8")))
        return entry["payload"]

    def put(
        self, key: str, payload: dict, *, meta: dict | None = None
    ) -> Path:
        """Atomically persist ``payload`` under ``key``; returns the path."""
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(
            {
                "format": ENTRY_FORMAT,
                "key": key,
                "meta": meta or {},
                "payload": payload,
            },
            sort_keys=True,
        )
        atomic_write_text(path, text)
        self._count_write(len(text.encode("utf-8")))
        return path

    # -- trace-shaped convenience --------------------------------------

    def get_traces(self, key: str) -> dict[str, Trace] | None:
        """Cached traces for a run key, or None on any kind of miss.

        Deserialization failures (an entry written by a future trace
        format, hand-edited files) degrade to misses like everything
        else.
        """
        payload = self.get(key)
        if payload is None:
            return None
        traces = payload.get("traces")
        if not isinstance(traces, dict) or not traces:
            return None
        out: dict[str, Trace] = {}
        for name, data in traces.items():
            try:
                out[name] = _trace_from_entry(data)
            except (ValueError, KeyError, TypeError):
                return None
        return out

    def put_traces(
        self,
        key: str,
        traces: dict[str, Trace],
        *,
        meta: dict | None = None,
    ) -> Path:
        return self.put(
            key,
            {"traces": {n: _trace_to_entry(t) for n, t in traces.items()}},
            meta=meta,
        )

    # -- management ----------------------------------------------------

    def _iter_entries(self) -> Iterator[CacheEntryInfo]:
        if not self._version_dir.is_dir():
            return
        for path in sorted(self._version_dir.glob("??/*.json")):
            try:
                st = path.stat()
            except OSError:
                continue
            yield CacheEntryInfo(
                key=path.stem, path=path, size_bytes=st.st_size,
                mtime=st.st_mtime,
            )

    def entries(self) -> list[CacheEntryInfo]:
        """All entries, oldest first (the eviction order)."""
        return sorted(self._iter_entries(), key=lambda e: (e.mtime, e.key))

    def stats(self) -> CacheStats:
        infos = list(self._iter_entries())
        return CacheStats(
            entries=len(infos),
            total_bytes=sum(e.size_bytes for e in infos),
            hits=self.hits,
            misses=self.misses,
            read_bytes=self.read_bytes,
            written_bytes=self.written_bytes,
        )

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for info in self._iter_entries():
            try:
                info.path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_bytes: int) -> list[str]:
        """Evict oldest-first until the store fits ``max_bytes``.

        Returns the evicted keys.  ``max_bytes=0`` empties the store.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        infos = self.entries()
        total = sum(e.size_bytes for e in infos)
        evicted: list[str] = []
        for info in infos:
            if total <= max_bytes:
                break
            try:
                info.path.unlink()
            except OSError:
                continue
            total -= info.size_bytes
            evicted.append(info.key)
        return evicted


def payload_meta(**kwargs: Any) -> dict:
    """Human-oriented entry metadata (never part of the key)."""
    return {k: v for k, v in kwargs.items() if v is not None}


# -- entry trace codec -------------------------------------------------------
#
# Entries store step records *columnar* (one flat array per field)
# instead of the row-shaped ``trace_to_dict`` layout: a hit must decode
# thousands of per-step rows, and flat arrays parse and rebuild several
# times faster than a dict per step.  Floats pass through JSON's repr
# round-trip untouched either way, so hits stay bit-identical.  Epochs
# are few and keep the shared row codec from :mod:`repro.sim.traceio`.


def _trace_to_entry(trace: Trace) -> dict:
    steps = trace.steps
    return {
        "label": trace.label,
        "epochs": [epoch_to_dict(e) for e in trace.epochs],
        "steps": {
            "time": [s.time for s in steps],
            "rate": [s.rate for s in steps],
            "restarting": [1 if s.restarting else 0 for s in steps],
            "bytes_moved": [s.bytes_moved for s in steps],
        },
    }


def _trace_from_entry(data: dict) -> Trace:
    cols = data["steps"]
    trace = Trace(label=str(data["label"]))
    trace.steps.extend(
        StepRecord(time=t, rate=r, restarting=bool(g), bytes_moved=b)
        for t, r, g, b in zip(
            cols["time"], cols["rate"], cols["restarting"],
            cols["bytes_moved"], strict=True,
        )
    )
    for e in data["epochs"]:
        trace.add_epoch(epoch_from_dict(e))
    return trace
