"""Content-addressed result store over a pluggable byte backend.

:class:`RunCache` owns everything *format-shaped* — the entry JSON
document, the columnar trace codec, key validation, hit/miss/byte
accounting — and delegates byte durability to a
:class:`~repro.cache.backend.CacheBackend` selected by URL scheme
(:func:`~repro.cache.backend.backend_from_url`): a local directory
(``dir://`` / bare path), one shared sqlite file (``sqlite://``), or a
``repro cache serve`` HTTP store (``http://``).  Every backend built
that way is wrapped in the never-raise resilience stack
(:mod:`repro.cache.resilience`), so the founding contract holds across
all of them: anything wrong with an entry — missing, truncated, invalid
JSON, wrong embedded key, wrong format, a backend that is slow, flaky,
or down — is a *miss*, never an exception.  A damaged or unreachable
cache costs a re-simulation, not a crash.

Hit/miss/byte counts accumulate on the store object and, when a
:class:`~repro.obs.metrics.MetricsRegistry` is bound, into
``repro_cache_hits_total`` / ``repro_cache_misses_total`` /
``repro_cache_read_bytes_total`` / ``repro_cache_written_bytes_total``
counters; backend-level armor adds ``repro_cache_backend_*`` counters
next to them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.cache.backend import (
    DEFAULT_PRUNE_GRACE_S,
    CacheBackend,
    CacheEntryInfo,
    DirBackend,
    backend_from_url,
    validate_key,
)
from repro.sim.trace import StepRecord, Trace
from repro.sim.traceio import epoch_from_dict, epoch_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.bus import EventBus
    from repro.obs.metrics import MetricsRegistry

__all__ = ["RunCache", "CacheStats", "CacheEntryInfo"]

#: Entry-file format tag.  v2 restructured the entry into two lines —
#: a small header document (format, key, meta, payload digest) and the
#: payload's canonical JSON on its own line — and added the checksum:
#: shared backends can tear or bit-rot an entry in ways that still
#: parse as JSON (a flipped digit inside a float), and only an
#: end-to-end digest turns *every* such mutation into a miss.  The
#: digest runs over the stored payload bytes themselves, so verifying
#: a hit costs one hash, not a re-serialization.
ENTRY_FORMAT = 2


@dataclass(frozen=True)
class CacheStats:
    """Store-level totals: backend state plus this process's traffic."""

    entries: int
    total_bytes: int
    hits: int
    misses: int
    read_bytes: int
    written_bytes: int


class RunCache:
    """Content-addressed run-result cache over ``spec``.

    ``spec`` is a directory path (the classic local store) or a backend
    URL (``dir://``, ``sqlite://``, ``http://`` — see
    :func:`~repro.cache.backend.backend_from_url`); tests may hand a
    pre-built ``backend`` instead.  Construction has no I/O side
    effects: directories and database files appear on first write, so
    building a store to report stats on a never-populated spec creates
    nothing.
    """

    def __init__(
        self,
        spec: str | Path = ".repro-cache",
        *,
        backend: CacheBackend | None = None,
        policy: "object | None" = None,
        clock: "object | None" = None,
    ) -> None:
        self.spec = str(spec)
        if backend is None:
            backend = backend_from_url(self.spec, policy=policy, clock=clock)
        self.backend = backend
        self.hits = 0
        self.misses = 0
        self.read_bytes = 0
        self.written_bytes = 0
        #: Keys this store probed, in order (``(key, hit)``) — the raw
        #: material campaign manifests and hit-rate reports are cut from.
        self.key_log: list[tuple[str, bool]] = []
        self._metrics: "MetricsRegistry | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"RunCache({self.spec!r})"

    @property
    def root(self) -> Path | None:
        """The on-disk root for directory-backed stores, else ``None``."""
        phys = self._physical()
        return phys.root if isinstance(phys, DirBackend) else None

    def _physical(self) -> CacheBackend:
        """The innermost real backend (through resilience wrappers)."""
        backend = self.backend
        while True:
            inner = getattr(backend, "inner", None)
            if inner is None:
                return backend
            backend = inner

    def _entry_path(self, key: str) -> Path:
        """On-disk path of one entry (directory-backed stores only)."""
        validate_key(key)
        phys = self._physical()
        if not isinstance(phys, DirBackend):
            raise ValueError(
                f"cache backend {phys.scheme!r} has no per-entry files"
            )
        return phys._entry_path(key)

    # -- metrics / telemetry -------------------------------------------

    def bind_metrics(self, registry: "MetricsRegistry | None") -> "RunCache":
        """Mirror hit/miss/byte counts into ``repro_cache_*`` counters
        (and backend armor counts into ``repro_cache_backend_*``)."""
        self._metrics = registry
        self.backend.bind_metrics(registry)
        return self

    def bind_bus(self, bus: "EventBus | None") -> "RunCache":
        """Publish backend degradation/breaker events on ``bus``."""
        self.backend.bind_bus(bus)
        return self

    def _count(self, key: str, *, hit: bool, nbytes: int = 0) -> None:
        self.key_log.append((key, hit))
        if hit:
            self.hits += 1
            self.read_bytes += nbytes
        else:
            self.misses += 1
        if self._metrics is not None:
            name = "repro_cache_hits_total" if hit else "repro_cache_misses_total"
            self._metrics.counter(name).inc()
            if hit and nbytes:
                self._metrics.counter(
                    "repro_cache_read_bytes_total"
                ).inc(nbytes)

    def _count_write(self, nbytes: int) -> None:
        self.written_bytes += nbytes
        if self._metrics is not None:
            self._metrics.counter("repro_cache_written_bytes_total").inc(
                nbytes
            )

    # -- get/put -------------------------------------------------------

    @staticmethod
    def _decode(key: str, data: bytes) -> dict | None:
        """Entry bytes -> payload, or None on any kind of damage."""
        head, sep, rest = data.partition(b"\n")
        if not sep:
            return None
        try:
            header = json.loads(head.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if (
            not isinstance(header, dict)
            or header.get("format") != ENTRY_FORMAT
            or header.get("key") != key
        ):
            return None
        payload_bytes = rest[:-1] if rest.endswith(b"\n") else rest
        if header.get("sum") != hashlib.sha256(payload_bytes).hexdigest():
            # Damage that still parses (a flipped digit inside the
            # payload) must degrade to a miss, not a wrong hit.
            return None
        try:
            payload = json.loads(payload_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def get(self, key: str) -> dict | None:
        """The entry payload for ``key``, or None (any damage = miss)."""
        validate_key(key)
        data = self.backend.get(key)
        payload = None if data is None else self._decode(key, data)
        if payload is None:
            self._count(key, hit=False)
            return None
        self._count(key, hit=True, nbytes=len(data))
        return payload

    def peek(self, key: str) -> dict | None:
        """:meth:`get` without hit/miss accounting — for internal
        bookkeeping probes (campaign manifests) that must not skew
        run-level counters."""
        validate_key(key)
        data = self.backend.get(key)
        return None if data is None else self._decode(key, data)

    def get_many(self, keys: Iterable[str]) -> dict[str, dict]:
        """Batched :meth:`get` — one backend round-trip where the
        backend has a batch primitive.  Absent or damaged entries are
        simply missing from the result (and counted as misses)."""
        keys = [validate_key(k) for k in keys]
        raw = self.backend.get_many(keys)
        out: dict[str, dict] = {}
        for key in keys:
            data = raw.get(key)
            payload = None if data is None else self._decode(key, data)
            if payload is None:
                self._count(key, hit=False)
            else:
                self._count(key, hit=True, nbytes=len(data))
                out[key] = payload
        return out

    def stat_many(self, keys: Iterable[str]) -> set[str]:
        """The subset of ``keys`` present — a batched existence probe
        that moves no payload bytes and charges no hit/miss counters."""
        return self.backend.stat_many([validate_key(k) for k in keys])

    def put(
        self, key: str, payload: dict, *, meta: dict | None = None
    ) -> Path | None:
        """Atomically persist ``payload`` under ``key``.

        Returns the entry's path on directory-backed stores, else
        ``None`` — also ``None`` when a degraded backend dropped the
        write (a lost entry is a future miss, never an error).
        """
        validate_key(key)
        payload_bytes = json.dumps(payload, sort_keys=True).encode("utf-8")
        header = json.dumps(
            {
                "format": ENTRY_FORMAT,
                "key": key,
                "meta": meta or {},
                "sum": hashlib.sha256(payload_bytes).hexdigest(),
            },
            sort_keys=True,
        ).encode("utf-8")
        data = header + b"\n" + payload_bytes + b"\n"
        path = self.backend.put(key, data)
        self._count_write(len(data))
        return path

    def get_meta(self, key: str) -> dict | None:
        """The entry's meta block (no hit/miss accounting; ``ls`` only)."""
        data = self.backend.get(key)
        if data is None:
            return None
        head, _, _ = data.partition(b"\n")
        try:
            header = json.loads(head.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        meta = header.get("meta") if isinstance(header, dict) else None
        return meta if isinstance(meta, dict) else None

    # -- trace-shaped convenience --------------------------------------

    @staticmethod
    def _traces_from_payload(payload: dict) -> dict[str, Trace] | None:
        """Decode one entry payload's traces, or None on any damage."""
        traces = payload.get("traces")
        if not isinstance(traces, dict) or not traces:
            return None
        out: dict[str, Trace] = {}
        for name, data in traces.items():
            try:
                out[name] = _trace_from_entry(data)
            except (ValueError, KeyError, TypeError):
                return None
        return out

    def get_traces(self, key: str) -> dict[str, Trace] | None:
        """Cached traces for a run key, or None on any kind of miss.

        Deserialization failures (an entry written by a future trace
        format, hand-edited files) degrade to misses like everything
        else.
        """
        payload = self.get(key)
        if payload is None:
            return None
        return self._traces_from_payload(payload)

    def get_traces_many(
        self, keys: Iterable[str]
    ) -> dict[str, dict[str, Trace]]:
        """Batched :meth:`get_traces` over :meth:`get_many` — one
        backend round-trip where the backend has a batch primitive (the
        batch runner probes a whole campaign's keys at once).  Keys
        whose entries are absent or damaged are simply missing from the
        result; trace-decode failures degrade the same way."""
        out: dict[str, dict[str, Trace]] = {}
        for key, payload in self.get_many(keys).items():
            traces = self._traces_from_payload(payload)
            if traces is not None:
                out[key] = traces
        return out

    def put_traces(
        self,
        key: str,
        traces: dict[str, Trace],
        *,
        meta: dict | None = None,
    ) -> Path | None:
        return self.put(
            key,
            {"traces": {n: _trace_to_entry(t) for n, t in traces.items()}},
            meta=meta,
        )

    # -- management ----------------------------------------------------

    def entries(self) -> list[CacheEntryInfo]:
        """All entries, oldest first (the eviction order)."""
        return self.backend.entries()

    def stats(self) -> CacheStats:
        infos = self.entries()
        return CacheStats(
            entries=len(infos),
            total_bytes=sum(e.size_bytes for e in infos),
            hits=self.hits,
            misses=self.misses,
            read_bytes=self.read_bytes,
            written_bytes=self.written_bytes,
        )

    def health(self) -> dict:
        """JSON-ready backend health document (tiers, breaker states)."""
        return self.backend.health()

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        return self.backend.clear()

    def prune(
        self,
        max_bytes: int,
        *,
        grace_s: float = DEFAULT_PRUNE_GRACE_S,
        now: float | None = None,
    ) -> list[str]:
        """Evict oldest-first until the store fits ``max_bytes``.

        Entries younger than ``grace_s`` are never evicted: a janitor
        sweep must not race a concurrent writer's fresh ``put`` (see
        :meth:`repro.cache.backend.CacheBackend.prune`).  Returns the
        evicted keys; ``max_bytes=0`` empties everything old enough.
        """
        return self.backend.prune(max_bytes, grace_s=grace_s, now=now)

    def close(self) -> None:
        """Release backend resources (connections, sockets)."""
        self.backend.close()


def payload_meta(**kwargs: Any) -> dict:
    """Human-oriented entry metadata (never part of the key)."""
    return {k: v for k, v in kwargs.items() if v is not None}


# -- entry trace codec -------------------------------------------------------
#
# Entries store step records *columnar* (one flat array per field)
# instead of the row-shaped ``trace_to_dict`` layout: a hit must decode
# thousands of per-step rows, and flat arrays parse and rebuild several
# times faster than a dict per step.  Floats pass through JSON's repr
# round-trip untouched either way, so hits stay bit-identical.  Epochs
# are few and keep the shared row codec from :mod:`repro.sim.traceio`.


def _trace_to_entry(trace: Trace) -> dict:
    steps = trace.steps
    return {
        "label": trace.label,
        "epochs": [epoch_to_dict(e) for e in trace.epochs],
        "steps": {
            "time": [s.time for s in steps],
            "rate": [s.rate for s in steps],
            "restarting": [1 if s.restarting else 0 for s in steps],
            "bytes_moved": [s.bytes_moved for s in steps],
        },
    }


def _trace_from_entry(data: dict) -> Trace:
    cols = data["steps"]
    trace = Trace(label=str(data["label"]))
    trace.steps.extend(
        StepRecord(time=t, rate=r, restarting=bool(g), bytes_moved=b)
        for t, r, g, b in zip(
            cols["time"], cols["rate"], cols["restarting"],
            cols["bytes_moved"], strict=True,
        )
    )
    for e in data["epochs"]:
        trace.add_epoch(epoch_from_dict(e))
    return trace
