"""HTTP cache backend: stdlib client plus the ``repro cache serve`` server.

The wire protocol is deliberately tiny — a content-addressed store
needs nothing beyond GET/PUT by key plus a few batch/management verbs:

========================  =====================================================
``GET    /v1/e/<key>``    entry bytes (200) or miss (404)
``HEAD   /v1/e/<key>``    existence + ``Content-Length`` /
                          ``X-Repro-Mtime`` headers
``PUT    /v1/e/<key>``    store bytes (204); with ``If-None-Match: *``
                          only when absent (412 when present)
``DELETE /v1/e/<key>``    remove (204) or miss (404)
``POST   /v1/stat_many``  body: JSON list of keys -> JSON list present
``GET    /v1/entries``    JSON ``[{key, size_bytes, mtime}, ...]`` oldest first
``GET    /v1/health``     JSON health document (also the readiness probe)
``POST   /v1/prune``      body: ``{"max_bytes": N[, "grace_s": S]}`` ->
                          JSON list of evicted keys
``POST   /v1/clear``      remove everything -> ``{"removed": N}``
========================  =====================================================

The server wraps *any* :class:`~repro.cache.backend.CacheBackend`
(directory by default, ``sqlite://`` for one shared file) in a
``ThreadingHTTPServer`` — one OS thread per request, which is plenty
for a fleet of simulation workers whose requests are a few dozen per
campaign unit.  The client is plain ``urllib`` with socket timeouts;
network failures surface as exceptions for the resilience layer above
to retry, break, and ultimately degrade to the local tier.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterable

from repro.cache.backend import (
    CacheBackend,
    CacheEntryInfo,
    DEFAULT_PRUNE_GRACE_S,
    validate_key,
)
from repro.service.drain import GracefulSignals, InFlightGauge

__all__ = ["HttpBackend", "CacheServer", "serve"]

_ENTRY_PREFIX = "/v1/e/"


class HttpBackend(CacheBackend):
    """Client for a ``repro cache serve`` store."""

    scheme = "http"

    def __init__(self, base_url: str, *, timeout_s: float = 5.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"HttpBackend({self.base_url!r})"

    @property
    def url(self) -> str:
        return self.base_url

    # -- request plumbing --------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
        *,
        miss_status: tuple[int, ...] = (404,),
    ) -> tuple[int, bytes, dict[str, str]]:
        """One round-trip.  Statuses in ``miss_status`` are normal
        protocol answers (absent key, failed precondition); anything
        else non-2xx, and any transport trouble, raises for the
        resilience layer to handle."""
        req = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            if exc.code in miss_status:
                exc.read()
                return exc.code, b"", dict(exc.headers or {})
            raise

    # -- data plane ----------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        validate_key(key)
        status, body, _ = self._request("GET", _ENTRY_PREFIX + key)
        return body if status == 200 else None

    def put(self, key: str, data: bytes) -> None:
        validate_key(key)
        self._request("PUT", _ENTRY_PREFIX + key, body=data)
        return None

    def put_if_absent(self, key: str, data: bytes) -> bool:
        validate_key(key)
        status, _, _ = self._request(
            "PUT", _ENTRY_PREFIX + key, body=data,
            headers={"If-None-Match": "*"}, miss_status=(412,),
        )
        return status != 412

    # -- metadata plane --------------------------------------------------------

    def stat(self, key: str) -> CacheEntryInfo | None:
        validate_key(key)
        status, _, headers = self._request("HEAD", _ENTRY_PREFIX + key)
        if status != 200:
            return None
        return CacheEntryInfo(
            key=key,
            path=None,
            size_bytes=int(headers.get("Content-Length", 0)),
            mtime=float(headers.get("X-Repro-Mtime", 0.0)),
        )

    def stat_many(self, keys: Iterable[str]) -> set[str]:
        keys = [validate_key(k) for k in keys]
        if not keys:
            return set()
        _, body, _ = self._request(
            "POST", "/v1/stat_many", body=json.dumps(keys).encode()
        )
        return set(json.loads(body))

    def entries(self) -> list[CacheEntryInfo]:
        _, body, _ = self._request("GET", "/v1/entries")
        return [
            CacheEntryInfo(key=e["key"], path=None,
                           size_bytes=int(e["size_bytes"]),
                           mtime=float(e["mtime"]))
            for e in json.loads(body)
        ]

    def delete(self, key: str) -> bool:
        validate_key(key)
        status, _, _ = self._request("DELETE", _ENTRY_PREFIX + key)
        return status != 404

    # -- management ------------------------------------------------------------

    def clear(self) -> int:
        _, body, _ = self._request("POST", "/v1/clear", body=b"{}")
        return int(json.loads(body)["removed"])

    def prune(self, max_bytes, *, grace_s=DEFAULT_PRUNE_GRACE_S, now=None):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        # Server-side prune: eviction must see every writer's entries
        # and apply the grace window against the server's clock.
        doc = {"max_bytes": int(max_bytes), "grace_s": float(grace_s)}
        _, body, _ = self._request(
            "POST", "/v1/prune", body=json.dumps(doc).encode()
        )
        return list(json.loads(body))

    def health(self) -> dict:
        _, body, _ = self._request("GET", "/v1/health")
        remote = json.loads(body)
        return {"scheme": self.scheme, "url": self.url, "server": remote}


# -- server -------------------------------------------------------------------


def _make_handler(
    store: CacheBackend, server: "CacheServer | None" = None
) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-cache"

        def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
            pass

        def _guarded(self, inner) -> None:
            """Run one verb under the server's drain discipline: a
            draining server refuses new work (503) while requests that
            were already in flight finish under the gauge."""
            if server is None:
                inner()
                return
            if server.draining:
                self._send_json({"error": "draining"}, 503)
                return
            with server.in_flight:
                inner()

        # -- helpers ---------------------------------------------------

        def _send(self, status: int, body: bytes = b"",
                  headers: dict[str, str] | None = None) -> None:
            self.send_response(status)
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            if body and self.command != "HEAD":
                self.wfile.write(body)

        def _send_json(self, doc, status: int = 200) -> None:
            self._send(status, json.dumps(doc).encode(),
                       {"Content-Type": "application/json"})

        def _entry_key(self) -> str | None:
            if not self.path.startswith(_ENTRY_PREFIX):
                return None
            try:
                return validate_key(self.path[len(_ENTRY_PREFIX):])
            except ValueError:
                return None

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length", 0))
            return self.rfile.read(length) if length else b""

        # -- verbs ------------------------------------------------------

        def do_GET(self):
            self._guarded(self._get)

        def do_HEAD(self):
            self._guarded(self._head)

        def do_PUT(self):
            self._guarded(self._put)

        def do_DELETE(self):
            self._guarded(self._delete)

        def do_POST(self):
            self._guarded(self._post)

        def _get(self):
            key = self._entry_key()
            if key is not None:
                data = store.get(key)
                if data is None:
                    self._send(404)
                else:
                    self._send(200, data,
                               {"Content-Type": "application/json"})
                return
            if self.path == "/v1/entries":
                self._send_json([
                    {"key": e.key, "size_bytes": e.size_bytes,
                     "mtime": e.mtime}
                    for e in store.entries()
                ])
                return
            if self.path == "/v1/health":
                self._send_json(store.health())
                return
            self._send(404)

        def _head(self):
            key = self._entry_key()
            if key is None:
                self._send(404)
                return
            info = store.stat(key)
            if info is None:
                self._send(404)
                return
            self.send_response(200)
            self.send_header("Content-Length", str(info.size_bytes))
            self.send_header("X-Repro-Mtime", repr(info.mtime))
            self.end_headers()

        def _put(self):
            key = self._entry_key()
            if key is None:
                self._send(404)
                return
            data = self._read_body()
            if self.headers.get("If-None-Match") == "*":
                if store.put_if_absent(key, data):
                    self._send(204)
                else:
                    self._send(412)
                return
            store.put(key, data)
            self._send(204)

        def _delete(self):
            key = self._entry_key()
            if key is None:
                self._send(404)
                return
            self._send(204 if store.delete(key) else 404)

        def _post(self):
            if self.path == "/v1/stat_many":
                keys = json.loads(self._read_body())
                present = store.stat_many(
                    validate_key(k) for k in keys
                )
                # Stable order keeps responses byte-reproducible.
                self._send_json(sorted(present))
                return
            if self.path == "/v1/prune":
                doc = json.loads(self._read_body())
                evicted = store.prune(
                    int(doc["max_bytes"]),
                    grace_s=float(doc.get("grace_s",
                                          DEFAULT_PRUNE_GRACE_S)),
                )
                self._send_json(evicted)
                return
            if self.path == "/v1/clear":
                self._send_json({"removed": store.clear()})
                return
            self._send(404)

    return Handler


class CacheServer:
    """A running cache server; use as a context manager in tests."""

    def __init__(self, store: CacheBackend, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.store = store
        self.in_flight = InFlightGauge()
        self._draining = threading.Event()
        self._serving = threading.Event()
        self._closed = False
        self._httpd = ThreadingHTTPServer(
            (host, port), _make_handler(store, self)
        )
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        if ":" in host:  # IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{port}"

    def start(self) -> "CacheServer":
        """Serve on a background thread (tests, embedding)."""
        self._serving.set()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (embedding without signals)."""
        self._serving.set()
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def request_drain(self) -> None:
        """Flip the drain flag: new requests get 503, the
        :meth:`run_forever` loop (or a caller) performs the drain."""
        self._draining.set()

    def drain(self, *, request_timeout_s: float = 10.0) -> None:
        """Graceful stop: refuse new requests, stop the listener, let
        in-flight requests finish, close the socket and the store."""
        self._draining.set()
        if self._closed:
            return
        self._closed = True
        if self._serving.is_set():
            # httpd.shutdown() handshakes with a serve_forever loop;
            # calling it on a never-served httpd would block forever.
            self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.in_flight.wait_idle(request_timeout_s)
        self._httpd.server_close()
        self.store.close()

    def shutdown(self) -> None:
        """Immediate stop (tests, embedding): same teardown as
        :meth:`drain` — in-flight requests are brief by protocol."""
        self.drain()

    def run_forever(self) -> int:
        """The ``repro cache serve`` path: serve until SIGTERM/SIGINT
        (or :meth:`request_drain`), then drain gracefully.  Returns the
        exit code (0 on a clean drain)."""
        with GracefulSignals() as signals:
            self.start()
            while not (signals.triggered.is_set()
                       or self._draining.is_set()):
                signals.triggered.wait(0.1)
            self.drain()
        return 0

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()


def serve(store: CacheBackend, host: str = "127.0.0.1",
          port: int = 8750) -> CacheServer:
    """Build a :class:`CacheServer` for ``store`` (not yet started)."""
    try:
        return CacheServer(store, host=host, port=port)
    except socket.gaierror as exc:
        raise ValueError(f"cannot bind cache server to {host!r}: {exc}")
