"""Canonical JSON encoding of run configurations.

Cache keys must be *stable*: the same configuration must hash to the
same key in any process, on any platform, regardless of the order keys
were inserted into dicts or how a dataclass was constructed.  This
module turns an arbitrary configuration object graph — primitives,
tuples, dicts, dataclasses, plain objects, callables — into a plain
JSON-able structure (:func:`describe`) and renders it with sorted keys
and compact separators (:func:`canonical_json`).

Determinism notes:

* Floats serialize via ``repr`` (CPython's shortest round-trip form),
  so two configurations differ iff their float bits differ.
* Non-finite floats (``inf``/``nan``) are encoded as tagged strings —
  ``json.dumps(allow_nan=True)`` output is not valid JSON and differs
  across encoders.
* Dataclasses and plain objects are tagged with their fully qualified
  class name, so two classes with identical field values never collide.
* Callables (TCP congestion-control functions, factories) encode as
  their qualified name: behavior changes inside them are covered by the
  engine source fingerprint, not the key.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any

__all__ = ["describe", "canonical_json", "Described"]


class Described:
    """Marks data as already in :func:`describe` output form.

    Key assembly memoizes the description of heavyweight immutable
    graphs (scenarios); wrapping the memoized plain data in
    ``Described`` lets :func:`describe` embed it without re-walking.
    """

    __slots__ = ("data",)

    def __init__(self, data: Any) -> None:
        self.data = data


def _describe_float(value: float) -> Any:
    if math.isnan(value):
        return {"__float__": "nan"}
    if math.isinf(value):
        return {"__float__": "inf" if value > 0 else "-inf"}
    return float(value)


def describe(obj: Any) -> Any:
    """Reduce a configuration object graph to JSON-able plain data.

    Raises ``TypeError`` for objects that carry no describable state —
    better a loud failure at key-build time than a cache key that
    silently ignores part of the configuration.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        # bool before int is irrelevant here (bool is JSON-distinct),
        # but keep ints exact: no float coercion.
        return obj
    if isinstance(obj, Described):
        return obj.data
    if isinstance(obj, float):
        return _describe_float(obj)
    # numpy scalars (np.float64, np.int64, ...) expose .item(); handled
    # without importing numpy so the module stays dependency-light.
    item = getattr(obj, "item", None)
    if callable(item) and type(obj).__module__.startswith("numpy"):
        return describe(obj.item())
    if isinstance(obj, (list, tuple)):
        return [describe(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(canonical_json(v) for v in obj)}
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise TypeError(
                    f"cache configurations need string dict keys; got "
                    f"{type(k).__name__} key {k!r}"
                )
            out[k] = describe(v)
        return out
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__class__": _qualname(type(obj))}
        # dataclasses.fields skips init=False state on *frozen* configs?
        # No — it includes every field, which is what we want: mutable
        # state (e.g. a breaker's consecutive_failures) must key the
        # entry, otherwise a hot breaker could be served a cold run.
        for f in dataclasses.fields(obj):
            out[f.name] = describe(getattr(obj, f.name))
        return out
    if isinstance(obj, type) or callable(obj):
        return {"__callable__": _qualname(obj)}
    state = getattr(obj, "__dict__", None)
    if state is not None:
        out = {"__class__": _qualname(type(obj))}
        for k in sorted(state):
            out[k] = describe(state[k])
        return out
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        out = {"__class__": _qualname(type(obj))}
        for k in sorted(slots):
            if hasattr(obj, k):
                out[k] = describe(getattr(obj, k))
        return out
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for a cache key"
    )


def _qualname(obj: Any) -> str:
    mod = getattr(obj, "__module__", "?")
    name = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
    return f"{mod}.{name}"


def canonical_json(obj: Any) -> str:
    """Render ``describe(obj)`` deterministically.

    Sorted keys and compact separators make the text independent of
    dict insertion order and whitespace conventions; ``allow_nan=False``
    guarantees the output is strict JSON (non-finite floats were tagged
    by :func:`describe`).
    """
    return json.dumps(
        describe(obj), sort_keys=True, separators=(",", ":"),
        ensure_ascii=True, allow_nan=False,
    )
