"""Default-cache resolution and process-tree activation.

The experiment layer fans work out over ``ProcessPoolExecutor`` workers
whose task tuples are plain data — threading a live :class:`RunCache`
through every tuple would bloat each call signature in the tree.
Instead the cache travels as *environment state*, which child processes
inherit under every multiprocessing start method:

* ``REPRO_CACHE``      — ``1``/``true``/``on`` enables the default
  cache, ``0``/``false``/``off`` disables it; unset means *off*.
* ``REPRO_CACHE_DIR``  — cache spec: a directory path (default
  ``.repro-cache`` under the cwd) or a backend URL (``dir://``,
  ``sqlite://``, ``http://`` — see
  :func:`repro.cache.backend.backend_from_url`), so a fleet of workers
  pointed at ``sqlite://shared.db`` or ``http://cachehost:8750`` share
  one warm store.

:func:`resolve_cache` turns the ``cache=`` argument every runner/sweep
accepts (``None`` | ``bool`` | :class:`RunCache`) into a store or
``None``; :func:`activated` additionally exports the decision into the
environment for the duration of a fan-out, so workers that call
``run_single(cache=None)`` resolve the same store.  Environment-resolved
stores are memoized per spec within a process: remote backends keep one
connection, hit/miss counters accumulate somewhere visible, and breaker
state persists across runs instead of resetting per call.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator, Union

from repro.cache.store import RunCache

__all__ = [
    "CacheSpec",
    "ENV_ENABLE",
    "ENV_DIR",
    "DEFAULT_CACHE_DIRNAME",
    "default_cache_dir",
    "default_cache_spec",
    "resolve_cache",
    "activated",
]

ENV_ENABLE = "REPRO_CACHE"
ENV_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIRNAME = ".repro-cache"

#: What every ``cache=`` knob accepts.
CacheSpec = Union[RunCache, bool, None]

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off", ""}

#: The store most recently exported by :func:`activated` in *this*
#: process.  Lets env-resolved callers inside the scope reuse the very
#: same instance, so hit/miss counters accumulate where the caller can
#: see them instead of fragmenting across throwaway stores.
_ACTIVE_STORE: RunCache | None = None

#: Single-slot memo of the last environment-resolved store (pool
#: workers resolve the same spec for every task; rebuilding a backend —
#: and its connections and breaker state — per call would defeat the
#: resilience layer and fragment every counter).
_RESOLVED_STORE: RunCache | None = None


def default_cache_spec() -> str:
    """``$REPRO_CACHE_DIR`` (path or URL) or ``.repro-cache``."""
    return os.environ.get(ENV_DIR) or DEFAULT_CACHE_DIRNAME


def default_cache_dir() -> Path:
    """:func:`default_cache_spec` as a path (directory-shaped specs)."""
    return Path(default_cache_spec())


def _env_enabled() -> bool:
    value = os.environ.get(ENV_ENABLE, "").strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ValueError(
        f"unrecognized {ENV_ENABLE}={os.environ[ENV_ENABLE]!r}; "
        "use 1/0, true/false, on/off"
    )


def resolve_cache(cache: CacheSpec) -> RunCache | None:
    """Normalize a ``cache=`` argument to a store or ``None``.

    * a :class:`RunCache` — used as-is;
    * ``True`` — the default store (:func:`default_cache_spec`);
    * ``False`` — caching off, regardless of the environment;
    * ``None`` — consult ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``.
    """
    if isinstance(cache, RunCache):
        return cache
    if cache is True:
        return _store_for(default_cache_spec())
    if cache is False:
        return None
    if cache is None:
        return _store_for(default_cache_spec()) if _env_enabled() else None
    raise TypeError(
        f"cache must be a RunCache, bool, or None; got {cache!r}"
    )


def _store_for(spec: str) -> RunCache:
    global _RESOLVED_STORE
    if _ACTIVE_STORE is not None and _ACTIVE_STORE.spec == spec:
        return _ACTIVE_STORE
    if _RESOLVED_STORE is None or _RESOLVED_STORE.spec != spec:
        _RESOLVED_STORE = RunCache(spec)
    return _RESOLVED_STORE


@contextlib.contextmanager
def activated(cache: CacheSpec) -> Iterator[RunCache | None]:
    """Export a cache decision to this process *and* its children.

    ``None`` leaves the environment untouched (the ambient setting, if
    any, stays in force); ``False`` forces caching off for the scope,
    including in pool workers; a store or ``True`` enables it and points
    ``REPRO_CACHE_DIR`` at the resolved spec.  Yields the resolved store
    (or ``None``) for in-process use; always restores the previous
    environment on exit.
    """
    global _ACTIVE_STORE
    store = resolve_cache(cache)
    if cache is None:
        yield store
        return
    saved = {k: os.environ.get(k) for k in (ENV_ENABLE, ENV_DIR)}
    saved_store = _ACTIVE_STORE
    try:
        if store is None:
            os.environ[ENV_ENABLE] = "0"
            _ACTIVE_STORE = None
        else:
            os.environ[ENV_ENABLE] = "1"
            os.environ[ENV_DIR] = store.spec
            _ACTIVE_STORE = store
        yield store
    finally:
        _ACTIVE_STORE = saved_store
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
