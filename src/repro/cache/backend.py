"""Pluggable storage backends for the content-addressed run cache.

A :class:`CacheBackend` stores opaque entry *bytes* under 64-hex
content-address keys.  Everything format-shaped (the entry document,
payload checksums, trace codecs, hit/miss accounting) stays in
:class:`repro.cache.store.RunCache`; a backend only has to move bytes
durably.  Three families ship here and in the sibling modules:

* :class:`DirBackend` — the original local directory store (atomic
  temp + fsync + ``os.replace`` writes, 256-way prefix fan-out);
* :class:`MemoryBackend` — a bounded in-process store, used as the
  default local tier in front of remote backends;
* :class:`repro.cache.sqlite_store.SqliteBackend` — one shared file,
  WAL mode, safe under concurrent writers;
* :class:`repro.cache.http_store.HttpBackend` — a client for the
  ``repro cache serve`` HTTP store.

Backends are selected by URL scheme via :func:`backend_from_url`
(``dir://``, ``sqlite://``, ``http://``; a bare path means ``dir://``),
and every backend built there is wrapped in the never-raise
:class:`repro.cache.resilience.ResilientBackend` — per-operation
timeouts, bounded retry with backoff, and a circuit breaker that
degrades a failing backend to a miss instead of an exception.  Remote
(HTTP) backends additionally ride behind a
:class:`~repro.cache.resilience.TieredBackend` local tier, so the
degradation ladder is remote -> local tier -> miss.

The contract every backend honors:

* ``get``/``get_many`` return raw bytes or nothing — no validation;
* ``put`` is atomic: a reader never sees a half-written entry at a
  final key (chaos wrappers deliberately violate this to prove the
  *store* survives it);
* ``prune`` never deletes an entry younger than the grace period, so a
  concurrent writer's fresh results survive a sweeping janitor.
"""

from __future__ import annotations

import abc
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.bus import EventBus
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "CacheEntryInfo",
    "CacheBackend",
    "DirBackend",
    "MemoryBackend",
    "DEFAULT_PRUNE_GRACE_S",
    "split_cache_url",
    "backend_from_url",
    "validate_key",
]

_KEY_HEX_LEN = 64
_HEX = set("0123456789abcdef")

#: Entries younger than this are never pruned: a concurrent writer's
#: fresh ``put`` (or the read-back it is about to issue) must not race a
#: janitor's eviction sweep.
DEFAULT_PRUNE_GRACE_S = 60.0


def validate_key(key: str) -> str:
    """Reject anything that is not a lowercase SHA-256 hex digest."""
    if len(key) != _KEY_HEX_LEN or any(c not in _HEX for c in key):
        raise ValueError(f"malformed cache key {key!r}")
    return key


@dataclass(frozen=True)
class CacheEntryInfo:
    """One entry as seen by ``ls``/``prune``.

    ``path`` is the on-disk file for directory-backed stores and
    ``None`` for backends without per-entry files.
    """

    key: str
    path: Path | None
    size_bytes: int
    mtime: float


class CacheBackend(abc.ABC):
    """Abstract content-addressed byte store.

    Keys are validated at the :class:`~repro.cache.store.RunCache`
    layer; backends may assume well-formed keys.  Only ``get``, ``put``
    and per-key ``stat``/``delete`` are abstract — batched and
    management operations have generic implementations that concrete
    backends override when they can do better (one SQL query, one HTTP
    round-trip).
    """

    scheme: ClassVar[str] = "abstract"

    @property
    @abc.abstractmethod
    def url(self) -> str:
        """Canonical spec string that reconstructs this backend."""

    # -- data plane ------------------------------------------------------

    @abc.abstractmethod
    def get(self, key: str) -> bytes | None:
        """Entry bytes, or None when absent."""

    @abc.abstractmethod
    def put(self, key: str, data: bytes) -> Path | None:
        """Store ``data`` under ``key`` (atomic replace).  Returns the
        entry's path for file-per-entry backends, else None."""

    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Store only when ``key`` is absent; True when this call wrote.

        The generic form is check-then-put (racy but harmless for a
        content-addressed store: both writers carry identical bytes);
        transactional backends override it atomically.
        """
        if self.stat(key) is not None:
            return False
        self.put(key, data)
        return True

    def get_many(self, keys: Iterable[str]) -> dict[str, bytes]:
        """Batched :meth:`get`; absent keys are simply missing from the
        result.  Backends with a real batch primitive override this."""
        out: dict[str, bytes] = {}
        for key in keys:
            data = self.get(key)
            if data is not None:
                out[key] = data
        return out

    # -- metadata plane --------------------------------------------------

    @abc.abstractmethod
    def stat(self, key: str) -> CacheEntryInfo | None:
        """Size/mtime of one entry without fetching its bytes."""

    def stat_many(self, keys: Iterable[str]) -> set[str]:
        """The subset of ``keys`` present in the store — the batched
        existence probe campaign scheduling runs before a hit storm."""
        return {key for key in keys if self.stat(key) is not None}

    @abc.abstractmethod
    def entries(self) -> list[CacheEntryInfo]:
        """All entries, oldest first (the eviction order)."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Remove one entry; True when something was removed."""

    # -- management ------------------------------------------------------

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for info in self.entries():
            if self.delete(info.key):
                removed += 1
        return removed

    def prune(
        self,
        max_bytes: int,
        *,
        grace_s: float = DEFAULT_PRUNE_GRACE_S,
        now: float | None = None,
    ) -> list[str]:
        """Evict oldest-first until the store fits ``max_bytes``.

        Entries younger than ``grace_s`` seconds are never evicted —
        they may belong to a concurrent writer whose campaign is about
        to read them back (and on directory backends, deleting around a
        fresh atomic rename is exactly the race the grace period
        exists to close).  Returns the evicted keys.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if grace_s < 0:
            raise ValueError("grace_s must be >= 0")
        now = time.time() if now is None else float(now)
        infos = self.entries()
        total = sum(e.size_bytes for e in infos)
        evicted: list[str] = []
        for info in infos:
            if total <= max_bytes:
                break
            if now - info.mtime < grace_s:
                # Entries are oldest-first, so everything after this
                # one is younger still; nothing further is evictable.
                break
            if not self.delete(info.key):
                continue
            total -= info.size_bytes
            evicted.append(info.key)
        return evicted

    # -- health / lifecycle ----------------------------------------------

    def health(self) -> dict:
        """JSON-ready health/identity snapshot for ``cache stats``."""
        return {"scheme": self.scheme, "url": self.url}

    def bind_metrics(self, registry: "MetricsRegistry | None") -> None:
        """Attach a metrics registry (no-op for plain stores)."""

    def bind_bus(self, bus: "EventBus | None") -> None:
        """Attach an event bus (no-op for plain stores)."""

    def close(self) -> None:
        """Release any held resources (connections, sockets)."""


# -- directory backend -------------------------------------------------------


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Byte-wise twin of :func:`repro.sim.traceio.atomic_write_text`."""
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class DirBackend(CacheBackend):
    """Local directory store: ``<root>/v<schema>/<key[:2]>/<key>.json``.

    Write discipline is temp file + fsync + ``os.replace`` in the target
    directory, so a process killed mid-``put`` can never leave a torn
    entry at a final path; in-flight temp files carry a ``.tmp`` suffix
    and are invisible to ``entries``/``prune``.
    """

    scheme = "dir"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"DirBackend({str(self.root)!r})"

    @property
    def url(self) -> str:
        return str(self.root)

    @property
    def _version_dir(self) -> Path:
        from repro.cache.keys import CACHE_SCHEMA_VERSION

        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    def _entry_path(self, key: str) -> Path:
        validate_key(key)
        return self._version_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> bytes | None:
        try:
            return self._entry_path(key).read_bytes()
        except OSError:
            # Missing entry, missing prefix dir, permission trouble,
            # mid-replace race: all of them are just misses.
            return None

    def put(self, key: str, data: bytes) -> Path:
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(path, data)
        return path

    def stat(self, key: str) -> CacheEntryInfo | None:
        path = self._entry_path(key)
        try:
            st = path.stat()
        except OSError:
            return None
        return CacheEntryInfo(key=key, path=path, size_bytes=st.st_size,
                              mtime=st.st_mtime)

    def _iter_entries(self) -> Iterator[CacheEntryInfo]:
        if not self._version_dir.is_dir():
            return
        for path in sorted(self._version_dir.glob("??/*.json")):
            if len(path.stem) != _KEY_HEX_LEN:  # stray temp/foreign file
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            yield CacheEntryInfo(key=path.stem, path=path,
                                 size_bytes=st.st_size, mtime=st.st_mtime)

    def entries(self) -> list[CacheEntryInfo]:
        return sorted(self._iter_entries(), key=lambda e: (e.mtime, e.key))

    def delete(self, key: str) -> bool:
        try:
            self._entry_path(key).unlink()
            return True
        except OSError:
            return False

    def health(self) -> dict:
        infos = list(self._iter_entries())
        return {
            "scheme": self.scheme,
            "url": self.url,
            "entries": len(infos),
            "total_bytes": sum(e.size_bytes for e in infos),
        }


# -- memory backend -----------------------------------------------------------


class MemoryBackend(CacheBackend):
    """Bounded in-process store (insertion-ordered, oldest evicted).

    The default local tier in front of a remote backend: a breaker-open
    period degrades to hits the process has already seen instead of
    straight to misses, with no on-disk footprint.  ``mtime`` is a
    logical insertion counter, not wall time, so eviction order is
    deterministic; the prune grace period is therefore interpreted
    against that counter and effectively always satisfied — ``prune``
    on a memory tier only honors ``max_bytes``.
    """

    scheme = "memory"

    def __init__(self, max_bytes: int = 256 * 1024 * 1024) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self._data: dict[str, bytes] = {}
        self._seq = 0
        self._stamp: dict[str, int] = {}

    @property
    def url(self) -> str:
        return "memory://"

    def get(self, key: str) -> bytes | None:
        return self._data.get(key)

    def put(self, key: str, data: bytes) -> None:
        self._data[key] = bytes(data)
        self._seq += 1
        self._stamp[key] = self._seq
        self._shrink()
        return None

    def _shrink(self) -> None:
        total = sum(len(v) for v in self._data.values())
        while total > self.max_bytes and self._data:
            oldest = min(self._data, key=lambda k: self._stamp[k])
            total -= len(self._data.pop(oldest))
            self._stamp.pop(oldest, None)

    def stat(self, key: str) -> CacheEntryInfo | None:
        data = self._data.get(key)
        if data is None:
            return None
        return CacheEntryInfo(key=key, path=None, size_bytes=len(data),
                              mtime=float(self._stamp[key]))

    def entries(self) -> list[CacheEntryInfo]:
        infos = (self.stat(k) for k in self._data)
        return sorted((i for i in infos if i is not None),
                      key=lambda e: (e.mtime, e.key))

    def delete(self, key: str) -> bool:
        self._stamp.pop(key, None)
        return self._data.pop(key, None) is not None

    def prune(self, max_bytes, *, grace_s=DEFAULT_PRUNE_GRACE_S, now=None):
        # Logical mtimes make a wall-clock grace meaningless here; honor
        # only the byte budget (see class docstring).
        return super().prune(max_bytes, grace_s=0.0, now=None)

    def health(self) -> dict:
        return {
            "scheme": self.scheme,
            "url": self.url,
            "entries": len(self._data),
            "total_bytes": sum(len(v) for v in self._data.values()),
            "max_bytes": self.max_bytes,
        }


# -- URL resolution -----------------------------------------------------------


def split_cache_url(spec: str) -> tuple[str, str, dict[str, str]]:
    """Split a cache spec into ``(scheme, rest, params)``.

    ``rest`` is everything after ``scheme://`` with the query string
    stripped; a spec without ``://`` is a plain directory path.  Query
    parameters are single-valued (``?local=DIR``).
    """
    spec = str(spec)
    if "://" not in spec:
        return "dir", spec, {}
    scheme, rest = spec.split("://", 1)
    params: dict[str, str] = {}
    if "?" in rest:
        rest, query = rest.split("?", 1)
        for item in query.split("&"):
            if not item:
                continue
            name, _, value = item.partition("=")
            params[name] = value
    return scheme.lower(), rest, params


def backend_from_url(
    spec: str | Path,
    *,
    policy: "object | None" = None,
    clock: "object | None" = None,
) -> CacheBackend:
    """Build the hardened backend stack for a cache spec.

    * bare path / ``dir://PATH`` — resilient local directory store;
    * ``sqlite://PATH``          — resilient shared single-file store;
    * ``http://HOST:PORT[/BASE]`` — tiered: a local tier (in-memory by
      default, ``?local=DIR`` for a durable directory tier) in front of
      the resilient remote client, so a failing server degrades
      remote -> local tier -> miss without ever raising into a run.

    ``policy``/``clock`` thread a
    :class:`~repro.cache.resilience.BackendPolicy` and an injectable
    :class:`~repro.obs.clock.Clock` into every resilient wrapper
    (tests; production uses the defaults).
    """
    from repro.cache.resilience import ResilientBackend, TieredBackend

    def resilient(inner: CacheBackend) -> ResilientBackend:
        return ResilientBackend(inner, policy=policy, clock=clock)

    scheme, rest, params = split_cache_url(str(spec))
    if scheme == "dir":
        return resilient(DirBackend(rest))
    if scheme == "sqlite":
        from repro.cache.sqlite_store import SqliteBackend

        return resilient(SqliteBackend(rest))
    if scheme in ("http", "https"):
        from repro.cache.http_store import HttpBackend

        remote = resilient(HttpBackend(f"{scheme}://{rest}"))
        local_spec = params.get("local")
        local: CacheBackend = (
            DirBackend(local_spec) if local_spec else MemoryBackend()
        )
        return TieredBackend(local=resilient(local), remote=remote)
    raise ValueError(
        f"unknown cache backend scheme {scheme!r} in {str(spec)!r}; "
        "use a directory path, dir://, sqlite://, or http://"
    )
