"""Cache keys: SHA-256 over canonical configuration + version stamps.

A run is byte-for-byte determined by its configuration and seed (the
determinism the checkpoint and fast-path suites already pin down), so a
key that covers the *complete* configuration is a sound content
address.  Two extra components make staleness impossible:

* ``CACHE_SCHEMA_VERSION`` — bumped whenever the key layout or the
  entry payload format changes, invalidating every older entry at once.
* :func:`engine_fingerprint` — a SHA-256 over the source text of every
  behavior-bearing module (simulation engine, network/TCP models,
  endpoint/CPU models, tuners, faults, GridFTP client model, noise,
  and the runner that builds sessions).  Any edit that could change a
  trace changes the fingerprint, so entries written by an older engine
  are unreachable misses, never wrong hits.

Non-behavioral layers (observability, checkpoint I/O, CLI, analysis,
the cache itself) are deliberately outside the fingerprint — editing a
dashboard must not throw away gigabytes of valid results.
"""

from __future__ import annotations

import functools
import hashlib
from pathlib import Path
from typing import Any

from repro.cache.canonical import Described, canonical_json, describe

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "engine_fingerprint",
    "fingerprint_files",
    "run_key",
    "single_run_components",
    "pair_run_components",
    "joint_run_components",
]

#: Bump to invalidate every existing cache entry (key layout or payload
#: format change).  v2: entry documents carry a payload checksum.
CACHE_SCHEMA_VERSION = 2

#: Package subtrees / modules whose source determines simulation
#: behavior.  Relative to the ``repro`` package root.  ``sim/batch`` is
#: named explicitly even though the ``sim`` subtree already recurses
#: into it: the batch engine produces cached traces directly, so its
#: membership in the fingerprint is a stated invariant (with a pinning
#: test), not a side effect of directory layout.  Overlapping roots are
#: deduplicated, so the redundancy never double-hashes a file.
_FINGERPRINT_ROOTS = (
    "sim",
    "sim/batch",
    "net",
    "core",
    "endpoint",
    "faults",
    "gridftp",
    "noise.py",
    "units.py",
    "_byte_pump.py",
    "experiments/runner.py",
    "experiments/scenarios.py",
)


def fingerprint_files() -> list[Path]:
    """The behavior-bearing source files, deduplicated and sorted."""
    import repro

    root = Path(repro.__file__).parent
    files: set[Path] = set()
    for rel in _FINGERPRINT_ROOTS:
        target = root / rel
        if target.is_dir():
            files.update(target.rglob("*.py"))
        elif target.is_file():
            files.add(target)
    return sorted(files)


@functools.lru_cache(maxsize=1)
def engine_fingerprint() -> str:
    """SHA-256 over the behavior-bearing source files, hex-encoded.

    Computed once per process; stable across processes and platforms
    (files are hashed in sorted relative-path order, bytes as stored).
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in fingerprint_files():
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


#: Identity-keyed memo of described *scenario* graphs.  Scenarios are
#: frozen module-level singletons with the deepest object graph in a
#: key; re-describing one for every run in a sweep is pure waste.  The
#: strong reference keeps each memoized object alive, so its id can
#: never be recycled by a different object.
_SCENARIO_MEMO: dict[int, tuple[Any, Any]] = {}


def _describe_scenario(scenario: Any) -> Described:
    entry = _SCENARIO_MEMO.get(id(scenario))
    if entry is None or entry[0] is not scenario:
        entry = (scenario, Described(describe(scenario)))
        _SCENARIO_MEMO[id(scenario)] = entry
    return entry[1]


def run_key(kind: str, components: dict[str, Any]) -> str:
    """The content address of one run: kind + schema + engine + config.

    ``canonical_json`` describes the document in a single walk —
    ``describe`` is idempotent, so pre-described fragments (memoized
    scenarios) embed unchanged and the key is identical either way.
    """
    doc = {
        "kind": kind,
        "schema": CACHE_SCHEMA_VERSION,
        "engine": engine_fingerprint(),
        "config": components,
    }
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


# -- component assembly (mirrors the runner signatures) ---------------------
#
# The runner passes its *normalized* inputs (load already lifted to a
# LoadSchedule, the EngineConfig it will hand the engine), so the key
# covers exactly what the engine sees.


def single_run_components(
    *,
    scenario: Any,
    tuner: Any,
    schedule: Any,
    duration_s: float,
    epoch_s: float,
    tune_np: bool,
    fixed_np: int,
    x0: Any,
    seed: int,
    max_nc: int,
    fault_schedule: Any,
    retry_policy: Any,
    breaker: Any,
    engine_config: Any,
) -> dict[str, Any]:
    return {
        "scenario": _describe_scenario(scenario),
        "tuner": tuner,
        "schedule": schedule,
        "duration_s": float(duration_s),
        "epoch_s": float(epoch_s),
        "tune_np": bool(tune_np),
        "fixed_np": int(fixed_np),
        "x0": None if x0 is None else [int(v) for v in x0],
        "seed": int(seed),
        "max_nc": int(max_nc),
        "fault_schedule": fault_schedule,
        "retry_policy": retry_policy,
        "breaker": breaker,
        "engine_config": engine_config,
    }


def pair_run_components(
    *,
    scenario: Any,
    tuner_a: Any,
    tuner_b: Any,
    path_a: str,
    path_b: str,
    schedule: Any,
    duration_s: float,
    epoch_s: float,
    tune_np: bool,
    seed: int,
    engine_config: Any,
) -> dict[str, Any]:
    return {
        "scenario": _describe_scenario(scenario),
        "tuner_a": tuner_a,
        "tuner_b": tuner_b,
        "path_a": str(path_a),
        "path_b": str(path_b),
        "schedule": schedule,
        "duration_s": float(duration_s),
        "epoch_s": float(epoch_s),
        "tune_np": bool(tune_np),
        "seed": int(seed),
        "engine_config": engine_config,
    }


def joint_run_components(
    *,
    scenario: Any,
    inner: Any,
    path_a: str,
    path_b: str,
    schedule: Any,
    duration_s: float,
    epoch_s: float,
    tune_np: bool,
    seed: int,
    engine_config: Any,
) -> dict[str, Any]:
    return {
        "scenario": _describe_scenario(scenario),
        "inner": inner,
        "path_a": str(path_a),
        "path_b": str(path_b),
        "schedule": schedule,
        "duration_s": float(duration_s),
        "epoch_s": float(epoch_s),
        "tune_np": bool(tune_np),
        "seed": int(seed),
        "engine_config": engine_config,
    }
