"""Content-addressed run cache.

Every simulation run is a pure function of its configuration and seed
(the determinism the checkpoint/resume and fast-path suites enforce),
which makes run results cacheable by content address: SHA-256 over a
canonical-JSON encoding of the complete configuration, plus a cache
schema version and an engine source fingerprint so entries can never
outlive a behavior change.  See DESIGN.md §12.

Layers:

* :mod:`repro.cache.canonical` — order-independent canonical JSON;
* :mod:`repro.cache.keys`      — key assembly + engine fingerprint;
* :mod:`repro.cache.backend`   — pluggable byte stores (``dir://``,
  in-memory; ``sqlite://`` and ``http://`` in sibling modules) selected
  by URL scheme;
* :mod:`repro.cache.resilience` — never-raise armor: per-op timeouts,
  bounded retry, circuit breaker, and the remote → local tier → miss
  degradation ladder (DESIGN.md §13);
* :mod:`repro.cache.chaos`     — seeded backend fault injection that
  proves the armor;
* :mod:`repro.cache.store`     — the entry format over any backend
  (damage = miss);
* :mod:`repro.cache.runtime`   — ``cache=`` resolution and the
  environment bridge that carries the decision into pool workers;
* :mod:`repro.cache.replay`    — telemetry replay on hits.

Quickstart::

    from repro.cache import RunCache
    from repro.experiments.runner import run_single

    cache = RunCache("/tmp/repro-cache")
    t1 = run_single(ANL_UC, NmTuner(), seed=1, cache=cache)  # simulates
    t2 = run_single(ANL_UC, NmTuner(), seed=1, cache=cache)  # disk hit
    # t1 and t2 are bit-identical, epochs AND steps.
"""

from repro.cache.backend import (
    DEFAULT_PRUNE_GRACE_S,
    CacheBackend,
    DirBackend,
    MemoryBackend,
    backend_from_url,
    split_cache_url,
)
from repro.cache.canonical import canonical_json, describe
from repro.cache.chaos import ChaosPolicy, FaultyBackend
from repro.cache.http_store import CacheServer, HttpBackend
from repro.cache.keys import (
    CACHE_SCHEMA_VERSION,
    engine_fingerprint,
    run_key,
)
from repro.cache.replay import replay_traces
from repro.cache.resilience import (
    BackendPolicy,
    ResilientBackend,
    TieredBackend,
)
from repro.cache.runtime import (
    DEFAULT_CACHE_DIRNAME,
    CacheSpec,
    activated,
    default_cache_dir,
    default_cache_spec,
    resolve_cache,
)
from repro.cache.sqlite_store import SqliteBackend
from repro.cache.store import CacheEntryInfo, CacheStats, RunCache

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIRNAME",
    "DEFAULT_PRUNE_GRACE_S",
    "BackendPolicy",
    "CacheBackend",
    "CacheEntryInfo",
    "CacheServer",
    "CacheSpec",
    "CacheStats",
    "ChaosPolicy",
    "DirBackend",
    "FaultyBackend",
    "HttpBackend",
    "MemoryBackend",
    "ResilientBackend",
    "RunCache",
    "SqliteBackend",
    "TieredBackend",
    "activated",
    "backend_from_url",
    "canonical_json",
    "default_cache_dir",
    "default_cache_spec",
    "describe",
    "engine_fingerprint",
    "replay_traces",
    "resolve_cache",
    "run_key",
    "split_cache_url",
]
