"""Never-raise hardening for cache backends.

The run cache's founding contract — *damage degrades to a miss, never a
crash* — was easy to keep while the only backend was a local directory.
A shared backend (sqlite file on a group disk, an HTTP store across the
network) adds whole new failure families: latency, timeouts, transient
errors, sustained outages.  This module makes the contract survive all
of them:

* :class:`ResilientBackend` wraps any :class:`~repro.cache.backend.
  CacheBackend` with **per-operation timeouts**, **bounded retry with
  exponential backoff**, and a **circuit breaker** (the
  :class:`repro.faults.CircuitBreaker` state machine, driven per cache
  operation instead of per control epoch).  No operation ever raises
  into the run path: a failed ``get`` is a miss, a failed ``put`` is a
  dropped write, a failed ``stat`` is "absent".
* :class:`TieredBackend` stacks a local tier in front of a remote one,
  so the degradation ladder is **remote → local tier → miss**: while the
  remote's breaker is open, hits the process has already seen keep
  landing from the local tier, and only genuinely cold keys fall through
  to a miss.

Every degradation is observable: ``repro_cache_backend_*`` counters on a
bound :class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.events.CacheBackendDegraded` /
:class:`~repro.obs.events.CacheBreakerTransition` events on a bound bus.
Timing is injectable (:class:`~repro.obs.clock.Clock`) so tests replay
backoff and breaker schedules deterministically.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, TypeVar

from repro.cache.backend import (
    CacheBackend,
    CacheEntryInfo,
    DEFAULT_PRUNE_GRACE_S,
)
from repro.faults.breaker import HALF_OPEN, OPEN, CircuitBreaker
from repro.obs.clock import Clock, WallClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.bus import EventBus
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "BackendPolicy",
    "BackendCounters",
    "BackendTimeout",
    "ResilientBackend",
    "TieredBackend",
]

T = TypeVar("T")


class BackendTimeout(Exception):
    """A backend operation exceeded its per-operation deadline."""


@dataclass(frozen=True)
class BackendPolicy:
    """How hard to try before degrading a backend operation.

    Retries target *transient* trouble; the breaker targets *sustained*
    trouble.  ``cooldown_ops`` is measured in operations rather than
    seconds: cache traffic is what drives recovery probes, so an idle
    store neither burns probes nor delays them, and a seeded test can
    replay the exact open → half-open → closed schedule by counting
    calls.

    ``timeout_s=None`` disables the deadline (and the worker-thread
    dispatch it needs) — the right setting for trusted local backends
    and for :class:`~repro.obs.clock.FakeClock` tests.
    """

    timeout_s: float | None = 5.0
    retries: int = 2
    base_backoff_s: float = 0.02
    backoff_factor: float = 2.0
    max_backoff_s: float = 0.5
    failure_threshold: int = 3
    cooldown_ops: int = 8

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_ops < 1:
            raise ValueError("cooldown_ops must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Deterministic exponential backoff for retry ``attempt``
        (0-based).  No jitter: cache callers are not thundering herds,
        and determinism keeps chaos runs replayable."""
        return min(
            self.base_backoff_s * self.backoff_factor ** attempt,
            self.max_backoff_s,
        )

    @classmethod
    def fast_test(cls) -> "BackendPolicy":
        """No deadline, no real sleeping to speak of — unit-test tuning."""
        return cls(timeout_s=None, base_backoff_s=0.0, max_backoff_s=0.0)


@dataclass
class BackendCounters:
    """What a :class:`ResilientBackend` absorbed on behalf of its caller."""

    ops: int = 0
    errors: int = 0
    timeouts: int = 0
    retries: int = 0
    degraded: int = 0

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "degraded": self.degraded,
        }


# One executor for every resilient backend in the process: deadline
# enforcement needs a worker thread, and per-store pools would leak one
# pool per resolved cache.  Hung calls can clog workers, but each
# backend's breaker opens after ``failure_threshold`` of them and stops
# submitting; the pool is sized to ride that out.
_POOL_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None
_POOL_THREAD_PREFIX = "repro-cache-io"


def _pool() -> ThreadPoolExecutor:
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=8, thread_name_prefix=_POOL_THREAD_PREFIX
            )
        return _POOL


def _reset_pool_after_fork() -> None:
    # A fork can land while a pool thread holds the executor's (or our)
    # lock; the child would deadlock on its first timed cache op.
    # Abandon the inherited executor — worker threads don't survive
    # fork anyway — and start fresh on demand.
    global _POOL, _POOL_LOCK
    _POOL_LOCK = threading.Lock()
    _POOL = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_reset_pool_after_fork)


class ResilientBackend(CacheBackend):
    """Timeout + retry + breaker armor around any backend.

    The wrapped backend may raise anything, hang, or lie; this wrapper
    turns every failure into the operation's safe default (miss-shaped:
    ``None`` / ``False`` / empty) after bounded effort, and opens a
    breaker under sustained failure so a dead backend costs a counter
    bump instead of a timeout per call.  While open, ``cooldown_ops``
    operations degrade instantly; the next operation is a half-open
    probe that closes the breaker on success.
    """

    def __init__(
        self,
        inner: CacheBackend,
        *,
        policy: BackendPolicy | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else BackendPolicy()
        self.clock = clock if clock is not None else WallClock()
        self.counters = BackendCounters()
        self.breaker = CircuitBreaker(
            failure_threshold=self.policy.failure_threshold,
            cooldown_epochs=self.policy.cooldown_ops,
        )
        self.breaker.on_transition = self._on_transition
        self.last_error: str | None = None
        self._metrics: "MetricsRegistry | None" = None
        self._bus: "EventBus | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ResilientBackend({self.inner!r})"

    @property
    def scheme(self) -> str:  # type: ignore[override]
        return self.inner.scheme

    @property
    def url(self) -> str:
        return self.inner.url

    # -- telemetry ---------------------------------------------------------

    def bind_metrics(self, registry: "MetricsRegistry | None") -> None:
        self._metrics = registry
        self.inner.bind_metrics(registry)

    def bind_bus(self, bus: "EventBus | None") -> None:
        self._bus = bus
        self.inner.bind_bus(bus)

    def _count(self, name: str, op: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                f"repro_cache_backend_{name}_total",
                backend=self.scheme, op=op,
            ).inc(amount)

    def _on_transition(self, old: str, new: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "repro_cache_backend_breaker_transitions_total",
                backend=self.scheme, old=old, new=new,
            ).inc()
        if self._bus is not None:
            from repro.obs.events import CacheBreakerTransition

            self._bus.emit(CacheBreakerTransition(
                time=self.clock.now(), backend=self.url, old=old, new=new,
            ))

    def _degrade(self, op: str, reason: str) -> None:
        self.counters.degraded += 1
        self.last_error = reason
        self._count("degraded", op)
        if self._bus is not None:
            from repro.obs.events import CacheBackendDegraded

            self._bus.emit(CacheBackendDegraded(
                time=self.clock.now(), backend=self.url, op=op,
                reason=reason,
            ))

    # -- the armor ---------------------------------------------------------

    def _invoke(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the per-operation deadline.

        Dispatches through the shared worker pool only when a deadline
        is set, and never from inside a pool worker itself (a nested
        resilient stack must not deadlock on its own pool)."""
        timeout = self.policy.timeout_s
        if (timeout is None
                or threading.current_thread().name.startswith(
                    _POOL_THREAD_PREFIX)):
            return fn()
        future = _pool().submit(fn)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            raise BackendTimeout(
                f"backend operation exceeded {timeout:g}s"
            ) from None

    def _call(self, op: str, fn: Callable[[], T], default: T) -> T:
        self.counters.ops += 1
        self._count("ops", op)
        state = self.breaker.state
        if state == OPEN:
            # Serving the default *is* this operation; it also advances
            # the cooldown toward the half-open probe.
            self.breaker.record_epoch(True)
            self._degrade(op, "breaker-open")
            return default
        if state == HALF_OPEN and not self.breaker.acquire_probe():
            # Another thread holds the probe: serve the default without
            # recording an epoch — the probe owner's outcome (and only
            # its outcome) resolves the half-open state.  Without the
            # atomic claim, racing threads each ran a "probe" and the
            # loser's failure could re-trip a breaker the winner had
            # just closed.
            self._degrade(op, "probe-in-flight")
            return default
        attempts = 1 if state == HALF_OPEN else self.policy.retries + 1
        reason = "unknown"
        for attempt in range(attempts):
            try:
                result = self._invoke(fn)
            except BaseException as exc:  # noqa: BLE001 - contract: never raise
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                if isinstance(exc, BackendTimeout):
                    self.counters.timeouts += 1
                    self._count("timeouts", op)
                else:
                    self.counters.errors += 1
                    self._count("errors", op)
                reason = f"{type(exc).__name__}: {exc}"
                if attempt + 1 < attempts:
                    self.counters.retries += 1
                    self._count("retries", op)
                    self.clock.sleep(self.policy.backoff_s(attempt))
            else:
                self.breaker.record_epoch(False)
                return result
        self.breaker.record_epoch(True)
        self._degrade(op, reason)
        return default

    # -- data plane --------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        return self._call("get", lambda: self.inner.get(key), None)

    def get_many(self, keys: Iterable[str]) -> dict[str, bytes]:
        keys = list(keys)
        if not keys:
            return {}
        return self._call("get_many", lambda: self.inner.get_many(keys), {})

    def put(self, key: str, data: bytes) -> Path | None:
        return self._call("put", lambda: self.inner.put(key, data), None)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        return self._call(
            "put_if_absent",
            lambda: self.inner.put_if_absent(key, data),
            False,
        )

    # -- metadata plane ----------------------------------------------------

    def stat(self, key: str) -> CacheEntryInfo | None:
        return self._call("stat", lambda: self.inner.stat(key), None)

    def stat_many(self, keys: Iterable[str]) -> set[str]:
        keys = list(keys)
        if not keys:
            return set()
        return self._call(
            "stat_many", lambda: self.inner.stat_many(keys), set()
        )

    def entries(self) -> list[CacheEntryInfo]:
        return self._call("entries", lambda: self.inner.entries(), [])

    def delete(self, key: str) -> bool:
        return self._call("delete", lambda: self.inner.delete(key), False)

    # -- management --------------------------------------------------------

    def clear(self) -> int:
        return self._call("clear", lambda: self.inner.clear(), 0)

    def prune(
        self,
        max_bytes: int,
        *,
        grace_s: float = DEFAULT_PRUNE_GRACE_S,
        now: float | None = None,
    ) -> list[str]:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        return self._call(
            "prune",
            lambda: self.inner.prune(max_bytes, grace_s=grace_s, now=now),
            [],
        )

    # -- health / lifecycle ------------------------------------------------

    def health(self) -> dict:
        """Health must keep working while the backend is down — it is
        how an operator *sees* that the backend is down."""
        doc = {
            "scheme": self.scheme,
            "url": self.url,
            "breaker": self.breaker.state,
            "breaker_opens": self.breaker.opens,
            "counters": self.counters.as_dict(),
            "last_error": self.last_error,
        }
        try:
            doc["inner"] = self._invoke(self.inner.health)
        except Exception as exc:  # noqa: BLE001 - reporting, not control flow
            doc["inner"] = {"error": f"{type(exc).__name__}: {exc}"}
        return doc

    def close(self) -> None:
        try:
            self.inner.close()
        except Exception:  # noqa: BLE001 - closing must not raise either
            pass


class TieredBackend(CacheBackend):
    """A local tier in front of a shared remote: remote → local → miss.

    Reads prefer the local tier and fall through to the remote; remote
    hits are copied into the local tier so a later remote outage still
    serves them.  Writes land in both (the remote via ``put_if_absent``
    — entries are content-addressed, so an existing remote entry is
    already byte-identical and need not be re-uploaded).

    Both tiers are expected to be :class:`ResilientBackend`-wrapped (as
    :func:`~repro.cache.backend.backend_from_url` builds them), so tier
    logic never sees an exception; a degraded remote simply answers
    miss-shaped defaults and the ladder takes the next rung down.
    """

    scheme = "tiered"

    def __init__(self, *, local: CacheBackend, remote: CacheBackend) -> None:
        self.local = local
        self.remote = remote

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"TieredBackend(local={self.local!r}, remote={self.remote!r})"

    @property
    def url(self) -> str:
        return self.remote.url

    # -- data plane --------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        data = self.local.get(key)
        if data is not None:
            return data
        data = self.remote.get(key)
        if data is not None:
            self.local.put_if_absent(key, data)
        return data

    def get_many(self, keys: Iterable[str]) -> dict[str, bytes]:
        keys = list(keys)
        out = self.local.get_many(keys)
        missing = [k for k in keys if k not in out]
        if missing:
            fetched = self.remote.get_many(missing)
            for key, data in fetched.items():
                self.local.put_if_absent(key, data)
            out.update(fetched)
        return out

    def put(self, key: str, data: bytes) -> Path | None:
        self.local.put(key, data)
        self.remote.put_if_absent(key, data)
        return None

    def put_if_absent(self, key: str, data: bytes) -> bool:
        self.local.put_if_absent(key, data)
        return self.remote.put_if_absent(key, data)

    # -- metadata plane ----------------------------------------------------

    def stat(self, key: str) -> CacheEntryInfo | None:
        return self.local.stat(key) or self.remote.stat(key)

    def stat_many(self, keys: Iterable[str]) -> set[str]:
        keys = list(keys)
        present = self.local.stat_many(keys)
        rest = [k for k in keys if k not in present]
        if rest:
            present |= self.remote.stat_many(rest)
        return present

    def entries(self) -> list[CacheEntryInfo]:
        """Union of both tiers (remote info wins for shared keys)."""
        merged = {e.key: e for e in self.local.entries()}
        merged.update({e.key: e for e in self.remote.entries()})
        return sorted(merged.values(), key=lambda e: (e.mtime, e.key))

    def delete(self, key: str) -> bool:
        remote = self.remote.delete(key)
        local = self.local.delete(key)
        return remote or local

    # -- management --------------------------------------------------------

    def clear(self) -> int:
        """Entries removed from the *remote* (the shared truth); the
        local tier is emptied alongside."""
        removed = self.remote.clear()
        self.local.clear()
        return removed

    def prune(
        self,
        max_bytes: int,
        *,
        grace_s: float = DEFAULT_PRUNE_GRACE_S,
        now: float | None = None,
    ) -> list[str]:
        evicted = self.remote.prune(max_bytes, grace_s=grace_s, now=now)
        local_evicted = self.local.prune(max_bytes, grace_s=grace_s, now=now)
        return evicted + [k for k in local_evicted if k not in evicted]

    # -- health / lifecycle ------------------------------------------------

    def health(self) -> dict:
        return {
            "scheme": self.scheme,
            "url": self.url,
            "tiers": {
                "local": self.local.health(),
                "remote": self.remote.health(),
            },
        }

    def bind_metrics(self, registry: "MetricsRegistry | None") -> None:
        self.local.bind_metrics(registry)
        self.remote.bind_metrics(registry)

    def bind_bus(self, bus: "EventBus | None") -> None:
        self.local.bind_bus(bus)
        self.remote.bind_bus(bus)

    def close(self) -> None:
        self.local.close()
        self.remote.close()
