"""Seeded fault injection for cache backends.

:class:`FaultyBackend` wraps any real backend and misbehaves on a
deterministic schedule: added latency, raised errors, corrupted read
payloads, and *torn writes* — a ``put`` that reports success but
persists damaged bytes, the way a crashed writer without atomic rename
would.  Every decision comes from one ``numpy`` Generator seeded at
construction, with a fixed per-operation draw order, so a chaos run is
exactly replayable from its seed — the same discipline
:class:`repro.faults.FaultSchedule` applies to transfer faults.

The wrapper exists to *prove* the resilience stack: the acceptance
suite runs campaigns through ``Resilient(Faulty(real))`` at a 30% fault
rate and requires zero crashes, zero hangs, and bit-identical hits.
Nothing in production ever constructs one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.cache.backend import (
    CacheBackend,
    CacheEntryInfo,
    DEFAULT_PRUNE_GRACE_S,
)
from repro.faults.corrupt import CORRUPTION_KINDS, corrupt_bytes
from repro.faults.errors import FaultError

__all__ = ["BackendFault", "ChaosPolicy", "FaultyBackend"]


class BackendFault(FaultError):
    """An injected (or detected) cache-backend failure."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Per-operation fault probabilities for a :class:`FaultyBackend`.

    Rates are independent per operation: each op first draws latency,
    then a hard error; reads that survive draw payload corruption and
    writes draw tearing.  ``latency_s`` is the injected sleep — keep it
    0 in tests that only care about error paths, so nothing actually
    sleeps.
    """

    seed: int = 0
    error_rate: float = 0.0
    latency_rate: float = 0.0
    latency_s: float = 0.05
    corrupt_rate: float = 0.0
    torn_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("error_rate", "latency_rate", "corrupt_rate",
                     "torn_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")

    @classmethod
    def storm(cls, seed: int = 0, rate: float = 0.3) -> "ChaosPolicy":
        """The acceptance-criteria schedule: ``rate`` of every fault
        class, latency injected as a draw but with zero sleep so the
        suite stays fast."""
        return cls(seed=seed, error_rate=rate, latency_rate=rate,
                   latency_s=0.0, corrupt_rate=rate, torn_rate=rate)


@dataclass
class ChaosCounts:
    """What a :class:`FaultyBackend` actually injected."""

    ops: int = 0
    errors: int = 0
    latencies: int = 0
    corruptions: int = 0
    torn_writes: int = 0

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "errors": self.errors,
            "latencies": self.latencies,
            "corruptions": self.corruptions,
            "torn_writes": self.torn_writes,
        }


@dataclass
class FaultyBackend(CacheBackend):
    """A backend that injects seeded faults around a real one.

    Draw order per operation is fixed (latency → error → damage kind if
    applicable), so the fault sequence depends only on the seed and the
    *number* of operations issued — not on timing, threading, or
    payload content.  ``get_many``/``stat_many`` delegate to per-key
    calls for exactly this reason: one key, one draw sequence.
    """

    inner: CacheBackend
    policy: ChaosPolicy = field(default_factory=ChaosPolicy)
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.policy.seed)
        self.counts = ChaosCounts()

    scheme = "chaos"

    @property
    def url(self) -> str:
        return f"chaos+{self.inner.url}"

    # -- fault engine ------------------------------------------------------

    def _pre_op(self, op: str) -> None:
        """Latency then error, in that order, every operation."""
        self.counts.ops += 1
        p = self.policy
        if self._rng.random() < p.latency_rate:
            self.counts.latencies += 1
            if p.latency_s > 0:
                self.sleep(p.latency_s)
        if self._rng.random() < p.error_rate:
            self.counts.errors += 1
            raise BackendFault(f"injected backend error during {op}")

    def _maybe_corrupt(self, data: bytes) -> bytes:
        if self._rng.random() < self.policy.corrupt_rate:
            self.counts.corruptions += 1
            kind = CORRUPTION_KINDS[
                int(self._rng.integers(0, len(CORRUPTION_KINDS)))
            ]
            return corrupt_bytes(data, kind=kind, rng=self._rng)
        return data

    def _maybe_tear(self, data: bytes) -> bytes:
        if self._rng.random() < self.policy.torn_rate:
            self.counts.torn_writes += 1
            kind = CORRUPTION_KINDS[
                int(self._rng.integers(0, len(CORRUPTION_KINDS)))
            ]
            return corrupt_bytes(data, kind=kind, rng=self._rng)
        return data

    # -- data plane ----------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        self._pre_op("get")
        data = self.inner.get(key)
        if data is None:
            return None
        return self._maybe_corrupt(data)

    def get_many(self, keys: Iterable[str]) -> dict[str, bytes]:
        out: dict[str, bytes] = {}
        for key in keys:
            data = self.get(key)
            if data is not None:
                out[key] = data
        return out

    def put(self, key: str, data: bytes) -> Path | None:
        self._pre_op("put")
        # A torn write *succeeds* from the caller's point of view — the
        # damage is only discovered (and degraded to a miss) on read.
        return self.inner.put(key, self._maybe_tear(data))

    def put_if_absent(self, key: str, data: bytes) -> bool:
        self._pre_op("put_if_absent")
        return self.inner.put_if_absent(key, self._maybe_tear(data))

    # -- metadata plane ---------------------------------------------------------

    def stat(self, key: str) -> CacheEntryInfo | None:
        self._pre_op("stat")
        return self.inner.stat(key)

    def stat_many(self, keys: Iterable[str]) -> set[str]:
        return {k for k in keys if self.stat(k) is not None}

    def entries(self) -> list[CacheEntryInfo]:
        self._pre_op("entries")
        return self.inner.entries()

    def delete(self, key: str) -> bool:
        self._pre_op("delete")
        return self.inner.delete(key)

    def clear(self) -> int:
        self._pre_op("clear")
        return self.inner.clear()

    def prune(self, max_bytes, *, grace_s=DEFAULT_PRUNE_GRACE_S, now=None):
        self._pre_op("prune")
        return self.inner.prune(max_bytes, grace_s=grace_s, now=now)

    # -- health / lifecycle -------------------------------------------------------

    def health(self) -> dict:
        return {
            "scheme": self.scheme,
            "url": self.url,
            "injected": self.counts.as_dict(),
            "inner": self.inner.health(),
        }

    def close(self) -> None:
        self.inner.close()
