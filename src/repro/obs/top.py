"""``repro top`` — a curses-free ANSI dashboard for transfer runs.

Renders the live state of a tuned transfer from either source of truth:

* a **checkpoint journal** (``repro run --journal``) — including one a
  run is *still writing*: the reader tolerates the torn tail a
  concurrent fsynced append leaves behind, so ``repro top --follow``
  works as a live monitor against the same file that makes the run
  crash-safe;
* a **completed trace** file (``repro run --trace-out``).

Each frame shows, per session: a throughput sparkline over the recent
control epochs, the current ``(nc, np)``, the circuit-breaker state,
fault counts by kind, retry totals, and how many epochs actually fed
the tuner.  Pure string rendering (:func:`render`) is separated from
the terminal loop (:func:`follow`) so tests can pin frames exactly.
"""

from __future__ import annotations

import os
import sys
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, TextIO

from repro.checkpoint.journal import read_journal
from repro.sim.trace import EpochRecord
from repro.sim.traceio import CorruptTraceError, load_trace

#: Unicode eighth-block ramp for sparklines (space = zero).
SPARK_CHARS = " ▁▂▃▄▅▆▇█"

#: ANSI: cursor home + clear to end of screen (no curses, no altscreen).
CLEAR = "\x1b[H\x1b[J"


def sparkline(values: list[float], width: int = 60) -> str:
    """The last ``width`` values as a unicode block sparkline, scaled to
    the window's maximum."""
    if width < 1:
        raise ValueError("width must be >= 1")
    window = [max(0.0, float(v)) for v in values[-width:]]
    if not window:
        return ""
    top = max(window)
    if top <= 0:
        return SPARK_CHARS[0] * len(window)
    n = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(n, round(v / top * n))] for v in window
    )


@dataclass
class TopView:
    """Everything one dashboard frame needs, source-agnostic."""

    source: str
    kind: str  #: "journal" or "trace"
    sessions: dict[str, list[EpochRecord]] = field(default_factory=dict)
    config: dict | None = None  #: run header (journal source only)
    ended: bool = False

    @property
    def live(self) -> bool:
        return self.kind == "journal" and not self.ended


def view_from_journal(path: str | Path) -> TopView:
    """Build a view from a (possibly in-progress) journal."""
    with warnings.catch_warnings():
        # A torn tail just means the writer is mid-append; the dashboard
        # renders the complete prefix without complaint.
        warnings.simplefilter("ignore")
        journal = read_journal(path)
    view = TopView(source=str(path), kind="journal", ended=journal.ended)
    if journal.header is not None:
        view.config = journal.header.get("run")
    for je in journal.epochs:
        view.sessions.setdefault(je.session, []).append(je.record)
    return view


def view_from_trace(path: str | Path) -> TopView:
    """Build a view from a completed trace JSON file."""
    trace = load_trace(path)
    label = trace.label or "main"
    return TopView(
        source=str(path), kind="trace",
        sessions={label: list(trace.epochs)}, ended=True,
    )


def load_view(path: str | Path) -> TopView:
    """Sniff ``path`` as a journal first, then as a trace file."""
    try:
        view = view_from_journal(path)
    except (CorruptTraceError, ValueError):
        return view_from_trace(path)
    if view.config is None and not view.sessions:
        # Parsed but empty-as-a-journal: either a journal whose header
        # is still being appended, or not a journal at all — a trace
        # file is one JSON line, which torn-tail tolerance swallows
        # whole.  Try the trace reader; fall back to the empty journal.
        try:
            return view_from_trace(path)
        except (CorruptTraceError, ValueError, KeyError, TypeError):
            return view
    return view


def _fault_summary(epochs: list[EpochRecord]) -> str:
    counts: dict[str, int] = {}
    for rec in epochs:
        if rec.fault is not None:
            counts[rec.fault] = counts.get(rec.fault, 0) + 1
    if not counts:
        return "none"
    return " ".join(f"{k}×{n}" for k, n in sorted(counts.items()))


def _current_np(rec: EpochRecord, config: dict | None) -> str:
    if len(rec.params) >= 2:
        return str(rec.params[1])
    if config is not None and "fixed_np" in config:
        return str(config["fixed_np"])
    return "-"


def render(view: TopView, width: int = 72) -> str:
    """One dashboard frame as plain text (no cursor control)."""
    spark_w = max(16, width - 12)
    state = "LIVE" if view.live else (
        "complete" if view.ended else "static"
    )
    lines = [f"repro top — {view.source} [{state}]"]
    if view.config:
        c = view.config
        lines.append(
            f"run: scenario={c.get('scenario')} tuner={c.get('tuner')} "
            f"load={c.get('load')} seed={c.get('seed')}"
        )
    lines.append("─" * width)
    if not view.sessions:
        lines.append("(no epochs journaled yet)")
    for name, epochs in view.sessions.items():
        last = epochs[-1]
        observed = [e.observed for e in epochs]
        mean = sum(observed) / len(observed)
        tuned = sum(1 for e in epochs if e.tuned)
        retries = last.retries
        lines.append(
            f"{name}: epoch {last.index}  nc={last.params[0]} "
            f"np={_current_np(last, view.config)}  "
            f"obs {last.observed:.0f} MB/s  mean {mean:.0f}  "
            f"breaker {last.breaker}"
        )
        lines.append(
            f"  tput │{sparkline(observed, spark_w)}│ "
            f"peak {max(observed):.0f}"
        )
        lines.append(
            f"  faults: {_fault_summary(epochs)}  retries: {retries}  "
            f"tuner-fed {tuned}/{len(epochs)}  "
            f"moved {sum(e.bytes_moved for e in epochs) / 1e9:.1f} GB"
        )
    lines.append("─" * width)
    return "\n".join(lines)


def render_path(path: str | Path, width: int = 72) -> str:
    """Load ``path`` (journal or trace) and render one frame."""
    return render(load_view(path), width=width)


def follow(
    path: str | Path,
    *,
    interval_s: float = 2.0,
    width: int = 72,
    out: TextIO | None = None,
    sleep: Callable[[float], None] = time.sleep,
    max_frames: int | None = None,
) -> int:
    """Re-render ``path`` every ``interval_s`` until the run ends.

    Returns the number of frames drawn.  ``max_frames`` bounds the loop
    (tests); a missing file is reported and polled for, so ``repro top
    --follow`` can be started before the run.

    The tailer is stateful so it can watch a *long-running service*
    journal: each tick stats the file and compares an
    ``(inode, size, mtime)`` signature.  An unchanged signature re-renders
    the cached view without re-parsing; a changed inode or a shrunken
    file means the journal was rotated/truncated and is reloaded from
    scratch (never tailed through a stale view); a half-written state
    mid-rotation (any parse error) holds the last complete frame and
    retries next tick instead of crashing the dashboard.
    """
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if out is None:
        # Resolved per call, not at import: the process's stdout may be
        # redirected/replaced after this module loads (pytest capture).
        out = sys.stdout
    frames = 0
    last_view: TopView | None = None
    last_sig: tuple | None = None
    while True:
        view: TopView | None = None
        fresh = False  #: view reflects the file as it is *right now*
        note = ""
        try:
            st = os.stat(path)
            sig = (st.st_ino, st.st_size, st.st_mtime_ns)
        except FileNotFoundError:
            sig = None
            last_sig = None
        if sig is not None:
            if sig == last_sig and last_view is not None:
                view, fresh = last_view, True
            else:
                rotated = (last_sig is not None
                           and (sig[0] != last_sig[0]
                                or sig[1] < last_sig[1]))
                try:
                    view = load_view(path)
                    last_view, last_sig = view, sig
                    fresh = True
                    if rotated:
                        note = "journal rotated — reloaded"
                except FileNotFoundError:
                    last_sig = None
                except Exception:
                    # Torn mid-rotation/truncation state: hold the last
                    # complete frame, force a re-read next tick.
                    view = last_view
                    last_sig = None
                    note = "journal changing — holding last frame"
        frames += 1
        if view is not None:
            body = render(view, width=width)
            if note:
                body += f"\n[{note}]"
            out.write(CLEAR + body + "\n")
            out.flush()
            if fresh and view.ended:
                return frames
        else:
            out.write(f"{CLEAR}repro top — waiting for {path}\n")
            out.flush()
        if max_frames is not None and frames >= max_frames:
            return frames
        sleep(interval_s)
