"""Zero-dependency structured event bus with bounded subscribers.

The bus decouples the control loop (the producer) from telemetry
consumers: each subscriber owns a bounded ring buffer, so a slow or
stuck consumer can never stall an epoch — the bus drops that
subscriber's *oldest* events instead and counts the loss.

Two consumption styles:

* :meth:`EventBus.subscribe` — a :class:`RingSubscriber` the consumer
  drains at its leisure (the dashboard, tests).  Overflow is explicit:
  ``dropped`` counts events the ring evicted unread.
* :meth:`EventBus.attach` — a synchronous sink called inline on every
  emit (the JSONL exporter).  Sinks must be fast and must not raise; a
  raising sink is detached after its first exception and counted in
  :attr:`EventBus.sink_errors`, so one broken exporter cannot poison
  the run.

:data:`NULL_BUS` is the off-by-default stand-in: ``emit`` is a no-op,
making fully wired instrumentation nearly free when nobody listens.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.obs.events import Event


class RingSubscriber:
    """A bounded, drop-oldest event buffer owned by one consumer."""

    def __init__(
        self,
        maxlen: int = 1024,
        kinds: Iterable[str] | None = None,
    ) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self.kinds = frozenset(kinds) if kinds is not None else None
        self._buffer: deque[Event] = deque(maxlen=maxlen)
        #: Events evicted unread because the ring was full.
        self.dropped = 0
        #: Events accepted (matched the kind filter), dropped or not.
        self.received = 0

    def accept(self, event: Event) -> None:
        """Called by the bus; never blocks, never grows unboundedly."""
        if self.kinds is not None and event.kind not in self.kinds:
            return
        self.received += 1
        if len(self._buffer) == self.maxlen:
            self.dropped += 1
        self._buffer.append(event)

    def __len__(self) -> int:
        return len(self._buffer)

    def peek(self) -> list[Event]:
        """Buffered events, oldest first, without consuming them."""
        return list(self._buffer)

    def drain(self) -> list[Event]:
        """Remove and return all buffered events, oldest first."""
        out = list(self._buffer)
        self._buffer.clear()
        return out


class EventBus:
    """Synchronous fan-out of events to bounded subscribers and sinks."""

    def __init__(self) -> None:
        self._subscribers: list[RingSubscriber] = []
        self._sinks: list[Callable[[Event], None]] = []
        #: Events emitted, by kind tag.
        self.counts: dict[str, int] = {}
        #: Sinks detached because they raised.
        self.sink_errors = 0

    # -- wiring ----------------------------------------------------------

    def subscribe(
        self,
        maxlen: int = 1024,
        kinds: Iterable[str] | None = None,
    ) -> RingSubscriber:
        """A new ring-buffer subscriber (optionally kind-filtered)."""
        sub = RingSubscriber(maxlen=maxlen, kinds=kinds)
        self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: RingSubscriber) -> None:
        if sub in self._subscribers:
            self._subscribers.remove(sub)

    def attach(self, sink: Callable[[Event], None]) -> Callable[[Event], None]:
        """Register a synchronous sink; returns it for later :meth:`detach`."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Callable[[Event], None]) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    # -- publishing ------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Publish one event to every subscriber and sink."""
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        for sub in self._subscribers:
            sub.accept(event)
        for sink in list(self._sinks):
            try:
                sink(event)
            except Exception:
                # Telemetry must never kill the transfer: drop the sink.
                self.detach(sink)
                self.sink_errors += 1

    @property
    def total_emitted(self) -> int:
        return sum(self.counts.values())


class NullBus(EventBus):
    """A bus that drops everything — the off-by-default fast path."""

    def emit(self, event: Event) -> None:  # noqa: ARG002 - intentional no-op
        pass

    def subscribe(self, maxlen: int = 1024, kinds=None) -> RingSubscriber:
        raise RuntimeError(
            "NullBus drops all events; subscribe to a real EventBus"
        )


#: Shared no-op bus instance.
NULL_BUS = NullBus()
