"""Labeled metrics: counters, gauges, and mergeable fixed-bucket histograms.

A :class:`MetricsRegistry` keys every metric by ``(name, labels)`` —
e.g. ``repro_epochs_total{session="main", tuner="nm"}`` — and renders
the whole set as a Prometheus text-format snapshot
(:meth:`MetricsRegistry.render_prometheus`).

Histograms use *fixed* bucket boundaries chosen at creation, which makes
them mergeable across sessions, shards, or resumed runs: adding two
histograms bucket-wise is exact, and any quantile estimated from the
merged counts is within one bucket width of the true sample quantile
(the property the tests pin down).  No numpy, no locks, no background
threads — plain dicts and lists, cheap enough for per-epoch updates.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Iterable

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for throughput in MB/s.
THROUGHPUT_BUCKETS_MBPS = (
    25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0,
)

#: Default histogram buckets for code-path latencies in seconds.
LATENCY_BUCKETS_S = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"bad label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with mergeable quantile estimates.

    ``buckets`` are strictly increasing finite upper bounds; an implicit
    overflow bucket catches everything above the last bound.  A value
    ``v`` lands in the first bucket whose bound is ``>= v``.
    """

    __slots__ = ("buckets", "counts", "count", "total", "overflow")

    def __init__(self, buckets: Iterable[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise ValueError("bucket bounds must be finite")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        i = bisect_left(self.buckets, v)
        if i == len(self.buckets):
            self.overflow += 1
        else:
            self.counts[i] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile by linear interpolation within the
        containing bucket; exact to within one bucket width.

        Values in the overflow bucket are reported as the last finite
        bound (the estimate saturates there).  Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0.0
        lo = 0.0 if self.buckets[0] > 0 else self.buckets[0]
        for bound, n in zip(self.buckets, self.counts):
            if n and cum + n >= target:
                frac = (target - cum) / n
                return lo + frac * (bound - lo)
            cum += n
            lo = bound
        return self.buckets[-1]

    def merge(self, other: "Histogram") -> "Histogram":
        """Bucket-wise sum; both histograms must share bounds."""
        if self.buckets != other.buckets:
            raise ValueError(
                "cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        out = Histogram(self.buckets)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.overflow = self.overflow + other.overflow
        out.count = self.count + other.count
        out.total = self.total + other.total
        return out


class MetricsRegistry:
    """All metrics of one run, keyed by labeled names."""

    def __init__(self) -> None:
        # name -> kind tag ("counter"/"gauge"/"histogram")
        self._kinds: dict[str, str] = {}
        # name -> label key -> metric object
        self._families: dict[str, dict[LabelKey, object]] = {}

    def _get(
        self, name: str, kind: str, factory, labels: dict[str, str]
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        have = self._kinds.get(name)
        if have is None:
            self._kinds[name] = kind
            self._families[name] = {}
        elif have != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {have}"
            )
        family = self._families[name]
        key = _label_key(labels)
        metric = family.get(key)
        if metric is None:
            metric = family[key] = factory()
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, "counter", Counter, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, "gauge", Gauge, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = LATENCY_BUCKETS_S,
        **labels: str,
    ) -> Histogram:
        bounds = tuple(buckets)
        hist = self._get(name, "histogram", lambda: Histogram(bounds), labels)
        if hist.buckets != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{hist.buckets}"
            )
        return hist

    # -- introspection ---------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._families)

    def collect(self) -> dict[str, dict[LabelKey, object]]:
        """The raw families (name -> label key -> metric)."""
        return {n: dict(f) for n, f in self._families.items()}

    def snapshot(self) -> dict:
        """JSON-ready dump of every metric's current value."""
        out: dict = {}
        for name in self.names():
            kind = self._kinds[name]
            series = []
            for key, metric in sorted(self._families[name].items()):
                labels = dict(key)
                if kind == "histogram":
                    assert isinstance(metric, Histogram)
                    series.append({
                        "labels": labels,
                        "count": metric.count,
                        "sum": metric.total,
                        "buckets": dict(
                            zip((str(b) for b in metric.buckets),
                                metric.counts)
                        ),
                        "overflow": metric.overflow,
                        "p50": metric.quantile(0.5),
                        "p99": metric.quantile(0.99),
                    })
                else:
                    series.append({"labels": labels, "value": metric.value})
            out[name] = {"kind": kind, "series": series}
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4) of all metrics."""
        lines: list[str] = []
        for name in self.names():
            kind = self._kinds[name]
            lines.append(f"# TYPE {name} {kind}")
            for key, metric in sorted(self._families[name].items()):
                if kind == "histogram":
                    assert isinstance(metric, Histogram)
                    cum = 0
                    for bound, n in zip(metric.buckets, metric.counts):
                        cum += n
                        labels = _format_labels(
                            key + (("le", repr(bound)),)
                        )
                        lines.append(f"{name}_bucket{labels} {cum}")
                    labels = _format_labels(key + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{labels} {metric.count}")
                    lines.append(
                        f"{name}_sum{_format_labels(key)} {metric.total}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(key)} {metric.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} {metric.value}"
                    )
        return "\n".join(lines) + "\n"
