"""Injectable clocks: one timing source per control loop.

The live loop used to mix wall-clock sources — ``time.monotonic`` inside
the subprocess runner, an injectable ``sleep`` in the loop, and nominal
epoch lengths in the records — which made timing assertions in tests
depend on the real scheduler.  A :class:`Clock` bundles *now* and
*sleep* into one object the whole loop shares: production code uses
:class:`WallClock`; tests use :class:`FakeClock`, where sleeping simply
advances ``now`` — so span durations, backoff accounting and epoch
ledgers all agree exactly.
"""

from __future__ import annotations

import time
from typing import Callable


class Clock:
    """Protocol: ``now() -> float`` (monotonic seconds) and ``sleep(s)``."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class WallClock(Clock):
    """Real time: ``time.monotonic`` + ``time.sleep`` (both injectable)."""

    def __init__(
        self,
        now_fn: Callable[[], float] = time.monotonic,
        sleep_fn: Callable[[float], None] = time.sleep,
    ) -> None:
        self._now = now_fn
        self._sleep = sleep_fn

    def now(self) -> float:
        return self._now()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._sleep(seconds)


class FakeClock(Clock):
    """Deterministic test clock: sleeping advances ``now`` instantly."""

    def __init__(self, start: float = 0.0) -> None:
        self._t = float(start)
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._t

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.sleeps.append(seconds)
        self._t += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        self._t += seconds
