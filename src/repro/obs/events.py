"""Typed observability events.

Every interesting state change in the control loop — epoch boundaries,
tuner decisions, faults, retries, breaker transitions, journal
snapshots, monitor trips — is one immutable event object published on an
:class:`~repro.obs.bus.EventBus`.  Events are pure data (frozen, slotted
dataclasses) with a stable ``kind`` tag and a lossless dict form, so the
JSONL exporter, the ``repro top`` dashboard and the tests all consume
the same stream.

Determinism contract
--------------------
Event payloads and ordering are derived exclusively from the simulation
clock and the control-loop state (never from wall-clock reads), so two
runs with the same seed — or a crashed run resumed from its journal —
publish identical streams.  :func:`events_from_records` reconstructs the
``EpochEnd`` / ``FaultInjected`` / ``BreakerTransition`` subsequence
from journaled epochs alone, which is what lets ``repro top`` replay a
finished (or in-progress) journal and lets the determinism tests compare
a resumed run against an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Iterable

from repro.sim.trace import EpochRecord


@dataclass(frozen=True, slots=True, kw_only=True)
class Event:
    """Base event: when it happened and which session it concerns.

    ``time`` is simulation time for sim runs and the live loop's elapsed
    wall-clock ledger for live runs; run-level events (e.g. snapshots)
    leave ``session`` empty.
    """

    kind: ClassVar[str] = "event"

    time: float
    session: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form; tuples become lists."""
        out: dict = {"kind": self.kind}
        for f in fields(self):
            v = getattr(self, f.name)
            out[f.name] = list(v) if isinstance(v, tuple) else v
        return out


@dataclass(frozen=True, slots=True, kw_only=True)
class EpochStart(Event):
    """A control epoch began with these parameters."""

    kind: ClassVar[str] = "epoch-start"

    index: int
    params: tuple[int, ...]


@dataclass(frozen=True, slots=True, kw_only=True)
class EpochEnd(Event):
    """A control epoch closed; mirrors the trace's epoch record."""

    kind: ClassVar[str] = "epoch-end"

    index: int
    params: tuple[int, ...]
    observed: float
    best_case: float
    bytes_moved: float
    faulted: bool = False
    fault: str | None = None
    retries: int = 0
    breaker: str = "closed"
    tuned: bool = True


@dataclass(frozen=True, slots=True, kw_only=True)
class TunerProposal(Event):
    """The tuner proposed parameters for the next epoch.

    ``observed`` is the throughput fed to the search, or ``None`` when
    the standing proposal was reused (a half-open breaker probe).
    """

    kind: ClassVar[str] = "tuner-proposal"

    index: int
    params: tuple[int, ...]
    observed: float | None = None


@dataclass(frozen=True, slots=True, kw_only=True)
class TunerAccept(Event):
    """The session adopted the tuner's proposal for the next epoch."""

    kind: ClassVar[str] = "tuner-accept"

    index: int
    params: tuple[int, ...]


@dataclass(frozen=True, slots=True, kw_only=True)
class TunerReject(Event):
    """The tuner was bypassed this epoch; ``params`` is what the session
    runs instead (held or fallback parameters).

    Reasons: ``faulted`` (lost epoch), ``obs-loss`` (measurement
    dropped), ``breaker-open`` (pinned at the safe default),
    ``budget-exhausted`` (session abort ended the run).
    """

    kind: ClassVar[str] = "tuner-reject"

    index: int
    params: tuple[int, ...]
    reason: str


@dataclass(frozen=True, slots=True, kw_only=True)
class FaultInjected(Event):
    """A fault (hard or observation loss) hit this epoch."""

    kind: ClassVar[str] = "fault-injected"

    index: int
    fault: str


@dataclass(frozen=True, slots=True, kw_only=True)
class RetryAttempt(Event):
    """The retry policy charged one relaunch."""

    kind: ClassVar[str] = "retry-attempt"

    index: int
    attempt: int  #: session-cumulative retry count after this attempt
    backoff_s: float


@dataclass(frozen=True, slots=True, kw_only=True)
class BreakerTransition(Event):
    """The circuit breaker changed state after this epoch."""

    kind: ClassVar[str] = "breaker-transition"

    index: int
    old: str
    new: str


@dataclass(frozen=True, slots=True, kw_only=True)
class SnapshotWritten(Event):
    """A checkpoint snapshot reached the journal (fsynced)."""

    kind: ClassVar[str] = "snapshot-written"

    epochs: int  #: closed epochs the snapshot accounts for (all sessions)


@dataclass(frozen=True, slots=True, kw_only=True)
class MonitorTrip(Event):
    """A change monitor fired (the tuner will re-search)."""

    kind: ClassVar[str] = "monitor-trip"

    value: float


@dataclass(frozen=True, slots=True, kw_only=True)
class CacheBackendDegraded(Event):
    """A cache backend operation was absorbed into its miss-shaped
    default (after retries, or instantly while the breaker is open).

    Telemetry about the *infrastructure*, not the run: these events are
    stamped with the resilience layer's clock and are deliberately
    outside the deterministic replay contract — a healthy backend emits
    none, and :func:`events_from_records` never reconstructs them.
    """

    kind: ClassVar[str] = "cache-backend-degraded"

    backend: str
    op: str
    reason: str


@dataclass(frozen=True, slots=True, kw_only=True)
class CacheBreakerTransition(Event):
    """A cache backend's circuit breaker changed state."""

    kind: ClassVar[str] = "cache-breaker-transition"

    backend: str
    old: str
    new: str


#: kind tag -> event class, for deserialization and kind filters.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        EpochStart, EpochEnd, TunerProposal, TunerAccept, TunerReject,
        FaultInjected, RetryAttempt, BreakerTransition, SnapshotWritten,
        MonitorTrip, CacheBackendDegraded, CacheBreakerTransition,
    )
}

_TUPLE_FIELDS = ("params",)


def event_from_dict(data: dict) -> Event:
    """Inverse of :meth:`Event.to_dict`."""
    kind = data.get("kind")
    try:
        cls = EVENT_TYPES[kind]
    except KeyError:
        raise ValueError(
            f"unknown event kind {kind!r}; known: {sorted(EVENT_TYPES)}"
        ) from None
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    for name in _TUPLE_FIELDS:
        if name in kwargs and isinstance(kwargs[name], list):
            kwargs[name] = tuple(kwargs[name])
    return cls(**kwargs)


def events_from_records(
    session: str, records: Iterable[EpochRecord]
) -> list[Event]:
    """Reconstruct one session's replayable event subsequence from its
    epoch records (a journal or a trace).

    Emits, in stream order: ``FaultInjected`` (when the epoch carried a
    fault), ``EpochEnd``, and the ``BreakerTransition`` that followed —
    derived from consecutive records' governing breaker states, exactly
    the subsequence a live run emits for the same epochs.  A transition
    after the final record (if any) is unknowable from records alone and
    is never emitted; live runs match because a finished session skips
    its last dispatch.
    """
    out: list[Event] = []
    prev: EpochRecord | None = None
    for rec in records:
        end_t = rec.start + rec.duration
        if prev is not None and prev.breaker != rec.breaker:
            out.append(BreakerTransition(
                time=prev.start + prev.duration, session=session,
                index=prev.index, old=prev.breaker, new=rec.breaker,
            ))
        if rec.fault is not None:
            out.append(FaultInjected(
                time=end_t, session=session, index=rec.index,
                fault=rec.fault,
            ))
        out.append(EpochEnd(
            time=end_t, session=session, index=rec.index,
            params=tuple(rec.params), observed=rec.observed,
            best_case=rec.best_case, bytes_moved=rec.bytes_moved,
            faulted=rec.faulted, fault=rec.fault, retries=rec.retries,
            breaker=rec.breaker, tuned=rec.tuned,
        ))
        prev = rec
    return out
