"""Observability subsystem: event bus, metrics, spans, exporters, top.

Everything here is optional and off-by-default-cheap: the control loops
accept one :class:`Instrumentation` bundle (default ``None``), and even
a fully wired loop publishing into the :data:`NULL_BUS` costs almost
nothing.  Event streams are deterministic under the sim clock — see
:mod:`repro.obs.events` for the contract.
"""

from repro.obs.bus import NULL_BUS, EventBus, NullBus, RingSubscriber
from repro.obs.clock import Clock, FakeClock, WallClock
from repro.obs.events import (
    EVENT_TYPES,
    BreakerTransition,
    CacheBackendDegraded,
    CacheBreakerTransition,
    EpochEnd,
    EpochStart,
    Event,
    FaultInjected,
    MonitorTrip,
    RetryAttempt,
    SnapshotWritten,
    TunerAccept,
    TunerProposal,
    TunerReject,
    event_from_dict,
    events_from_records,
)
from repro.obs.exporters import (
    JsonlEventLog,
    read_event_log,
    write_prometheus,
)
from repro.obs.instrument import Instrumentation, instrument_monitor
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    THROUGHPUT_BUCKETS_MBPS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import SPAN_METRIC, SpanRecorder

#: Dashboard symbols, loaded lazily (PEP 562): ``repro.obs.top`` pulls in
#: the checkpoint layer, which imports the engine — which imports
#: ``repro.obs.events``.  Deferring the dashboard breaks that cycle
#: without pushing lazy imports into the engine's hot path.
_TOP_EXPORTS = (
    "TopView", "sparkline", "render", "render_path", "load_view",
    "view_from_journal", "view_from_trace", "follow",
)


def __getattr__(name: str):
    if name in _TOP_EXPORTS:
        from repro.obs import top

        return getattr(top, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    # bus
    "EventBus", "NullBus", "NULL_BUS", "RingSubscriber",
    # clock
    "Clock", "WallClock", "FakeClock",
    # events
    "Event", "EpochStart", "EpochEnd", "TunerProposal", "TunerAccept",
    "TunerReject", "FaultInjected", "RetryAttempt", "BreakerTransition",
    "SnapshotWritten", "MonitorTrip", "CacheBackendDegraded",
    "CacheBreakerTransition", "EVENT_TYPES", "event_from_dict",
    "events_from_records",
    # exporters
    "JsonlEventLog", "read_event_log", "write_prometheus",
    # instrumentation bundle
    "Instrumentation", "instrument_monitor",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "LATENCY_BUCKETS_S", "THROUGHPUT_BUCKETS_MBPS",
    # spans
    "SpanRecorder", "SPAN_METRIC",
    # top
    "TopView", "sparkline", "render", "render_path", "load_view",
    "view_from_journal", "view_from_trace", "follow",
]
