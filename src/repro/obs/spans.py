"""Epoch spans: nested timing contexts for per-phase latency.

A :class:`SpanRecorder` times named phases of the control loop —
``epoch/propose`` (tuner compute), ``epoch/transfer`` (moving bytes),
``epoch/observe`` (closing the epoch) — and records each duration into a
labeled histogram in a :class:`~repro.obs.metrics.MetricsRegistry`, so
per-phase cost is attributable and mergeable across runs.

Span durations are *measurements of the controller's own code*, not of
simulated time, so they are deliberately **not** published on the event
bus: the event stream stays deterministic under the sim clock while the
spans capture real latency.  The clock is injectable via the same
:class:`~repro.obs.clock.Clock` protocol ``tune_live`` uses — production
defaults to a :class:`~repro.obs.clock.WallClock` over
``time.perf_counter``; tests pass a
:class:`~repro.obs.clock.FakeClock` (or any bare ``() -> float``
callable) so durations are exact.

Use either the context-manager form::

    with spans.span("epoch"):
        with spans.span("propose"):
            ...

or, on hot paths where a generator frame per step is too dear, the
explicit form: ``t0 = spans.now(); ...; spans.record("epoch/transfer",
spans.now() - t0)``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.clock import Clock, WallClock
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry

#: Metric name span durations are recorded under (label: ``phase``).
SPAN_METRIC = "repro_span_seconds"


class SpanRecorder:
    """Records nested phase timings into a metrics registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Clock | Callable[[], float] | None = None,
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
        **labels: str,
    ) -> None:
        if clock is None:
            clock = WallClock(now_fn=time.perf_counter)
        self.registry = registry
        self.now: Callable[[], float] = (
            clock.now if isinstance(clock, Clock) else clock
        )
        self.buckets = buckets
        self.labels = labels
        self._stack: list[str] = []
        #: Most recent duration per phase path (cheap test/CLI access).
        self.last: dict[str, float] = {}

    def record(self, phase: str, seconds: float) -> None:
        """Record one finished phase duration (explicit form)."""
        if seconds < 0:
            raise ValueError("span duration must be non-negative")
        self.last[phase] = seconds
        self.registry.histogram(
            SPAN_METRIC, buckets=self.buckets, phase=phase, **self.labels
        ).observe(seconds)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a phase; nesting joins names with ``/``."""
        if "/" in name:
            raise ValueError("span names must not contain '/'")
        self._stack.append(name)
        path = "/".join(self._stack)
        t0 = self.now()
        try:
            yield
        finally:
            dt = self.now() - t0
            self._stack.pop()
            self.record(path, max(0.0, dt))

    @property
    def current_path(self) -> str:
        """The open span path (empty outside any span)."""
        return "/".join(self._stack)
