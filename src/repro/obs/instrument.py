"""The instrumentation bundle the control loops carry.

One :class:`Instrumentation` object groups the three telemetry surfaces
— event bus, metrics registry, span recorder — so the engine and the
live loop take a single optional argument.  Three operating points:

* ``None`` (the default everywhere): zero overhead — no event objects
  are ever constructed.
* :meth:`Instrumentation.noop`: fully wired call sites publishing into
  a :class:`~repro.obs.bus.NullBus` with metrics and spans disabled —
  the baseline the overhead benchmark gates against.
* :meth:`Instrumentation.on`: everything live.

The module also hosts the bridges that hook the fault machinery and the
change monitors into the bus without making :mod:`repro.faults` or
:mod:`repro.core` depend on :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.monitor import ChangeMonitor, NotifyingMonitor
from repro.obs.bus import NULL_BUS, EventBus, NullBus
from repro.obs.clock import Clock
from repro.obs.events import EpochEnd, FaultInjected, MonitorTrip
from repro.obs.metrics import (
    THROUGHPUT_BUCKETS_MBPS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import EpochRecord


@dataclass
class Instrumentation:
    """Event bus + metrics + spans, with any part individually off."""

    bus: EventBus = field(default_factory=EventBus)
    metrics: MetricsRegistry | None = None
    spans: SpanRecorder | None = None
    #: Per-session metric handles, resolved once per session — label-key
    #: hashing is too dear to repeat every epoch.
    _epoch_metrics: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def active(self) -> bool:
        """False when nothing can observe anything — a :class:`NullBus`
        with no metrics and no spans.  The control loops check this once
        at entry and run the bare (obs=None) path, which is what keeps
        the no-op bundle within the overhead gate."""
        return (
            not isinstance(self.bus, NullBus)
            or self.metrics is not None
            or self.spans is not None
        )

    @classmethod
    def on(
        cls,
        clock: "Clock | Callable[[], float] | None" = None,
        **span_labels: str,
    ) -> "Instrumentation":
        """Everything enabled; ``clock`` overrides the span timer
        (a :class:`~repro.obs.clock.Clock` or a bare ``() -> float``)."""
        metrics = MetricsRegistry()
        kwargs = {} if clock is None else {"clock": clock}
        return cls(
            bus=EventBus(),
            metrics=metrics,
            spans=SpanRecorder(metrics, **kwargs, **span_labels),
        )

    @classmethod
    def noop(cls) -> "Instrumentation":
        """Fully wired but inert (:attr:`active` is False): the control
        loops detect this at entry and run the bare obs=None path — the
        overhead-benchmark baseline."""
        return cls(bus=NULL_BUS, metrics=None, spans=None)


class _EpochMetrics:
    """One session's per-epoch metric handles, looked up once."""

    __slots__ = (
        "epochs", "bytes_moved", "throughput", "params", "faults",
        "_registry", "_session",
    )

    def __init__(self, registry: MetricsRegistry, session: str) -> None:
        self._registry = registry
        self._session = session
        self.epochs: Counter = registry.counter(
            "repro_epochs_total", session=session)
        self.bytes_moved: Counter = registry.counter(
            "repro_bytes_moved_total", session=session)
        self.throughput: Histogram = registry.histogram(
            "repro_epoch_throughput_mbps",
            buckets=THROUGHPUT_BUCKETS_MBPS, session=session)
        self.params: list[Gauge] = []
        self.faults: dict[str, Counter] = {}

    def param_gauge(self, dim: int) -> Gauge:
        while len(self.params) <= dim:
            self.params.append(self._registry.gauge(
                "repro_params", session=self._session,
                dim=str(len(self.params)),
            ))
        return self.params[dim]

    def fault_counter(self, kind: str) -> Counter:
        counter = self.faults.get(kind)
        if counter is None:
            counter = self.faults[kind] = self._registry.counter(
                "repro_faults_total", session=self._session,
                fault_kind=kind,
            )
        return counter


def publish_epoch_record(
    instrumentation: Instrumentation,
    session: str,
    rec: "EpochRecord",
) -> None:
    """Publish one closed epoch: ``FaultInjected`` (if any) then
    ``EpochEnd``, plus the per-epoch metrics.

    Events are timed by the epoch's own ``start + duration`` boundary —
    never a wall-clock read — so live emission matches
    :func:`repro.obs.events.events_from_records` reconstruction
    float-exactly.  Shared by the sim engine and the live loop.
    """
    bus = instrumentation.bus
    metrics = instrumentation.metrics
    if not isinstance(bus, NullBus):
        end_t = rec.start + rec.duration
        if rec.fault is not None:
            bus.emit(FaultInjected(
                time=end_t, session=session, index=rec.index,
                fault=rec.fault,
            ))
        bus.emit(EpochEnd(
            time=end_t, session=session, index=rec.index,
            params=tuple(rec.params), observed=rec.observed,
            best_case=rec.best_case, bytes_moved=rec.bytes_moved,
            faulted=rec.faulted, fault=rec.fault, retries=rec.retries,
            breaker=rec.breaker, tuned=rec.tuned,
        ))
    if metrics is not None:
        em = instrumentation._epoch_metrics.get(session)
        if em is None:
            em = _EpochMetrics(metrics, session)
            instrumentation._epoch_metrics[session] = em
        em.epochs.inc()
        em.bytes_moved.inc(rec.bytes_moved)
        em.throughput.observe(rec.observed)
        for dim, value in enumerate(rec.params):
            em.param_gauge(dim).set(float(value))
        if rec.fault is not None:
            em.fault_counter(rec.fault).inc()


def instrument_monitor(
    monitor: ChangeMonitor,
    instrumentation: Instrumentation,
    *,
    session: str = "",
    clock: Callable[[], float] = lambda: 0.0,
) -> NotifyingMonitor:
    """Wrap a change monitor so every trip publishes a
    :class:`~repro.obs.events.MonitorTrip` event (and counts it).

    ``clock`` supplies the event timestamp — pass the loop's time source
    (e.g. ``lambda: engine.clock.now``) for deterministic streams.
    """
    bus = instrumentation.bus
    metrics = instrumentation.metrics

    def _on_trip(value: float) -> None:
        bus.emit(MonitorTrip(time=clock(), session=session, value=value))
        if metrics is not None:
            metrics.counter(
                "repro_monitor_trips_total", session=session
            ).inc()

    return NotifyingMonitor(inner=monitor, on_trip=_on_trip)
