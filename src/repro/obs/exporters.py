"""Exporters: JSONL event log and Prometheus text-format snapshots.

Telemetry exports are *best-effort observers*, not the durability layer:
the JSONL event log buffers and flushes without fsync (the crash-safe
record of a run is the checkpoint journal), and the Prometheus snapshot
is an atomically replaced text file a scraper or ``promtool`` can read
at any instant.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.bus import EventBus
from repro.obs.events import Event, event_from_dict
from repro.obs.metrics import MetricsRegistry
from repro.sim.traceio import atomic_write_text


class JsonlEventLog:
    """Writes every bus event as one JSON line.

    Attach to a bus (``log.attach_to(bus)``) or call directly as a sink.
    Use as a context manager or call :meth:`close`.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._f = open(self.path, "a", encoding="utf-8")
        self.written = 0

    def __call__(self, event: Event) -> None:
        self._f.write(
            json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
        )
        self.written += 1

    def attach_to(self, bus: EventBus) -> "JsonlEventLog":
        bus.attach(self)
        return self

    def flush(self) -> None:
        self._f.flush()

    def close(self) -> None:
        if not self._f.closed:
            self._f.close()

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_event_log(path: str | Path) -> list[Event]:
    """Parse a JSONL event log back into events.

    An unterminated final line (the process died mid-write) is dropped;
    the log is telemetry, not a journal.
    """
    raw = Path(path).read_text(encoding="utf-8")
    lines = [ln for ln in raw.splitlines() if ln.strip()]
    events: list[Event] = []
    for i, line in enumerate(lines):
        try:
            events.append(event_from_dict(json.loads(line)))
        except ValueError:
            if i == len(lines) - 1:
                break
            raise
    return events


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> None:
    """Atomically write the registry as a Prometheus text-format file."""
    atomic_write_text(path, registry.render_prometheus())
